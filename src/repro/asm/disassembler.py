"""Linear-sweep disassembler for VN32 machine code.

Produces listings in the style of Figure 1(b) of the paper: address,
raw bytes in hex, and the assembly text.  The tolerant mode emits
``.byte`` lines for undecodable bytes and resynchronises one byte
later, which is also how the ROP gadget finder sweeps code at every
offset.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError
from repro.isa.encoding import decode
from repro.isa.instructions import Instruction


@dataclass
class ListingLine:
    """One line of a disassembly listing."""

    address: int
    raw: bytes
    text: str
    instruction: Instruction | None = None

    def render(self) -> str:
        raw_hex = self.raw.hex()
        return f"0x{self.address:08x}  {raw_hex:<12}  {self.text}"


def disassemble(
    data: bytes,
    base_address: int = 0,
    symbols: dict[int, str] | None = None,
    tolerant: bool = True,
) -> list[ListingLine]:
    """Disassemble ``data`` into listing lines.

    ``symbols`` maps addresses to names; a matching address gets a
    ``name:`` header line (address-only, no bytes).
    """
    symbols = symbols or {}
    lines: list[ListingLine] = []
    offset = 0
    while offset < len(data):
        address = base_address + offset
        if address in symbols:
            lines.append(ListingLine(address, b"", f"{symbols[address]}:"))
        try:
            insn, length = decode(data, offset)
        except DecodeError:
            if not tolerant:
                raise
            byte = data[offset]
            lines.append(
                ListingLine(address, bytes([byte]), f".byte 0x{byte:02x}")
            )
            offset += 1
            continue
        raw = data[offset : offset + length]
        lines.append(ListingLine(address, raw, str(insn), insn))
        offset += length
    return lines


def render_listing(lines: list[ListingLine]) -> str:
    """Render listing lines to a printable block."""
    return "\n".join(line.render() for line in lines)


def disassemble_text(data: bytes, base_address: int = 0, **kwargs) -> str:
    """One-shot convenience: bytes to printable listing."""
    return render_listing(disassemble(data, base_address, **kwargs))
