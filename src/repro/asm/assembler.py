"""Two-pass assembler for VN32 assembly.

Syntax (one statement per line; ``;`` starts a comment)::

    .text                     ; switch to the code section
    main:                     ; define a label
        push bp
        mov bp, sp
        sub sp, 0x18
        lea r0, [bp-0x10]     ; memory operands: [reg], [reg+imm], [reg-imm]
        call get_request      ; symbolic targets become relocations
        jmp loop
        sys 3
    .data
    greeting: .asciiz "hello\n"
    buf:      .space 16
    table:    .word main, 0x1234, -1
    flags:    .byte 1, 2, 3
    .align 4
    .global main              ; export a symbol to other modules
    .entry get_secret         ; mark a PMA entry point (implies .protected)
    .protected                ; request protected-module loading
    .kernel                   ; request kernel-privileged loading

Assembling produces a relocatable
:class:`~repro.link.objfile.ObjectFile`; label references are emitted
as 32-bit absolute relocations and resolved by the linker.
"""

from __future__ import annotations

import re

from repro.errors import AssemblerError, EncodingError
from repro.isa import build
from repro.isa.encoding import encode
from repro.isa.instructions import Instruction, Mem
from repro.isa.opcodes import BY_MNEMONIC, OperandFormat
from repro.isa.registers import is_register_name, register_number
from repro.link.objfile import DATA, ObjectFile, Relocation, TEXT

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_IDENT_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")
_MEM_RE = re.compile(
    r"^\[\s*([A-Za-z][\w]*)\s*(?:([+-])\s*(0x[0-9A-Fa-f]+|\d+)\s*)?\]$"
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    '"': '"',
    "'": "'",
}

#: Ceiling on ``.space`` sizes and ``.align`` boundaries.  The guest
#: address space is 4 GiB but no real module reserves more than a few
#: pages of zeros; an absurd operand is a typo (or a fuzzer) and
#: should be a diagnostic, not an out-of-memory loop.
_MAX_SPACE = 1 << 20


def _parse_string(text: str, line: int) -> bytes:
    """Parse a double-quoted string literal with C-style escapes."""
    if len(text) < 2 or text[0] != '"' or text[-1] != '"':
        raise AssemblerError(f"malformed string literal {text!r}", line)
    body = text[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        char = body[i]
        if char == "\\":
            i += 1
            if i >= len(body):
                raise AssemblerError("dangling escape in string", line)
            esc = body[i]
            if esc == "x":
                digits = body[i + 1 : i + 3]
                try:
                    out.append(int(digits, 16))
                except ValueError:
                    raise AssemblerError(
                        f"bad hex escape \\x{digits}", line)
                i += 2
            elif esc in _ESCAPES:
                out += _ESCAPES[esc].encode("latin-1")
            else:
                raise AssemblerError(f"unknown escape \\{esc}", line)
        else:
            if ord(char) > 0xFF:
                raise AssemblerError(
                    f"non-byte character {char!r} in string literal", line)
            out += char.encode("latin-1")
        i += 1
    return bytes(out)


class _Operand:
    """A parsed operand: register, immediate, symbol(+addend), or memory."""

    __slots__ = ("kind", "value", "symbol", "addend", "mem")

    def __init__(self, kind: str, value: int = 0, symbol: str | None = None,
                 addend: int = 0, mem: Mem | None = None):
        self.kind = kind  # 'reg' | 'imm' | 'sym' | 'mem'
        self.value = value
        self.symbol = symbol
        self.addend = addend
        self.mem = mem


def _parse_int(token: str) -> int | None:
    token = token.strip()
    sign = 1
    if token.startswith("-"):
        sign = -1
        token = token[1:].strip()
    try:
        if token.lower().startswith("0x"):
            return sign * int(token, 16)
        if token.startswith("'") and token.endswith("'") and len(token) >= 3:
            body = token[1:-1]
            if body.startswith("\\") and len(body) == 2:
                return sign * ord(_ESCAPES[body[1]])
            if len(body) == 1:
                return sign * ord(body)
            return None
        return sign * int(token, 10)
    except (ValueError, KeyError):
        return None


def _split_operands(text: str, line: int) -> list[str]:
    """Split an operand list on commas, respecting brackets and quotes."""
    parts: list[str] = []
    depth = 0
    in_string = False
    current = ""
    i = 0
    while i < len(text):
        char = text[i]
        if in_string:
            current += char
            if char == "\\":
                if i + 1 >= len(text):
                    raise AssemblerError(
                        f"dangling escape in {text!r}", line)
                current += text[i + 1]
                i += 1
            elif char == '"':
                in_string = False
        elif char == '"':
            in_string = True
            current += char
        elif char == "[":
            depth += 1
            current += char
        elif char == "]":
            depth -= 1
            current += char
        elif char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
        i += 1
    if in_string or depth != 0:
        raise AssemblerError(f"unbalanced brackets or quotes in {text!r}", line)
    if current.strip():
        parts.append(current.strip())
    return parts


def _parse_operand(token: str, line: int) -> _Operand:
    if is_register_name(token):
        return _Operand("reg", value=register_number(token))
    mem_match = _MEM_RE.match(token)
    if mem_match:
        base_token, sign, disp_token = mem_match.groups()
        if not is_register_name(base_token):
            raise AssemblerError(f"bad base register {base_token!r}", line)
        disp = 0
        if disp_token is not None:
            disp = int(disp_token, 0)
            if sign == "-":
                disp = -disp
        return _Operand("mem", mem=Mem(register_number(base_token), disp))
    value = _parse_int(token)
    if value is not None:
        return _Operand("imm", value=value)
    # symbol or symbol+offset / symbol-offset
    sym_match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*(?:([+-])\s*(0x[0-9A-Fa-f]+|\d+))?$", token)
    if sym_match:
        name, sign, off = sym_match.groups()
        addend = 0
        if off is not None:
            addend = int(off, 0)
            if sign == "-":
                addend = -addend
        return _Operand("sym", symbol=name, addend=addend)
    raise AssemblerError(f"cannot parse operand {token!r}", line)


#: Where the 32-bit immediate sits inside each encoding (for relocs).
_IMM32_OFFSETS = {
    OperandFormat.REGIMM32: 2,
    OperandFormat.REGMEM: 2,
    OperandFormat.IMM32: 1,
}


class Assembler:
    """Assembles VN32 source text into an :class:`ObjectFile`."""

    def __init__(self, module_name: str = "module"):
        self.module_name = module_name

    def assemble(self, source: str) -> ObjectFile:
        obj = ObjectFile(self.module_name)
        # Materialise both sections so layout is stable.
        obj.section(TEXT)
        obj.section(DATA)
        globals_pending: list[tuple[str, int]] = []
        entries_pending: list[tuple[str, int]] = []
        current = TEXT
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = raw_line.split(";", 1)[0].strip()
            while line:
                label_match = _LABEL_RE.match(line)
                if label_match:
                    name = label_match.group(1)
                    if current == TEXT:
                        # ``.L``-prefixed labels are compiler-internal jump
                        # targets, not functions; they are excluded from the
                        # CFI valid-target set the loader builds.
                        kind = "label" if name.startswith(".L") else "func"
                    else:
                        kind = "object"
                    if name in obj.symbols:
                        raise AssemblerError(f"duplicate label {name!r}", line_number)
                    obj.add_symbol(name, current, obj.section(current).size, kind)
                    line = line[label_match.end():].strip()
                    continue
                break
            if not line:
                continue
            if line.startswith("."):
                current = self._directive(obj, current, line, line_number,
                                          globals_pending, entries_pending)
            else:
                self._instruction(obj, current, line, line_number)
        for name, line_number in globals_pending:
            if name not in obj.symbols:
                raise AssemblerError(f".global of undefined symbol {name!r}", line_number)
            obj.symbols[name].is_global = True
        for name, line_number in entries_pending:
            if name not in obj.symbols:
                raise AssemblerError(f".entry of undefined symbol {name!r}", line_number)
            obj.symbols[name].is_global = True
            obj.entry_points.append(name)
            obj.protected = True
        return obj

    # -- directives ---------------------------------------------------------

    def _directive(
        self,
        obj: ObjectFile,
        current: str,
        line: str,
        line_number: int,
        globals_pending: list,
        entries_pending: list,
    ) -> str:
        parts = line.split(None, 1)
        name = parts[0]
        rest = parts[1].strip() if len(parts) > 1 else ""
        section = obj.section(current)
        if name == ".text":
            return TEXT
        if name == ".data":
            return DATA
        if name == ".global":
            globals_pending.append((rest, line_number))
            return current
        if name == ".entry":
            entries_pending.append((rest, line_number))
            return current
        if name == ".protected":
            obj.protected = True
            return current
        if name == ".kernel":
            obj.kernel = True
            return current
        if name == ".byte":
            for token in _split_operands(rest, line_number):
                value = _parse_int(token)
                if value is None or not -128 <= value <= 255:
                    raise AssemblerError(f"bad byte value {token!r}", line_number)
                section.data.append(value & 0xFF)
            return current
        if name == ".word":
            for token in _split_operands(rest, line_number):
                operand = _parse_operand(token, line_number)
                if operand.kind == "imm":
                    section.data += (operand.value & 0xFFFFFFFF).to_bytes(4, "little")
                elif operand.kind == "sym":
                    section.relocations.append(
                        Relocation(section.size, operand.symbol, operand.addend)
                    )
                    section.data += b"\x00\x00\x00\x00"
                else:
                    raise AssemblerError(f"bad word value {token!r}", line_number)
            return current
        if name in (".ascii", ".asciiz"):
            section.data += _parse_string(rest, line_number)
            if name == ".asciiz":
                section.data.append(0)
            return current
        if name == ".space":
            tokens = _split_operands(rest, line_number)
            if not tokens:
                raise AssemblerError(".space needs a size", line_number)
            size = _parse_int(tokens[0])
            fill = _parse_int(tokens[1]) if len(tokens) > 1 else 0
            if size is None or not 0 <= size <= _MAX_SPACE:
                raise AssemblerError(f"bad .space size {rest!r}", line_number)
            if fill is None:
                raise AssemblerError(f"bad .space fill {rest!r}", line_number)
            section.data += bytes([fill & 0xFF]) * size
            return current
        if name == ".align":
            alignment = _parse_int(rest)
            if not alignment or not 0 < alignment <= _MAX_SPACE:
                raise AssemblerError(f"bad alignment {rest!r}", line_number)
            while section.size % alignment:
                section.data.append(0)
            return current
        raise AssemblerError(f"unknown directive {name}", line_number)

    # -- instructions ---------------------------------------------------------

    def _instruction(self, obj: ObjectFile, current: str, line: str, line_number: int) -> None:
        if current != TEXT:
            raise AssemblerError("instructions must be in .text", line_number)
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in BY_MNEMONIC:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_number)
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = [
            _parse_operand(token, line_number)
            for token in _split_operands(operand_text, line_number)
        ]
        insn, reloc_symbol, reloc_addend = self._build(mnemonic, operands, line_number)
        section = obj.section(TEXT)
        offset = section.size
        try:
            encoded = encode(insn)
        except EncodingError as exc:
            raise AssemblerError(str(exc), line_number) from exc
        if reloc_symbol is not None:
            imm_offset = _IMM32_OFFSETS[insn.fmt]
            section.relocations.append(
                Relocation(offset + imm_offset, reloc_symbol, reloc_addend)
            )
        section.data += encoded

    def _build(
        self, mnemonic: str, ops: list[_Operand], line: int
    ) -> tuple[Instruction, str | None, int]:
        """Select an encoding and build the instruction.

        Returns ``(instruction, reloc_symbol, reloc_addend)``; symbolic
        immediates are encoded as 0 and patched by the linker.
        """

        def fail(reason: str = "bad operands"):
            return AssemblerError(f"{reason} for {mnemonic!r}", line)

        def imm_or_sym(op: _Operand) -> tuple[int, str | None, int]:
            if op.kind == "imm":
                return op.value, None, 0
            if op.kind == "sym":
                return 0, op.symbol, op.addend
            raise fail()

        kinds = tuple(op.kind for op in ops)
        if mnemonic in ("nop", "halt", "ret"):
            if ops:
                raise fail("unexpected operands")
            return getattr(build, mnemonic)(), None, 0
        if mnemonic in ("push", "pop", "not"):
            if kinds != ("reg",):
                raise fail()
            builder = {"push": build.push, "pop": build.pop, "not": build.not_r}[mnemonic]
            return builder(ops[0].value), None, 0
        if mnemonic in ("mov", "add", "sub", "cmp"):
            if kinds == ("reg", "reg"):
                builder = {
                    "mov": build.mov_rr, "add": build.add_rr,
                    "sub": build.sub_rr, "cmp": build.cmp_rr,
                }[mnemonic]
                return builder(ops[0].value, ops[1].value), None, 0
            if len(ops) == 2 and ops[0].kind == "reg" and ops[1].kind in ("imm", "sym"):
                value, symbol, addend = imm_or_sym(ops[1])
                builder = {
                    "mov": build.mov_ri, "add": build.add_ri,
                    "sub": build.sub_ri, "cmp": build.cmp_ri,
                }[mnemonic]
                return builder(ops[0].value, value), symbol, addend
            raise fail()
        if mnemonic in ("mul", "div", "mod", "and", "or", "xor"):
            if kinds != ("reg", "reg"):
                raise fail()
            builder = {
                "mul": build.mul_rr, "div": build.div_rr, "mod": build.mod_rr,
                "and": build.and_rr, "or": build.or_rr, "xor": build.xor_rr,
            }[mnemonic]
            return builder(ops[0].value, ops[1].value), None, 0
        if mnemonic in ("shl", "shr"):
            if kinds != ("reg", "imm"):
                raise fail()
            builder = build.shl if mnemonic == "shl" else build.shr
            return builder(ops[0].value, ops[1].value), None, 0
        if mnemonic in ("load", "loadb", "lea"):
            if kinds != ("reg", "mem"):
                raise fail()
            builder = {"load": build.load, "loadb": build.loadb, "lea": build.lea}[mnemonic]
            return builder(ops[0].value, ops[1].mem), None, 0
        if mnemonic in ("store", "storeb"):
            if kinds != ("mem", "reg"):
                raise fail()
            builder = build.store if mnemonic == "store" else build.storeb
            return builder(ops[1].value, ops[0].mem), None, 0
        if mnemonic in ("jmp", "call"):
            if kinds == ("reg",):
                builder = build.jmp_reg if mnemonic == "jmp" else build.call_reg
                return builder(ops[0].value), None, 0
            if len(ops) == 1 and ops[0].kind in ("imm", "sym"):
                value, symbol, addend = imm_or_sym(ops[0])
                builder = build.jmp_abs if mnemonic == "jmp" else build.call_abs
                return builder(value), symbol, addend
            raise fail()
        if mnemonic in ("jz", "jnz", "jl", "jg", "jle", "jge", "jb", "jae"):
            if len(ops) != 1 or ops[0].kind not in ("imm", "sym"):
                raise fail()
            value, symbol, addend = imm_or_sym(ops[0])
            return getattr(build, mnemonic)(value), symbol, addend
        if mnemonic == "sys":
            if kinds != ("imm",):
                raise fail()
            return build.sys(ops[0].value), None, 0
        if mnemonic == "land":
            if kinds != ("imm",):
                raise fail()
            return build.land(ops[0].value), None, 0
        if mnemonic == "chk":
            if len(ops) != 2 or ops[0].kind != "reg" or ops[1].kind != "imm":
                raise fail()
            return build.chk(ops[0].value, ops[1].value), None, 0
        raise fail("unhandled mnemonic")


def assemble(source: str, module_name: str = "module") -> ObjectFile:
    """Assemble ``source`` into a relocatable object file."""
    return Assembler(module_name).assemble(source)
