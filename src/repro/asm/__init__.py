"""Assembler and disassembler for VN32."""

from repro.asm.assembler import Assembler, assemble
from repro.asm.disassembler import ListingLine, disassemble, disassemble_text, render_listing

__all__ = [
    "Assembler",
    "assemble",
    "ListingLine",
    "disassemble",
    "disassemble_text",
    "render_listing",
]
