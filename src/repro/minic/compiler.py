"""The MinC compiler facade: source text to relocatable object file.

Ties the pipeline together (lex -> parse -> sema -> codegen ->
assemble) and maps a :class:`~repro.mitigations.config.MitigationConfig`
onto per-module :class:`~repro.minic.codegen.CompileOptions`.
"""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.link.objfile import ObjectFile
from repro.minic.codegen import CodeGenerator, CompileOptions
from repro.minic.parser import parse
from repro.minic.sema import analyze
from repro.mitigations.config import MitigationConfig


def options_from_mitigations(
    config: MitigationConfig,
    *,
    protected: bool = False,
    kernel: bool = False,
    secure: bool = False,
) -> CompileOptions:
    """Derive compile options from a deployment posture.

    ``secure`` applies the full secure-compilation scheme (only
    meaningful together with ``protected``).
    """
    base = CompileOptions.secure_module() if (protected and secure) else CompileOptions()
    return CompileOptions(
        stack_canaries=config.stack_canaries,
        bounds_checks=config.bounds_checks,
        asan=config.asan,
        cfi_landing_pads=config.cfi_typed,
        protected=protected,
        kernel=kernel,
        pma_pointer_checks=base.pma_pointer_checks,
        pma_private_stack=base.pma_private_stack,
        pma_scrub_registers=base.pma_scrub_registers,
        pma_reentrancy_guard=base.pma_reentrancy_guard,
    )


def compile_to_asm(
    source: str,
    module_name: str = "module",
    options: CompileOptions | None = None,
) -> str:
    """Compile MinC source to assembly text (inspectable, like Fig. 1b)."""
    options = options or CompileOptions()
    program = analyze(parse(source), safe=options.bounds_checks)
    asm_text = CodeGenerator(program, module_name, options).generate()
    if options.optimize:
        from repro.minic.optimizer import optimize_asm

        asm_text = optimize_asm(asm_text)
    return asm_text


def compile_source(
    source: str,
    module_name: str = "module",
    options: CompileOptions | None = None,
) -> ObjectFile:
    """Compile MinC source all the way to a relocatable object file.

    Unlike :func:`compile_to_asm` + :func:`assemble` by hand, this
    also carries the code generator's per-function frame layouts onto
    the object file (``ObjectFile.frame_info``) -- debug metadata the
    invariant monitors use for object-bounds attribution.
    """
    options = options or CompileOptions()
    program = analyze(parse(source), safe=options.bounds_checks)
    generator = CodeGenerator(program, module_name, options)
    asm_text = generator.generate()
    if options.optimize:
        from repro.minic.optimizer import optimize_asm

        asm_text = optimize_asm(asm_text)
    obj = assemble(asm_text, module_name)
    obj.frame_info = dict(generator.frame_tables)
    return obj
