"""MinC built-in functions: thin wrappers over ``sys`` services.

A call to one of these names (when the program does not define its own
function with the same name) compiles to argument setup in r0..r3
followed by a single ``sys`` instruction, mirroring how libc wrappers
sit directly on syscalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine import syscalls
from repro.minic.types import INT, Type, VOID


@dataclass(frozen=True)
class Builtin:
    name: str
    syscall: int
    arity: int
    ret: Type
    #: Index of a buffer argument whose bounds the safe-language mode
    #: must know statically (None if not applicable).
    buffer_arg: int | None = None
    #: Index of the length argument tied to ``buffer_arg``.
    length_arg: int | None = None


BUILTINS: dict[str, Builtin] = {
    builtin.name: builtin
    for builtin in (
        Builtin("read", syscalls.SYS_READ, 3, INT, buffer_arg=1, length_arg=2),
        Builtin("write", syscalls.SYS_WRITE, 3, INT, buffer_arg=1, length_arg=2),
        Builtin("exit", syscalls.SYS_EXIT, 1, VOID),
        Builtin("spawn_shell", syscalls.SYS_SPAWN_SHELL, 0, INT),
        Builtin("rand", syscalls.SYS_RAND, 0, INT),
        Builtin("print_int", syscalls.SYS_PRINT_INT, 1, VOID),
        Builtin("attest", syscalls.SYS_ATTEST, 3, INT),
        Builtin("seal", syscalls.SYS_SEAL, 4, INT),
        Builtin("unseal", syscalls.SYS_UNSEAL, 4, INT),
        Builtin("ctr_read", syscalls.SYS_CTR_READ, 0, INT),
        Builtin("ctr_incr", syscalls.SYS_CTR_INCR, 0, INT),
        # Red-zone management for instrumented allocators (no-ops
        # unless the machine runs with red-zone checking enabled).
        Builtin("poison", syscalls.SYS_POISON, 2, VOID),
        Builtin("unpoison", syscalls.SYS_UNPOISON, 2, VOID),
    )
}
