"""Semantic analysis for MinC: name resolution and type checking.

Two personalities, matching Section III of the paper:

* **unsafe mode** (default) -- faithful C semantics: arrays decay to
  unbounded pointers, pointers and ints interconvert, addresses of
  locals escape freely.  Programs with memory-safety bugs compile
  without complaint, exactly as the paper's vulnerable examples do.

* **safe mode** (``safe=True``; the Java/Rust stand-in of
  Section III-C2) -- rejects every construct that loses bounds or
  escapes a lifetime: indexing through unsized pointers, taking
  addresses of variables, raw pointer dereference, and passing
  buffers of unknown size to ``read``/``write``.  Surviving array
  accesses get compiler-inserted ``chk`` bounds checks (in codegen)
  and I/O lengths are clamped against the static buffer size.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.minic import ast
from repro.minic.builtins import BUILTINS, Builtin
from repro.minic.types import (
    ArrayType,
    CHAR,
    FuncType,
    INT,
    PointerType,
    Type,
    VOID,
    assignable,
    decay,
    is_integer,
    is_scalar,
)


class Scope:
    """A lexical scope mapping names to their declaring nodes."""

    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self.names: dict[str, ast.Node] = {}

    def declare(self, name: str, node: ast.Node, line: int) -> None:
        if name in self.names:
            raise CompileError(f"redeclaration of {name!r}", line)
        self.names[name] = node

    def lookup(self, name: str) -> ast.Node | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


def _binding_type(node: ast.Node) -> Type:
    if isinstance(node, ast.FuncDef):
        return node.func_type
    if isinstance(node, (ast.VarDecl, ast.Param, ast.GlobalVar)):
        return node.var_type
    raise AssertionError(f"unexpected binding {node}")


class Analyzer:
    """Decorates the AST with types and bindings; enforces the rules."""

    def __init__(self, safe: bool = False):
        self.safe = safe
        self.globals = Scope()
        self.current_function: ast.FuncDef | None = None
        self.loop_depth = 0

    # -- entry point --------------------------------------------------------

    def analyze(self, program: ast.Program) -> ast.Program:
        for item in program.items:
            if isinstance(item, ast.FuncDef):
                self._declare_function(item)
            elif isinstance(item, ast.GlobalVar):
                self.globals.declare(item.name, item, item.line)
                self._check_global_init(item)
        for item in program.functions:
            if item.body is not None:
                self._analyze_function(item)
        return program

    def _declare_function(self, func: ast.FuncDef) -> None:
        existing = self.globals.names.get(func.name)
        if isinstance(existing, ast.FuncDef):
            if existing.func_type != func.func_type:
                raise CompileError(
                    f"conflicting declarations of {func.name!r}", func.line
                )
            if existing.body is None and func.body is not None:
                # Definition supersedes the prototype; rebind so calls
                # resolved later point at the definition.
                self.globals.names[func.name] = func
                return
            if func.body is None:
                return  # redundant prototype after the definition
            raise CompileError(f"redefinition of {func.name!r}", func.line)
        self.globals.declare(func.name, func, func.line)

    def _check_global_init(self, var: ast.GlobalVar) -> None:
        init = var.init
        if init is None:
            return
        if isinstance(init, int):
            if not is_scalar(var.var_type):
                raise CompileError(
                    f"scalar initialiser for non-scalar {var.name!r}", var.line
                )
            return
        if isinstance(init, bytes):
            if not isinstance(var.var_type, ArrayType) or var.var_type.element != CHAR:
                raise CompileError(
                    f"string initialiser for non-char-array {var.name!r}", var.line
                )
            if var.var_type.size is None:
                var.var_type = ArrayType(CHAR, len(init))
            elif len(init) > var.var_type.size:
                raise CompileError(
                    f"string initialiser too long for {var.name!r}", var.line
                )
            return
        if isinstance(init, list):
            if not isinstance(var.var_type, ArrayType):
                raise CompileError(
                    f"brace initialiser for non-array {var.name!r}", var.line
                )
            if var.var_type.size is None:
                var.var_type = ArrayType(var.var_type.element, len(init))
            elif len(init) > var.var_type.size:
                raise CompileError(
                    f"too many initialisers for {var.name!r}", var.line
                )
            return
        raise AssertionError(f"unexpected initialiser {init!r}")

    # -- functions -----------------------------------------------------------

    def _analyze_function(self, func: ast.FuncDef) -> None:
        self.current_function = func
        scope = Scope(self.globals)
        for param in func.params:
            if param.var_type is VOID:
                raise CompileError(f"parameter {param.name!r} has void type", param.line)
            if self.safe and isinstance(param.var_type, ArrayType) and param.var_type.size is None:
                raise CompileError(
                    f"safe mode: parameter {param.name!r} is an unsized array "
                    "(bounds unknown at the callee)",
                    param.line,
                )
            scope.declare(param.name, param, param.line)
        self._stmt(func.body, scope)
        self.current_function = None

    # -- statements ------------------------------------------------------------

    def _stmt(self, stmt: ast.Stmt, scope: Scope) -> None:
        if isinstance(stmt, ast.Block):
            inner = Scope(scope)
            for child in stmt.statements:
                self._stmt(child, inner)
        elif isinstance(stmt, ast.VarDecl):
            if isinstance(stmt.var_type, ArrayType) and stmt.var_type.size is None:
                raise CompileError(
                    f"local array {stmt.name!r} must have a size", stmt.line
                )
            if stmt.init is not None:
                init_type = self._expr(stmt.init, scope)
                if not assignable(stmt.var_type, init_type):
                    raise CompileError(
                        f"cannot initialise {stmt.var_type} with {init_type}",
                        stmt.line,
                    )
            scope.declare(stmt.name, stmt, stmt.line)
        elif isinstance(stmt, ast.If):
            self._condition(stmt.condition, scope)
            self._stmt(stmt.then_branch, scope)
            if stmt.else_branch is not None:
                self._stmt(stmt.else_branch, scope)
        elif isinstance(stmt, ast.While):
            self._condition(stmt.condition, scope)
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.DoWhile):
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
            self._condition(stmt.condition, scope)
        elif isinstance(stmt, ast.For):
            inner = Scope(scope)
            if stmt.init is not None:
                self._stmt(stmt.init, inner)
            if stmt.condition is not None:
                self._condition(stmt.condition, inner)
            if stmt.step is not None:
                self._expr(stmt.step, inner)
            self.loop_depth += 1
            self._stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.Return):
            ret_type = self.current_function.return_type
            if stmt.value is None:
                if ret_type is not VOID:
                    raise CompileError("return without a value", stmt.line)
            else:
                value_type = self._expr(stmt.value, scope)
                if ret_type is VOID:
                    raise CompileError("return with a value in void function", stmt.line)
                if not assignable(ret_type, value_type):
                    raise CompileError(
                        f"cannot return {value_type} as {ret_type}", stmt.line
                    )
                if self.safe:
                    self._check_no_local_escape(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr, scope)
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                raise CompileError("break/continue outside a loop", stmt.line)
        else:
            raise AssertionError(f"unexpected statement {stmt}")

    def _condition(self, expr: ast.Expr, scope: Scope) -> None:
        cond_type = self._expr(expr, scope)
        if not is_scalar(decay(cond_type)):
            raise CompileError(f"condition has non-scalar type {cond_type}", expr.line)

    def _check_no_local_escape(self, expr: ast.Expr) -> None:
        """Safe mode: a returned value must not reference local storage.

        AddrOf is already rejected wholesale in safe mode, so the only
        remaining escape is returning a local array (decayed).
        """
        if isinstance(expr, ast.Ident) and isinstance(
            expr.binding, (ast.VarDecl, ast.Param)
        ):
            if isinstance(_binding_type(expr.binding), ArrayType):
                raise CompileError(
                    "safe mode: returning a local array escapes its lifetime",
                    expr.line,
                )

    # -- expressions -----------------------------------------------------------

    def _expr(self, expr: ast.Expr, scope: Scope, array_ok: bool = False) -> Type:
        """Type an expression; ``array_ok`` permits a bare array value
        (as an Index base or a checked builtin buffer argument) in safe
        mode."""
        expr.type = self._expr_inner(expr, scope, array_ok)
        return expr.type

    def _expr_inner(self, expr: ast.Expr, scope: Scope, array_ok: bool) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.StringLit):
            return ArrayType(CHAR, len(expr.value))
        if isinstance(expr, ast.Ident):
            return self._ident(expr, scope, array_ok)
        if isinstance(expr, ast.Unary):
            operand_type = self._expr(expr.operand, scope)
            if not is_integer(decay(operand_type)) and expr.op in ("-", "~"):
                raise CompileError(f"unary {expr.op} needs an integer", expr.line)
            if expr.op == "!" and not is_scalar(decay(operand_type)):
                raise CompileError("unary ! needs a scalar", expr.line)
            return INT
        if isinstance(expr, ast.Binary):
            return self._binary(expr, scope)
        if isinstance(expr, ast.Assign):
            return self._assign(expr, scope)
        if isinstance(expr, ast.Conditional):
            cond_type = self._expr(expr.condition, scope)
            if not is_scalar(decay(cond_type)):
                raise CompileError("?: condition must be scalar", expr.line)
            then_type = decay(self._expr(expr.then, scope))
            otherwise_type = decay(self._expr(expr.otherwise, scope))
            if not (assignable(then_type, otherwise_type)
                    or assignable(otherwise_type, then_type)):
                raise CompileError(
                    f"?: branches have incompatible types {then_type} "
                    f"and {otherwise_type}", expr.line,
                )
            return then_type
        if isinstance(expr, ast.PostOp):
            target_type = self._expr(expr.target, scope)
            if not self._is_lvalue(expr.target):
                raise CompileError(
                    f"{expr.op} needs an lvalue", expr.line)
            decayed = decay(target_type)
            if not (is_integer(decayed) or isinstance(decayed, PointerType)):
                raise CompileError(
                    f"{expr.op} needs an integer or pointer", expr.line)
            if isinstance(target_type, ArrayType):
                raise CompileError(f"cannot {expr.op} an array", expr.line)
            return target_type
        if isinstance(expr, ast.Call):
            return self._call(expr, scope)
        if isinstance(expr, ast.Index):
            return self._index(expr, scope)
        if isinstance(expr, ast.Deref):
            if self.safe:
                raise CompileError(
                    "safe mode: raw pointer dereference is not allowed", expr.line
                )
            operand_type = decay(self._expr(expr.operand, scope))
            if not isinstance(operand_type, PointerType):
                raise CompileError(f"cannot dereference {operand_type}", expr.line)
            return operand_type.pointee
        if isinstance(expr, ast.AddrOf):
            operand_type = self._expr(expr.operand, scope, array_ok=True)
            if isinstance(expr.operand, ast.Ident) and isinstance(
                expr.operand.binding, ast.FuncDef
            ):
                # &f on a function: the function value itself (C's
                # function-to-pointer equivalence).  Allowed even in
                # safe mode -- function pointers carry no bounds.
                return operand_type
            if self.safe:
                raise CompileError(
                    "safe mode: taking addresses is not allowed", expr.line
                )
            if not self._is_lvalue(expr.operand):
                raise CompileError("cannot take the address of this expression", expr.line)
            return PointerType(decay(operand_type) if isinstance(operand_type, ArrayType) else operand_type)
        raise AssertionError(f"unexpected expression {expr}")

    def _ident(self, expr: ast.Ident, scope: Scope, array_ok: bool) -> Type:
        binding = scope.lookup(expr.name)
        if binding is None:
            raise CompileError(f"undeclared identifier {expr.name!r}", expr.line)
        expr.binding = binding
        binding_type = _binding_type(binding)
        if (
            self.safe
            and isinstance(binding_type, ArrayType)
            and not array_ok
        ):
            raise CompileError(
                f"safe mode: array {expr.name!r} may only be indexed or "
                "passed as a checked buffer (decay to a raw pointer loses "
                "its bounds)",
                expr.line,
            )
        return binding_type

    def _binary(self, expr: ast.Binary, scope: Scope) -> Type:
        left = decay(self._expr(expr.left, scope))
        right = decay(self._expr(expr.right, scope))
        op = expr.op
        if op in ("&&", "||"):
            if not (is_scalar(left) and is_scalar(right)):
                raise CompileError(f"{op} needs scalar operands", expr.line)
            return INT
        if op in ("==", "!=", "<", ">", "<=", ">="):
            if not (is_scalar(left) and is_scalar(right)):
                raise CompileError(f"{op} needs scalar operands", expr.line)
            return INT
        if op in ("+", "-"):
            if isinstance(left, PointerType) and is_integer(right):
                return left
            if op == "+" and is_integer(left) and isinstance(right, PointerType):
                return right
            if is_integer(left) and is_integer(right):
                return INT
            raise CompileError(
                f"invalid operands to {op}: {left} and {right}", expr.line
            )
        if op in ("*", "/", "%", "&", "|", "^", "<<", ">>"):
            if not (is_integer(left) and is_integer(right)):
                raise CompileError(f"{op} needs integer operands", expr.line)
            return INT
        raise AssertionError(f"unexpected operator {op}")

    def _assign(self, expr: ast.Assign, scope: Scope) -> Type:
        target_type = self._expr(expr.target, scope)
        if not self._is_lvalue(expr.target):
            raise CompileError("assignment target is not an lvalue", expr.line)
        if isinstance(target_type, ArrayType):
            raise CompileError("cannot assign to an array", expr.line)
        value_type = self._expr(expr.value, scope)
        if not assignable(target_type, value_type):
            raise CompileError(
                f"cannot assign {value_type} to {target_type}", expr.line
            )
        return target_type

    def _is_lvalue(self, expr: ast.Expr) -> bool:
        if isinstance(expr, ast.Ident):
            return isinstance(expr.binding, (ast.VarDecl, ast.Param, ast.GlobalVar))
        return isinstance(expr, (ast.Deref, ast.Index))

    def _index(self, expr: ast.Index, scope: Scope) -> Type:
        base_type = self._expr(expr.base, scope, array_ok=True)
        index_type = self._expr(expr.index, scope)
        if not is_integer(decay(index_type)):
            raise CompileError("array index must be an integer", expr.line)
        base_decayed = decay(base_type)
        if not isinstance(base_decayed, PointerType):
            raise CompileError(f"cannot index {base_type}", expr.line)
        if self.safe and not (
            isinstance(base_type, ArrayType) and base_type.size is not None
        ):
            raise CompileError(
                "safe mode: indexing requires a statically sized array",
                expr.line,
            )
        return base_decayed.pointee

    def _call(self, expr: ast.Call, scope: Scope) -> Type:
        callee = expr.callee
        if isinstance(callee, ast.Ident):
            binding = scope.lookup(callee.name)
            if binding is None and callee.name in BUILTINS:
                return self._builtin_call(expr, BUILTINS[callee.name], scope)
            if binding is None:
                raise CompileError(f"undeclared function {callee.name!r}", expr.line)
            callee.binding = binding
            callee.type = _binding_type(binding)
            if isinstance(binding, ast.FuncDef):
                expr.mode = "direct"
                return self._check_args(expr, binding.func_type, scope)
        callee_type = callee.type if callee.type is not None else self._expr(callee, scope)
        callee_decayed = decay(callee_type)
        if isinstance(callee_decayed, PointerType) and isinstance(
            callee_decayed.pointee, FuncType
        ):
            callee_decayed = callee_decayed.pointee
        if not isinstance(callee_decayed, FuncType):
            raise CompileError(f"cannot call value of type {callee_type}", expr.line)
        expr.mode = "indirect"
        return self._check_args(expr, callee_decayed, scope)

    def _check_args(self, expr: ast.Call, func_type: FuncType, scope: Scope) -> Type:
        if len(expr.args) != len(func_type.params):
            raise CompileError(
                f"call takes {len(func_type.params)} arguments, got {len(expr.args)}",
                expr.line,
            )
        for arg, param_type in zip(expr.args, func_type.params):
            # A *sized* array parameter keeps its bounds, so safe mode
            # allows passing an array to it (and checks the sizes).
            param_is_sized_array = (
                isinstance(param_type, ArrayType) and param_type.size is not None
            )
            arg_type = self._expr(
                arg, scope, array_ok=not self.safe or param_is_sized_array
            )
            if self.safe and param_is_sized_array:
                if not (
                    isinstance(arg_type, ArrayType)
                    and arg_type.size is not None
                    and arg_type.size >= param_type.size
                ):
                    raise CompileError(
                        f"safe mode: argument must be an array of at least "
                        f"{param_type.size} elements",
                        arg.line,
                    )
                continue
            if not assignable(param_type, arg_type):
                raise CompileError(
                    f"cannot pass {arg_type} as {param_type}", arg.line
                )
        return func_type.ret

    def _builtin_call(self, expr: ast.Call, builtin: Builtin, scope: Scope) -> Type:
        expr.mode = "builtin"
        expr.builtin = builtin
        if len(expr.args) != builtin.arity:
            raise CompileError(
                f"{builtin.name} takes {builtin.arity} arguments, got {len(expr.args)}",
                expr.line,
            )
        expr.clamp_size = None
        for position, arg in enumerate(expr.args):
            is_buffer = position == builtin.buffer_arg
            arg_type = self._expr(arg, scope, array_ok=True)
            if self.safe and is_buffer:
                if not (
                    isinstance(arg, ast.Ident)
                    and isinstance(arg_type, ArrayType)
                    and arg_type.size is not None
                ):
                    raise CompileError(
                        f"safe mode: {builtin.name} needs a statically sized "
                        "array buffer",
                        arg.line,
                    )
                # Codegen will clamp the length argument to the buffer size.
                expr.clamp_size = arg_type.size
            elif self.safe and isinstance(arg_type, ArrayType):
                raise CompileError(
                    "safe mode: array may only be passed as a checked buffer",
                    arg.line,
                )
        return builtin.ret


def analyze(program: ast.Program, safe: bool = False) -> ast.Program:
    """Run semantic analysis over ``program`` (decorating in place)."""
    return Analyzer(safe).analyze(program)
