"""Abstract syntax tree for MinC.

Nodes are plain dataclasses.  The semantic analyser decorates
expression nodes with a ``type`` attribute and identifier nodes with a
``binding`` (the declaration they resolve to); the code generator
consumes the decorated tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic.types import Type


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)


# --- expressions -----------------------------------------------------------


@dataclass
class Expr(Node):
    """Base expression; sema sets ``type``."""

    def __post_init__(self) -> None:
        self.type: Type | None = None


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class StringLit(Expr):
    value: bytes = b""
    #: Label assigned by codegen when the literal is materialised.
    label: str | None = None


@dataclass
class Ident(Expr):
    name: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        #: Set by sema: the VarDecl / Param / GlobalVar / FuncDef.
        self.binding = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    target: Expr = None
    value: Expr = None


@dataclass
class Call(Expr):
    callee: Expr = None
    args: list[Expr] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        #: Set by sema: 'direct', 'indirect', or 'builtin'.
        self.mode: str = "direct"
        #: For builtin calls: the builtin descriptor.
        self.builtin = None


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? then : otherwise``."""

    condition: Expr = None
    then: Expr = None
    otherwise: Expr = None


@dataclass
class PostOp(Expr):
    """Postfix ``target++`` / ``target--`` (value is the *old* one)."""

    op: str = "++"
    target: Expr = None


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Deref(Expr):
    operand: Expr = None


@dataclass
class AddrOf(Expr):
    operand: Expr = None


# --- statements ------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    """A local variable declaration (with optional initialiser)."""

    name: str = ""
    var_type: Type = None
    init: Expr | None = None

    def __post_init__(self) -> None:
        #: Frame offset relative to BP, set by codegen.
        self.offset: int | None = None


@dataclass
class If(Stmt):
    condition: Expr = None
    then_branch: Stmt = None
    else_branch: Stmt | None = None


@dataclass
class While(Stmt):
    condition: Expr = None
    body: Stmt = None


@dataclass
class DoWhile(Stmt):
    body: Stmt = None
    condition: Expr = None


@dataclass
class For(Stmt):
    init: Stmt | None = None
    condition: Expr | None = None
    step: Expr | None = None
    body: Stmt = None


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --- top level -------------------------------------------------------------


@dataclass
class Param(Node):
    name: str = ""
    var_type: Type = None

    def __post_init__(self) -> None:
        #: Frame offset relative to BP (positive), set by codegen.
        self.offset: int | None = None


@dataclass
class FuncDef(Node):
    name: str = ""
    return_type: Type = None
    params: list[Param] = field(default_factory=list)
    body: Block = None
    static: bool = False

    def __post_init__(self) -> None:
        from repro.minic.types import FuncType

        self.func_type = FuncType(
            self.return_type, tuple(p.var_type for p in self.params)
        )


@dataclass
class GlobalVar(Node):
    name: str = ""
    var_type: Type = None
    #: Constant initialiser: int, bytes (string), or list[int].
    init: object = None
    static: bool = False


@dataclass
class Program(Node):
    items: list[Node] = field(default_factory=list)

    @property
    def functions(self) -> list[FuncDef]:
        return [item for item in self.items if isinstance(item, FuncDef)]

    @property
    def globals(self) -> list[GlobalVar]:
        return [item for item in self.items if isinstance(item, GlobalVar)]
