"""MinC: the C-subset compiler used to build the paper's programs."""

from repro.minic.codegen import (
    CompileOptions,
    PRIVATE_STACK_SIZE,
    RED_ZONE_SIZE,
    SECURITY_ABORT_EXIT_CODE,
)
from repro.minic.compiler import compile_source, compile_to_asm, options_from_mitigations
from repro.minic.parser import parse
from repro.minic.sema import analyze

__all__ = [
    "CompileOptions",
    "PRIVATE_STACK_SIZE",
    "RED_ZONE_SIZE",
    "SECURITY_ABORT_EXIT_CODE",
    "compile_source",
    "compile_to_asm",
    "options_from_mitigations",
    "parse",
    "analyze",
]
