"""MinC code generator: decorated AST to VN32 assembly text.

The generated code follows the cdecl-like convention of Figure 1 in
the paper, which is exactly what the attacks exploit:

* arguments pushed right-to-left by the caller, caller cleans up;
* ``call`` pushes the return address; the callee saves the caller's
  base pointer and sets its own (``push bp; mov bp, sp``);
* locals live *below* the base pointer, the saved base pointer and
  return address live *above* the locals -- so overflowing a local
  buffer upward reaches first the other locals, then (the canary,
  then) the saved base pointer, then the return address;
* the return value travels in ``r0``.

Mitigation passes (all off by default):

* ``stack_canaries`` -- a random word (loaded from the platform canary
  cell) is pushed between the locals and the saved registers and
  checked in the epilogue (Section III-C1, StackGuard [9]);
* ``bounds_checks`` -- safe-language mode: ``chk`` instructions guard
  every array index, and ``read``/``write`` lengths are clamped to the
  static buffer size (Section III-C2);
* ``asan`` -- 8-byte red zones around every local array, poisoned on
  entry and unpoisoned on exit (AddressSanitizer-style testing
  checks [16]).

Protected-module passes (Section IV-B):

* ``protected`` -- the object requests PMA loading; every non-static
  function becomes a hardware entry point;
* ``secure`` (or the individual flags) -- the *secure compilation*
  scheme of Agten/Patrignani et al. [30][31]: entry stubs that switch
  to a module-private stack, outcall stubs that switch back and
  re-enter through a dedicated entry point, function-pointer checks
  that refuse targets inside the module, register scrubbing on exit,
  and a reentrancy guard.  Compiling with ``protected=True`` but
  ``secure=False`` reproduces the *insecure* compilation that the
  Figure 4 attack defeats.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.machine import syscalls
from repro.minic import ast
from repro.minic.types import (
    ArrayType,
    CharType,
    FuncType,
    PointerType,
    decay,
    element_size,
    sizeof,
    storage_size,
)

#: Exit code used by compiler-inserted security aborts (e.g. a
#: rejected function pointer).  Chosen to be recognisable in results.
SECURITY_ABORT_EXIT_CODE = 102

#: Size of the module-private stack in secure PMA mode.
PRIVATE_STACK_SIZE = 2048

#: Red-zone size (bytes) on each side of a local array in ASan mode.
RED_ZONE_SIZE = 8


def type_tag(func_type) -> int:
    """A stable 1..255 tag for a function type (typed-CFI classes).

    Functions with the same signature share a tag -- typed CFI cannot
    distinguish them, which is exactly its residual attack surface.
    """
    import zlib

    return (zlib.crc32(str(func_type).encode()) % 255) + 1


@dataclass(frozen=True)
class CompileOptions:
    """Per-module compilation switches."""

    stack_canaries: bool = False
    bounds_checks: bool = False
    asan: bool = False
    #: Run the peephole optimizer over the generated assembly.
    optimize: bool = False
    #: Emit typed-CFI landing pads (``land <type-tag>``) at function
    #: entries and expected-tag setup (r7) at indirect call sites.
    cfi_landing_pads: bool = False
    #: Request protected-module loading (Section IV-A).
    protected: bool = False
    #: Request kernel-privileged loading (machine-code attacker).
    kernel: bool = False
    #: Secure-compilation hardening, individually toggleable for the
    #: ablation experiments.  ``secure()`` turns them all on.
    pma_pointer_checks: bool = False
    pma_private_stack: bool = False
    pma_scrub_registers: bool = False
    pma_reentrancy_guard: bool = False

    @staticmethod
    def secure_module() -> "CompileOptions":
        """The full secure-compilation posture for a protected module."""
        return CompileOptions(
            protected=True,
            pma_pointer_checks=True,
            pma_private_stack=True,
            pma_scrub_registers=True,
            pma_reentrancy_guard=True,
        )

    @property
    def any_pma_hardening(self) -> bool:
        return (
            self.pma_pointer_checks
            or self.pma_private_stack
            or self.pma_scrub_registers
            or self.pma_reentrancy_guard
        )


@dataclass
class _FrameInfo:
    """Computed stack-frame layout for one function."""

    frame_size: int = 0
    #: (offset, size) pairs to poison in ASan mode.
    red_zones: list[tuple[int, int]] = field(default_factory=list)


class CodeGenerator:
    """Generates assembly for one analysed MinC translation unit."""

    def __init__(self, program: ast.Program, module_name: str,
                 options: CompileOptions | None = None):
        self.program = program
        self.module_name = module_name
        self.options = options or CompileOptions()
        self.lines: list[str] = []
        self.strings: list[tuple[str, bytes]] = []
        self._label_counter = 0
        self._break_labels: list[str] = []
        self._continue_labels: list[str] = []
        self.current_function: ast.FuncDef | None = None
        self._defined_functions = {
            f.name for f in program.functions if f.body is not None
        }
        self._uses_outcalls = False
        #: Per-function frame layout, ``name -> ((local, bp_offset,
        #: size), ...)``, recorded as frames are laid out.  Travels on
        #: the object file (``ObjectFile.frame_info``) as debug
        #: metadata for the invariant monitors' object-bounds checks.
        self.frame_tables: dict[str, tuple] = {}

    # -- helpers ------------------------------------------------------------

    def emit(self, text: str) -> None:
        self.lines.append(f"    {text}")

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def emit_raw(self, text: str) -> None:
        self.lines.append(text)

    def new_label(self, stem: str) -> str:
        self._label_counter += 1
        return f".L{stem}_{self._label_counter}"

    def string_label(self, value: bytes) -> str:
        for label, existing in self.strings:
            if existing == value:
                return label
        label = f".Lstr_{len(self.strings)}"
        self.strings.append((label, value))
        return label

    @property
    def _secure_stack(self) -> bool:
        return self.options.protected and self.options.pma_private_stack

    def _is_entry_function(self, func: ast.FuncDef) -> bool:
        return self.options.protected and not func.static

    # -- top level -------------------------------------------------------------

    def generate(self) -> str:
        """Produce the complete assembly text for this module."""
        self.emit_raw(f"; module {self.module_name} (MinC)")
        self.emit_raw(".text")
        for func in self.program.functions:
            if func.body is None:
                continue  # prototype: resolved at link time
            self.gen_function(func)
        if self._secure_stack and self._uses_outcalls:
            self.gen_reentry_stub()
        self.emit_raw(".data")
        for var in self.program.globals:
            self.gen_global(var)
        for label, value in self.strings:
            ascii_bytes = ", ".join(str(b) for b in value)
            self.emit_label(label)
            self.emit(f".byte {ascii_bytes}")
        if self.options.protected and self.options.any_pma_hardening:
            self.gen_module_runtime_data()
        # Exports and module markers.
        for func in self.program.functions:
            if func.body is None or func.static:
                continue
            if self.options.protected:
                self.emit_raw(f".entry {func.name}")
            else:
                self.emit_raw(f".global {func.name}")
        if self._secure_stack and self._uses_outcalls:
            self.emit_raw(f".entry __reentry_{self.module_name}")
        for var in self.program.globals:
            if not var.static and not self.options.protected:
                self.emit_raw(f".global {var.name}")
        if self.options.protected:
            self.emit_raw(".protected")
        if self.options.kernel:
            self.emit_raw(".kernel")
        return "\n".join(self.lines) + "\n"

    def gen_global(self, var: ast.GlobalVar) -> None:
        self.emit_raw(".align 4")
        self.emit_label(var.name)
        var_type = var.var_type
        init = var.init
        if isinstance(var_type, ArrayType):
            total = sizeof(var_type)
            if isinstance(init, bytes):
                data = ", ".join(str(b) for b in init)
                self.emit(f".byte {data}")
                if total > len(init):
                    self.emit(f".space {total - len(init)}")
            elif isinstance(init, list):
                words = ", ".join(str(v) for v in init)
                self.emit(f".word {words}")
                remaining = total - 4 * len(init)
                if remaining > 0:
                    self.emit(f".space {remaining}")
            else:
                self.emit(f".space {total}")
        else:
            value = init if isinstance(init, int) else 0
            if isinstance(var_type, CharType):
                self.emit(f".byte {value & 0xFF}")
                self.emit(".space 3")
            else:
                self.emit(f".word {value}")

    def gen_module_runtime_data(self) -> None:
        """Private stack and control cells for the secure-PMA runtime."""
        self.emit_raw(".align 4")
        if self.options.pma_private_stack:
            self.emit_label("__priv_stack_base")
            self.emit(f".space {PRIVATE_STACK_SIZE}")
            self.emit_label("__priv_stack_top")
            self.emit_label("__saved_sp")
            self.emit(".word 0")
            self.emit_label("__priv_sp")
            self.emit(".word 0")
            self.emit_label("__cont")
            self.emit(".word 0")
        if self.options.pma_reentrancy_guard:
            self.emit_label("__busy")
            self.emit(".word 0")

    # -- frame layout ------------------------------------------------------------

    def _collect_locals(self, stmt: ast.Stmt, out: list[ast.VarDecl]) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self._collect_locals(child, out)
        elif isinstance(stmt, ast.VarDecl):
            out.append(stmt)
        elif isinstance(stmt, ast.If):
            self._collect_locals(stmt.then_branch, out)
            if stmt.else_branch is not None:
                self._collect_locals(stmt.else_branch, out)
        elif isinstance(stmt, ast.While):
            self._collect_locals(stmt.body, out)
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._collect_locals(stmt.init, out)
            self._collect_locals(stmt.body, out)

    def _layout_frame(self, func: ast.FuncDef) -> _FrameInfo:
        """Assign BP-relative offsets to params and locals.

        Locals are placed in declaration order from just below the
        (canary and) saved BP downward, so a buffer declared *after* a
        scalar sits below it and overflows into it -- the layout the
        data-only attack of Section III-B relies on.
        """
        info = _FrameInfo()
        for position, param in enumerate(func.params):
            param.offset = 8 + 4 * position
        cursor = 4 if self.options.stack_canaries else 0
        locals_: list[ast.VarDecl] = []
        self._collect_locals(func.body, locals_)
        for decl in locals_:
            is_array = isinstance(decl.var_type, ArrayType)
            if self.options.asan and is_array:
                cursor += RED_ZONE_SIZE
                info.red_zones.append((-cursor, RED_ZONE_SIZE))
            cursor += storage_size(decl.var_type)
            decl.offset = -cursor
            if self.options.asan and is_array:
                cursor += RED_ZONE_SIZE
                info.red_zones.append((-cursor, RED_ZONE_SIZE))
        info.frame_size = cursor - (4 if self.options.stack_canaries else 0)
        self.frame_tables[func.name] = tuple(
            (decl.name, decl.offset, storage_size(decl.var_type))
            for decl in locals_
        )
        return info

    # -- functions -----------------------------------------------------------------

    def gen_function(self, func: ast.FuncDef) -> None:
        self.current_function = func
        info = self._layout_frame(func)
        self.emit_raw(f"; {func.func_type} {func.name}")
        self.emit_raw(".align 4")  # zero padding decodes as nop
        self.emit_label(func.name)
        if self.options.cfi_landing_pads:
            self.emit(f"land {type_tag(func.func_type)}   ; typed-CFI pad")
        is_entry = self._is_entry_function(func)
        if is_entry and self.options.pma_reentrancy_guard:
            self._gen_busy_check_and_set()
        if is_entry and self.options.pma_private_stack:
            self._gen_entry_stack_switch(func)
        self.emit("push bp")
        self.emit("mov bp, sp")
        if self.options.stack_canaries:
            self.emit("mov r1, __canary")
            self.emit("load r1, [r1]")
            self.emit("push r1            ; canary at [bp-4]")
        if info.frame_size > 0:
            self.emit(f"sub sp, {info.frame_size}")
        for offset, size in info.red_zones:
            self._emit_zone_syscall(offset, size, syscalls.SYS_POISON)
        self.gen_stmt(func.body)
        # Fall off the end: return 0 (undefined in C; deterministic here).
        self.emit("mov r0, 0")
        self.emit_label(f".Lret_{func.name}")
        if info.red_zones:
            self.emit("push r0            ; preserve return value")
            for offset, size in info.red_zones:
                self._emit_zone_syscall(offset, size, syscalls.SYS_UNPOISON)
            self.emit("pop r0")
        if self.options.stack_canaries:
            ok_label = self.new_label("canary_ok")
            self.emit("load r1, [bp-4]")
            self.emit("mov r2, __canary")
            self.emit("load r2, [r2]")
            self.emit("cmp r1, r2")
            self.emit(f"jz {ok_label}")
            self.emit(f"sys {syscalls.SYS_CANARY_FAIL}")
            self.emit_label(ok_label)
        self.emit("mov sp, bp")
        self.emit("pop bp")
        if is_entry and self.options.pma_private_stack:
            self.emit("mov r1, __saved_sp")
            self.emit("load sp, [r1]       ; back to the caller's stack")
        if is_entry and self.options.pma_reentrancy_guard:
            self.emit("mov r1, __busy")
            self.emit("mov r2, 0")
            self.emit("store [r1], r2      ; clear reentrancy guard")
        if is_entry and self.options.pma_scrub_registers:
            for reg in range(1, 8):
                self.emit(f"mov r{reg}, 0")
        self.emit("ret")
        self.current_function = None

    def _emit_zone_syscall(self, offset: int, size: int, number: int) -> None:
        self.emit(f"lea r0, [bp{offset:+#x}]" if offset else "mov r0, bp")
        self.emit(f"mov r1, {size}")
        self.emit(f"sys {number}")

    def _gen_busy_check_and_set(self) -> None:
        ok_label = self.new_label("not_busy")
        self.emit("mov r1, __busy")
        self.emit("load r1, [r1]")
        self.emit("cmp r1, 0")
        self.emit(f"jz {ok_label}")
        self._gen_security_abort()
        self.emit_label(ok_label)
        self.emit("mov r1, __busy")
        self.emit("mov r2, 1")
        self.emit("store [r1], r2      ; set reentrancy guard")

    def _gen_entry_stack_switch(self, func: ast.FuncDef) -> None:
        """Copy return address + arguments onto the module-private stack.

        The caller's SP is preserved in ``__saved_sp``; the epilogue
        restores it so ``ret`` pops the *original* return address from
        the caller's own stack.
        """
        nargs = len(func.params)
        self.emit("mov r3, sp          ; caller sp (at return address)")
        self.emit("mov r2, __saved_sp")
        self.emit("store [r2], r3")
        self.emit("mov r2, __priv_stack_top")
        for position in range(nargs - 1, -1, -1):
            self.emit(f"load r1, [r3+{4 + 4 * position:#x}]")
            self.emit("sub r2, 4")
            self.emit("store [r2], r1")
        self.emit("load r1, [r3]       ; copy return address (placeholder)")
        self.emit("sub r2, 4")
        self.emit("store [r2], r1")
        self.emit("mov sp, r2          ; switch to the private stack")

    def _gen_security_abort(self) -> None:
        self.emit(f"mov r0, {SECURITY_ABORT_EXIT_CODE}")
        self.emit(f"sys {syscalls.SYS_EXIT}  ; security abort")

    def gen_reentry_stub(self) -> None:
        """The dedicated entry point through which outcalls return."""
        name = f"__reentry_{self.module_name}"
        self.emit_raw("; outcall return trampoline (hardware entry point)")
        self.emit_label(name)
        if self.options.pma_reentrancy_guard:
            ok_label = self.new_label("reentry_ok")
            self.emit("mov r1, __busy")
            self.emit("load r1, [r1]")
            self.emit("cmp r1, 1")
            self.emit(f"jz {ok_label}")
            self._gen_security_abort()
            self.emit_label(ok_label)
        self.emit("mov r2, __priv_sp")
        self.emit("load sp, [r2]       ; back onto the private stack")
        self.emit("mov r2, __cont")
        self.emit("load r1, [r2]")
        self.emit("jmp r1              ; resume the interrupted function")

    # -- statements ------------------------------------------------------------------

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self.gen_stmt(child)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self.gen_rvalue(stmt.init)
                self._store_to_frame(stmt.offset, stmt.var_type)
        elif isinstance(stmt, ast.If):
            else_label = self.new_label("else")
            end_label = self.new_label("endif")
            self.gen_rvalue(stmt.condition)
            self.emit("cmp r0, 0")
            self.emit(f"jz {else_label}")
            self.gen_stmt(stmt.then_branch)
            self.emit(f"jmp {end_label}")
            self.emit_label(else_label)
            if stmt.else_branch is not None:
                self.gen_stmt(stmt.else_branch)
            self.emit_label(end_label)
        elif isinstance(stmt, ast.While):
            top_label = self.new_label("while")
            end_label = self.new_label("endwhile")
            self.emit_label(top_label)
            self.gen_rvalue(stmt.condition)
            self.emit("cmp r0, 0")
            self.emit(f"jz {end_label}")
            self._break_labels.append(end_label)
            self._continue_labels.append(top_label)
            self.gen_stmt(stmt.body)
            self._break_labels.pop()
            self._continue_labels.pop()
            self.emit(f"jmp {top_label}")
            self.emit_label(end_label)
        elif isinstance(stmt, ast.DoWhile):
            top_label = self.new_label("do")
            cond_label = self.new_label("docond")
            end_label = self.new_label("enddo")
            self.emit_label(top_label)
            self._break_labels.append(end_label)
            self._continue_labels.append(cond_label)
            self.gen_stmt(stmt.body)
            self._break_labels.pop()
            self._continue_labels.pop()
            self.emit_label(cond_label)
            self.gen_rvalue(stmt.condition)
            self.emit("cmp r0, 0")
            self.emit(f"jnz {top_label}")
            self.emit_label(end_label)
        elif isinstance(stmt, ast.For):
            top_label = self.new_label("for")
            step_label = self.new_label("forstep")
            end_label = self.new_label("endfor")
            if stmt.init is not None:
                self.gen_stmt(stmt.init)
            self.emit_label(top_label)
            if stmt.condition is not None:
                self.gen_rvalue(stmt.condition)
                self.emit("cmp r0, 0")
                self.emit(f"jz {end_label}")
            self._break_labels.append(end_label)
            self._continue_labels.append(step_label)
            self.gen_stmt(stmt.body)
            self._break_labels.pop()
            self._continue_labels.pop()
            self.emit_label(step_label)
            if stmt.step is not None:
                self.gen_rvalue(stmt.step)
            self.emit(f"jmp {top_label}")
            self.emit_label(end_label)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.gen_rvalue(stmt.value)
            else:
                self.emit("mov r0, 0")
            self.emit(f"jmp .Lret_{self.current_function.name}")
        elif isinstance(stmt, ast.ExprStmt):
            self.gen_rvalue(stmt.expr)
        elif isinstance(stmt, ast.Break):
            self.emit(f"jmp {self._break_labels[-1]}")
        elif isinstance(stmt, ast.Continue):
            self.emit(f"jmp {self._continue_labels[-1]}")
        else:
            raise AssertionError(f"unexpected statement {stmt}")

    def _store_to_frame(self, offset: int, var_type) -> None:
        op = "storeb" if isinstance(var_type, CharType) else "store"
        self.emit(f"lea r1, [bp{offset:+#x}]")
        self.emit(f"{op} [r1], r0")

    # -- expressions: lvalues -----------------------------------------------------------

    def gen_lvalue(self, expr: ast.Expr) -> None:
        """Leave the address of ``expr`` in r0."""
        if isinstance(expr, ast.Ident):
            binding = expr.binding
            if isinstance(binding, (ast.VarDecl, ast.Param)):
                self.emit(f"lea r0, [bp{binding.offset:+#x}]")
            elif isinstance(binding, ast.GlobalVar):
                self.emit(f"mov r0, {binding.name}")
            else:
                raise CompileError(f"not an lvalue: {expr.name}", expr.line)
        elif isinstance(expr, ast.Deref):
            self.gen_rvalue(expr.operand)
        elif isinstance(expr, ast.Index):
            self._gen_index_address(expr)
        else:
            raise CompileError("expression is not an lvalue", expr.line)

    def _gen_index_address(self, expr: ast.Index) -> None:
        base_type = expr.base.type
        self.gen_rvalue(expr.base)  # decayed pointer value
        self.emit("push r0")
        self.gen_rvalue(expr.index)
        if self.options.bounds_checks and isinstance(base_type, ArrayType) \
                and base_type.size is not None:
            self.emit(f"chk r0, {base_type.size}   ; bounds check")
        scale = element_size(decay(base_type))
        if scale == 4:
            self.emit("shl r0, 2")
        elif scale == 2:
            self.emit("shl r0, 1")
        elif scale != 1:
            self.emit(f"mov r1, {scale}")
            self.emit("mul r0, r1")
        self.emit("mov r1, r0")
        self.emit("pop r0")
        self.emit("add r0, r1")

    # -- expressions: rvalues ---------------------------------------------------------------

    def gen_rvalue(self, expr: ast.Expr) -> None:
        """Leave the value of ``expr`` in r0 (clobbers r1, r2)."""
        if isinstance(expr, ast.IntLit):
            self.emit(f"mov r0, {expr.value & 0xFFFFFFFF}")
        elif isinstance(expr, ast.StringLit):
            label = self.string_label(expr.value)
            self.emit(f"mov r0, {label}")
        elif isinstance(expr, ast.Ident):
            self._gen_ident_rvalue(expr)
        elif isinstance(expr, ast.Unary):
            self._gen_unary(expr)
        elif isinstance(expr, ast.Binary):
            self._gen_binary(expr)
        elif isinstance(expr, ast.Assign):
            self._gen_assign(expr)
        elif isinstance(expr, ast.Conditional):
            self._gen_conditional(expr)
        elif isinstance(expr, ast.PostOp):
            self._gen_postop(expr)
        elif isinstance(expr, ast.Call):
            self.gen_call(expr)
        elif isinstance(expr, ast.Index):
            self._gen_index_address(expr)
            self._gen_load_through("r0", expr.type)
        elif isinstance(expr, ast.Deref):
            self.gen_rvalue(expr.operand)
            self._gen_load_through("r0", expr.type)
        elif isinstance(expr, ast.AddrOf):
            operand = expr.operand
            if isinstance(operand, ast.Ident) and isinstance(operand.binding, ast.FuncDef):
                self.emit(f"mov r0, {operand.name}")
            else:
                self.gen_lvalue(operand)
        else:
            raise AssertionError(f"unexpected expression {expr}")

    def _gen_load_through(self, reg: str, value_type) -> None:
        op = "loadb" if isinstance(value_type, CharType) else "load"
        self.emit(f"{op} r0, [{reg}]")

    def _gen_ident_rvalue(self, expr: ast.Ident) -> None:
        binding = expr.binding
        if isinstance(binding, ast.FuncDef):
            self.emit(f"mov r0, {binding.name}")
            return
        var_type = expr.type
        if isinstance(var_type, ArrayType):
            if isinstance(binding, ast.Param):
                # An array-typed parameter is really a pointer (C's
                # parameter adjustment): load the pointer value.
                self.gen_lvalue(expr)
                self._gen_load_through("r0", PointerType(var_type.element))
            else:
                # A true array decays to its address.
                self.gen_lvalue(expr)
            return
        self.gen_lvalue(expr)
        self._gen_load_through("r0", var_type)

    def _gen_unary(self, expr: ast.Unary) -> None:
        self.gen_rvalue(expr.operand)
        if expr.op == "-":
            self.emit("mov r1, r0")
            self.emit("mov r0, 0")
            self.emit("sub r0, r1")
        elif expr.op == "~":
            self.emit("not r0")
        elif expr.op == "!":
            done = self.new_label("notdone")
            self.emit("cmp r0, 0")
            self.emit("mov r0, 1")
            self.emit(f"jz {done}")
            self.emit("mov r0, 0")
            self.emit_label(done)
        else:
            raise AssertionError(f"unexpected unary {expr.op}")

    _COMPARISON_JUMPS = {
        "==": "jz", "!=": "jnz", "<": "jl", ">": "jg", "<=": "jle", ">=": "jge",
    }

    _ARITH_OPS = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
        "&": "and", "|": "or", "^": "xor",
    }

    def _gen_binary(self, expr: ast.Binary) -> None:
        op = expr.op
        if op in ("&&", "||"):
            self._gen_logical(expr)
            return
        left_type = decay(expr.left.type)
        right_type = decay(expr.right.type)
        self.gen_rvalue(expr.left)
        self.emit("push r0")
        self.gen_rvalue(expr.right)
        self.emit("mov r1, r0")
        self.emit("pop r0")
        if op in self._COMPARISON_JUMPS:
            true_label = self.new_label("cmptrue")
            self.emit("cmp r0, r1")
            self.emit("mov r0, 1")
            self.emit(f"{self._COMPARISON_JUMPS[op]} {true_label}")
            self.emit("mov r0, 0")
            self.emit_label(true_label)
            return
        if op in ("<<", ">>"):
            # Variable shifts are rare in our programs; implement via a
            # small loop only when needed -- constant shifts fold here.
            if isinstance(expr.right, ast.IntLit):
                mnemonic = "shl" if op == "<<" else "shr"
                self.emit(f"{mnemonic} r0, {expr.right.value & 31}")
                return
            self._gen_variable_shift(op)
            return
        if op in ("+", "-"):
            if isinstance(left_type, PointerType) and not isinstance(
                right_type, PointerType
            ):
                self._scale_register("r1", sizeof(left_type.pointee))
            elif op == "+" and isinstance(right_type, PointerType):
                self._scale_register("r0", sizeof(right_type.pointee))
        self.emit(f"{self._ARITH_OPS[op]} r0, r1")

    def _scale_register(self, reg: str, scale: int) -> None:
        if scale == 1:
            return
        if scale in (2, 4, 8):
            self.emit(f"shl {reg}, {scale.bit_length() - 1}")
        else:
            self.emit(f"mov r2, {scale}")
            self.emit(f"mul {reg}, r2")

    def _gen_variable_shift(self, op: str) -> None:
        """r0 = r0 shifted by r1, via a loop (r1 masked to 31)."""
        mnemonic = "shl" if op == "<<" else "shr"
        loop = self.new_label("shift")
        done = self.new_label("shiftdone")
        self.emit("mov r2, 31")
        self.emit("and r1, r2")
        self.emit_label(loop)
        self.emit("cmp r1, 0")
        self.emit(f"jz {done}")
        self.emit(f"{mnemonic} r0, 1")
        self.emit("sub r1, 1")
        self.emit(f"jmp {loop}")
        self.emit_label(done)

    def _gen_logical(self, expr: ast.Binary) -> None:
        false_label = self.new_label("false")
        true_label = self.new_label("true")
        end_label = self.new_label("endlogic")
        if expr.op == "&&":
            self.gen_rvalue(expr.left)
            self.emit("cmp r0, 0")
            self.emit(f"jz {false_label}")
            self.gen_rvalue(expr.right)
            self.emit("cmp r0, 0")
            self.emit(f"jz {false_label}")
            self.emit("mov r0, 1")
            self.emit(f"jmp {end_label}")
            self.emit_label(false_label)
            self.emit("mov r0, 0")
            self.emit_label(end_label)
        else:
            self.gen_rvalue(expr.left)
            self.emit("cmp r0, 0")
            self.emit(f"jnz {true_label}")
            self.gen_rvalue(expr.right)
            self.emit("cmp r0, 0")
            self.emit(f"jnz {true_label}")
            self.emit("mov r0, 0")
            self.emit(f"jmp {end_label}")
            self.emit_label(true_label)
            self.emit("mov r0, 1")
            self.emit_label(end_label)

    def _gen_conditional(self, expr: ast.Conditional) -> None:
        else_label = self.new_label("ternelse")
        end_label = self.new_label("ternend")
        self.gen_rvalue(expr.condition)
        self.emit("cmp r0, 0")
        self.emit(f"jz {else_label}")
        self.gen_rvalue(expr.then)
        self.emit(f"jmp {end_label}")
        self.emit_label(else_label)
        self.gen_rvalue(expr.otherwise)
        self.emit_label(end_label)

    def _gen_postop(self, expr: ast.PostOp) -> None:
        """``x++``/``x--``: r0 ends with the *old* value."""
        target_type = expr.target.type
        step = 1
        if isinstance(decay(target_type), PointerType) and not isinstance(
            target_type, ArrayType
        ):
            step = sizeof(decay(target_type).pointee)
        width_op = "storeb" if isinstance(target_type, CharType) else "store"
        load_op = "loadb" if isinstance(target_type, CharType) else "load"
        self.gen_lvalue(expr.target)
        self.emit("mov r2, r0            ; address")
        self.emit(f"{load_op} r0, [r2]   ; old value")
        self.emit("mov r1, r0")
        mnemonic = "add" if expr.op == "++" else "sub"
        self.emit(f"{mnemonic} r1, {step}")
        self.emit(f"{width_op} [r2], r1")

    def _gen_assign(self, expr: ast.Assign) -> None:
        self.gen_lvalue(expr.target)
        self.emit("push r0")
        self.gen_rvalue(expr.value)
        self.emit("pop r1")
        op = "storeb" if isinstance(expr.target.type, CharType) else "store"
        self.emit(f"{op} [r1], r0")

    # -- calls ----------------------------------------------------------------------------

    def gen_call(self, expr: ast.Call) -> None:
        if expr.mode == "builtin":
            self._gen_builtin_call(expr)
            return
        if expr.mode == "direct":
            callee: ast.Ident = expr.callee
            target = callee.binding
            is_internal = (
                isinstance(target, ast.FuncDef)
                and target.body is not None
                and target.name in self._defined_functions
            )
            if self._secure_stack and not is_internal:
                self._gen_outcall(expr, direct_name=target.name)
                return
            for arg in reversed(expr.args):
                self.gen_rvalue(arg)
                self.emit("push r0")
            self.emit(f"call {target.name}")
            if expr.args:
                self.emit(f"add sp, {4 * len(expr.args)}")
            return
        # Indirect call through a function pointer.
        if self._secure_stack:
            self._gen_outcall(expr, direct_name=None)
            return
        for arg in reversed(expr.args):
            self.gen_rvalue(arg)
            self.emit("push r0")
        self.gen_rvalue(expr.callee)
        if self.options.protected and self.options.pma_pointer_checks:
            self._gen_pointer_check()
        if self.options.cfi_landing_pads:
            self._gen_expected_tag(expr)
        self.emit("call r0")
        if expr.args:
            self.emit(f"add sp, {4 * len(expr.args)}")

    def _gen_expected_tag(self, expr: ast.Call) -> None:
        """Typed CFI: place the callee's static type tag in r7."""
        callee_type = decay(expr.callee.type)
        if isinstance(callee_type, PointerType):
            callee_type = callee_type.pointee
        self.emit(f"mov r7, {type_tag(callee_type)}   ; expected type tag")

    def _gen_pointer_check(self) -> None:
        """Refuse function pointers that point *into* this module.

        This is the defensive check Section IV-B motivates with the
        Figure 4 attack: an in-module target would let outside code
        execute module code from the middle.
        """
        ok_label = self.new_label("fp_ok")
        self.emit("cmp r0, __module_start")
        self.emit(f"jb {ok_label}")
        self.emit("cmp r0, __module_end")
        self.emit(f"jae {ok_label}")
        self._gen_security_abort()
        self.emit_label(ok_label)

    def _gen_builtin_call(self, expr: ast.Call) -> None:
        builtin = expr.builtin
        for arg in expr.args:
            self.gen_rvalue(arg)
            self.emit("push r0")
        for position in range(len(expr.args) - 1, -1, -1):
            self.emit(f"pop r{position}")
        clamp = getattr(expr, "clamp_size", None)
        if clamp is not None and builtin.length_arg is not None:
            self.emit(
                f"chk r{builtin.length_arg}, {clamp + 1}   ; clamp to buffer size"
            )
        self.emit(f"sys {builtin.syscall}")

    def _gen_outcall(self, expr: ast.Call, direct_name: str | None) -> None:
        """Secure-PMA call to code outside the module.

        Switches back to the caller's stack (outside code may not
        touch the private stack), pushes a *dedicated entry point* as
        the return address, and resumes at a recorded continuation when
        the callee returns through it.
        """
        self._uses_outcalls = True
        nargs = len(expr.args)
        cont_label = self.new_label("cont")
        # Evaluate args onto the private stack (right-to-left), so the
        # copies land in declaration order at [sp], [sp+4], ...
        for arg in reversed(expr.args):
            self.gen_rvalue(arg)
            self.emit("push r0")
        if direct_name is not None:
            self.emit(f"mov r0, {direct_name}")
        else:
            self.gen_rvalue(expr.callee)
        if self.options.pma_pointer_checks:
            self._gen_pointer_check()
        self.emit("mov r4, sp          ; private-stack arg block")
        self.emit(f"mov r1, {cont_label}")
        self.emit("mov r2, __cont")
        self.emit("store [r2], r1")
        self.emit("mov r2, __priv_sp")
        self.emit("store [r2], sp")
        self.emit("mov r2, __saved_sp")
        self.emit("load sp, [r2]       ; switch to the outside stack")
        for position in range(nargs - 1, -1, -1):
            self.emit(f"load r1, [r4+{4 * position:#x}]")
            self.emit("push r1")
        self.emit(f"mov r1, __reentry_{self.module_name}")
        self.emit("push r1             ; callee returns through the entry point")
        self.emit("jmp r0")
        self.emit_label(cont_label)
        if nargs:
            self.emit(f"add sp, {4 * nargs}  ; drop private arg copies")


def generate(program: ast.Program, module_name: str,
             options: CompileOptions | None = None) -> str:
    """Generate assembly text for an analysed program."""
    return CodeGenerator(program, module_name, options).generate()
