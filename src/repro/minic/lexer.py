"""Lexer for MinC, the C subset used throughout the paper's examples.

MinC keeps exactly the C features the paper's programs and attacks
need: ``int``/``char``/``void``, pointers, arrays, function pointers,
``static`` globals, the usual control flow, and string/char literals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CompileError

KEYWORDS = frozenset(
    {"int", "char", "void", "if", "else", "while", "do", "for", "return",
     "static", "break", "continue"}
)

#: Multi-character operators, longest first so maximal munch works.
_MULTI_OPS = ("<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
              "++", "--", "+=", "-=", "*=", "/=", "%=")
_SINGLE_OPS = "+-*/%<>=!&|^~(){}[];,?:"

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0",
    "\\": "\\", '"': '"', "'": "'",
}


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``ident``, ``int``, ``string``, ``kw:<keyword>``, or
    the operator text itself.  ``value`` carries the payload for
    identifier/literal tokens.
    """

    kind: str
    value: object
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.value!r}, {self.line}:{self.col})"


def _lex_escape(text: str, i: int, line: int, col: int) -> tuple[str, int]:
    """Process a backslash escape starting at ``text[i] == '\\\\'``."""
    if i + 1 >= len(text):
        raise CompileError("dangling escape", line, col)
    esc = text[i + 1]
    if esc == "x":
        if i + 3 >= len(text):
            raise CompileError("truncated hex escape", line, col)
        digits = text[i + 2 : i + 4]
        try:
            value = int(digits, 16)
        except ValueError:
            raise CompileError(f"bad hex escape \\x{digits}", line, col)
        return chr(value), i + 4
    if esc in _ESCAPES:
        return _ESCAPES[esc], i + 2
    raise CompileError(f"unknown escape \\{esc}", line, col)


def tokenize(source: str) -> list[Token]:
    """Tokenise MinC source; raises :class:`CompileError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int = 1) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        char = source[i]
        if char in " \t\r\n":
            advance()
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance()
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise CompileError("unterminated block comment", line, col)
            advance(end + 2 - i)
            continue
        start_line, start_col = line, col
        # Explicit ASCII classes: Unicode "digits"/"letters" (e.g. a
        # superscript two) pass str.isdigit()/isalpha() but are not
        # valid MinC tokens.
        if char in "0123456789":
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                if j == i + 2:
                    raise CompileError(
                        "hex literal needs at least one digit",
                        start_line, start_col,
                    )
                value = int(source[i:j], 16)
            else:
                while j < n and source[j] in "0123456789":
                    j += 1
                value = int(source[i:j])
            tokens.append(Token("int", value, start_line, start_col))
            advance(j - i)
            continue
        if ("a" <= char <= "z") or ("A" <= char <= "Z") or char == "_":
            j = i
            while j < n and (
                ("a" <= source[j] <= "z") or ("A" <= source[j] <= "Z")
                or source[j] in "0123456789_"
            ):
                j += 1
            word = source[i:j]
            if word in KEYWORDS:
                tokens.append(Token(f"kw:{word}", word, start_line, start_col))
            else:
                tokens.append(Token("ident", word, start_line, start_col))
            advance(j - i)
            continue
        if char == '"':
            j = i + 1
            chunks: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    chunk, j = _lex_escape(source, j, start_line, start_col)
                    chunks.append(chunk)
                else:
                    # MinC strings are guest byte arrays; a code point
                    # above 0xFF has no byte encoding (and would leak a
                    # UnicodeEncodeError out of the parser's latin-1
                    # encode instead of a diagnostic).
                    if ord(source[j]) > 0xFF:
                        raise CompileError(
                            f"non-byte character {source[j]!r} in string "
                            "literal", start_line, start_col,
                        )
                    chunks.append(source[j])
                    j += 1
            if j >= n:
                raise CompileError("unterminated string literal", start_line, start_col)
            tokens.append(Token("string", "".join(chunks), start_line, start_col))
            advance(j + 1 - i)
            continue
        if char == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                chunk, j = _lex_escape(source, j, start_line, start_col)
            elif j < n:
                chunk = source[j]
                j += 1
            else:
                raise CompileError("unterminated char literal", start_line, start_col)
            if j >= n or source[j] != "'":
                raise CompileError("unterminated char literal", start_line, start_col)
            if ord(chunk) > 0xFF:
                raise CompileError(
                    f"non-byte character {chunk!r} in char literal",
                    start_line, start_col,
                )
            tokens.append(Token("int", ord(chunk), start_line, start_col))
            advance(j + 1 - i)
            continue
        matched = False
        for op in _MULTI_OPS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, start_line, start_col))
                advance(len(op))
                matched = True
                break
        if matched:
            continue
        if char in _SINGLE_OPS:
            tokens.append(Token(char, char, start_line, start_col))
            advance()
            continue
        raise CompileError(f"unexpected character {char!r}", line, col)
    tokens.append(Token("eof", None, line, col))
    return tokens
