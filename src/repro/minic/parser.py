"""Recursive-descent parser for MinC.

Grammar (C subset)::

    program     := (func_def | global_var)*
    func_def    := ['static'] type declarator '(' params ')' block
    global_var  := ['static'] type declarator ['=' const_init] ';'
    declarator  := '*'* IDENT ['[' INT? ']']
                 | '(' '*' IDENT ')' '(' type_list? ')'      ; function ptr
    params      := 'void' | param (',' param)*
    stmt        := block | if | while | for | return | break | continue
                 | var_decl | expr ';'
    expr        := assignment with the usual C precedence levels

Only constant initialisers are allowed at file scope (ints, strings,
brace lists), as in the paper's ``static int PIN = 1234;`` example.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.minic import ast
from repro.minic.lexer import Token, tokenize
from repro.minic.types import (
    ArrayType,
    CHAR,
    FuncType,
    INT,
    PointerType,
    Type,
    VOID,
)

_TYPE_KEYWORDS = {"kw:int": INT, "kw:char": CHAR, "kw:void": VOID}


class Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def at(self, kind: str, ahead: int = 0) -> bool:
        return self.peek(ahead).kind == kind

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str) -> Token:
        token = self.peek()
        if token.kind != kind:
            raise CompileError(
                f"expected {kind!r}, found {token.kind!r}", token.line, token.col
            )
        return self.advance()

    def accept(self, kind: str) -> Token | None:
        if self.at(kind):
            return self.advance()
        return None

    def error(self, message: str) -> CompileError:
        token = self.peek()
        return CompileError(message, token.line, token.col)

    # -- types ----------------------------------------------------------------

    def at_type(self, ahead: int = 0) -> bool:
        return self.peek(ahead).kind in _TYPE_KEYWORDS

    def parse_base_type(self) -> Type:
        token = self.advance()
        base = _TYPE_KEYWORDS.get(token.kind)
        if base is None:
            raise CompileError(f"expected a type, found {token.kind!r}",
                               token.line, token.col)
        return base

    def parse_pointer_suffix(self, base: Type) -> Type:
        while self.accept("*"):
            base = PointerType(base)
        return base

    def parse_abstract_type(self) -> Type:
        """A type with no name, as inside function-pointer param lists."""
        base = self.parse_pointer_suffix(self.parse_base_type())
        if self.accept("["):
            size = None
            if self.at("int"):
                size = self.advance().value
            self.expect("]")
            base = ArrayType(base, size)
        return base

    def parse_declarator(self, base: Type) -> tuple[str, Type]:
        """Parse ``'*'* name ['[' N ']']`` or ``(*name)(types)``.

        Returns ``(name, full_type)``.
        """
        base = self.parse_pointer_suffix(base)
        if self.at("(") and self.at("*", 1):
            # Function pointer: base (*name)(param types)
            self.expect("(")
            self.expect("*")
            name = self.expect("ident").value
            self.expect(")")
            self.expect("(")
            params: list[Type] = []
            if not self.at(")"):
                if self.at("kw:void") and self.at(")", 1):
                    self.advance()
                else:
                    params.append(self.parse_abstract_type())
                    self._skip_param_name()
                    while self.accept(","):
                        params.append(self.parse_abstract_type())
                        self._skip_param_name()
            self.expect(")")
            return name, FuncType(base, tuple(params))
        name = self.expect("ident").value
        if self.accept("["):
            size = None
            if self.at("int"):
                size = self.advance().value
            self.expect("]")
            return name, ArrayType(base, size)
        return name, base

    def _skip_param_name(self) -> None:
        """Inside abstract param lists, a name may appear; ignore it."""
        if self.at("ident"):
            self.advance()

    # -- top level ----------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        items: list[ast.Node] = []
        while not self.at("eof"):
            items.append(self.parse_top_level())
        return ast.Program(items=items)

    def parse_top_level(self) -> ast.Node:
        start = self.peek()
        static = bool(self.accept("kw:static"))
        base = self.parse_base_type()
        name, full_type = self.parse_declarator(base)
        if self.at("(") and not isinstance(full_type, (ArrayType,)):
            return self.parse_func_def(name, full_type, static, start.line)
        init = None
        if self.accept("="):
            init = self.parse_const_init()
        self.expect(";")
        if full_type is VOID:
            raise CompileError(f"variable {name!r} has void type", start.line)
        return ast.GlobalVar(name=name, var_type=full_type, init=init,
                             static=static, line=start.line)

    def parse_const_init(self) -> object:
        token = self.peek()
        if token.kind == "string":
            self.advance()
            return token.value.encode("latin-1") + b"\x00"
        if token.kind == "{":
            self.advance()
            values: list[int] = []
            while not self.at("}"):
                values.append(self._parse_const_int())
                if not self.accept(","):
                    break
            self.expect("}")
            return values
        return self._parse_const_int()

    def _parse_const_int(self) -> int:
        negative = bool(self.accept("-"))
        token = self.expect("int")
        return -token.value if negative else token.value

    def parse_func_def(
        self, name: str, return_type: Type, static: bool, line: int
    ) -> ast.FuncDef:
        self.expect("(")
        params: list[ast.Param] = []
        if not self.at(")"):
            if self.at("kw:void") and self.at(")", 1):
                self.advance()
            else:
                params.append(self.parse_param())
                while self.accept(","):
                    params.append(self.parse_param())
        self.expect(")")
        if self.accept(";"):
            # Prototype: declares a function defined in another module
            # (or later in this one).
            body = None
        else:
            body = self.parse_block()
        return ast.FuncDef(name=name, return_type=return_type, params=params,
                           body=body, static=static, line=line)

    def parse_param(self) -> ast.Param:
        start = self.peek()
        base = self.parse_base_type()
        name, full_type = self.parse_declarator(base)
        return ast.Param(name=name, var_type=full_type, line=start.line)

    # -- statements -------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect("{")
        statements: list[ast.Stmt] = []
        while not self.at("}"):
            statements.append(self.parse_stmt())
        self.expect("}")
        return ast.Block(statements=statements, line=start.line)

    def parse_stmt(self) -> ast.Stmt:
        token = self.peek()
        if token.kind == "{":
            return self.parse_block()
        if token.kind == "kw:if":
            return self.parse_if()
        if token.kind == "kw:while":
            return self.parse_while()
        if token.kind == "kw:do":
            return self.parse_do_while()
        if token.kind == "kw:for":
            return self.parse_for()
        if token.kind == "kw:return":
            self.advance()
            value = None if self.at(";") else self.parse_expr()
            self.expect(";")
            return ast.Return(value=value, line=token.line)
        if token.kind == "kw:break":
            self.advance()
            self.expect(";")
            return ast.Break(line=token.line)
        if token.kind == "kw:continue":
            self.advance()
            self.expect(";")
            return ast.Continue(line=token.line)
        if self.at_type():
            return self.parse_var_decl()
        expr = self.parse_expr()
        self.expect(";")
        return ast.ExprStmt(expr=expr, line=token.line)

    def parse_var_decl(self) -> ast.Stmt:
        start = self.peek()
        base = self.parse_base_type()
        name, full_type = self.parse_declarator(base)
        if full_type is VOID:
            raise CompileError(f"variable {name!r} has void type", start.line)
        init = None
        if self.accept("="):
            init = self.parse_assignment()
        self.expect(";")
        return ast.VarDecl(name=name, var_type=full_type, init=init, line=start.line)

    def parse_if(self) -> ast.If:
        start = self.expect("kw:if")
        self.expect("(")
        condition = self.parse_expr()
        self.expect(")")
        then_branch = self.parse_stmt()
        else_branch = None
        if self.accept("kw:else"):
            else_branch = self.parse_stmt()
        return ast.If(condition=condition, then_branch=then_branch,
                      else_branch=else_branch, line=start.line)

    def parse_while(self) -> ast.While:
        start = self.expect("kw:while")
        self.expect("(")
        condition = self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        return ast.While(condition=condition, body=body, line=start.line)

    def parse_do_while(self) -> ast.DoWhile:
        start = self.expect("kw:do")
        body = self.parse_stmt()
        self.expect("kw:while")
        self.expect("(")
        condition = self.parse_expr()
        self.expect(")")
        self.expect(";")
        return ast.DoWhile(body=body, condition=condition, line=start.line)

    def parse_for(self) -> ast.For:
        start = self.expect("kw:for")
        self.expect("(")
        init: ast.Stmt | None = None
        if not self.at(";"):
            if self.at_type():
                init = self.parse_var_decl()
            else:
                expr = self.parse_expr()
                self.expect(";")
                init = ast.ExprStmt(expr=expr, line=start.line)
        else:
            self.expect(";")
        condition = None if self.at(";") else self.parse_expr()
        self.expect(";")
        step = None if self.at(")") else self.parse_expr()
        self.expect(")")
        body = self.parse_stmt()
        return ast.For(init=init, condition=condition, step=step, body=body,
                       line=start.line)

    # -- expressions ----------------------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_assignment()

    _COMPOUND_OPS = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%"}

    def parse_assignment(self) -> ast.Expr:
        left = self.parse_ternary()
        if self.at("="):
            token = self.advance()
            value = self.parse_assignment()
            return ast.Assign(target=left, value=value, line=token.line)
        if self.peek().kind in self._COMPOUND_OPS:
            # a op= b desugars to a = a op b (the lvalue is evaluated
            # twice; MinC lvalues are side-effect-light enough).
            token = self.advance()
            value = self.parse_assignment()
            op = self._COMPOUND_OPS[token.kind]
            return ast.Assign(
                target=left,
                value=ast.Binary(op=op, left=left, right=value, line=token.line),
                line=token.line,
            )
        return left

    def parse_ternary(self) -> ast.Expr:
        condition = self.parse_logical_or()
        if self.accept("?"):
            then = self.parse_assignment()
            self.expect(":")
            otherwise = self.parse_ternary()
            return ast.Conditional(condition=condition, then=then,
                                   otherwise=otherwise, line=condition.line)
        return condition

    def _parse_binary_level(self, ops: tuple[str, ...], next_level) -> ast.Expr:
        left = next_level()
        while self.peek().kind in ops:
            token = self.advance()
            right = next_level()
            left = ast.Binary(op=token.kind, left=left, right=right, line=token.line)
        return left

    def parse_logical_or(self) -> ast.Expr:
        return self._parse_binary_level(("||",), self.parse_logical_and)

    def parse_logical_and(self) -> ast.Expr:
        return self._parse_binary_level(("&&",), self.parse_bit_or)

    def parse_bit_or(self) -> ast.Expr:
        return self._parse_binary_level(("|",), self.parse_bit_xor)

    def parse_bit_xor(self) -> ast.Expr:
        return self._parse_binary_level(("^",), self.parse_bit_and)

    def parse_bit_and(self) -> ast.Expr:
        return self._parse_binary_level(("&",), self.parse_equality)

    def parse_equality(self) -> ast.Expr:
        return self._parse_binary_level(("==", "!="), self.parse_relational)

    def parse_relational(self) -> ast.Expr:
        return self._parse_binary_level(("<", ">", "<=", ">="), self.parse_shift)

    def parse_shift(self) -> ast.Expr:
        return self._parse_binary_level(("<<", ">>"), self.parse_additive)

    def parse_additive(self) -> ast.Expr:
        return self._parse_binary_level(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> ast.Expr:
        return self._parse_binary_level(("*", "/", "%"), self.parse_unary)

    def parse_unary(self) -> ast.Expr:
        token = self.peek()
        if token.kind in ("++", "--"):
            # Prefix increment/decrement desugars to an assignment
            # whose value is the *new* one.
            self.advance()
            target = self.parse_unary()
            op = "+" if token.kind == "++" else "-"
            return ast.Assign(
                target=target,
                value=ast.Binary(op=op, left=target,
                                 right=ast.IntLit(value=1, line=token.line),
                                 line=token.line),
                line=token.line,
            )
        if token.kind in ("-", "!", "~"):
            self.advance()
            return ast.Unary(op=token.kind, operand=self.parse_unary(), line=token.line)
        if token.kind == "*":
            self.advance()
            return ast.Deref(operand=self.parse_unary(), line=token.line)
        if token.kind == "&":
            self.advance()
            return ast.AddrOf(operand=self.parse_unary(), line=token.line)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            token = self.peek()
            if token.kind == "(":
                self.advance()
                args: list[ast.Expr] = []
                if not self.at(")"):
                    args.append(self.parse_assignment())
                    while self.accept(","):
                        args.append(self.parse_assignment())
                self.expect(")")
                expr = ast.Call(callee=expr, args=args, line=token.line)
            elif token.kind == "[":
                self.advance()
                index = self.parse_expr()
                self.expect("]")
                expr = ast.Index(base=expr, index=index, line=token.line)
            elif token.kind in ("++", "--"):
                self.advance()
                expr = ast.PostOp(op=token.kind, target=expr, line=token.line)
            else:
                return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return ast.IntLit(value=token.value, line=token.line)
        if token.kind == "string":
            self.advance()
            return ast.StringLit(value=token.value.encode("latin-1") + b"\x00",
                                 line=token.line)
        if token.kind == "ident":
            self.advance()
            return ast.Ident(name=token.value, line=token.line)
        if token.kind == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        raise self.error(f"unexpected token {token.kind!r} in expression")


def parse(source: str) -> ast.Program:
    """Parse MinC source text into an AST."""
    return Parser(tokenize(source)).parse_program()
