"""The MinC type system.

Deliberately faithful to C's weaknesses: arrays decay to bare pointers
(losing their bounds -- the root of spatial vulnerabilities), pointers
and integers interconvert freely, and nothing tracks lifetimes (the
root of temporal vulnerabilities).  The *safe* compilation mode
(Section III-C2) rejects exactly the constructs that lose bounds or
escape lifetimes; see :mod:`repro.minic.sema`.
"""

from __future__ import annotations

from dataclasses import dataclass


class Type:
    """Base class for MinC types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass(frozen=True)
class IntType(Type):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class CharType(Type):
    def __str__(self) -> str:
        return "char"


@dataclass(frozen=True)
class VoidType(Type):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class PointerType(Type):
    pointee: Type

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class ArrayType(Type):
    element: Type
    #: None for unsized array parameters (``char buf[]``), which carry
    #: no bounds -- the unsafe decay the paper's Section III-A pivots on.
    size: int | None

    def __str__(self) -> str:
        return f"{self.element}[{self.size if self.size is not None else ''}]"


@dataclass(frozen=True)
class FuncType(Type):
    ret: Type
    params: tuple[Type, ...]

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params) or "void"
        return f"{self.ret}(*)({params})"


INT = IntType()
CHAR = CharType()
VOID = VoidType()


def sizeof(type_: Type) -> int:
    """Size in bytes of a value of ``type_``."""
    if isinstance(type_, (IntType, PointerType, FuncType)):
        return 4
    if isinstance(type_, CharType):
        return 1
    if isinstance(type_, ArrayType):
        if type_.size is None:
            raise ValueError("sizeof unsized array")
        return sizeof(type_.element) * type_.size
    raise ValueError(f"sizeof {type_}")


def storage_size(type_: Type) -> int:
    """Stack slot size (4-byte aligned) for a local of ``type_``."""
    return (sizeof(type_) + 3) // 4 * 4


def is_scalar(type_: Type) -> bool:
    """Usable in a condition / as an int-ish value."""
    return isinstance(type_, (IntType, CharType, PointerType, FuncType))


def is_integer(type_: Type) -> bool:
    return isinstance(type_, (IntType, CharType))


def decay(type_: Type) -> Type:
    """Array-to-pointer decay (the bounds-losing conversion)."""
    if isinstance(type_, ArrayType):
        return PointerType(type_.element)
    return type_


def element_size(type_: Type) -> int:
    """Scaling factor for pointer arithmetic / indexing on ``type_``."""
    if isinstance(type_, PointerType):
        return sizeof(type_.pointee)
    if isinstance(type_, ArrayType):
        return sizeof(type_.element)
    raise ValueError(f"not indexable: {type_}")


def assignable(dst: Type, src: Type) -> bool:
    """Is ``src`` assignable to ``dst`` under MinC's (lax) rules?

    Like historical C compilers, MinC permits int<->pointer traffic;
    the unsafety is the point of the exercise.
    """
    src = decay(src)
    dst = decay(dst)
    if isinstance(dst, VoidType) or isinstance(src, VoidType):
        return False
    if is_integer(dst) and is_integer(src):
        return True
    if isinstance(dst, (PointerType, FuncType)) or isinstance(src, (PointerType, FuncType)):
        return is_scalar(dst) and is_scalar(src)
    return False
