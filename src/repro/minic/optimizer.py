"""Peephole optimizer for the MinC code generator's output.

The stack-machine code generator emits extremely regular (and
redundant) sequences; this pass cleans up the worst of them so that
overhead measurements (E5) can be taken against a tighter baseline --
with an unoptimized baseline, per-access checks look artificially
cheap relative to the surrounding boilerplate.

The rewrites are *local* (adjacent instructions within a basic block;
labels and directives are barriers) and rely on one contract of this
code generator: **r1 and r2 are statement-local scratch registers** --
no value in them is ever consumed before being rewritten by the next
statement.  That licenses dropping their stale values in patterns like
``lea r1, [m]; store [m2], r0``.

Patterns:

* ``push rX; pop rY``      ->  ``mov rY, rX`` (or nothing if X == Y)
* ``mov rX, rX``           ->  (nothing)
* ``lea rA, [m]; load rA, [rA]``   ->  ``load rA, [m]``   (same for loadb)
* ``lea r1, [m]; store [r1], r0``  ->  ``store [m], r0``  (same for storeb)
* ``mov rA, imm; mov rB, rA``      ->  ``mov rB, imm`` (rA in {r1, r2})
* ``jmp L`` immediately before ``L:``  ->  (nothing)

The pass iterates to a fixpoint.  It operates on assembly *text*, so
the result stays inspectable and the assembler remains the single
encoder.
"""

from __future__ import annotations

import re

_PUSH_RE = re.compile(r"^push (r\d|sp|bp)$")
_POP_RE = re.compile(r"^pop (r\d|sp|bp)$")
_MOV_RR_RE = re.compile(r"^mov (r\d|sp|bp), (r\d|sp|bp)$")
_MOV_RI_RE = re.compile(r"^mov (r\d), (-?(?:0x[0-9a-fA-F]+|\d+))$")
_LEA_RE = re.compile(r"^lea (r\d), (\[[^\]]+\])$")
_LOAD_SELF_RE = re.compile(r"^(load|loadb) (r\d), \[(r\d)\]$")
_STORE_RE = re.compile(r"^(store|storeb) \[(r\d)\], (r\d)$")
_JMP_RE = re.compile(r"^jmp (\S+)$")


def _split(line: str) -> tuple[str, str, str]:
    """Split a raw line into (indent, code, comment)."""
    stripped = line.rstrip()
    code = stripped
    comment = ""
    if ";" in stripped:
        code, _, comment = stripped.partition(";")
        comment = ";" + comment
    indent = code[: len(code) - len(code.lstrip())]
    return indent, code.strip(), comment.strip()


def _is_barrier(code: str) -> bool:
    """Labels, directives, and blank lines end a peephole window."""
    return not code or code.endswith(":") or code.startswith(".") or code.startswith(";")


class Peephole:
    """One optimisation run over a list of assembly lines."""

    #: Registers the code generator treats as statement-local scratch.
    SCRATCH = {"r1", "r2"}

    def __init__(self, lines: list[str]):
        self.lines = list(lines)

    def run(self) -> list[str]:
        changed = True
        while changed:
            changed = self._pass()
        return self.lines

    # -- helpers -------------------------------------------------------------

    def _code(self, index: int) -> str:
        return _split(self.lines[index])[1]

    def _replace(self, index: int, new_code: str | None) -> None:
        if new_code is None:
            self.lines[index] = None  # type: ignore[assignment]
        else:
            indent = "    "
            self.lines[index] = f"{indent}{new_code}"

    def _compact(self) -> None:
        self.lines = [line for line in self.lines if line is not None]

    # -- the pass -------------------------------------------------------------

    def _pass(self) -> bool:
        changed = False
        index = 0
        while index < len(self.lines):
            code = self._code(index)
            if _is_barrier(code):
                index += 1
                continue
            next_index = index + 1
            while next_index < len(self.lines) and not self._code(next_index):
                next_index += 1
            next_code = (
                self._code(next_index) if next_index < len(self.lines) else ""
            )

            # mov rX, rX -> drop
            mov = _MOV_RR_RE.match(code)
            if mov and mov.group(1) == mov.group(2):
                self._replace(index, None)
                self._compact()
                changed = True
                continue

            if _is_barrier(next_code) and not next_code.endswith(":"):
                index += 1
                continue

            # jmp L directly before L:
            jmp = _JMP_RE.match(code)
            if jmp and next_code == f"{jmp.group(1)}:":
                self._replace(index, None)
                self._compact()
                changed = True
                continue
            if next_code.endswith(":"):
                index += 1
                continue

            # push rX; pop rY
            push = _PUSH_RE.match(code)
            pop = _POP_RE.match(next_code)
            if push and pop:
                src, dst = push.group(1), pop.group(1)
                self._replace(index, None if src == dst else f"mov {dst}, {src}")
                self._replace(next_index, None)
                self._compact()
                changed = True
                continue

            # lea rA, [m]; load rA, [rA]
            lea = _LEA_RE.match(code)
            if lea:
                load_self = _LOAD_SELF_RE.match(next_code)
                if (
                    load_self
                    and load_self.group(2) == lea.group(1)
                    and load_self.group(3) == lea.group(1)
                ):
                    self._replace(
                        index,
                        f"{load_self.group(1)} {lea.group(1)}, {lea.group(2)}",
                    )
                    self._replace(next_index, None)
                    self._compact()
                    changed = True
                    continue
                # lea r1, [m]; store/storeb [r1], rS  (r1 is scratch)
                store = _STORE_RE.match(next_code)
                if (
                    store
                    and lea.group(1) in self.SCRATCH
                    and store.group(2) == lea.group(1)
                    and store.group(3) != lea.group(1)
                ):
                    self._replace(
                        index,
                        f"{store.group(1)} {lea.group(2)}, {store.group(3)}",
                    )
                    self._replace(next_index, None)
                    self._compact()
                    changed = True
                    continue

            # mov rA, imm; mov rB, rA  with rA scratch
            mov_imm = _MOV_RI_RE.match(code)
            if mov_imm and mov_imm.group(1) in self.SCRATCH:
                mov_copy = _MOV_RR_RE.match(next_code)
                if mov_copy and mov_copy.group(2) == mov_imm.group(1):
                    self._replace(
                        index, f"mov {mov_copy.group(1)}, {mov_imm.group(2)}"
                    )
                    self._replace(next_index, None)
                    self._compact()
                    changed = True
                    continue

            index += 1
        return changed


def optimize_asm(asm_text: str) -> str:
    """Run the peephole pass over assembly text until fixpoint."""
    lines = Peephole(asm_text.splitlines()).run()
    return "\n".join(lines) + "\n"
