"""State continuity: freshness for sealed module state (Section IV-C).

Sealing authenticates *a* state; continuity guarantees it is the
*latest* state, across restarts and crashes, against an attacker who
controls storage.  The paper highlights the tension:

* **rollback safety** -- a replayed stale state must be rejected;
* **liveness** -- a crash at any instant must leave *some* acceptable
  state, or the module bricks itself.

Two schemes are implemented against a simulated non-volatile monotonic
counter and an attacker-controlled disk, with crash injection at every
step boundary:

* :class:`MemoirStyleScheme` (increment-then-write, accept only the
  exact counter): rollback-safe but *not* crash-live -- a crash
  between the increment and the disk write strands the module, the
  failure mode Memoir [36] works around with special hardware.
* :class:`IceStyleScheme` (write-then-increment, accept counter or
  counter+1, completing the increment during recovery): rollback-safe
  *and* crash-live, the guarantee ICE [37] provides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ContinuityLivenessError, RollbackError, SealingError
from repro.pma.sealing import SealedStorage


class SimulatedCrash(Exception):
    """Raised by crash injection to abandon an update mid-flight."""


class NVCounter:
    """A non-volatile, strictly monotonic hardware counter."""

    def __init__(self) -> None:
        self._value = 0

    def read(self) -> int:
        return self._value

    def increment(self) -> int:
        """Atomic and durable (the hardware guarantee)."""
        self._value += 1
        return self._value


class Disk:
    """Attacker-controlled persistent storage: one blob slot.

    The attacker may snapshot and replay anything ever stored -- but
    cannot forge blobs (sealing) nor touch the NV counter."""

    def __init__(self) -> None:
        self.blob: bytes | None = None
        self.history: list[bytes] = []

    def store(self, blob: bytes) -> None:
        self.blob = blob
        self.history.append(blob)

    def replay(self, index: int) -> None:
        """Attacker action: roll storage back to an older snapshot."""
        self.blob = self.history[index]


@dataclass
class ContinuityScheme:
    """Shared plumbing: a sealed counter+state record on a disk."""

    storage: SealedStorage
    counter: NVCounter = field(default_factory=NVCounter)
    disk: Disk = field(default_factory=Disk)

    def _record(self, state: int, stamp: int) -> bytes:
        return self.storage.seal_ints(state, stamp)

    def _open(self, blob: bytes) -> tuple[int, int]:
        return self.storage.unseal_ints(blob, 2)


class MemoirStyleScheme(ContinuityScheme):
    """Increment the counter first, then persist the stamped record.

    Accepts only a record stamped with the *current* counter value.
    """

    def update(self, state: int, crash_after: str | None = None) -> None:
        """Persist a new state.  ``crash_after`` ∈ {None, 'increment',
        'write'} injects a crash after that step."""
        stamp = self.counter.increment()
        if crash_after == "increment":
            raise SimulatedCrash("crashed after counter increment")
        self.disk.store(self._record(state, stamp))
        if crash_after == "write":
            raise SimulatedCrash("crashed after disk write")

    def recover(self) -> int:
        """Reload state after a restart; raises on stale or missing."""
        if self.disk.blob is None:
            if self.counter.read() != 0:
                raise ContinuityLivenessError(
                    "no stored state but counter already advanced"
                )
            raise RollbackError("no stored state on first boot")
        try:
            state, stamp = self._open(self.disk.blob)
        except SealingError as exc:
            raise RollbackError(f"stored state forged: {exc}") from exc
        current = self.counter.read()
        if stamp < current:
            raise RollbackError(f"stale state (stamp {stamp} < counter {current})")
        if stamp > current:
            raise ContinuityLivenessError(
                f"state from the future (stamp {stamp} > counter {current})"
            )
        return state


class IceStyleScheme(ContinuityScheme):
    """Persist the stamped record first, then increment the counter.

    Accepts a record stamped ``counter`` (update completed) or
    ``counter + 1`` (crash before the increment; recovery completes
    it).  Anything older is a rollback.
    """

    def update(self, state: int, crash_after: str | None = None) -> None:
        stamp = self.counter.read() + 1
        self.disk.store(self._record(state, stamp))
        if crash_after == "write":
            raise SimulatedCrash("crashed after disk write")
        self.counter.increment()
        if crash_after == "increment":
            raise SimulatedCrash("crashed after counter increment")

    def recover(self) -> int:
        if self.disk.blob is None:
            if self.counter.read() != 0:
                raise ContinuityLivenessError(
                    "no stored state but counter already advanced"
                )
            raise RollbackError("no stored state on first boot")
        try:
            state, stamp = self._open(self.disk.blob)
        except SealingError as exc:
            raise RollbackError(f"stored state forged: {exc}") from exc
        current = self.counter.read()
        if stamp == current + 1:
            # The crash hit between write and increment: complete it.
            self.counter.increment()
            return state
        if stamp == current:
            return state
        if stamp < current:
            raise RollbackError(f"stale state (stamp {stamp} < counter {current})")
        raise ContinuityLivenessError(
            f"state from the future (stamp {stamp} > counter {current})"
        )


def crash_matrix(scheme_cls) -> list[dict]:
    """Exhaustive crash/replay analysis of one scheme.

    For every crash point and for the replay attack, report whether
    the module (a) recovers and (b) rejects stale state.  This is the
    E11 benchmark's data source.
    """
    rows = []
    for crash_after in (None, "write", "increment"):
        scheme = scheme_cls(SealedStorage(b"\x42" * 32))
        scheme.update(10)  # a committed baseline state
        try:
            scheme.update(20, crash_after=crash_after)
            crashed = False
        except SimulatedCrash:
            crashed = True
        try:
            recovered = scheme.recover()
            alive = True
        except (RollbackError, ContinuityLivenessError) as exc:
            recovered = None
            alive = False
            recovered_error = type(exc).__name__
        rows.append({
            "scheme": scheme_cls.__name__,
            "scenario": f"crash_after={crash_after}" if crashed else "clean",
            "liveness": alive,
            "recovered_state": recovered,
            "error": None if alive else recovered_error,
        })
    # Replay attack: attacker rolls the disk back to the first record.
    scheme = scheme_cls(SealedStorage(b"\x42" * 32))
    scheme.update(10)
    scheme.update(20)
    scheme.disk.replay(0)
    try:
        recovered = scheme.recover()
        rows.append({
            "scheme": scheme_cls.__name__, "scenario": "replay-attack",
            "liveness": True, "recovered_state": recovered,
            "error": "ROLLBACK ACCEPTED" if recovered == 10 else None,
        })
    except RollbackError:
        rows.append({
            "scheme": scheme_cls.__name__, "scenario": "replay-attack",
            "liveness": True, "recovered_state": None, "error": None,
        })
    return rows
