"""Remote attestation (Section IV-C).

The hardware derives a module-private key from the platform master key
and a *measurement* (hash) of the module's code as loaded.  A remote
verifier who knows the expected measurement -- and, via the
provisioning authority, the corresponding expected key -- challenges
the module with a nonce; only an unmodified module on genuine hardware
holds the key that MACs the nonce correctly.

If the (attacker-controlled) operating system modifies the module
before loading it, the hardware measures the modified code, derives a
*different* key, and every attestation report the modified module can
produce fails verification.  The OS cannot lie about the measurement
because measuring happens in hardware at registration.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import AttestationError
from repro.pma import crypto
from repro.pma.module import PMAController, ProtectedModule


@dataclass
class ProvisioningAuthority:
    """Holds the platform master key (the hardware vendor's role).

    Derives the key a *correct* module would receive, and hands it to
    verifiers over an out-of-band secure channel -- this is how Sancus
    [25] and SGX [28] provision verifiers.
    """

    platform_key: bytes

    def expected_module_key(self, expected_code: bytes) -> bytes:
        return crypto.derive_module_key(
            self.platform_key, crypto.measure(expected_code)
        )


class RemoteVerifier:
    """Challenges a module and checks its attestation reports."""

    def __init__(self, expected_module_key: bytes):
        self._key = expected_module_key
        self._outstanding: set[bytes] = set()

    def challenge(self) -> bytes:
        """A fresh random nonce (replay protection)."""
        nonce = os.urandom(16)
        self._outstanding.add(nonce)
        return nonce

    def verify(self, nonce: bytes, report: bytes) -> bool:
        """Check a report; each nonce is accepted at most once."""
        if nonce not in self._outstanding:
            return False
        self._outstanding.discard(nonce)
        expected = crypto.mac(self._key, b"attest" + nonce)
        return crypto.mac_verify(self._key, b"attest" + nonce, report) and (
            len(report) == len(expected)
        )

    def require(self, nonce: bytes, report: bytes) -> None:
        if not self.verify(nonce, report):
            raise AttestationError("attestation report failed verification")


def hardware_attest(controller: PMAController, module: ProtectedModule,
                    nonce: bytes) -> bytes:
    """The hardware service a module invokes via ``sys attest``.

    Exposed at the Python level for protocol experiments; on the
    machine the same computation runs through
    :data:`repro.machine.syscalls.SYS_ATTEST` (which only works while
    the module is executing).
    """
    return controller.attest(module, nonce)


def attest_and_verify(
    controller: PMAController,
    module: ProtectedModule,
    authority: ProvisioningAuthority,
    expected_code: bytes,
) -> bool:
    """Full protocol round: provision a verifier for ``expected_code``,
    challenge the loaded module, verify the report."""
    verifier = RemoteVerifier(authority.expected_module_key(expected_code))
    nonce = verifier.challenge()
    report = hardware_attest(controller, module, nonce)
    return verifier.verify(nonce, report)
