"""Sealed storage: confidentiality + integrity for persisted module state.

A module's state, sealed with its module-private key, can be stored on
untrusted media (the attacker's disk, Section IV-C): the attacker can
neither read nor forge it.  What sealing alone can *not* provide is
freshness -- a stale genuine blob unseals happily -- which is why
:mod:`repro.pma.continuity` exists.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import SealingError
from repro.pma import crypto


@dataclass
class SealedStorage:
    """Seal/unseal helper bound to one module key.

    ``iv_source`` supplies 16-byte IVs (deterministic in tests,
    random in anger).
    """

    module_key: bytes
    _iv_counter: int = 0

    def _next_iv(self) -> bytes:
        self._iv_counter += 1
        return struct.pack("<QQ", self._iv_counter, 0xA5A5A5A5A5A5A5A5)

    def seal(self, data: bytes, aad: bytes = b"") -> bytes:
        """Seal ``data``; ``aad`` binds context (e.g. a counter value)."""
        return crypto.seal_blob(self.module_key, self._next_iv(), data, aad)

    def unseal(self, blob: bytes, aad: bytes = b"") -> bytes:
        """Unseal; raises :class:`SealingError` on any tampering or a
        wrong key (another module's blob)."""
        return crypto.open_blob(self.module_key, blob, aad)

    def seal_ints(self, *values: int) -> bytes:
        """Seal a tuple of 32-bit integers (module state records)."""
        return self.seal(struct.pack(f"<{len(values)}I", *values))

    def unseal_ints(self, blob: bytes, count: int) -> tuple[int, ...]:
        data = self.unseal(blob)
        if len(data) != 4 * count:
            raise SealingError(
                f"sealed record has {len(data)} bytes, expected {4 * count}"
            )
        return struct.unpack(f"<{count}I", data)
