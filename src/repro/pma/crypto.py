"""Cryptographic primitives for the protected-module architecture.

The paper's Section IV-C relies on three hardware-rooted primitives:

* a *measurement* of a module (a hash of its loaded code segment);
* a *module-private key* derived from a platform master key and the
  measurement (as in Sancus [25] / SGX [28]); and
* authenticated encryption with that key, for sealed storage.

All three are built here from SHA-256 (stdlib ``hashlib``/``hmac``).
The encryption is SHA-256 in counter mode with an HMAC tag
(encrypt-then-MAC).  This is a simulation-fidelity choice, not a
production cipher suite: the security arguments in the experiments
only require that (1) keys are unforgeable functions of the code
measurement and (2) sealed blobs cannot be read or forged without the
key -- both of which these constructions provide.
"""

from __future__ import annotations

import hashlib
import hmac

from repro.errors import SealingError

#: Byte length of hashes, keys and MACs.
DIGEST_SIZE = 32


def measure(code: bytes) -> bytes:
    """Measurement (hash) of a module's code segment."""
    return hashlib.sha256(code).digest()


def derive_module_key(platform_key: bytes, measurement: bytes) -> bytes:
    """Module-private key: ``HMAC(platform_key, measurement)``.

    A module whose code was tampered with before loading measures
    differently and therefore receives a *different* key -- the
    property remote attestation builds on.
    """
    return hmac.new(platform_key, measurement, hashlib.sha256).digest()


def mac(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 tag over ``message``."""
    return hmac.new(key, message, hashlib.sha256).digest()


def mac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time verification of an HMAC tag."""
    return hmac.compare_digest(mac(key, message), tag)


def _keystream(key: bytes, iv: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(
            key + iv + counter.to_bytes(8, "little") + b"ks"
        ).digest()
        out += block
        counter += 1
    return bytes(out[:length])


def encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """XOR ``plaintext`` with a key/iv-derived keystream."""
    stream = _keystream(key, iv, len(plaintext))
    return bytes(p ^ s for p, s in zip(plaintext, stream))


def decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`encrypt` (XOR streams are symmetric)."""
    return encrypt(key, iv, ciphertext)


def seal_blob(key: bytes, iv: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
    """Authenticated-encrypt ``plaintext`` into a self-contained blob.

    Layout: ``iv (16) || ct_len (4) || ct || tag (32)``.  ``aad`` is
    authenticated but not stored (callers bind context such as a
    freshness counter through it).
    """
    if len(iv) != 16:
        raise SealingError("iv must be 16 bytes")
    ciphertext = encrypt(key, iv, plaintext)
    header = iv + len(ciphertext).to_bytes(4, "little")
    tag = mac(key, header + ciphertext + aad)
    return header + ciphertext + tag


def open_blob(key: bytes, blob: bytes, aad: bytes = b"") -> bytes:
    """Verify and decrypt a blob produced by :func:`seal_blob`.

    Raises :class:`~repro.errors.SealingError` on any malformation or
    authentication failure.
    """
    if len(blob) < 16 + 4 + DIGEST_SIZE:
        raise SealingError("sealed blob too short")
    iv = blob[:16]
    ct_len = int.from_bytes(blob[16:20], "little")
    body_end = 20 + ct_len
    if len(blob) != body_end + DIGEST_SIZE:
        raise SealingError("sealed blob has inconsistent length")
    ciphertext = blob[20:body_end]
    tag = blob[body_end:]
    if not mac_verify(key, blob[:body_end] + aad, tag):
        raise SealingError("sealed blob failed authentication")
    return decrypt(key, iv, ciphertext)
