"""Protected Module Architecture: module descriptors and access control.

This implements the memory access-control model of Section IV-A of the
paper, which it states as three rules:

1. When the instruction pointer is *outside* a protected module, access
   to memory in the module is prohibited.
2. When the IP is *inside* the module, data memory can be read and
   written, and code memory can be executed.
3. The only way for the IP to *enter* a protected module is by jumping
   to one of the designated entry points.

:class:`PMAController` is the "hardware": it holds the module table,
answers the CPU's access-control queries, and implements the key
derivation, attestation, sealing, and monotonic-counter services of
Section IV-C.  It is deliberately independent of the operating system
model -- kernel-privileged code bypasses *page* permissions but still
goes through these checks, which is exactly the paper's point about
protecting modules from a compromised OS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProtectionFault, SealingError
from repro.machine.access import AccessKind
from repro.pma import crypto


@dataclass
class ProtectedModule:
    """One protected module: a code section, a data section, entry points.

    ``text_start``/``text_end`` and ``data_start``/``data_end`` are
    byte ranges (end exclusive).  ``entry_points`` are addresses inside
    the text section at which outside code may (only) enter.
    """

    name: str
    text_start: int
    text_end: int
    data_start: int
    data_end: int
    entry_points: frozenset[int]
    #: Measurement of the code section as loaded (set by the loader).
    measurement: bytes = b""
    #: Key derived by the hardware from the platform key + measurement.
    module_key: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if self.text_start >= self.text_end:
            raise ValueError(f"module {self.name}: empty text section")
        if self.data_start > self.data_end:
            raise ValueError(f"module {self.name}: negative data section")
        for entry in self.entry_points:
            if not self.text_start <= entry < self.text_end:
                raise ValueError(
                    f"module {self.name}: entry point 0x{entry:08x} "
                    "outside text section"
                )

    def in_text(self, addr: int) -> bool:
        return self.text_start <= addr < self.text_end

    def in_data(self, addr: int) -> bool:
        return self.data_start <= addr < self.data_end

    def contains(self, addr: int) -> bool:
        return self.in_text(addr) or self.in_data(addr)

    def _overlaps(self, start: int, end: int, lo: int, hi: int) -> bool:
        return start < hi and end > lo

    def text_overlaps(self, addr: int, size: int) -> bool:
        return self._overlaps(addr, addr + size, self.text_start, self.text_end)

    def data_overlaps(self, addr: int, size: int) -> bool:
        return self._overlaps(addr, addr + size, self.data_start, self.data_end)


class PMAController:
    """The protected-module "hardware" of one machine.

    Owns the module table, the platform master key, and the per-module
    non-volatile monotonic counters used by state-continuity schemes.
    """

    def __init__(
        self,
        platform_key: bytes = b"\x00" * 32,
        counter_store: dict[bytes, int] | None = None,
    ) -> None:
        self.modules: list[ProtectedModule] = []
        #: Called (no arguments) whenever the module table changes;
        #: the machine's interpreter caches subscribe here so section
        #: changes flush any stale fast-path state.
        self._change_listeners: list = []
        self._platform_key = platform_key
        #: Non-volatile monotonic counters, keyed by module measurement
        #: (so a re-loaded identical module sees its own counter, while
        #: a tampered module does not inherit the original's).  Pass a
        #: shared dict to model counters surviving reboots.
        self._counters: dict[bytes, int] = (
            counter_store if counter_store is not None else {}
        )

    # -- registration ------------------------------------------------------

    def register(self, module: ProtectedModule, code: bytes) -> ProtectedModule:
        """Register a module, measuring ``code`` and deriving its key.

        ``code`` must be the module's text section content exactly as
        loaded; the measurement is taken here, by the hardware, so a
        malicious loader cannot lie about it.
        """
        for existing in self.modules:
            if existing.text_overlaps(module.text_start, module.text_end - module.text_start) or (
                module.data_end > module.data_start
                and existing.data_overlaps(module.data_start, module.data_end - module.data_start)
            ):
                raise ProtectionFault(
                    f"module {module.name} overlaps module {existing.name}"
                )
        module.measurement = crypto.measure(code)
        module.module_key = crypto.derive_module_key(self._platform_key, module.measurement)
        self.modules.append(module)
        for listener in self._change_listeners:
            listener()
        return module

    def add_change_listener(self, listener) -> None:
        """Subscribe ``listener()`` to module-table changes."""
        self._change_listeners.append(listener)

    # -- snapshot support ----------------------------------------------------

    def save_state(self) -> tuple:
        """Module table + counters, for machine snapshots."""
        return (tuple(self.modules), dict(self._counters))

    def restore_state(self, state: tuple) -> bool:
        """Re-install a saved state; True if the module table changed.

        A changed table fires the change listeners (flushing the
        machine's caches).  The monotonic counters are restored too:
        machine-level snapshot/restore deliberately rolls back the
        *whole* platform, NVRAM included -- the attack the paper's
        state-continuity schemes (Section IV-C) assume a real
        monotonic counter survives.  Model durable counters by passing
        a shared ``counter_store`` across machines instead.
        """
        modules, counters = state
        changed = len(modules) != len(self.modules) or any(
            saved is not live for saved, live in zip(modules, self.modules)
        )
        if changed:
            self.modules[:] = modules
            for listener in self._change_listeners:
                listener()
        self._counters.clear()
        self._counters.update(counters)
        return changed

    # -- queries ------------------------------------------------------------

    def module_at_text(self, addr: int) -> ProtectedModule | None:
        """The module whose text section contains ``addr``, if any."""
        for module in self.modules:
            if module.in_text(addr):
                return module
        return None

    def module_at(self, addr: int) -> ProtectedModule | None:
        """The module whose text *or* data section contains ``addr``."""
        for module in self.modules:
            if module.contains(addr):
                return module
        return None

    # -- access control ------------------------------------------------------

    def check_fetch(
        self, current: ProtectedModule | None, ip: int
    ) -> ProtectedModule | None:
        """Validate an instruction fetch at ``ip``; return the new module.

        Implements rules 2 and 3: executing module *data* is never
        allowed, and crossing into a module's text from outside is only
        allowed at an entry point.  Leaving a module is always allowed.
        """
        for module in self.modules:
            if module.in_data(ip):
                raise ProtectionFault(
                    f"attempt to execute data section of module {module.name}", ip
                )
        target = self.module_at_text(ip)
        if target is None or target is current:
            return target
        if ip not in target.entry_points:
            raise ProtectionFault(
                f"jump into module {target.name} bypassing its entry points", ip
            )
        return target

    def check_data_access(
        self,
        current: ProtectedModule | None,
        kind: AccessKind,
        addr: int,
        size: int,
        ip: int | None = None,
    ) -> None:
        """Validate a data read/write of ``size`` bytes at ``addr``.

        Implements rule 1 (no outside access at all) and the inside
        refinement of rule 2 (module data is read/write, module code is
        read-only even to the module itself).
        """
        for module in self.modules:
            touches_text = module.text_overlaps(addr, size)
            touches_data = module.data_overlaps(addr, size)
            if not (touches_text or touches_data):
                continue
            if module is not current:
                raise ProtectionFault(
                    f"{kind.value} of 0x{addr:08x} denied: "
                    f"inside protected module {module.name}",
                    ip,
                )
            if touches_text and kind is AccessKind.WRITE:
                raise ProtectionFault(
                    f"write to code section of module {module.name}", ip
                )

    # -- hardware services (Section IV-C) -------------------------------------

    def attest(self, module: ProtectedModule, nonce: bytes) -> bytes:
        """Produce an attestation report: ``HMAC(module_key, nonce)``.

        Only callable (via ``sys attest``) while the module is
        executing; the CPU passes the current module in.
        """
        return crypto.mac(module.module_key, b"attest" + nonce)

    def seal(self, module: ProtectedModule, data: bytes, iv: bytes, aad: bytes = b"") -> bytes:
        """Seal ``data`` to the module's identity."""
        return crypto.seal_blob(module.module_key, iv, data, aad)

    def unseal(self, module: ProtectedModule, blob: bytes, aad: bytes = b"") -> bytes:
        """Unseal a blob; raises :class:`SealingError` if not this
        module's blob or tampered with."""
        return crypto.open_blob(module.module_key, blob, aad)

    def counter_values(self) -> dict[bytes, int]:
        """Copy of the monotonic-counter store, keyed by measurement.

        Observability accessor: invariant monitors compare these
        against a high-water mark across snapshot restores to flag
        the Section IV-C rollback attacker.
        """
        return dict(self._counters)

    def counter_read(self, module: ProtectedModule) -> int:
        """Read the module's non-volatile monotonic counter."""
        return self._counters.get(module.measurement, 0)

    def counter_increment(self, module: ProtectedModule) -> int:
        """Increment and return the module's monotonic counter.

        The increment is atomic and durable -- the hardware guarantee
        the continuity schemes of Section IV-C build on.
        """
        value = self._counters.get(module.measurement, 0) + 1
        self._counters[module.measurement] = value
        return value


def seal_error_is_rollback(blob_error: SealingError) -> bool:
    """Helper for experiments: True if unsealing failed authentication."""
    return "authentication" in str(blob_error)
