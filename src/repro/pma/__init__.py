"""Protected Module Architecture: isolation, attestation, sealing,
state continuity (Section IV of the paper)."""

from repro.pma.attestation import (
    ProvisioningAuthority,
    RemoteVerifier,
    attest_and_verify,
    hardware_attest,
)
from repro.pma.continuity import (
    Disk,
    IceStyleScheme,
    MemoirStyleScheme,
    NVCounter,
    SimulatedCrash,
    crash_matrix,
)
from repro.pma.module import PMAController, ProtectedModule
from repro.pma.sealing import SealedStorage

__all__ = [
    "ProvisioningAuthority",
    "RemoteVerifier",
    "attest_and_verify",
    "hardware_attest",
    "Disk",
    "IceStyleScheme",
    "MemoirStyleScheme",
    "NVCounter",
    "SimulatedCrash",
    "crash_matrix",
    "PMAController",
    "ProtectedModule",
    "SealedStorage",
]
