"""Always-on security-invariant monitors with first-breach attribution.

The paper's countermeasure catalogue is, at bottom, a set of runtime
invariants: return addresses come back unchanged, no page is both
written and executed, canaries stay intact, protected modules are only
entered at entry points and leak nothing through registers, monotonic
counters never run backwards, red zones stay silent, and every access
stays inside the object it started in.  Today's experiments report
*that* an attack succeeded; this module reports *which invariant fell
first and where* -- the causal observation the whole matrix is about.

:class:`InvariantMonitor` is an event-bus subscriber
(:class:`~repro.observe.events.Observer`) that checks all of these
invariants from ordinary bus events, so it can ride every run -- and,
being *dispatch-transparent*, it rides the block-translation tier too
instead of demoting the machine to per-instruction stepping.  Each
violation becomes a typed :class:`InvariantBreach` (invariant name,
breaching instruction IP, guest call stack, pre/post values), the
per-run sequence of which is the **first-breach timeline**.

The checked invariants:

==================== =====================================================
invariant            broken when
==================== =====================================================
return-integrity     a ``ret`` pops a different address than its ``call``
                     pushed (shadow-stack semantics, enforced or not)
object-bounds        a bulk access overruns the stack local or global
                     object it started in (per-function frame tables and
                     data-symbol intervals from the compiler/linker)
wx-write             a write lands on a page that has been executed
wx-exec              control transfers onto a page that has been written
canary               an armed canary slot is overwritten with a
                     different value (the clobber, not the detection)
pma-entry            the IP enters a protected module off its entry
                     points or executes module data (from the fault)
pma-confidentiality  a register leaves a protected module holding a
                     module-internal pointer it did not arrive with
counter-freshness    a snapshot restore rewinds a monotonic counter
                     below its observed high-water mark (the Section
                     IV-C rollback attacker)
red-zone             a poisoned red zone was touched (from the fault)
==================== =====================================================

Frame tables, global-object intervals and the canary cell are link-time
facts, delivered by the loader through :meth:`Observer.bind_program`
after attach.  State resets automatically on snapshot restore so
campaign trials never inherit a prior trial's breaches -- except the
counter high-water mark, which deliberately survives restores: the
rollback attacker is only visible *across* a restore.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import MachineFault, ProtectionFault, RedZoneFault
from repro.observe.events import Observer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.machine import Machine
    from repro.pma.module import ProtectedModule

WORD_MASK = 0xFFFFFFFF
PAGE_SHIFT = 12
#: Stack-pointer / base-pointer register indices (repro.isa.registers).
_BP = 9

#: Retained breach records per invariant per run; further breaches of
#: the same invariant are counted but not recorded (a smashed stack
#: would otherwise flood the timeline with wx-write records).
TIMELINE_CAP = 8
#: Deepest guest call stack captured on a breach record.
STACK_CAP = 32


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - 0x100000000 if value >= 0x80000000 else value


@dataclass(frozen=True)
class InvariantBreach:
    """One detected invariant violation (picklable, for campaign
    workers and fuzzing fan-out)."""

    #: Which invariant broke (table in the module docstring).
    invariant: str
    #: Ordinal of this breach within the run (0 = the first breach).
    seq: int
    #: Breaching instruction IP (None when no instruction is at fault,
    #: e.g. a counter rollback applied by a snapshot restore).
    ip: int | None
    #: Human-readable account of the violation.
    detail: str
    #: Value the invariant expected (invariant-specific; may be None).
    pre: object = None
    #: Value actually observed.
    post: object = None
    #: Guest call stack (pushed return addresses, innermost last).
    call_stack: tuple[int, ...] = ()

    @property
    def where(self) -> str:
        return f"0x{self.ip:08x}" if self.ip is not None else "?"

    def label(self) -> str:
        """Compact ``invariant@ip`` attribution label (matrix cells)."""
        return f"{self.invariant}@{self.where}"


class InvariantMonitor(Observer):
    """Checks the security invariants above from bus events.

    Attach before :func:`repro.link.loader.load` (e.g. via
    ``observe_new_machines``) so the loader can deliver link-time
    metadata through :meth:`bind_program`; without it the monitor still
    runs, with the object-bounds / canary / PMA checks inert.
    """

    #: Pure per-event consumer: translated-block dispatch stays on.
    dispatch_transparent = True

    def __init__(self) -> None:
        # Link-time metadata (bind_program).
        self._frame_tables: dict[int, tuple] = {}
        self._canary_cell: int | None = None
        self._canary_value: int = 0
        self._global_starts: list[int] = []
        self._global_ends: list[int] = []
        self._global_names: list[str] = []
        self._baseline_exec_pages: frozenset[int] = frozenset()
        # Cross-restore state (the rollback detector's memory).
        self._counter_highwater: dict[bytes, int] = {}
        self._reset_run_state()

    # -- lifecycle -----------------------------------------------------------

    def _reset_run_state(self) -> None:
        self.timeline: list[InvariantBreach] = []
        self.counts: dict[str, int] = {}
        self._returns: list[int] = []
        self._frames: list[tuple | None] = []
        self._armed: dict[int, int] = {}       # canary slot -> call depth
        self._written_pages: set[int] = set()
        self._exec_pages: set[int] = set(self._baseline_exec_pages)
        self._wx_reported: set[tuple[str, int]] = set()
        self._pma_entries: list[tuple[object, tuple[int, ...]]] = []

    def begin_run(self) -> None:
        """Reset per-run state (executors call this between inputs)."""
        self._reset_run_state()

    def bind_program(self, program: object) -> None:
        image = program.image
        machine = program.machine
        self._frame_tables = dict(image.frame_tables)
        self._canary_cell = image.canary_cell or None
        self._canary_value = (
            machine.memory.read_word(image.canary_cell)
            if image.canary_cell else 0
        )
        # Global-object extents by the next-symbol interval: an object
        # runs from its symbol to the next data symbol in the same
        # segment (or the segment end).  Exactly the ground truth the
        # heartbleed-style over-read crosses.
        names_by_addr: dict[int, str] = {}
        for name, addr in image.symbols.items():
            if addr in image.data_addresses:
                short = name.split(":", 1)[-1]
                if addr not in names_by_addr or ":" not in name:
                    names_by_addr[addr] = short
        starts = sorted(image.data_addresses)
        self._global_starts = starts
        self._global_ends = []
        self._global_names = [names_by_addr.get(a, f"0x{a:08x}") for a in starts]
        for index, addr in enumerate(starts):
            segment = image.segment_at(addr)
            end = segment.end if segment is not None else addr + 4
            if index + 1 < len(starts) and (
                segment is None or segment.contains(starts[index + 1])
            ):
                end = starts[index + 1]
            self._global_ends.append(end)
        # W^X baseline: every page of a text-kind segment counts as
        # executable from the start, so corrupting code is a wx-write
        # breach even before the corrupted function ever runs.  Pages
        # that *actually* execute are learned dynamically on top.
        pages: set[int] = {image.entry >> PAGE_SHIFT}
        for segment in image.segments:
            if segment.kind == "text":
                pages.update(range(segment.addr >> PAGE_SHIFT,
                                   ((segment.end - 1) >> PAGE_SHIFT) + 1))
        self._baseline_exec_pages = frozenset(pages)
        self._reset_run_state()

    # -- reporting -----------------------------------------------------------

    @property
    def first_breach(self) -> InvariantBreach | None:
        """The first invariant broken this run, or None."""
        return self.timeline[0] if self.timeline else None

    def total_breaches(self) -> int:
        return sum(self.counts.values())

    def report(self) -> dict:
        """Plain-dict run report (experiments / JSON consumers)."""
        first = self.first_breach
        return {
            "first_breach": first.label() if first else None,
            "counts": dict(self.counts),
            "timeline": [
                {"invariant": b.invariant, "seq": b.seq, "ip": b.ip,
                 "detail": b.detail}
                for b in self.timeline
            ],
        }

    def _breach(self, machine: "Machine", invariant: str, ip: int | None,
                detail: str, pre: object = None, post: object = None) -> None:
        count = self.counts.get(invariant, 0) + 1
        self.counts[invariant] = count
        if count > TIMELINE_CAP:
            return
        breach = InvariantBreach(
            invariant=invariant,
            seq=len(self.timeline),
            ip=ip,
            detail=detail,
            pre=pre,
            post=post,
            call_stack=tuple(self._returns[-STACK_CAP:]),
        )
        self.timeline.append(breach)
        machine.emit_breach(breach)

    # -- W^X helpers ---------------------------------------------------------

    def _mark_exec(self, machine: "Machine", site: int, target: int) -> None:
        self._exec_pages.add(site >> PAGE_SHIFT)
        target_page = target >> PAGE_SHIFT
        if target_page in self._written_pages:
            self._wx_exec(machine, site, target, target_page)
        self._exec_pages.add(target_page)

    def _wx_exec(self, machine: "Machine", site: int, target: int,
                 target_page: int) -> None:
        key = ("wx-exec", target_page)
        if key not in self._wx_reported:
            self._wx_reported.add(key)
            self._breach(
                machine, "wx-exec", site,
                f"control transferred to 0x{target & WORD_MASK:08x} "
                "on a written page",
                post=target & WORD_MASK,
            )

    # -- control flow --------------------------------------------------------

    def on_call(self, machine: "Machine", site: int, target: int,
                return_addr: int, indirect: bool) -> None:
        self._mark_exec(machine, site, target)
        self._returns.append(return_addr)
        self._frames.append(self._frame_tables.get(target & WORD_MASK))

    def on_ret(self, machine: "Machine", site: int, target: int) -> None:
        if self._returns:
            expected = self._returns.pop()
            if target != expected:
                self._breach(
                    machine, "return-integrity", site,
                    f"ret popped 0x{target & WORD_MASK:08x}, call pushed "
                    f"0x{expected:08x}",
                    pre=expected, post=target & WORD_MASK,
                )
        if self._frames:
            self._frames.pop()
        if self._armed:
            depth = len(self._returns)
            for slot, armed_depth in list(self._armed.items()):
                if armed_depth > depth:
                    del self._armed[slot]
        self._mark_exec(machine, site, target)

    def on_jump(self, machine: "Machine", site: int, target: int,
                indirect: bool) -> None:
        # _mark_exec inlined: jumps/branches dominate hot loops, and
        # the wx-exec report path (a written target page) is cold.
        pages = self._exec_pages
        pages.add(site >> PAGE_SHIFT)
        target_page = target >> PAGE_SHIFT
        if target_page in self._written_pages:
            self._wx_exec(machine, site, target, target_page)
        pages.add(target_page)

    def on_branch(self, machine: "Machine", site: int, target: int,
                  taken: bool) -> None:
        pages = self._exec_pages
        pages.add(site >> PAGE_SHIFT)
        if taken:
            target_page = target >> PAGE_SHIFT
            if target_page in self._written_pages:
                self._wx_exec(machine, site, target, target_page)
            pages.add(target_page)

    # -- data accesses -------------------------------------------------------

    def on_write(self, machine: "Machine", addr: int, size: int,
                 value: int | bytes) -> None:
        if size > 4:
            self._check_bounds(machine, addr, size, "write")
        first_page = addr >> PAGE_SHIFT
        last_page = (addr + size - 1) >> PAGE_SHIFT
        if first_page == last_page:
            # The hot case: a single-page scalar store.
            if first_page in self._exec_pages:
                self._wx_write(machine, addr, size, first_page)
            self._written_pages.add(first_page)
        else:
            for page in range(first_page, last_page + 1):
                if page in self._exec_pages:
                    self._wx_write(machine, addr, size, page)
                self._written_pages.add(page)
        if self._canary_value:
            self._check_canary(machine, addr, size, value)

    def _wx_write(self, machine: "Machine", addr: int, size: int,
                  page: int) -> None:
        key = ("wx-write", page)
        if key not in self._wx_reported:
            self._wx_reported.add(key)
            self._breach(
                machine, "wx-write", machine.current_ip,
                f"write of {size} bytes at 0x{addr:08x} lands on "
                "an executed page",
                post=addr,
            )

    def on_read(self, machine: "Machine", addr: int, size: int,
                value: int | bytes) -> None:
        if size > 4:
            self._check_bounds(machine, addr, size, "read")

    def _check_bounds(self, machine: "Machine", addr: int, size: int,
                      kind: str) -> None:
        # Stack locals: the innermost MinC frame's layout, restricted
        # to negative BP offsets (locals; positive offsets belong to
        # the caller and would misattribute writes through pointer
        # parameters).
        table = self._frames[-1] if self._frames else None
        if table:
            offset = _signed(addr - machine.cpu.regs[_BP])
            if offset < 0:
                for name, local_offset, local_size in table:
                    if local_offset <= offset < local_offset + local_size:
                        end = local_offset + local_size
                        if offset + size > end:
                            self._breach(
                                machine, "object-bounds", machine.current_ip,
                                f"{kind} of {size} bytes overruns stack "
                                f"local '{name}' ({local_size} bytes at "
                                f"bp{local_offset:+d}) by "
                                f"{offset + size - end} bytes",
                                pre=local_size, post=size,
                            )
                        break
        # Global objects, by data-symbol interval.
        if self._global_starts:
            index = bisect_right(self._global_starts, addr) - 1
            if index >= 0:
                start = self._global_starts[index]
                end = self._global_ends[index]
                if start <= addr < end and addr + size > end:
                    self._breach(
                        machine, "object-bounds", machine.current_ip,
                        f"{kind} of {size} bytes overruns global "
                        f"'{self._global_names[index]}' "
                        f"[0x{start:08x}, 0x{end:08x}) by "
                        f"{addr + size - end} bytes",
                        pre=end - start, post=size,
                    )

    def _check_canary(self, machine: "Machine", addr: int, size: int,
                      value: int | bytes) -> None:
        if size == 4 and value == self._canary_value:
            # A prologue (re)arming a canary slot.
            self._armed[addr] = len(self._returns)
            return
        if not self._armed:
            return
        write_end = addr + size
        for slot in list(self._armed):
            if slot < write_end and addr < slot + 4:
                if isinstance(value, bytes):
                    chunk = value[max(0, slot - addr):slot - addr + 4]
                    post: object = int.from_bytes(chunk, "little") \
                        if len(chunk) == 4 else chunk
                else:
                    post = value
                del self._armed[slot]
                self._breach(
                    machine, "canary", machine.current_ip,
                    f"armed canary slot 0x{slot:08x} overwritten",
                    pre=self._canary_value, post=post,
                )

    # -- faults --------------------------------------------------------------

    def on_fault(self, machine: "Machine", fault: "MachineFault",
                 ip: int) -> None:
        if isinstance(fault, RedZoneFault):
            self._breach(machine, "red-zone", ip, str(fault))
        elif isinstance(fault, ProtectionFault):
            text = str(fault)
            if "bypassing its entry points" in text or \
                    "execute data section" in text:
                self._breach(machine, "pma-entry", ip, text)

    # -- protected-module boundary -------------------------------------------

    def on_pma_enter(self, machine: "Machine", module: "ProtectedModule",
                     ip: int) -> None:
        self._pma_entries.append((module, tuple(machine.cpu.regs[:8])))

    def on_pma_exit(self, machine: "Machine", module: "ProtectedModule",
                    ip: int) -> None:
        entry_regs: tuple[int, ...] | None = None
        if self._pma_entries and self._pma_entries[-1][0] is module:
            _, entry_regs = self._pma_entries.pop()
        leaks = []
        for reg in range(1, 8):
            value = machine.cpu.regs[reg]
            if entry_regs is not None and value == entry_regs[reg]:
                continue  # the caller arrived with it
            if value in module.entry_points:
                continue  # public knowledge
            if module.in_data(value) or module.in_text(value):
                leaks.append(f"r{reg}=0x{value:08x}")
        if leaks:
            self._breach(
                machine, "pma-confidentiality", ip,
                f"module {module.name} exited with module-internal "
                f"pointers in registers: {', '.join(leaks)}",
                post=tuple(machine.cpu.regs[:8]),
            )
        self._sample_counters(machine)

    # -- monotonic-counter freshness -----------------------------------------

    def _sample_counters(self, machine: "Machine") -> None:
        for key, value in machine.pma.counter_values().items():
            if value > self._counter_highwater.get(key, 0):
                self._counter_highwater[key] = value

    def on_snapshot_taken(self, machine: "Machine", pages: int) -> None:
        self._sample_counters(machine)

    def on_snapshot_restored(self, machine: "Machine",
                             dirty_pages: int) -> None:
        # Per-run state belongs to the *trial*; drop it first so a
        # rollback breach lands in the fresh trial's timeline.
        self._reset_run_state()
        current = machine.pma.counter_values()
        for key, highwater in self._counter_highwater.items():
            value = current.get(key, 0)
            if value < highwater:
                self._breach(
                    machine, "counter-freshness", None,
                    f"snapshot restore rewound monotonic counter "
                    f"{key.hex()[:12]} from {highwater} to {value} "
                    "(platform rollback)",
                    pre=highwater, post=value,
                )
