"""The machine's typed event bus: observers and their dispatch hub.

The paper's central methodological move is treating *observations of
machine execution* -- an overwritten return address, a module boundary
crossing, a scraped page -- as first-class objects.  This module gives
the simulator a typed event vocabulary for exactly those observations:

=====================  ====================================================
event                  fired when
=====================  ====================================================
instruction retired    one instruction finished executing
memory read/write      a *checked* data access completed (the accesses the
                       paper's policies adjudicate; raw loader pokes are
                       not program behaviour and are not events)
call / ret             a procedure was entered / returned from (including
                       hijacked returns -- the profiler tolerates them)
jump / branch          an unconditional / conditional transfer executed
syscall                a platform service is about to run
fault                  execution ended in a machine fault
PMA enter / exit       the IP crossed a protected-module boundary
decode miss            the decoded-instruction cache had to decode bytes
decode invalidate      cached decodes were dropped (write / perm / PMA)
snapshot taken         the machine froze a copy-on-write reset point
snapshot restored      a snapshot was re-installed (campaign trial reset)
=====================  ====================================================

**Zero-cost contract.**  A machine with no observers attached executes
on exactly the pre-observability fast path: ``Machine.step`` pays one
``self._observers is None`` check and nothing else, and the memory
accessors are not wrapped at all (they are swapped per-instance only
while a subscriber cares about memory events).  The differential suite
(``tests/test_observe_differential.py``) proves a fully observed run
is byte-identical to an unobserved one; the overhead benchmark
(``benchmarks/test_bench_observe.py``) prices both paths.

Subscribers subclass :class:`Observer` and override only the hooks
they need; :class:`ObserverHub` snapshots *which* hooks each observer
overrides at attach time, so the machine never calls a no-op hook in
its observed loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only (machine imports us)
    from repro.errors import MachineFault
    from repro.isa.instructions import Instruction
    from repro.machine.machine import Machine
    from repro.pma.module import ProtectedModule


class Observer:
    """Base class for event subscribers.  Every hook is a no-op here;
    subclasses override the ones they care about and the hub only
    routes events to overriding subscribers."""

    #: Observers that only consume per-event hooks (no per-instruction
    #: hook, no decode-cache hooks) may declare themselves
    #: *dispatch-transparent*: the machine keeps running translated
    #: basic blocks, compiling event emission directly into the block
    #: bodies, instead of demoting to the per-instruction interpreter.
    #: The differential suite proves both dispatch choices
    #: byte-identical, so this is purely a performance contract.
    dispatch_transparent: bool = False

    def bind_program(self, program: object) -> None:
        """Called by the loader when a :class:`LoadedProgram` finishes
        loading on a machine this observer is attached to.  Gives
        observers access to link-time metadata (symbol tables, frame
        layouts, the canary cell) that does not exist at attach time."""

    # -- instruction stream -------------------------------------------------

    def on_instruction(self, machine: "Machine", ip: int,
                       insn: "Instruction", length: int) -> None:
        """One instruction retired (executed without faulting)."""

    # -- data accesses ------------------------------------------------------

    def on_read(self, machine: "Machine", addr: int, size: int,
                value: int | bytes) -> None:
        """A checked read completed.  ``value`` is an int for word/byte
        reads and ``bytes`` for block reads."""

    def on_write(self, machine: "Machine", addr: int, size: int,
                 value: int | bytes) -> None:
        """A checked write completed (same value convention as reads)."""

    # -- control flow -------------------------------------------------------

    def on_call(self, machine: "Machine", site: int, target: int,
                return_addr: int, indirect: bool) -> None:
        """A ``call`` transferred to ``target``."""

    def on_ret(self, machine: "Machine", site: int, target: int) -> None:
        """A ``ret`` popped ``target`` (hijacked or not)."""

    def on_jump(self, machine: "Machine", site: int, target: int,
                indirect: bool) -> None:
        """An unconditional ``jmp`` executed."""

    def on_branch(self, machine: "Machine", site: int, target: int,
                  taken: bool) -> None:
        """A conditional branch executed (taken or fallen through)."""

    # -- platform -----------------------------------------------------------

    def on_syscall(self, machine: "Machine", number: int) -> None:
        """A syscall is about to run (same timing as ``syscall_hooks``)."""

    def on_fault(self, machine: "Machine", fault: "MachineFault",
                 ip: int) -> None:
        """Execution faulted at ``ip``; the fault is re-raised after."""

    # -- protected-module boundary ------------------------------------------

    def on_pma_enter(self, machine: "Machine",
                     module: "ProtectedModule", ip: int) -> None:
        """The IP entered a protected module through an entry point."""

    def on_pma_exit(self, machine: "Machine",
                    module: "ProtectedModule", ip: int) -> None:
        """The IP left a protected module."""

    # -- decode cache -------------------------------------------------------

    def on_decode_miss(self, machine: "Machine", ip: int) -> None:
        """The decoded-instruction cache missed at ``ip``."""

    def on_decode_invalidate(self, machine: "Machine", page: int | None,
                             count: int) -> None:
        """Cached decodes were dropped: ``count`` entries on ``page``,
        or everything when ``page`` is None (a wholesale flush).
        ``count`` totals both tiers -- per-instruction decodes and
        translated basic blocks rooted on the page."""

    # -- snapshot / restore --------------------------------------------------

    def on_snapshot_taken(self, machine: "Machine", pages: int) -> None:
        """The machine froze a copy-on-write snapshot of ``pages``
        pages (a campaign reset point)."""

    def on_snapshot_restored(self, machine: "Machine",
                             dirty_pages: int) -> None:
        """A snapshot was re-installed; ``dirty_pages`` pages had been
        written since it was taken and were rewound (the campaign's
        per-trial reset cost)."""

    # -- security invariants -------------------------------------------------

    def on_invariant_breach(self, machine: "Machine",
                            breach: object) -> None:
        """An :class:`~repro.observe.invariants.InvariantMonitor`
        detected a broken security invariant.  ``breach`` is the typed
        :class:`~repro.observe.invariants.InvariantBreach` record."""


#: hook method name -> hub slot holding the subscribers for that hook.
HOOKS: dict[str, str] = {
    "on_instruction": "insn",
    "on_read": "read",
    "on_write": "write",
    "on_call": "call",
    "on_ret": "ret",
    "on_jump": "jump",
    "on_branch": "branch",
    "on_syscall": "syscall",
    "on_fault": "fault",
    "on_pma_enter": "pma_enter",
    "on_pma_exit": "pma_exit",
    "on_decode_miss": "decode_miss",
    "on_decode_invalidate": "decode_invalidate",
    "on_snapshot_taken": "snapshot_taken",
    "on_snapshot_restored": "snapshot_restored",
    "on_invariant_breach": "breach",
}


class ObserverHub:
    """Per-event dispatch lists for a machine's attached observers.

    Built fresh on every attach/detach (rare) so the emit paths are a
    plain truthiness check plus a tuple walk (hot, when observed).
    An empty slot means "nobody overrides this hook" and costs the
    emitter a single falsy check.
    """

    __slots__ = ("observers",) + tuple(HOOKS.values())

    def __init__(self, observers: list[Observer]):
        self.observers: tuple[Observer, ...] = tuple(observers)
        for method_name, slot in HOOKS.items():
            base = getattr(Observer, method_name)
            subscribed = []
            for observer in observers:
                # Unwrap bound methods so both class-level overrides and
                # instance-level re-pointing (EventTrace's
                # include_memory=False) are classified correctly.
                method = getattr(observer, method_name)
                if getattr(method, "__func__", method) is not base:
                    subscribed.append(observer)
            setattr(self, slot, tuple(subscribed))

    @property
    def wants_memory(self) -> bool:
        """True if any subscriber cares about read/write events (the
        machine only wraps its memory accessors in that case)."""
        return bool(self.read or self.write)

    @property
    def transparent(self) -> bool:
        """True if translated-block dispatch can keep running with this
        hub attached.  Requires every observer to opt in
        (``dispatch_transparent``) and the hub to carry no hooks whose
        event counts are inherently dispatch-dependent: per-instruction
        retirement (blocks batch it) and the decode-cache hooks (cache
        populations differ between tiers)."""
        return (not self.insn and not self.decode_miss
                and not self.decode_invalidate
                and all(getattr(observer, "dispatch_transparent", False)
                        for observer in self.observers))


@dataclass
class Event:
    """One recorded observation (the generic tracer's unit).

    ``seq`` is a per-trace monotonic sequence number that doubles as
    the pseudo-timestamp in exports: the simulator has no wall clock
    of its own, and instruction order is the meaningful axis.
    """

    kind: str
    seq: int
    ip: int
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """A flat JSON-friendly dict (JSONL export / tests)."""
        out: dict[str, Any] = {"kind": self.kind, "seq": self.seq,
                               "ip": self.ip}
        out.update(self.data)
        return out
