"""``repro.observe`` -- zero-cost tracing, metrics and guest profiling.

The observability layer for the VN32 simulator (see DESIGN.md,
"Observability architecture"):

* :class:`Observer` / :class:`ObserverHub` -- the typed event bus the
  machine emits into (``Machine.attach_observer``);
* :class:`InstructionTracer` / :class:`EventTrace` -- bounded trace
  recorders with explicit ``dropped`` accounting;
* :class:`MetricsCollector` -- aggregate counters snapshot-able as a
  plain dict;
* :class:`GuestProfiler` -- flat/call-graph profiles and hot-page
  heatmaps over the linker's symbol table;
* :class:`InvariantMonitor` -- always-on security-invariant checks
  (return-address integrity, W^X, canary intactness, object bounds,
  PMA discipline, counter freshness) with first-breach attribution;
* :func:`export_chrome_trace` / :func:`export_jsonl` -- file exporters;
* :func:`observe_new_machines` -- a scope during which every newly
  constructed :class:`~repro.machine.machine.Machine` gets observers
  attached, so whole experiment pipelines (which build machines
  internally) can be instrumented from the outside.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from repro.observe.coverage import (
    MAP_SIZE,
    CoverageObserver,
    CrashSite,
    bucket_mask,
    edge_index,
    has_new_bits,
    stack_hash,
)
from repro.observe.events import Event, Observer, ObserverHub
from repro.observe.invariants import InvariantBreach, InvariantMonitor
from repro.observe.export import (
    chrome_trace_events,
    export_chrome_trace,
    export_jsonl,
)
from repro.observe.metrics import MetricsCollector
from repro.observe.profiler import GuestProfiler
from repro.observe.tracer import DEFAULT_LIMIT, EventTrace, InstructionTracer

__all__ = [
    "Event",
    "Observer",
    "ObserverHub",
    "InstructionTracer",
    "EventTrace",
    "MetricsCollector",
    "GuestProfiler",
    "InvariantMonitor",
    "InvariantBreach",
    "CoverageObserver",
    "CrashSite",
    "MAP_SIZE",
    "edge_index",
    "bucket_mask",
    "stack_hash",
    "has_new_bits",
    "chrome_trace_events",
    "export_chrome_trace",
    "export_jsonl",
    "observe_new_machines",
    "DEFAULT_LIMIT",
]


@contextmanager
def observe_new_machines(
    *factories: Callable[[object], Observer | None],
) -> Iterator[None]:
    """Attach observers to every Machine constructed inside the scope.

    Each factory is called with the new machine and returns an observer
    to attach (or ``None`` to skip).  Passing one *shared* collector
    from a closure aggregates across every machine a pipeline builds::

        metrics = MetricsCollector()
        with observe_new_machines(lambda machine: metrics):
            run_experiment()          # builds machines internally
        print(metrics.snapshot())

    Machines constructed outside the scope are untouched, so the
    zero-cost contract holds everywhere else.
    """
    # Imported here, not at module top: repro.machine imports
    # repro.observe.events, so a module-level import would be circular.
    from repro.machine import machine as machine_module

    for factory in factories:
        machine_module._DEFAULT_OBSERVER_FACTORIES.append(factory)
    try:
        yield
    finally:
        for factory in factories:
            machine_module._DEFAULT_OBSERVER_FACTORIES.remove(factory)
