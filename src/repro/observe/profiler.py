"""Guest profiler: flat / call-graph profiles and hot-page heatmaps.

Consumes call/ret and instruction-retired events and attributes work
to *guest* functions using the linker's symbol table
(:meth:`repro.link.image.Image.function_symbols`).  Because
attribution is by the retired IP (not by trusting the call stack), the
profiler stays truthful under the paper's adversarial control flow: a
ROP chain shows up as instructions attributed to whatever functions
the gadgets live in, and a hijacked ``ret`` simply unwinds whatever
frame alignment remains.

Three products:

* **flat profile** -- self instruction counts and call counts per
  function;
* **call graph** -- (caller, callee) edge counts plus inclusive
  instruction counts per function;
* **hot-page heatmap** -- instruction and data-access counts per page,
  the spatial view the scraping experiments reason about.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter
from typing import TYPE_CHECKING

from repro.observe.events import Observer

if TYPE_CHECKING:  # pragma: no cover - avoid observe -> link -> machine cycle
    from repro.link.image import Image
    from repro.link.loader import LoadedProgram

_PAGE_SHIFT = 12


class GuestProfiler(Observer):
    """Profiles guest execution against a function symbol table.

    ``functions`` is a sorted list of ``(address, name)`` function
    entries; build one from an image with :meth:`from_image` or
    directly from a loaded program with :meth:`for_program`.
    """

    def __init__(self, functions: list[tuple[int, str]] | None = None):
        self._functions = sorted(functions or [])
        self._starts = [addr for addr, _ in self._functions]
        self._names = [name for _, name in self._functions]
        #: function -> retired instructions attributed to it.
        self.self_counts: Counter[str] = Counter()
        #: function -> times it was called.
        self.call_counts: Counter[str] = Counter()
        #: (caller, callee) -> call count.
        self.edges: Counter[tuple[str, str]] = Counter()
        #: function -> instructions retired while it was on the stack.
        self.inclusive_counts: Counter[str] = Counter()
        #: page -> retired instructions fetched from it.
        self.code_page_counts: Counter[int] = Counter()
        #: page -> checked data accesses into it.
        self.data_page_counts: Counter[int] = Counter()
        self.total_instructions = 0
        #: live shadow frames: (callee name, total_instructions at entry).
        self._stack: list[tuple[str, int]] = []

    @classmethod
    def from_image(cls, image: "Image") -> "GuestProfiler":
        return cls(image.function_symbols())

    @classmethod
    def for_program(cls, program: "LoadedProgram") -> "GuestProfiler":
        return cls.from_image(program.image)

    # -- symbolisation -------------------------------------------------------

    def symbolize(self, address: int) -> str:
        """Name of the function containing ``address`` (nearest
        preceding entry), or the hex address outside all of them."""
        index = bisect_right(self._starts, address) - 1
        if index < 0:
            return f"0x{address:08x}"
        return self._names[index]

    # -- hooks ---------------------------------------------------------------

    def on_instruction(self, machine, ip, insn, length):
        self.total_instructions += 1
        self.self_counts[self.symbolize(ip)] += 1
        self.code_page_counts[ip >> _PAGE_SHIFT] += 1

    def on_read(self, machine, addr, size, value):
        self.data_page_counts[addr >> _PAGE_SHIFT] += 1

    def on_write(self, machine, addr, size, value):
        self.data_page_counts[addr >> _PAGE_SHIFT] += 1

    def on_call(self, machine, site, target, return_addr, indirect):
        callee = self.symbolize(target)
        self.call_counts[callee] += 1
        self.edges[(self.symbolize(site), callee)] += 1
        self._stack.append((callee, self.total_instructions))

    def on_ret(self, machine, site, target):
        if self._stack:
            callee, entered_at = self._stack.pop()
            self.inclusive_counts[callee] += (
                self.total_instructions - entered_at
            )

    # -- reports -------------------------------------------------------------

    def _drain_stack(self) -> None:
        """Charge still-open frames (program ended mid-call, or control
        flow never returned) their inclusive time."""
        while self._stack:
            callee, entered_at = self._stack.pop()
            self.inclusive_counts[callee] += (
                self.total_instructions - entered_at
            )

    def flat_profile(self) -> list[dict]:
        """Rows sorted by self-instruction count, descending."""
        self._drain_stack()
        rows = []
        for function, self_count in self.self_counts.most_common():
            rows.append({
                "function": function,
                "self": self_count,
                "inclusive": max(self.inclusive_counts[function], self_count),
                "calls": self.call_counts[function],
                "self_pct": 100.0 * self_count / self.total_instructions
                if self.total_instructions else 0.0,
            })
        return rows

    def call_graph(self) -> list[dict]:
        """Edge rows sorted by call count, descending."""
        return [
            {"caller": caller, "callee": callee, "calls": count}
            for (caller, callee), count in self.edges.most_common()
        ]

    def hot_pages(self, top: int = 10) -> list[dict]:
        """The most-touched pages, merging code and data heat."""
        pages = set(self.code_page_counts) | set(self.data_page_counts)
        rows = [
            {
                "page": page << _PAGE_SHIFT,
                "fetches": self.code_page_counts[page],
                "accesses": self.data_page_counts[page],
            }
            for page in pages
        ]
        rows.sort(key=lambda row: row["fetches"] + row["accesses"],
                  reverse=True)
        return rows[:top]
