"""Tracers: bounded recorders of the machine's event stream.

Two recorders live here:

* :class:`InstructionTracer` -- the successor of the legacy
  ``MachineConfig.trace`` list of ``(ip, insn)`` pairs.  The machine
  attaches one automatically when ``config.trace`` is set and serves
  it through the backwards-compatible ``Machine.trace`` property.
  Unlike the legacy list, hitting ``limit`` no longer *silently* stops
  recording: the ``dropped`` counter says exactly how many entries
  were discarded.
* :class:`EventTrace` -- records every event kind as typed
  :class:`~repro.observe.events.Event` records, ready for the Chrome
  trace-event / JSONL exporters (:mod:`repro.observe.export`) and for
  provenance queries ("which instruction wrote this address?").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.observe.events import Event, Observer

if TYPE_CHECKING:  # pragma: no cover
    from repro.errors import MachineFault
    from repro.isa.instructions import Instruction
    from repro.machine.machine import Machine
    from repro.pma.module import ProtectedModule

#: Default retention bound for both tracers.
DEFAULT_LIMIT = 100_000


class InstructionTracer(Observer):
    """Records ``(ip, insn)`` pairs, exactly like the legacy trace list."""

    def __init__(self, limit: int = DEFAULT_LIMIT):
        self.limit = limit
        self.entries: list[tuple[int, "Instruction"]] = []
        #: Entries discarded after ``entries`` filled up.  The legacy
        #: list just stopped growing with no indication.
        self.dropped = 0

    def on_instruction(self, machine: "Machine", ip: int,
                       insn: "Instruction", length: int) -> None:
        if len(self.entries) < self.limit:
            self.entries.append((ip, insn))
        else:
            self.dropped += 1


class EventTrace(Observer):
    """Records the full typed event stream, bounded by ``limit``.

    ``include_memory=False`` skips read/write events (the highest-volume
    kind) which also keeps the machine's memory accessors unwrapped.
    """

    def __init__(self, limit: int = DEFAULT_LIMIT, *,
                 include_memory: bool = True):
        self.limit = limit
        self.events: list[Event] = []
        self.dropped = 0
        self._seq = 0
        if not include_memory:
            # Re-point the hooks at the base no-ops so the hub sees
            # this observer as not subscribed to memory events.
            self.on_read = Observer.on_read.__get__(self)  # type: ignore[method-assign]
            self.on_write = Observer.on_write.__get__(self)  # type: ignore[method-assign]

    def _record(self, kind: str, ip: int, **data) -> None:
        seq = self._seq
        self._seq = seq + 1
        if len(self.events) < self.limit:
            self.events.append(Event(kind, seq, ip, data))
        else:
            self.dropped += 1

    # -- hooks ---------------------------------------------------------------

    def on_instruction(self, machine, ip, insn, length):
        self._record("insn", ip, mnemonic=insn.mnemonic, length=length)

    def on_read(self, machine, addr, size, value):
        self._record("read", machine.current_ip, addr=addr, size=size,
                     value=value if isinstance(value, int) else value.hex())

    def on_write(self, machine, addr, size, value):
        self._record("write", machine.current_ip, addr=addr, size=size,
                     value=value if isinstance(value, int) else value.hex())

    def on_call(self, machine, site, target, return_addr, indirect):
        self._record("call", site, target=target, return_addr=return_addr,
                     indirect=indirect)

    def on_ret(self, machine, site, target):
        self._record("ret", site, target=target)

    def on_jump(self, machine, site, target, indirect):
        self._record("jump", site, target=target, indirect=indirect)

    def on_branch(self, machine, site, target, taken):
        self._record("branch", site, target=target, taken=taken)

    def on_syscall(self, machine, number):
        self._record("syscall", machine.current_ip, number=number)

    def on_fault(self, machine, fault: "MachineFault", ip):
        self._record("fault", ip, fault=type(fault).__name__,
                     detail=str(fault))

    def on_pma_enter(self, machine, module: "ProtectedModule", ip):
        self._record("pma_enter", ip, module=module.name)

    def on_pma_exit(self, machine, module: "ProtectedModule", ip):
        self._record("pma_exit", ip, module=module.name)

    def on_decode_miss(self, machine, ip):
        self._record("decode_miss", ip)

    def on_decode_invalidate(self, machine, page, count):
        self._record("decode_invalidate", machine.current_ip,
                     page=page, count=count)

    def on_snapshot_taken(self, machine, pages):
        self._record("snapshot_taken", machine.current_ip, pages=pages)

    def on_snapshot_restored(self, machine, dirty_pages):
        self._record("snapshot_restored", machine.current_ip,
                     dirty_pages=dirty_pages)

    def on_invariant_breach(self, machine, breach):
        self._record("breach", breach.ip if breach.ip is not None else 0,
                     invariant=breach.invariant, detail=breach.detail)

    # -- queries -------------------------------------------------------------

    def writes_to(self, addr: int, size: int = 4) -> list[Event]:
        """Write events that touched any byte of ``[addr, addr+size)``
        -- the provenance primitive ("who overwrote the return
        address?")."""
        out = []
        for event in self.events:
            if event.kind != "write":
                continue
            start = event.data["addr"]
            if start < addr + size and addr < start + event.data["size"]:
                out.append(event)
        return out
