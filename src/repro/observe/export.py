"""Exporters for recorded event streams.

Two machine-readable formats plus helpers:

* **Chrome trace-event JSON** (``chrome://tracing`` / Perfetto): calls
  become ``B``/``E`` duration slices, everything else becomes instant
  events.  The simulator has no wall clock, so one event-sequence step
  is one microsecond of trace time -- the horizontal axis reads as
  "execution order", which is the honest unit for a simulator.
* **JSONL**: one flat JSON object per event, for ad-hoc querying.

Both accept an optional ``symbols`` map (``address -> name``) so call
slices are named after guest functions instead of raw addresses.
"""

from __future__ import annotations

import json
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.observe.events import Event
    from repro.observe.tracer import EventTrace


def _name(address: int, symbols: dict[int, str] | None) -> str:
    if symbols and address in symbols:
        return symbols[address]
    return f"0x{address:08x}"


def chrome_trace_events(events: list["Event"],
                        symbols: dict[int, str] | None = None,
                        pid: int = 1) -> list[dict]:
    """Convert recorded events to Chrome trace-event dicts.

    Calls open a ``B`` slice named after the callee; rets close the
    innermost open slice (``E``).  Hijacked control flow can leave
    slices unbalanced -- viewers tolerate that, and the imbalance is
    itself the interesting observation.  Faults, syscalls, PMA
    crossings, decode-cache events and memory writes become instant
    (``i``) events.
    """
    out: list[dict] = []
    depth = 0
    for event in events:
        base = {"pid": pid, "tid": 1, "ts": event.seq}
        if event.kind == "call":
            out.append({**base, "ph": "B",
                        "name": _name(event.data["target"], symbols),
                        "cat": "call",
                        "args": {"site": f"0x{event.ip:08x}",
                                 "indirect": event.data["indirect"]}})
            depth += 1
        elif event.kind == "ret":
            if depth > 0:
                out.append({**base, "ph": "E", "cat": "call",
                            "args": {"target":
                                     f"0x{event.data['target']:08x}"}})
                depth -= 1
            else:
                # A ret with no matching call in the recording window:
                # show it as an instant so hijacks stay visible.
                out.append({**base, "ph": "i", "s": "t", "cat": "control",
                            "name": "ret (unmatched)",
                            "args": {"target":
                                     f"0x{event.data['target']:08x}"}})
        elif event.kind in ("fault", "syscall", "pma_enter", "pma_exit",
                            "decode_miss", "decode_invalidate", "write",
                            "breach"):
            args = {key: (f"0x{value:08x}" if key in ("addr", "target")
                          and isinstance(value, int) else value)
                    for key, value in event.data.items()}
            args["ip"] = f"0x{event.ip:08x}"
            out.append({**base, "ph": "i", "s": "t", "cat": event.kind,
                        "name": event.kind, "args": args})
    return out


def export_chrome_trace(trace: "EventTrace", destination: str | IO[str],
                        symbols: dict[int, str] | None = None) -> dict:
    """Write ``{"traceEvents": [...]}`` JSON; returns the document."""
    document = {
        "traceEvents": chrome_trace_events(trace.events, symbols),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.observe",
            "recorded_events": len(trace.events),
            "dropped_events": trace.dropped,
        },
    }
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            json.dump(document, handle)
    else:
        json.dump(document, destination)
    return document


def export_jsonl(trace: "EventTrace", destination: str | IO[str]) -> int:
    """Write one JSON object per event; returns the line count."""
    lines = [json.dumps(event.to_dict()) for event in trace.events]
    payload = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(destination, str):
        with open(destination, "w") as handle:
            handle.write(payload)
    else:
        destination.write(payload)
    return len(lines)
