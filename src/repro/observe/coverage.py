"""Edge-coverage feedback over the control-flow event stream.

The greybox fuzzer (:mod:`repro.analysis.greybox`) needs AFL-style
coverage feedback: a fixed-size bitmap where every control-flow edge
the guest takes bumps one cell.  Real AFL instruments compiled code;
here the PR 2 event bus already reports every branch, jump, call and
ret with exact ``(site, target)`` pairs, so the map is derived from
events instead of inserted instrumentation -- the observed run stays
byte-identical to an unobserved one (the zero-cost contract), and the
same observer doubles as the crash-triage probe: it tracks the guest
call stack and records ``(fault type, faulting PC, call-stack hash)``
when a run dies.

Edges are mixed into ``MAP_SIZE`` cells with a deterministic integer
hash (no Python ``hash()``: the map must be identical across
processes and runs, because the fuzzer's corpus decisions and the
campaign-runner parallel path both depend on it).  Hit counts are
classified into AFL's power-of-two buckets, so "loop ran 40x instead
of 4x" counts as new behaviour while "39x vs 40x" does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.observe.events import Observer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.errors import MachineFault
    from repro.machine.machine import Machine

#: Cells in the coverage map.  4096 is plenty for the simulator's
#: programs (a few hundred real edges) while keeping collision odds
#: and per-run bookkeeping low.
MAP_SIZE = 1 << 12
_MAP_MASK = MAP_SIZE - 1

#: Per-event-kind salts so a call and a jump over the same
#: ``(site, target)`` pair land in different cells.
_SALT_BRANCH_TAKEN = 0x1F123BB5
_SALT_BRANCH_FALL = 0x2E1DA9E3
_SALT_JUMP = 0x3D4D3D4D
_SALT_CALL = 0x4C11DB7D
_SALT_RET = 0x5BD1E995

#: Knuth/Murmur-flavoured odd multipliers for the integer mix.
_MIX_A = 0x9E3779B1
_MIX_B = 0x85EBCA77


def edge_index(site: int, target: int, salt: int) -> int:
    """Deterministic map cell for one ``site -> target`` edge.

    The xor-shift finalizer folds the high product bits back down so
    aligned addresses (whose low product bits are all zero) still
    spread across the map instead of collapsing onto the salt.
    """
    digest = ((site * _MIX_A) ^ (target * _MIX_B) ^ salt) & 0xFFFFFFFF
    digest ^= digest >> 15
    digest = (digest * 0x2C1B3C6D) & 0xFFFFFFFF
    digest ^= digest >> 12
    return digest & _MAP_MASK


def bucket_mask(count: int) -> int:
    """AFL hit-count bucket as a single bit (1,2,3,4-7,8-15,...,128+)."""
    if count <= 3:
        return 1 << (count - 1)
    if count < 8:
        return 1 << 3
    if count < 16:
        return 1 << 4
    if count < 32:
        return 1 << 5
    if count < 128:
        return 1 << 6
    return 1 << 7


def stack_hash(stack: tuple[int, ...] | list[int]) -> int:
    """FNV-1a fold of the guest call stack (deterministic everywhere)."""
    digest = 0x811C9DC5
    for addr in stack:
        digest = ((digest ^ addr) * 0x01000193) & 0xFFFFFFFF
    return digest


@dataclass(frozen=True)
class CrashSite:
    """``(fault type, faulting PC, call-stack hash)`` -- the dedup key
    for crash triage.  Frozen (hashable, usable as a dict key) and
    picklable across the campaign runner's worker processes.

    ``first_breach`` names the first security invariant an attached
    :class:`~repro.observe.invariants.InvariantMonitor` saw broken
    before the crash (e.g. ``"canary"`` or ``"return-integrity"``), or
    ``None`` when no monitor ran or nothing was breached.  It extends
    the dedup key: the same faulting PC reached through different
    first breaches is two distinct crashes.  The default keeps old
    three-field call sites (and pickled PR 5 fixtures) constructing
    and comparing exactly as before."""

    fault: str
    ip: int | None
    call_hash: int
    first_breach: str | None = None


class CoverageObserver(Observer):
    """Edge-coverage bitmap + crash-site probe for one machine.

    Attach once, call :meth:`begin_run` before each input, then read
    :attr:`touched` / :meth:`edge_items` after the run.  ``counts`` is
    a persistent ``MAP_SIZE`` bytearray; only the cells listed in
    ``touched`` are live for the current run (and are zeroed lazily on
    the next ``begin_run``), so per-run reset cost is O(edges taken),
    not O(map size).
    """

    def __init__(self) -> None:
        self.counts = bytearray(MAP_SIZE)
        #: Map cells hit by the current run.
        self.touched: set[int] = set()
        #: Guest call stack (return addresses) for crash triage.
        self.call_stack: list[int] = []
        #: Set by :meth:`on_fault` when the current run dies.
        self.crash_site: CrashSite | None = None

    # -- per-run lifecycle ---------------------------------------------------

    def begin_run(self) -> None:
        """Reset per-run state (cheap: clears only touched cells)."""
        counts = self.counts
        for idx in self.touched:
            counts[idx] = 0
        self.touched.clear()
        self.call_stack.clear()
        self.crash_site = None

    def _hit(self, idx: int) -> None:
        count = self.counts[idx]
        if count < 255:
            self.counts[idx] = count + 1
        self.touched.add(idx)

    # -- event hooks ---------------------------------------------------------

    def on_branch(self, machine: "Machine", site: int, target: int,
                  taken: bool) -> None:
        salt = _SALT_BRANCH_TAKEN if taken else _SALT_BRANCH_FALL
        self._hit(edge_index(site, target, salt))

    def on_jump(self, machine: "Machine", site: int, target: int,
                indirect: bool) -> None:
        self._hit(edge_index(site, target, _SALT_JUMP))

    def on_call(self, machine: "Machine", site: int, target: int,
                return_addr: int, indirect: bool) -> None:
        self._hit(edge_index(site, target, _SALT_CALL))
        self.call_stack.append(return_addr)

    def on_ret(self, machine: "Machine", site: int, target: int) -> None:
        self._hit(edge_index(site, target, _SALT_RET))
        if self.call_stack:
            # Hijacked returns may not match the pushed address; the
            # stack still unwinds one frame (profiler-style tolerance).
            self.call_stack.pop()

    def on_fault(self, machine: "Machine", fault: "MachineFault",
                 ip: int) -> None:
        self.crash_site = CrashSite(
            type(fault).__name__, fault.ip if fault.ip is not None else ip,
            stack_hash(self.call_stack),
        )

    # -- results -------------------------------------------------------------

    def edge_items(self) -> tuple[tuple[int, int], ...]:
        """Sorted ``(cell, bucket_mask)`` pairs for the current run
        (sorted so sequential and parallel integration orders agree)."""
        counts = self.counts
        return tuple(
            (idx, bucket_mask(counts[idx])) for idx in sorted(self.touched)
        )

    def snapshot_counts(self) -> bytes:
        """The raw hit-count map (tests: determinism proofs)."""
        return bytes(self.counts)


def has_new_bits(virgin: bytearray, edges: tuple[tuple[int, int], ...]) -> bool:
    """Merge one run's ``(cell, bucket_mask)`` pairs into ``virgin``.

    Returns True if any cell gained a bucket bit the map had never
    seen -- AFL's "interesting input" test.  ``virgin`` accumulates
    across the whole campaign (allocate with ``bytearray(MAP_SIZE)``).
    """
    new = False
    for idx, mask in edges:
        seen = virgin[idx]
        if mask & ~seen:
            virgin[idx] = seen | mask
            new = True
    return new
