"""Edge-coverage feedback over the control-flow event stream.

The greybox fuzzer (:mod:`repro.analysis.greybox`) needs AFL-style
coverage feedback: a fixed-size bitmap where every control-flow edge
the guest takes bumps one cell.  Real AFL instruments compiled code;
here the PR 2 event bus already reports every branch, jump, call and
ret with exact ``(site, target)`` pairs, so the map is derived from
events instead of inserted instrumentation -- the observed run stays
byte-identical to an unobserved one (the zero-cost contract), and the
same observer doubles as the crash-triage probe: it tracks the guest
call stack and records ``(fault type, faulting PC, call-stack hash)``
when a run dies.

Edges are mixed into ``MAP_SIZE`` cells with a deterministic integer
hash (no Python ``hash()``: the map must be identical across
processes and runs, because the fuzzer's corpus decisions and the
campaign-runner parallel path both depend on it).  Hit counts are
classified into AFL's power-of-two buckets, so "loop ran 40x instead
of 4x" counts as new behaviour while "39x vs 40x" does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

from repro.observe.events import Observer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.errors import MachineFault
    from repro.machine.machine import Machine

#: Cells in the coverage map.  4096 is plenty for the simulator's
#: programs (a few hundred real edges) while keeping collision odds
#: and per-run bookkeeping low.
MAP_SIZE = 1 << 12
_MAP_MASK = MAP_SIZE - 1

#: Per-event-kind salts so a call and a jump over the same
#: ``(site, target)`` pair land in different cells.
_SALT_BRANCH_TAKEN = 0x1F123BB5
_SALT_BRANCH_FALL = 0x2E1DA9E3
_SALT_JUMP = 0x3D4D3D4D
_SALT_CALL = 0x4C11DB7D
_SALT_RET = 0x5BD1E995

#: Knuth/Murmur-flavoured odd multipliers for the integer mix.
_MIX_A = 0x9E3779B1
_MIX_B = 0x85EBCA77


def edge_index(site: int, target: int, salt: int) -> int:
    """Deterministic map cell for one ``site -> target`` edge.

    The xor-shift finalizer folds the high product bits back down so
    aligned addresses (whose low product bits are all zero) still
    spread across the map instead of collapsing onto the salt.
    """
    digest = ((site * _MIX_A) ^ (target * _MIX_B) ^ salt) & 0xFFFFFFFF
    digest ^= digest >> 15
    digest = (digest * 0x2C1B3C6D) & 0xFFFFFFFF
    digest ^= digest >> 12
    return digest & _MAP_MASK


def bucket_mask(count: int) -> int:
    """AFL hit-count bucket as a single bit (1,2,3,4-7,8-15,...,128+)."""
    if count <= 3:
        return 1 << (count - 1)
    if count < 8:
        return 1 << 3
    if count < 16:
        return 1 << 4
    if count < 32:
        return 1 << 5
    if count < 128:
        return 1 << 6
    return 1 << 7


def stack_hash(stack: tuple[int, ...] | list[int]) -> int:
    """FNV-1a fold of the guest call stack (deterministic everywhere)."""
    digest = 0x811C9DC5
    for addr in stack:
        digest = ((digest ^ addr) * 0x01000193) & 0xFFFFFFFF
    return digest


@dataclass(frozen=True)
class CrashSite:
    """``(fault type, faulting PC, call-stack hash)`` -- the dedup key
    for crash triage.  Frozen (hashable, usable as a dict key) and
    picklable across the campaign runner's worker processes.

    ``first_breach`` names the first security invariant an attached
    :class:`~repro.observe.invariants.InvariantMonitor` saw broken
    before the crash (e.g. ``"canary"`` or ``"return-integrity"``), or
    ``None`` when no monitor ran or nothing was breached.  It extends
    the dedup key: the same faulting PC reached through different
    first breaches is two distinct crashes.  The default keeps old
    three-field call sites (and pickled PR 5 fixtures) constructing
    and comparing exactly as before."""

    fault: str
    ip: int | None
    call_hash: int
    first_breach: str | None = None


class CoverageObserver(Observer):
    """Edge-coverage bitmap + crash-site probe for one machine.

    Attach once, call :meth:`begin_run` before each input, then read
    :attr:`touched` / :meth:`edge_items` after the run.  ``counts`` is
    a persistent ``MAP_SIZE`` bytearray; only the cells listed in
    ``touched`` are live for the current run (and are zeroed lazily on
    the next ``begin_run``), so per-run reset cost is O(edges taken),
    not O(map size).

    The observer is *dispatch-transparent*: it subscribes exactly to
    the control-transfer hooks the superblock translator bakes into
    compiled blocks (branch/jump/call/ret/fault), so an attached
    coverage probe keeps the machine on translated-block dispatch
    instead of demoting it to per-instruction stepping.  The event
    stream is identical either way (the differential suite proves the
    bitmap byte-identical across legs); observed fuzzing runs at block
    speed.
    """

    #: Compiled superblocks emit branch/jump/call/ret/fault events in
    #: the same order and with the same arguments as the stepped
    #: interpreter, so block dispatch may continue with this observer
    #: attached (see ObserverHub.transparent).
    dispatch_transparent = True

    def __init__(self) -> None:
        self.counts = bytearray(MAP_SIZE)
        #: Map cells hit by the current run.
        self.touched: set[int] = set()
        #: Guest call stack (return addresses) for crash triage.
        self.call_stack: list[int] = []
        #: Set by :meth:`on_fault` when the current run dies.
        self.crash_site: CrashSite | None = None

    # -- per-run lifecycle ---------------------------------------------------

    def begin_run(self) -> None:
        """Reset per-run state (cheap: clears only touched cells)."""
        counts = self.counts
        for idx in self.touched:
            counts[idx] = 0
        self.touched.clear()
        self.call_stack.clear()
        self.crash_site = None

    def _hit(self, idx: int) -> None:
        count = self.counts[idx]
        if count < 255:
            self.counts[idx] = count + 1
        self.touched.add(idx)

    # -- event hooks ---------------------------------------------------------

    def on_branch(self, machine: "Machine", site: int, target: int,
                  taken: bool) -> None:
        salt = _SALT_BRANCH_TAKEN if taken else _SALT_BRANCH_FALL
        self._hit(edge_index(site, target, salt))

    def on_jump(self, machine: "Machine", site: int, target: int,
                indirect: bool) -> None:
        self._hit(edge_index(site, target, _SALT_JUMP))

    def on_call(self, machine: "Machine", site: int, target: int,
                return_addr: int, indirect: bool) -> None:
        self._hit(edge_index(site, target, _SALT_CALL))
        self.call_stack.append(return_addr)

    def on_ret(self, machine: "Machine", site: int, target: int) -> None:
        self._hit(edge_index(site, target, _SALT_RET))
        if self.call_stack:
            # Hijacked returns may not match the pushed address; the
            # stack still unwinds one frame (profiler-style tolerance).
            self.call_stack.pop()

    def on_fault(self, machine: "Machine", fault: "MachineFault",
                 ip: int) -> None:
        self.crash_site = CrashSite(
            type(fault).__name__, fault.ip if fault.ip is not None else ip,
            stack_hash(self.call_stack),
        )

    # -- results -------------------------------------------------------------

    def edge_items(self) -> tuple[tuple[int, int], ...]:
        """Sorted ``(cell, bucket_mask)`` pairs for the current run
        (sorted so sequential and parallel integration orders agree)."""
        counts = self.counts
        return tuple(
            (idx, bucket_mask(counts[idx])) for idx in sorted(self.touched)
        )

    def snapshot_counts(self) -> bytes:
        """The raw hit-count map (tests: determinism proofs)."""
        return bytes(self.counts)


def has_new_bits(virgin: bytearray, edges: tuple[tuple[int, int], ...]) -> bool:
    """Merge one run's ``(cell, bucket_mask)`` pairs into ``virgin``.

    Returns True if any cell gained a bucket bit the map had never
    seen -- AFL's "interesting input" test.  ``virgin`` accumulates
    across the whole campaign (allocate with ``bytearray(MAP_SIZE)``).
    """
    new = False
    for idx, mask in edges:
        seen = virgin[idx]
        if mask & ~seen:
            virgin[idx] = seen | mask
            new = True
    return new


# ---------------------------------------------------------------------------
# Wire format: packed edge sets and the shared virgin map
# ---------------------------------------------------------------------------

#: Bytes per packed edge: 2-byte little-endian cell index + 1-byte
#: bucket mask.  MAP_SIZE is 2**12, so the index fits 16 bits with
#: room for the map to grow 16x before the format changes.
_EDGE_RECORD = 3


def pack_edges(edges: tuple[tuple[int, int], ...]) -> bytes:
    """Pack sorted ``(cell, bucket_mask)`` pairs into a compact blob.

    Three bytes per edge instead of a pickled tuple-of-tuples (~25
    bytes per edge plus object overhead) -- this is what crosses the
    campaign runner's process boundary per execution.
    """
    out = bytearray(len(edges) * _EDGE_RECORD)
    pos = 0
    for idx, mask in edges:
        out[pos] = idx & 0xFF
        out[pos + 1] = idx >> 8
        out[pos + 2] = mask
        pos += _EDGE_RECORD
    return bytes(out)


def unpack_edges(blob: bytes) -> tuple[tuple[int, int], ...]:
    """Inverse of :func:`pack_edges` (order preserved)."""
    return tuple(
        (blob[pos] | (blob[pos + 1] << 8), blob[pos + 2])
        for pos in range(0, len(blob), _EDGE_RECORD)
    )


class SharedVirginMap:
    """The campaign-global virgin bitmap in shared memory.

    Protocol (master-authoritative, lock-free):

    * the fuzzing master :meth:`create`\\ s the segment and is the only
      writer -- it :meth:`publish`\\ es its private virgin map after
      integrating each batch;
    * workers :meth:`attach` by name and periodically OR the published
      bytes into a private overlay (:meth:`merge_into`), against which
      they test-and-set each run's edges locally;
    * a worker ships a run's full edge set only when the run set a bit
      its overlay had never seen.  Filtered runs ship an empty blob.

    This is sound without any locking because virgin bits are
    monotonic: anything a worker's overlay knows is a subset of what
    the master's map knows by the time the master integrates that
    worker's later results, so "not new locally" always implies "not
    new globally".  A stale or torn read only makes a worker ship
    edges it did not strictly need to -- never drop coverage.
    """

    def __init__(self, shm: shared_memory.SharedMemory, owner: bool) -> None:
        self._shm = shm
        self._owner = owner

    @property
    def name(self) -> str:
        """Segment name workers use to :meth:`attach`."""
        return self._shm.name

    @classmethod
    def create(cls) -> "SharedVirginMap":
        """Allocate a fresh all-zero map (master side)."""
        shm = shared_memory.SharedMemory(create=True, size=MAP_SIZE)
        shm.buf[:MAP_SIZE] = bytes(MAP_SIZE)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedVirginMap":
        """Open an existing map by name (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        # The master owns the segment's lifetime; stop this process's
        # resource tracker from also unlinking it (and from warning
        # about a "leak") at worker shutdown.
        try:  # pragma: no cover - tracker internals vary by version
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return cls(shm, owner=False)

    def publish(self, virgin: bytearray) -> None:
        """Overwrite the shared bytes with the master's map."""
        self._shm.buf[:MAP_SIZE] = bytes(virgin)

    def snapshot(self) -> bytes:
        """The currently published map."""
        return bytes(self._shm.buf[:MAP_SIZE])

    def merge_into(self, local: bytearray) -> None:
        """OR the published bits into a worker's private overlay."""
        merged = int.from_bytes(local, "little") | int.from_bytes(
            self._shm.buf[:MAP_SIZE], "little"
        )
        local[:] = merged.to_bytes(MAP_SIZE, "little")

    def close(self) -> None:
        """Detach; the owner also unlinks the segment."""
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
