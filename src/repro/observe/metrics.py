"""The metrics registry: cheap aggregate counters over the event bus.

Where the tracers keep the *sequence* of events, the collector keeps
only aggregates: per-opcode retirement histograms, control-transfer
counts (split direct/indirect -- the quantity CFI polices), checked
memory traffic and the pages it touched, syscalls by number, faults by
type, decode-cache behaviour, and red-zone-checked accesses.  One
collector may be attached to many machines (an experiment pipeline
builds machines internally); counts simply aggregate.

``snapshot()`` returns a plain nested dict so reports, JSON exports
and tests need no knowledge of this class.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.observe.events import Observer

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

_PAGE_SHIFT = 12


class MetricsCollector(Observer):
    """Aggregate execution metrics, snapshot-able as a plain dict."""

    def __init__(self) -> None:
        self.instructions = 0
        self.opcodes: Counter[str] = Counter()
        self.control: Counter[str] = Counter()
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.pages_touched: set[int] = set()
        self.code_pages: set[int] = set()
        self.syscalls: Counter[int] = Counter()
        self.faults: Counter[str] = Counter()
        self.decode_misses = 0
        self.decode_invalidated_entries = 0
        self.decode_flushes = 0
        self.pma_crossings = 0
        self.redzone_checked_accesses = 0
        self.snapshots_taken = 0
        self.snapshots_restored = 0
        self.snapshot_dirty_pages = 0
        self.breaches: Counter[str] = Counter()

    # -- hooks ---------------------------------------------------------------

    def on_instruction(self, machine, ip, insn, length):
        self.instructions += 1
        self.opcodes[insn.mnemonic] += 1
        self.code_pages.add(ip >> _PAGE_SHIFT)

    def on_read(self, machine, addr, size, value):
        self.reads += 1
        self.bytes_read += size
        self.pages_touched.add(addr >> _PAGE_SHIFT)
        if machine.config.redzones:
            self.redzone_checked_accesses += 1

    def on_write(self, machine, addr, size, value):
        self.writes += 1
        self.bytes_written += size
        self.pages_touched.add(addr >> _PAGE_SHIFT)
        if machine.config.redzones:
            self.redzone_checked_accesses += 1

    def on_call(self, machine, site, target, return_addr, indirect):
        self.control["call_indirect" if indirect else "call"] += 1

    def on_ret(self, machine, site, target):
        self.control["ret"] += 1

    def on_jump(self, machine, site, target, indirect):
        self.control["jump_indirect" if indirect else "jump"] += 1

    def on_branch(self, machine, site, target, taken):
        self.control["branch_taken" if taken else "branch_not_taken"] += 1

    def on_syscall(self, machine, number):
        self.syscalls[number] += 1

    def on_fault(self, machine, fault, ip):
        self.faults[type(fault).__name__] += 1

    def on_decode_miss(self, machine, ip):
        self.decode_misses += 1

    def on_decode_invalidate(self, machine, page, count):
        self.decode_invalidated_entries += count
        if page is None:
            self.decode_flushes += 1

    def on_pma_enter(self, machine, module, ip):
        self.pma_crossings += 1

    def on_snapshot_taken(self, machine, pages):
        self.snapshots_taken += 1

    def on_snapshot_restored(self, machine, dirty_pages):
        self.snapshots_restored += 1
        self.snapshot_dirty_pages += dirty_pages

    def on_invariant_breach(self, machine, breach):
        self.breaches[breach.invariant] += 1

    # -- derived -------------------------------------------------------------

    @property
    def indirect_transfers(self) -> int:
        """Indirect calls + indirect jumps: the population CFI polices."""
        return self.control["call_indirect"] + self.control["jump_indirect"]

    def snapshot(self) -> dict:
        """All counters as a plain nested dict (stable, JSON-friendly)."""
        hits = max(0, self.instructions - self.decode_misses)
        return {
            "instructions": self.instructions,
            "opcodes": dict(sorted(self.opcodes.items())),
            "control": dict(sorted(self.control.items())),
            "memory": {
                "reads": self.reads,
                "writes": self.writes,
                "bytes_read": self.bytes_read,
                "bytes_written": self.bytes_written,
                "pages_touched": len(self.pages_touched),
                "code_pages": len(self.code_pages),
            },
            "syscalls": {number: count for number, count
                         in sorted(self.syscalls.items())},
            "faults": dict(sorted(self.faults.items())),
            "decode_cache": {
                "hits": hits,
                "misses": self.decode_misses,
                "invalidated_entries": self.decode_invalidated_entries,
                "flushes": self.decode_flushes,
            },
            "pma_crossings": self.pma_crossings,
            "redzone_checked_accesses": self.redzone_checked_accesses,
            "snapshots": {
                "taken": self.snapshots_taken,
                "restored": self.snapshots_restored,
                "dirty_pages_restored": self.snapshot_dirty_pages,
            },
            "invariant_breaches": dict(sorted(self.breaches.items())),
        }
