"""Vulnerability-introduction countermeasures: static analysis and
testing with run-time checks (Section III-C2)."""

from repro.analysis.corpus import CORPUS, CorpusEntry
from repro.analysis.fuzzer import FuzzReport, compare_detection, fuzz_campaign
from repro.analysis.static_analyzer import (
    Finding,
    StaticAnalyzer,
    analyze_source,
    evaluate_on_corpus,
)

__all__ = [
    "CORPUS",
    "CorpusEntry",
    "FuzzReport",
    "compare_detection",
    "fuzz_campaign",
    "Finding",
    "StaticAnalyzer",
    "analyze_source",
    "evaluate_on_corpus",
]
