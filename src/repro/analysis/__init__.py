"""Vulnerability-introduction countermeasures: static analysis and
testing with run-time checks (Section III-C2)."""

from repro.analysis.corpus import CORPUS, CorpusEntry
from repro.analysis.fuzzer import FuzzReport, compare_detection, fuzz_campaign
from repro.analysis.greybox import (
    CoverageTrial,
    CrashRecord,
    ExecOutcome,
    GreyboxFuzzer,
    GreyboxReport,
    InstrumentedFactory,
    SnapshotExecutor,
    SourceFactory,
    VictimFactory,
    minimize_input,
)
from repro.analysis.static_analyzer import (
    Finding,
    StaticAnalyzer,
    analyze_source,
    evaluate_on_corpus,
)

__all__ = [
    "CORPUS",
    "CorpusEntry",
    "FuzzReport",
    "compare_detection",
    "fuzz_campaign",
    "GreyboxFuzzer",
    "GreyboxReport",
    "SnapshotExecutor",
    "ExecOutcome",
    "CrashRecord",
    "CoverageTrial",
    "InstrumentedFactory",
    "VictimFactory",
    "SourceFactory",
    "minimize_input",
    "Finding",
    "StaticAnalyzer",
    "analyze_source",
    "evaluate_on_corpus",
]
