"""Fuzz testing, with and without run-time memory checks.

Section III-C2: testing for memory-safety bugs "is made significantly
more effective with the use of run-time checks" [16][17], because many
illegal accesses are silent -- an overflow into an adjacent local
corrupts data without crashing, so a plain fuzzer never notices.
ASan-style red zones turn every such access into an immediate fault.

:func:`fuzz_campaign` measures exactly that: the fraction of randomly
generated inputs whose memory-safety violation is *detected*, for a
plain build vs an instrumented build of the same program.  It is the
*blind* baseline the coverage-guided loop in
:mod:`repro.analysis.greybox` is compared against; both share the same
:class:`~repro.analysis.greybox.SnapshotExecutor` fork-server, so the
comparison isolates the search strategy, not the harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter

from repro.machine.machine import RunStatus
from repro.mitigations.config import MitigationConfig, NONE, TESTING


@dataclass
class FuzzReport:
    """Outcome of one fuzzing campaign.

    Triggering inputs are split into two ground-truth classes:

    * *silent* -- the overflow corrupts only adjacent data (the
      ``is_admin`` flag), which never crashes a plain build;
    * *smashing* -- the overflow reaches the frame's saved registers,
      which usually crashes sooner or later even without checks.
    """

    program: str
    config: str
    runs: int = 0
    triggering: int = 0
    silent_class: int = 0
    smashing_class: int = 0
    #: Triggering inputs that produced an observable fault, per class.
    detected: int = 0
    detected_silent: int = 0
    detected_smashing: int = 0
    #: Faults by type name.
    faults: dict = field(default_factory=dict)
    #: 1-based index of the first faulting execution (None: never).
    first_detected_exec: int | None = None
    duration_seconds: float = 0.0

    @property
    def detection_rate(self) -> float:
        return self.detected / self.triggering if self.triggering else 0.0

    @property
    def silent_detection_rate(self) -> float:
        return self.detected_silent / self.silent_class if self.silent_class else 0.0


def _random_input(rng: random.Random, max_len: int = 64) -> bytes:
    # randrange upper bound is exclusive; +1 so the boundary-length
    # input (exactly max_len bytes) is actually generated.  The old
    # `randrange(0, max_len)` capped campaigns at max_len - 1 bytes --
    # precisely the frame-smashing lengths the experiment measures.
    return rng.randbytes(rng.randrange(0, max_len + 1))


def fuzz_campaign(
    program_name: str = "data_only",
    config: MitigationConfig = NONE,
    *,
    runs: int = 200,
    seed: int = 1,
    triggers_at: int = 17,
    smashes_at: int = 21,
    max_len: int = 64,
    executor=None,
) -> FuzzReport:
    """Fuzz one victim with blind random inputs.

    ``triggers_at`` is the smallest input length that overflows the
    buffer; ``smashes_at`` the smallest that reaches the saved frame
    registers (ground truth for the victim used).  The interesting
    comparison is ``config=NONE`` (silent corruption) vs
    ``config=TESTING`` (ASan red zones).

    The victim is built **once** and every input runs through a
    snapshot/restore :class:`~repro.analysis.greybox.SnapshotExecutor`
    (pass ``executor`` to reuse an already-warm one); the campaign no
    longer pays a full compile + link + load per input.
    """
    # Imported here, not at module top: greybox imports this module's
    # sibling packages and keeping fuzzer.py import-light preserves the
    # legacy `from repro.analysis.fuzzer import ...` startup cost.
    from repro.analysis.greybox import SnapshotExecutor, VictimFactory

    rng = random.Random(seed)
    report = FuzzReport(program_name, config.describe())
    if executor is None:
        executor = SnapshotExecutor(VictimFactory(program_name, config))
    started = perf_counter()
    for _ in range(runs):
        data = _random_input(rng, max_len)
        result = executor.run(data)
        report.runs += 1
        detected = result.status is RunStatus.FAULT
        if detected and report.first_detected_exec is None:
            report.first_detected_exec = report.runs
        if len(data) < triggers_at:
            continue
        report.triggering += 1
        silent = len(data) < smashes_at
        if silent:
            report.silent_class += 1
        else:
            report.smashing_class += 1
        if detected:
            report.detected += 1
            if silent:
                report.detected_silent += 1
            else:
                report.detected_smashing += 1
            fault_name = type(result.fault).__name__
            report.faults[fault_name] = report.faults.get(fault_name, 0) + 1
    report.duration_seconds = perf_counter() - started
    return report


def compare_detection(
    program_name: str = "data_only",
    *,
    runs: int = 150,
    seed: int = 1,
    triggers_at: int = 17,
    smashes_at: int = 21,
) -> dict:
    """Plain vs ASan detection rates on the same inputs.

    On ``data_only`` the overflow silently flips a neighbouring local,
    so the plain build detects (almost) nothing while the instrumented
    build flags every triggering input with a
    :class:`~repro.errors.RedZoneFault`.
    """
    plain = fuzz_campaign(program_name, NONE, runs=runs, seed=seed,
                          triggers_at=triggers_at, smashes_at=smashes_at)
    checked = fuzz_campaign(program_name, TESTING, runs=runs, seed=seed,
                            triggers_at=triggers_at, smashes_at=smashes_at)
    return {
        "program": program_name,
        "plain": plain,
        "asan": checked,
        "plain_rate": plain.detection_rate,
        "asan_rate": checked.detection_rate,
        "plain_silent_rate": plain.silent_detection_rate,
        "asan_silent_rate": checked.silent_detection_rate,
    }
