"""Labelled corpus for evaluating the static analyzer and the fuzzer.

Each entry is a small MinC program with ground truth: does it contain
a memory-safety vulnerability?  The corpus deliberately includes the
cases that make static analysis imprecise (Section III-C2 / [13]):
value-dependent safety that a syntactic tool cannot see (false
positives) and aliased writes it cannot track (false negatives).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CorpusEntry:
    name: str
    source: str
    vulnerable: bool
    #: What a syntactic analyzer is expected to do: 'hit', 'miss'
    #: (false negative), or 'false-positive'.
    expected_analysis: str
    note: str = ""


CORPUS: list[CorpusEntry] = [
    CorpusEntry(
        "exact_read",
        """
void main() {
    char buf[16];
    read(0, buf, 16);
    write(1, buf, 16);
}
""",
        vulnerable=False,
        expected_analysis="clean",
        note="read length equals the buffer size",
    ),
    CorpusEntry(
        "overflow_read",
        """
void main() {
    char buf[16];
    read(0, buf, 32);
    write(1, buf, 16);
}
""",
        vulnerable=True,
        expected_analysis="hit",
        note="the paper's Figure 1 bug",
    ),
    CorpusEntry(
        "overread_write",
        """
void main() {
    char buf[8];
    read(0, buf, 8);
    write(1, buf, 64);
}
""",
        vulnerable=True,
        expected_analysis="hit",
        note="Heartbleed-style over-read",
    ),
    CorpusEntry(
        "bounded_loop",
        """
void main() {
    char buf[16];
    int i;
    for (i = 0; i < 16; i = i + 1) {
        buf[i] = 'a';
    }
    write(1, buf, 16);
}
""",
        vulnerable=False,
        expected_analysis="clean",
        note="loop bound matches the array size",
    ),
    CorpusEntry(
        "off_by_one_loop",
        """
void main() {
    char buf[16];
    int i;
    for (i = 0; i <= 16; i = i + 1) {
        buf[i] = 'a';
    }
    write(1, buf, 16);
}
""",
        vulnerable=True,
        expected_analysis="hit",
        note="classic <= bound off-by-one",
    ),
    CorpusEntry(
        "unchecked_input_index",
        """
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() {
    int table[8];
    int idx = read_int();
    table[idx] = read_int();
    print_int(table[0]);
}
""",
        vulnerable=True,
        expected_analysis="hit",
        note="attacker-controlled index, no guard",
    ),
    CorpusEntry(
        "guarded_input_index",
        """
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() {
    int table[8];
    int idx = read_int();
    if (idx >= 0) {
        if (idx < 8) {
            table[idx] = read_int();
        }
    }
    print_int(table[0]);
}
""",
        vulnerable=False,
        expected_analysis="clean",
        note="properly guarded index",
    ),
    CorpusEntry(
        "wrong_guard",
        """
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() {
    int table[8];
    int idx = read_int();
    if (idx <= 8) {
        table[idx] = read_int();
    }
    print_int(table[0]);
}
""",
        vulnerable=True,
        expected_analysis="hit",
        note="guard uses <= size (and misses negatives)",
    ),
    CorpusEntry(
        "clamped_length",
        """
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() {
    char buf[16];
    int n = read_int();
    if (n > 16) { n = 16; }
    if (n < 0) { n = 0; }
    read(0, buf, n);
    write(1, buf, 16);
}
""",
        vulnerable=False,
        expected_analysis="false-positive",
        note="value flow makes it safe; a syntactic tool still warns",
    ),
    CorpusEntry(
        "aliased_overflow",
        """
void fill(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = 'x';
    }
}
void main() {
    char buf[8];
    fill(buf, 32);
    write(1, buf, 8);
}
""",
        vulnerable=True,
        expected_analysis="miss",
        note="overflow through an aliased pointer: intraprocedural "
             "analysis cannot see the callee's bound",
    ),
    CorpusEntry(
        "aliased_in_bounds",
        """
void fill(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = 'x';
    }
}
void main() {
    char buf[8];
    fill(buf, 8);
    write(1, buf, 8);
}
""",
        vulnerable=False,
        expected_analysis="clean",
        note="same aliasing shape but in bounds: the interprocedural "
             "rule must not flag it",
    ),
    CorpusEntry(
        "dangling_return",
        """
int *broken() {
    int local = 5;
    return &local;
}
void main() {
    int *p = broken();
    print_int(*p);
}
""",
        vulnerable=True,
        expected_analysis="hit",
        note="temporal: address of a local escapes via return",
    ),
    CorpusEntry(
        "global_return_ok",
        """
static int cell = 5;
int *handle() {
    return &cell;
}
void main() {
    int *p = handle();
    print_int(*p);
}
""",
        vulnerable=False,
        expected_analysis="clean",
        note="returning the address of a global is fine",
    ),
    CorpusEntry(
        "constant_index_ok",
        """
void main() {
    int table[4];
    table[0] = 1;
    table[3] = 2;
    print_int(table[0] + table[3]);
}
""",
        vulnerable=False,
        expected_analysis="clean",
        note="constant in-bounds indices",
    ),
    CorpusEntry(
        "constant_index_oob",
        """
void main() {
    int table[4];
    table[4] = 1;
    print_int(table[0]);
}
""",
        vulnerable=True,
        expected_analysis="hit",
        note="constant out-of-bounds index",
    ),
    CorpusEntry(
        "write_const_over",
        """
void main() {
    char greeting[8];
    read(0, greeting, 8);
    write(1, greeting, 12);
}
""",
        vulnerable=True,
        expected_analysis="hit",
        note="constant over-read on output",
    ),
    CorpusEntry(
        "loop_index_from_input",
        """
int read_int() { int v = 0; read(0, &v, 4); return v; }
void main() {
    char buf[16];
    int n = read_int();
    int i;
    for (i = 0; i < n; i = i + 1) {
        buf[i] = 'z';
    }
    write(1, buf, 16);
}
""",
        vulnerable=True,
        expected_analysis="hit",
        note="loop bound comes from input",
    ),
]
