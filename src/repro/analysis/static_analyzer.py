"""A syntactic static analyzer for memory-safety bugs in MinC.

Models the "tools requiring little developer effort, but suffering
from false positives and false negatives" of Section III-C2 [13].  It
is intraprocedural and value-flow-free on purpose: its measured
precision/recall on the corpus *is* the experiment -- the numbers show
why such tools assist code review rather than replace it.

Rules:

* **R1 constant-length I/O** -- ``read``/``write`` into a statically
  sized array with a constant length larger than the array.
* **R2 variable-length I/O** -- same, but the length is not a
  constant: reported as *possible* (no value tracking, hence the
  false positive on clamped lengths).
* **R3 unguarded index** -- indexing a sized array with a non-constant
  expression not dominated by a recognisable ``idx < bound`` guard
  with ``bound <= size`` (loop conditions count as guards).
* **R4 constant index out of bounds.**
* **R5 escaping local** -- returning ``&local`` or a local array.
* **R6 interprocedural loop bound** (``interprocedural=True`` only) --
  a sized array passed to a callee that loops ``p[i]`` up to a bound
  that, after substituting the caller's constant arguments, exceeds
  the array.  This is the "more effort, higher assurance" setting the
  paper contrasts with lightweight tools ([14][15] vs [13]): it closes
  the aliased-overflow false negative at the cost of a deeper
  analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minic import ast
from repro.minic.parser import parse
from repro.minic.sema import analyze
from repro.minic.types import ArrayType


@dataclass(frozen=True)
class Finding:
    rule: str
    line: int
    message: str
    #: 'definite' findings fire on constants; 'possible' ones on
    #: unknown values (the false-positive-prone class).
    confidence: str


def _constant_value(expr: ast.Expr) -> int | None:
    if isinstance(expr, ast.IntLit):
        return expr.value
    return None


def _array_size(expr: ast.Expr) -> int | None:
    """Static size of a buffer expression, if the analyzer can see it."""
    if isinstance(expr, ast.Ident) and isinstance(expr.type, ArrayType):
        return None if expr.type.size is None else expr.type.size * _elem(expr.type)
    return None


def _elem(array_type: ArrayType) -> int:
    from repro.minic.types import sizeof

    return sizeof(array_type.element)


class StaticAnalyzer:
    """Runs the rules over one translation unit."""

    def __init__(self, interprocedural: bool = False) -> None:
        self.findings: list[Finding] = []
        self.interprocedural = interprocedural
        #: Stack of (variable-name, bound) guards currently dominating.
        self._guards: list[tuple[str, int]] = []

    # -- public API -------------------------------------------------------

    def analyze_source(self, source: str) -> list[Finding]:
        program = analyze(parse(source))
        for func in program.functions:
            if func.body is not None:
                self._function(func)
        return self.findings

    # -- helpers -------------------------------------------------------------

    def _report(self, rule: str, line: int, message: str,
                confidence: str = "definite") -> None:
        self.findings.append(Finding(rule, line, message, confidence))

    def _guard_from_condition(self, cond: ast.Expr) -> list[tuple[str, int]]:
        """Extract ``ident < const`` / ``ident <= const`` guards."""
        guards = []
        if isinstance(cond, ast.Binary):
            if cond.op in ("<", "<=") and isinstance(cond.left, ast.Ident):
                bound = _constant_value(cond.right)
                if bound is not None:
                    limit = bound if cond.op == "<" else bound + 1
                    guards.append((cond.left.name, limit))
            elif cond.op == "&&":
                guards += self._guard_from_condition(cond.left)
                guards += self._guard_from_condition(cond.right)
        return guards

    def _guarded_below(self, name: str, size: int) -> bool:
        return any(g_name == name and g_limit <= size
                   for g_name, g_limit in self._guards)

    # -- traversal -------------------------------------------------------------

    def _function(self, func: ast.FuncDef) -> None:
        self._locals = set()
        self._collect_local_names(func.body)
        self._stmt(func.body, func)

    def _collect_local_names(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self._collect_local_names(child)
        elif isinstance(stmt, ast.VarDecl):
            self._locals.add(stmt.name)
        elif isinstance(stmt, ast.If):
            self._collect_local_names(stmt.then_branch)
            if stmt.else_branch:
                self._collect_local_names(stmt.else_branch)
        elif isinstance(stmt, (ast.While,)):
            self._collect_local_names(stmt.body)
        elif isinstance(stmt, ast.For):
            if stmt.init:
                self._collect_local_names(stmt.init)
            self._collect_local_names(stmt.body)

    def _stmt(self, stmt: ast.Stmt, func: ast.FuncDef) -> None:
        if isinstance(stmt, ast.Block):
            for child in stmt.statements:
                self._stmt(child, func)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._expr(stmt.init)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.condition)
            added = self._guard_from_condition(stmt.condition)
            self._guards.extend(added)
            self._stmt(stmt.then_branch, func)
            del self._guards[len(self._guards) - len(added):]
            if stmt.else_branch is not None:
                self._stmt(stmt.else_branch, func)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.condition)
            added = self._guard_from_condition(stmt.condition)
            self._guards.extend(added)
            self._stmt(stmt.body, func)
            del self._guards[len(self._guards) - len(added):]
        elif isinstance(stmt, ast.For):
            if stmt.init is not None:
                self._stmt(stmt.init, func)
            added = []
            if stmt.condition is not None:
                self._expr(stmt.condition)
                added = self._guard_from_condition(stmt.condition)
            self._guards.extend(added)
            self._stmt(stmt.body, func)
            if stmt.step is not None:
                self._expr(stmt.step)
            del self._guards[len(self._guards) - len(added):]
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._check_escape(stmt.value)
                self._expr(stmt.value)
        elif isinstance(stmt, ast.ExprStmt):
            self._expr(stmt.expr)

    def _check_escape(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.AddrOf):
            operand = expr.operand
            if isinstance(operand, ast.Ident) and isinstance(
                operand.binding, (ast.VarDecl, ast.Param)
            ):
                self._report(
                    "R5", expr.line,
                    f"address of local {operand.name!r} escapes via return "
                    "(temporal vulnerability)",
                )
        if isinstance(expr, ast.Ident) and isinstance(
            expr.binding, ast.VarDecl
        ) and isinstance(expr.type, ArrayType):
            self._report(
                "R5", expr.line,
                f"local array {expr.name!r} escapes via return",
            )

    def _expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Call):
            self._call(expr)
            for arg in expr.args:
                self._expr(arg)
        elif isinstance(expr, ast.Binary):
            self._expr(expr.left)
            self._expr(expr.right)
        elif isinstance(expr, ast.Assign):
            self._expr(expr.target)
            self._expr(expr.value)
        elif isinstance(expr, ast.Unary):
            self._expr(expr.operand)
        elif isinstance(expr, (ast.Deref, ast.AddrOf)):
            self._expr(expr.operand)
        elif isinstance(expr, ast.Index):
            self._index(expr)
            self._expr(expr.base)
            self._expr(expr.index)

    def _call(self, expr: ast.Call) -> None:
        if expr.mode == "direct" and self.interprocedural:
            self._interprocedural_call(expr)
        if expr.mode != "builtin" or expr.builtin.name not in ("read", "write"):
            return
        builtin = expr.builtin
        buffer_expr = expr.args[builtin.buffer_arg]
        length_expr = expr.args[builtin.length_arg]
        size = _array_size(buffer_expr)
        if size is None:
            return  # buffer of unknown size: nothing to compare against
        length = _constant_value(length_expr)
        if length is None:
            self._report(
                "R2", expr.line,
                f"{builtin.name} length is not a constant; buffer holds "
                f"{size} bytes (possible overflow)",
                confidence="possible",
            )
        elif length > size:
            self._report(
                "R1", expr.line,
                f"{builtin.name} of {length} bytes into a {size}-byte buffer",
            )

    def _interprocedural_call(self, expr: ast.Call) -> None:
        """R6: substitute constant arguments into the callee's loop
        bounds over its pointer parameters."""
        callee = expr.callee.binding
        if not isinstance(callee, ast.FuncDef) or callee.body is None:
            return
        param_positions = {param.name: i for i, param in enumerate(callee.params)}
        for pointer_param, bound in self._callee_loop_bounds(callee):
            pointer_pos = param_positions.get(pointer_param)
            if pointer_pos is None or pointer_pos >= len(expr.args):
                continue
            buffer_expr = expr.args[pointer_pos]
            if not (isinstance(buffer_expr, ast.Ident)
                    and isinstance(buffer_expr.type, ArrayType)
                    and buffer_expr.type.size is not None):
                continue
            size = buffer_expr.type.size
            if isinstance(bound, int):
                bound_value = bound
            else:  # bound is a parameter name: take the caller's constant
                bound_pos = param_positions.get(bound)
                if bound_pos is None or bound_pos >= len(expr.args):
                    continue
                bound_value = _constant_value(expr.args[bound_pos])
                if bound_value is None:
                    continue
            if bound_value > size:
                self._report(
                    "R6", expr.line,
                    f"call writes up to {bound_value} elements through "
                    f"{pointer_param!r} into the {size}-element array "
                    f"{buffer_expr.name!r} (interprocedural)",
                )

    def _callee_loop_bounds(self, func: ast.FuncDef):
        """Yield ``(pointer_param_name, bound)`` for loops of the shape
        ``for (i = ...; i < bound; ...) { param[i] = ...; }`` where
        bound is a constant int or the name of another parameter."""
        param_names = {param.name for param in func.params}
        results = []

        def walk(stmt):
            if isinstance(stmt, ast.Block):
                for child in stmt.statements:
                    walk(child)
            elif isinstance(stmt, (ast.While, ast.For)):
                condition = getattr(stmt, "condition", None)
                bound = None
                loop_var = None
                if (isinstance(condition, ast.Binary)
                        and condition.op in ("<", "<=")
                        and isinstance(condition.left, ast.Ident)):
                    loop_var = condition.left.name
                    constant = _constant_value(condition.right)
                    if constant is not None:
                        bound = constant + (1 if condition.op == "<=" else 0)
                    elif (isinstance(condition.right, ast.Ident)
                          and condition.right.name in param_names):
                        bound = condition.right.name
                if bound is not None:
                    for pointer in self._indexed_params(stmt.body, loop_var,
                                                        param_names):
                        results.append((pointer, bound))
                walk(stmt.body)
            elif isinstance(stmt, ast.If):
                walk(stmt.then_branch)
                if stmt.else_branch is not None:
                    walk(stmt.else_branch)

        walk(func.body)
        return results

    def _indexed_params(self, stmt, loop_var, param_names):
        """Pointer params indexed by ``loop_var`` anywhere in ``stmt``."""
        found = set()

        def visit_expr(expr):
            if expr is None:
                return
            if isinstance(expr, ast.Index):
                if (isinstance(expr.base, ast.Ident)
                        and expr.base.name in param_names
                        and isinstance(expr.index, ast.Ident)
                        and expr.index.name == loop_var):
                    found.add(expr.base.name)
                visit_expr(expr.base)
                visit_expr(expr.index)
            elif isinstance(expr, ast.Binary):
                visit_expr(expr.left)
                visit_expr(expr.right)
            elif isinstance(expr, ast.Assign):
                visit_expr(expr.target)
                visit_expr(expr.value)
            elif isinstance(expr, (ast.Unary, ast.Deref, ast.AddrOf)):
                visit_expr(expr.operand)
            elif isinstance(expr, ast.PostOp):
                visit_expr(expr.target)
            elif isinstance(expr, ast.Call):
                for arg in expr.args:
                    visit_expr(arg)

        def visit_stmt(node):
            if isinstance(node, ast.Block):
                for child in node.statements:
                    visit_stmt(child)
            elif isinstance(node, ast.ExprStmt):
                visit_expr(node.expr)
            elif isinstance(node, ast.VarDecl):
                visit_expr(node.init)
            elif isinstance(node, ast.If):
                visit_expr(node.condition)
                visit_stmt(node.then_branch)
                if node.else_branch is not None:
                    visit_stmt(node.else_branch)
            elif isinstance(node, (ast.While, ast.DoWhile)):
                visit_expr(node.condition)
                visit_stmt(node.body)
            elif isinstance(node, ast.For):
                if node.init is not None:
                    visit_stmt(node.init)
                visit_expr(node.condition)
                visit_expr(node.step)
                visit_stmt(node.body)
            elif isinstance(node, ast.Return):
                visit_expr(node.value)

        visit_stmt(stmt)
        return found

    def _index(self, expr: ast.Index) -> None:
        base_type = expr.base.type
        if not (isinstance(base_type, ArrayType) and base_type.size is not None):
            return
        size = base_type.size
        constant = _constant_value(expr.index)
        if constant is not None:
            if constant < 0 or constant >= size:
                self._report(
                    "R4", expr.line,
                    f"constant index {constant} out of bounds for "
                    f"array of {size}",
                )
            return
        if isinstance(expr.index, ast.Ident):
            if self._guarded_below(expr.index.name, size):
                return
            self._report(
                "R3", expr.line,
                f"index {expr.index.name!r} not provably below {size}",
                confidence="possible",
            )
        else:
            self._report(
                "R3", expr.line,
                f"unanalyzable index expression into array of {size}",
                confidence="possible",
            )


def analyze_source(source: str, interprocedural: bool = False) -> list[Finding]:
    """Run the analyzer over one MinC translation unit."""
    return StaticAnalyzer(interprocedural).analyze_source(source)


def evaluate_on_corpus(interprocedural: bool = False) -> dict:
    """Precision/recall of the analyzer on the labelled corpus.

    Returns per-entry rows plus summary metrics for two policies:
    ``all`` findings, and ``definite``-only findings (trading recall
    for precision, as Section III-C2 describes).  ``interprocedural``
    switches on the deeper R6 analysis.
    """
    from repro.analysis.corpus import CORPUS

    rows = []
    for entry in CORPUS:
        findings = analyze_source(entry.source, interprocedural)
        definite = [f for f in findings if f.confidence == "definite"]
        rows.append({
            "name": entry.name,
            "vulnerable": entry.vulnerable,
            "flagged_any": bool(findings),
            "flagged_definite": bool(definite),
            "findings": findings,
            "expected": entry.expected_analysis,
        })

    def metrics(key: str) -> dict:
        tp = sum(1 for r in rows if r["vulnerable"] and r[key])
        fp = sum(1 for r in rows if not r["vulnerable"] and r[key])
        fn = sum(1 for r in rows if r["vulnerable"] and not r[key])
        tn = sum(1 for r in rows if not r["vulnerable"] and not r[key])
        precision = tp / (tp + fp) if tp + fp else 1.0
        recall = tp / (tp + fn) if tp + fn else 1.0
        return {"tp": tp, "fp": fp, "fn": fn, "tn": tn,
                "precision": precision, "recall": recall}

    return {
        "rows": rows,
        "all_findings": metrics("flagged_any"),
        "definite_only": metrics("flagged_definite"),
    }
