"""Coverage-guided greybox fuzzing on the snapshot fork-server.

Section III-C2 argues that testing for memory-safety bugs "is made
significantly more effective with the use of run-time checks"; the
blind fuzzer in :mod:`repro.analysis.fuzzer` measures the *checks*
half of that claim.  This module supplies the *testing* half at
modern strength: an AFL-style greybox loop that

* derives **edge coverage** from the PR 2 observe bus
  (:class:`~repro.observe.coverage.CoverageObserver` hashes every
  branch/jump/call/ret into a fixed-size bitmap -- no guest
  instrumentation, and the observed run stays byte-identical to an
  unobserved one);
* executes every input through the PR 4 **snapshot fork-server**
  (:class:`SnapshotExecutor`: build the victim once, copy-on-write
  restore per input) instead of re-running the compile + link + load
  pipeline, and can fan mutation batches out over
  :class:`~repro.campaign.CampaignRunner` workers (``jobs > 1``);
* maintains a **corpus queue** seeded-RNG mutation engine:
  deterministic stages (length extensions, then a walking byte cycle
  that solves single-byte comparisons such as a ``"GET"`` method
  check) followed by stacked havoc/splice stages, keeping any input
  that lights up a never-seen coverage bucket;
* **triages crashes** by deduplicating on ``(fault type, faulting PC,
  call-stack hash)`` and minimizing each unique crasher with a
  chunked trimming pass.

The whole loop is deterministic for a fixed ``seed``: mutation
batches are generated up front from a private RNG, executed (in
process or across workers -- same outcomes either way, each trial
starts from the same restored snapshot), and integrated in input
order.  The batch schedule is pipelined with a one-batch lag --
batch N+1 is generated and submitted before batch N is integrated --
and the sequential path follows the same schedule, so parallel and
sequential campaigns produce identical reports.  Workers filter
coverage through a :class:`~repro.observe.coverage.SharedVirginMap`:
only runs that light up a locally-unseen bucket ship their (packed)
edge blob back to the master.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Callable

from repro.campaign import CampaignRunner
from repro.machine.machine import MachineSnapshot, RunResult
from repro.minic import compile_source
from repro.minic.compiler import options_from_mitigations
from repro.mitigations.config import MitigationConfig, NONE
from repro.observe.coverage import (
    MAP_SIZE,
    CoverageObserver,
    CrashSite,
    SharedVirginMap,
    has_new_bits,
    pack_edges,
    unpack_edges,
)
from repro.observe.invariants import InvariantMonitor
from repro.programs.builders import build_victim, libc_object

#: Faults that count as the fuzzer *detecting* a bug.  An execution
#: budget overrun is a hang, not a detection.
_NON_DETECTIONS = frozenset({"ExecutionLimitExceeded"})

#: Default per-input instruction budget.  The victims run a few
#: hundred instructions; a tight budget turns accidental infinite
#: loops into cheap hangs instead of stalls.
DEFAULT_MAX_INSTRUCTIONS = 200_000

#: Default seed corpus: the empty input plus a small all-zero block
#: for the deterministic byte-cycle stage to chew on.
DEFAULT_SEEDS: tuple[bytes, ...] = (b"", bytes(8))


# ---------------------------------------------------------------------------
# Picklable factories (shared with the blind fuzzer and the campaign
# runner's worker processes).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VictimFactory:
    """Builds one of the named :data:`repro.programs.sources.VICTIMS`."""

    name: str
    config: MitigationConfig = NONE
    seed: int = 0

    def __call__(self):
        return build_victim(self.name, self.config, seed=self.seed)


@dataclass(frozen=True)
class SourceFactory:
    """Builds a victim from MinC source (the labelled corpus entries)."""

    source: str
    name: str
    config: MitigationConfig = NONE
    seed: int = 0

    def __call__(self):
        from repro.link import load

        options = options_from_mitigations(self.config)
        obj = compile_source(self.source, self.name, options)
        return load([obj, libc_object()], self.config, seed=self.seed)


@dataclass(frozen=True)
class InstrumentedFactory:
    """Wraps a target factory to attach a fresh coverage observer
    (and, with ``invariants``, an :class:`InvariantMonitor`) before
    the campaign session takes its baseline snapshot."""

    base: Callable
    invariants: bool = False
    #: Optional RSNP wire bytes; when set, each worker restores this
    #: exact machine image over its freshly built target before the
    #: campaign session snapshots it (resumed service campaigns).
    baseline_bytes: bytes | None = None

    def __call__(self):
        target = self.base()
        machine = getattr(target, "machine", target)
        machine.attach_observer(CoverageObserver())
        if self.invariants:
            monitor = InvariantMonitor()
            machine.attach_observer(monitor)
            if hasattr(target, "image"):
                monitor.bind_program(target)
        if self.baseline_bytes is not None:
            machine.restore(MachineSnapshot.from_bytes(self.baseline_bytes))
        return target


def _coverage_observer(machine) -> CoverageObserver:
    for observer in machine.observers:
        if isinstance(observer, CoverageObserver):
            return observer
    raise ValueError("machine has no CoverageObserver attached")


def _invariant_monitor(machine) -> InvariantMonitor | None:
    for observer in machine.observers:
        if isinstance(observer, InvariantMonitor):
            return observer
    return None


# ---------------------------------------------------------------------------
# Execution: the snapshot fork-server
# ---------------------------------------------------------------------------


class SnapshotExecutor:
    """Warm fork-server execution: build once, CoW-restore per input.

    The one executor both fuzzers share (satisfying the paper's
    experiment shape *and* the performance budget): the legacy blind
    :func:`repro.analysis.fuzzer.fuzz_campaign` runs it unobserved
    while the greybox loop attaches a :class:`CoverageObserver` --
    which is dispatch-transparent, so both legs run superblock
    dispatch with warm block caches across restores; the observed leg
    merely pays the baked-in event emission at block terminators.
    """

    def __init__(
        self,
        factory: Callable,
        *,
        observer: CoverageObserver | None = None,
        invariants: bool = False,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        baseline_bytes: bytes | None = None,
    ) -> None:
        self.target = factory()
        self.machine = getattr(self.target, "machine", self.target)
        self.observer = observer
        if observer is not None:
            self.machine.attach_observer(observer)
        self.monitor: InvariantMonitor | None = None
        if invariants:
            self.monitor = InvariantMonitor()
            self.machine.attach_observer(self.monitor)
            if hasattr(self.target, "image"):
                self.monitor.bind_program(self.target)
        if baseline_bytes is not None:
            # A resumed campaign does not trust a rebuild to reproduce
            # the original image bit-for-bit; it restores the stored
            # RSNP snapshot over the fresh build and baselines *that*.
            self.machine.restore(MachineSnapshot.from_bytes(baseline_bytes))
        self.baseline = self.machine.snapshot()
        self.max_instructions = max_instructions
        #: Total inputs executed through this executor.
        self.execs = 0
        #: Total dirty pages rewound across all restores.
        self.restored_pages = 0

    def run(self, data: bytes) -> RunResult:
        """Restore the baseline snapshot, feed ``data``, run."""
        self.restored_pages += self.machine.restore(self.baseline)
        if self.observer is not None:
            self.observer.begin_run()
        self.machine.input.feed(data)
        self.execs += 1
        return self.machine.run(self.max_instructions)


@dataclass(frozen=True)
class ExecOutcome:
    """Picklable digest of one fuzz execution (what crosses worker
    process boundaries in ``jobs > 1`` campaigns).

    ``edges`` is the :func:`~repro.observe.coverage.pack_edges` blob
    (3 bytes per edge), or ``b""`` when a worker's shared-virgin-map
    overlay proved the run covers nothing new (the bitmap-delta
    filter: plateaued campaigns ship almost no coverage bytes at all).
    Pickles written before the packed format -- tuple-of-tuples edge
    lists -- still load and compare; :meth:`edge_items` normalizes
    both shapes.
    """

    status: str
    fault: str | None
    edges: bytes | tuple[tuple[int, int], ...]
    crash_site: CrashSite | None
    instructions: int

    @property
    def is_detection(self) -> bool:
        """True when the run died on a real fault (not a hang)."""
        return self.fault is not None and self.fault not in _NON_DETECTIONS

    def edge_items(self) -> tuple[tuple[int, int], ...]:
        """The run's ``(cell, bucket_mask)`` pairs, whatever the wire
        shape (packed blob, or a legacy tuple-of-tuples pickle)."""
        if isinstance(self.edges, (bytes, bytearray)):
            return unpack_edges(self.edges)
        return tuple(self.edges)


def outcome_of(observer: CoverageObserver, result: RunResult,
               monitor: InvariantMonitor | None = None,
               local_virgin: bytearray | None = None) -> ExecOutcome:
    """Reduce one finished run to its picklable digest.

    With ``local_virgin`` (a worker's private overlay of the shared
    virgin map) the edge blob is shipped only when the run set a bit
    the overlay had never seen -- the test *and* set happen here, so
    the overlay accumulates this worker's own coverage between
    :meth:`CoverageTrial.begin_batch` refreshes.
    """
    crash_site = observer.crash_site
    if monitor is not None and crash_site is not None:
        first = monitor.first_breach
        if first is not None:
            # First-breach attribution extends the dedup key: the same
            # faulting PC reached via a canary clobber and via a plain
            # wild write are different bugs.
            crash_site = replace(crash_site, first_breach=first.invariant)
    items = observer.edge_items()
    if local_virgin is not None and not has_new_bits(local_virgin, items):
        edges = b""
    else:
        edges = pack_edges(items)
    return ExecOutcome(
        status=result.status.value,
        fault=type(result.fault).__name__ if result.fault else None,
        edges=edges,
        crash_site=crash_site,
        instructions=result.instructions,
    )


#: Per-process cache of shared-virgin-map attachments: segment name ->
#: ``(handle, private overlay)``.  Lives at module level because
#: :class:`CoverageTrial` is a frozen dataclass that crosses process
#: boundaries by pickle; the attachment must be made (once) inside the
#: worker process itself.
_VIRGIN_OVERLAYS: dict[str, tuple[SharedVirginMap, bytearray]] = {}


def _virgin_overlay(name: str) -> tuple[SharedVirginMap, bytearray]:
    entry = _VIRGIN_OVERLAYS.get(name)
    if entry is None:
        entry = (SharedVirginMap.attach(name), bytearray(MAP_SIZE))
        _VIRGIN_OVERLAYS[name] = entry
    return entry


@dataclass(frozen=True)
class CoverageTrial:
    """Campaign trial: feed one mutated input, return its digest.

    Used with :class:`InstrumentedFactory` under a
    :class:`~repro.campaign.CampaignRunner` -- the session restores
    the snapshot, this callable does the rest of
    :meth:`SnapshotExecutor.run`.

    ``virgin_map`` names the master's :class:`SharedVirginMap`.  When
    set, each worker keeps a private overlay of it -- refreshed from
    shared memory once per batch (:meth:`begin_batch`), test-and-set
    locally per run -- and ships each run's edge blob only when the
    run is locally novel.  Soundness does not depend on freshness:
    the overlay is always a subset of what the master knows by the
    time it integrates this worker's results, so filtering never
    drops coverage the master has not already seen.
    """

    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    virgin_map: str | None = None

    def begin_batch(self, target) -> None:
        """Per-batch hook (:meth:`CampaignSession.run_batch`): fold the
        published virgin bits into this worker's private overlay."""
        if self.virgin_map is not None:
            shared, local = _virgin_overlay(self.virgin_map)
            shared.merge_into(local)

    def __call__(self, target, data: bytes) -> ExecOutcome:
        machine = getattr(target, "machine", target)
        observer = _coverage_observer(machine)
        observer.begin_run()
        machine.input.feed(data)
        result = machine.run(self.max_instructions)
        local = None
        if self.virgin_map is not None:
            local = _virgin_overlay(self.virgin_map)[1]
        return outcome_of(observer, result, _invariant_monitor(machine),
                          local_virgin=local)


# ---------------------------------------------------------------------------
# Crash triage
# ---------------------------------------------------------------------------


@dataclass
class CrashRecord:
    """One deduplicated crash bucket and its best-known reproducer."""

    site: CrashSite
    input: bytes
    found_at_exec: int
    found_at_seconds: float
    minimized: bytes | None = None

    @property
    def reproducer(self) -> bytes:
        """The minimized input when available, else the original."""
        return self.minimized if self.minimized is not None else self.input


def minimize_input(
    run_outcome: Callable[[bytes], ExecOutcome],
    data: bytes,
    site: CrashSite,
    *,
    budget: int = 256,
) -> tuple[bytes, int]:
    """Chunked trimming: drop the largest chunks that keep ``site``.

    Returns ``(minimized, execs_used)``.  Greedy ddmin-style passes
    with halving chunk sizes; every candidate must reproduce the exact
    crash signature (fault type, PC and call-stack hash), so the
    minimized input stays in the same triage bucket.
    """
    current = data
    used = 0
    chunk = max(len(current) // 2, 1)
    while chunk >= 1 and used < budget and current:
        pos = 0
        while pos < len(current) and used < budget:
            candidate = current[:pos] + current[pos + chunk:]
            used += 1
            if run_outcome(candidate).crash_site == site:
                current = candidate
            else:
                pos += chunk
        chunk //= 2
    return current, used


# ---------------------------------------------------------------------------
# The greybox fuzzer
# ---------------------------------------------------------------------------


@dataclass
class QueueEntry:
    """One corpus member: an input that reached new coverage."""

    data: bytes
    found_at_exec: int
    det_done: bool = False


class _DetStage:
    """Resumable deterministic-stage cursor.

    The det stack used to hold raw generators, which cannot be
    checkpointed.  ``(data, consumed)`` fully determines the remaining
    mutants -- the stage is a pure function of the corpus entry -- so
    a resume recreates the generator and fast-forwards ``consumed``
    items to land on the exact next mutant.
    """

    __slots__ = ("data", "consumed", "_iter")

    def __init__(self, stage_fn: Callable, data: bytes,
                 consumed: int = 0) -> None:
        self.data = data
        self.consumed = consumed
        self._iter = stage_fn(data)
        for _ in range(consumed):
            if next(self._iter, None) is None:
                break

    def __iter__(self) -> "_DetStage":
        return self

    def __next__(self) -> bytes:
        mutant = next(self._iter)
        self.consumed += 1
        return mutant


#: Campaign checkpoint wire version (bump on layout changes).
CHECKPOINT_VERSION = 1


def _digest_corpus(queue: list[QueueEntry]) -> str:
    """Order-sensitive digest of the corpus contents."""
    digest = hashlib.sha256()
    for entry in queue:
        digest.update(len(entry.data).to_bytes(4, "little"))
        digest.update(entry.data)
    return digest.hexdigest()


@dataclass
class GreyboxReport:
    """Outcome of one :meth:`GreyboxFuzzer.run` campaign."""

    program: str
    config: str
    execs: int = 0
    duration_seconds: float = 0.0
    #: Distinct coverage-map cells ever hit.
    edges: int = 0
    corpus_size: int = 0
    crashes: list[CrashRecord] = field(default_factory=list)
    first_detected_exec: int | None = None
    first_detected_seconds: float | None = None
    #: ``(execs, edges)`` milestones, appended whenever coverage grew.
    coverage_curve: list[tuple[int, int]] = field(default_factory=list)
    #: Extra executions spent minimizing crashers (not in ``execs``).
    minimization_execs: int = 0
    #: Dirty pages rewound across all fork-server restores.
    restored_pages: int = 0
    #: True when the campaign stopped early on ``stop_after_batches``
    #: (a resumable checkpoint exists; minimization was skipped).
    interrupted: bool = False
    #: Order-sensitive sha256 of the corpus contents.
    corpus_digest: str = ""

    @property
    def unique_crashes(self) -> int:
        return len(self.crashes)

    def fingerprint(self) -> str:
        """sha256 over every seed-deterministic field of the report.

        Wall-clock and restore-cost fields (``duration_seconds``,
        ``first_detected_seconds``, ``found_at_seconds``,
        ``restored_pages``) are excluded; everything the campaign's
        seed determines -- exec count, coverage, corpus contents,
        crash dedup set with first-breach attribution, minimized
        reproducers -- is included.  An interrupted-then-resumed
        campaign must produce the uninterrupted run's fingerprint.
        """
        payload = (
            self.program, self.config, self.execs, self.edges,
            self.corpus_size, self.corpus_digest,
            tuple(self.coverage_curve), self.first_detected_exec,
            tuple(
                (record.site.fault, record.site.ip, record.site.call_hash,
                 record.site.first_breach, record.input, record.minimized,
                 record.found_at_exec)
                for record in self.crashes
            ),
        )
        return hashlib.sha256(repr(payload).encode()).hexdigest()

    @property
    def detected(self) -> bool:
        return self.first_detected_exec is not None

    @property
    def execs_per_second(self) -> float:
        if self.duration_seconds <= 0.0:
            return 0.0
        return self.execs / self.duration_seconds


class GreyboxFuzzer:
    """AFL-style coverage-guided fuzzing of one victim build.

    ``factory`` builds the target (picklable for ``jobs > 1``); the
    fuzzer owns a warm :class:`SnapshotExecutor` (sequential path and
    crash minimization) and, with ``jobs``, a persistent
    :class:`~repro.campaign.CampaignRunner` pool whose workers each
    hold their own warm instrumented snapshot.
    """

    #: Mutants per havoc batch (also the parallel fan-out unit).
    batch_size = 64
    #: Deterministic byte-cycle positions per corpus entry.
    det_byte_limit = 16
    #: Entries longer than this skip the byte-cycle stage entirely.
    det_cycle_max_len = 32
    #: Block sizes tried by the deterministic length-extension stage.
    length_extensions = (1, 2, 4, 8, 16, 32, 64)

    def __init__(
        self,
        factory: Callable,
        *,
        seed: int = 0,
        seeds: tuple[bytes, ...] = DEFAULT_SEEDS,
        max_len: int = 96,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        jobs: int | None = None,
        invariants: bool = False,
        program: str = "?",
        config: str = "?",
        snapshot_bytes: bytes | None = None,
    ) -> None:
        self.factory = factory
        self.rng = random.Random(seed)
        self.seeds = tuple(seeds)
        self.max_len = max_len
        self.max_instructions = max_instructions
        self.jobs = jobs
        self.invariants = invariants
        self.program = program
        self.config = config
        #: RSNP wire bytes of the baseline image to fuzz (service
        #: resumes); None baselines whatever ``factory`` builds.
        self.snapshot_bytes = snapshot_bytes
        self._executor: SnapshotExecutor | None = None
        self._observer: CoverageObserver | None = None
        # Campaign state (reset per run()).
        self.queue: list[QueueEntry] = []
        self._virgin = bytearray(MAP_SIZE)
        self._covered: set[int] = set()
        self._det_stack: list = []
        self._cursor = 0

    # -- execution plumbing --------------------------------------------------

    def _local_executor(self) -> SnapshotExecutor:
        if self._executor is None:
            self._observer = CoverageObserver()
            self._executor = SnapshotExecutor(
                self.factory, observer=self._observer,
                invariants=self.invariants,
                max_instructions=self.max_instructions,
                baseline_bytes=self.snapshot_bytes,
            )
        return self._executor

    def baseline_snapshot_bytes(self) -> bytes:
        """RSNP wire bytes of the warm baseline image.  The campaign
        service persists these at campaign start so a resume fuzzes
        the *stored* machine image, not a rebuild's."""
        return self._local_executor().baseline.to_bytes()

    def _execute(self, batch: list[bytes], runner) -> list[ExecOutcome]:
        if runner is not None:
            return runner.run_items(batch).verdicts
        executor = self._local_executor()
        outcomes = []
        for data in batch:
            result = executor.run(data)
            outcomes.append(
                outcome_of(self._observer, result, executor.monitor))
        return outcomes

    def _submit(self, batch: list[bytes], runner):
        """Dispatch ``batch`` without waiting (the pipelined path).

        With a runner the items go to :meth:`CampaignRunner.submit_items`
        (workers start immediately when a pool is live); without one
        the batch itself is the pending token and execution happens in
        :meth:`_resolve` -- either way the exec stream order is
        identical to a submit-then-wait loop.
        """
        if not batch:
            return None
        if runner is not None:
            return runner.submit_items(batch)
        return batch

    def _resolve(self, pending) -> list[ExecOutcome]:
        if isinstance(pending, list):
            return self._execute(pending, None)
        return pending.result().verdicts

    # -- mutation stages -----------------------------------------------------

    def _deterministic(self, data: bytes):
        """Deterministic stage: length extensions, then a walking byte
        cycle.  Extensions find length-triggered overflows in a
        handful of executions; the cycle tries every value at each of
        the first :attr:`det_byte_limit` positions, which solves
        single-byte comparison gates one letter at a time (the classic
        coverage-guided win over blind randomness)."""
        for block in self.length_extensions:
            if len(data) + block <= self.max_len:
                yield data + b"A" * block
        if len(data) > self.det_cycle_max_len:
            return
        for pos in range(min(len(data), self.det_byte_limit)):
            head, orig, tail = data[:pos], data[pos], data[pos + 1:]
            for value in range(256):
                if value != orig:
                    yield head + bytes((value,)) + tail

    def _havoc_one(self, data: bytes) -> bytes:
        rng = self.rng
        out = bytearray(data)
        for _ in range(1 << rng.randint(0, 3)):
            op = rng.randrange(8)
            if op == 0 and out:
                bit = rng.randrange(len(out) * 8)
                out[bit >> 3] ^= 1 << (bit & 7)
            elif op == 1 and out:
                out[rng.randrange(len(out))] = rng.randrange(256)
            elif op == 2 and out:
                pos = rng.randrange(len(out))
                out[pos] = (out[pos] + rng.randint(-16, 16)) & 0xFF
            elif op == 3 and out:
                pos = rng.randrange(len(out))
                size = min(rng.randint(1, 8), len(out) - pos)
                del out[pos:pos + size]
            elif op == 4:
                pos = rng.randrange(len(out) + 1)
                block = bytes((rng.randrange(256),)) * rng.randint(1, 16)
                out[pos:pos] = block
            elif op == 5 and out:
                pos = rng.randrange(len(out))
                size = min(rng.randint(1, 16), len(out) - pos)
                out[pos:pos] = out[pos:pos + size]
            elif op == 6 and self.queue:
                other = self.queue[rng.randrange(len(self.queue))].data
                if other:
                    cut = rng.randrange(len(other) + 1)
                    out[rng.randrange(len(out) + 1):] = other[cut:]
            else:
                out += rng.randbytes(rng.randint(1, 16))
        return bytes(out[:self.max_len])

    def _havoc_base(self) -> bytes:
        """The next corpus (or seed) entry the havoc stage mutates."""
        if self.queue:
            entry = self.queue[self._cursor % len(self.queue)]
            self._cursor += 1
            return entry.data
        base = self.seeds[self._cursor % len(self.seeds)]
        self._cursor += 1
        return base

    def _next_batch(self) -> list[bytes]:
        """The next mutation batch: pending deterministic work first
        (newest corpus entry on top), then havoc over the queue.

        Deterministic batches are filled *across* generator boundaries
        and topped up with havoc mutants, so every batch the parallel
        path fans out is exactly ``batch_size * 4`` items -- a
        deterministic generator running dry used to emit a short
        (sometimes single-digit) batch that left most workers idle for
        a whole dispatch round.
        """
        batch: list[bytes] = []
        target = self.batch_size * 4
        while self._det_stack and len(batch) < target:
            generator = self._det_stack[-1]
            for mutant in generator:
                batch.append(mutant)
                if len(batch) >= target:
                    break
            else:
                self._det_stack.pop()
        if not batch:
            return [self._havoc_one(self._havoc_base())
                    for _ in range(self.batch_size)]
        while len(batch) < target:
            batch.append(self._havoc_one(self._havoc_base()))
        return batch

    # -- corpus integration --------------------------------------------------

    def _add_to_queue(self, data: bytes, execs: int) -> None:
        entry = QueueEntry(data, execs)
        self.queue.append(entry)
        self._det_stack.append(_DetStage(self._deterministic, data))

    def _integrate(
        self, data: bytes, outcome: ExecOutcome, execs: int,
        elapsed: float, report: GreyboxReport,
        crashes: dict[CrashSite, CrashRecord], force_add: bool = False,
    ) -> None:
        edges = outcome.edge_items()
        for idx, _ in edges:
            self._covered.add(idx)
        new_coverage = has_new_bits(self._virgin, edges)
        if new_coverage or force_add:
            self._add_to_queue(data, execs)
            report.coverage_curve.append((execs, len(self._covered)))
        if outcome.is_detection:
            if report.first_detected_exec is None:
                report.first_detected_exec = execs
                report.first_detected_seconds = elapsed
            site = outcome.crash_site
            if site is not None and site not in crashes:
                crashes[site] = CrashRecord(site, data, execs, elapsed)

    # -- checkpoint / resume -------------------------------------------------

    def _campaign_state(self, report: GreyboxReport,
                        crashes: dict[CrashSite, CrashRecord],
                        pending: list[bytes]) -> dict:
        """Everything :meth:`run` needs to continue from this exact
        point.  ``pending`` is the already-generated-but-unintegrated
        batch: the pipeline's one-batch lag means the RNG has advanced
        *through* that batch by checkpoint time, so the state must
        carry the batch itself, not regenerate it."""
        return {
            "version": CHECKPOINT_VERSION,
            "rng": self.rng.getstate(),
            "queue": [(entry.data, entry.found_at_exec, entry.det_done)
                      for entry in self.queue],
            "det_stack": [(stage.data, stage.consumed)
                          for stage in self._det_stack],
            "cursor": self._cursor,
            "virgin": bytes(self._virgin),
            "covered": sorted(self._covered),
            "execs": report.execs,
            "coverage_curve": list(report.coverage_curve),
            "first_detected_exec": report.first_detected_exec,
            "first_detected_seconds": report.first_detected_seconds,
            "crashes": [
                (record.site, record.input, record.found_at_exec,
                 record.found_at_seconds)
                for record in crashes.values()
            ],
            "pending": list(pending),
        }

    def _restore_state(self, state: dict, report: GreyboxReport,
                       crashes: dict[CrashSite, CrashRecord]) -> list[bytes]:
        """Inverse of :meth:`_campaign_state`; returns the pending
        batch the resumed loop must execute first."""
        if state.get("version") != CHECKPOINT_VERSION:
            raise ValueError(
                f"campaign checkpoint version {state.get('version')!r} "
                f"(this build reads {CHECKPOINT_VERSION})"
            )
        self.rng.setstate(state["rng"])
        self.queue = [QueueEntry(data, execs, det)
                      for data, execs, det in state["queue"]]
        self._det_stack = [
            _DetStage(self._deterministic, data, consumed)
            for data, consumed in state["det_stack"]
        ]
        self._cursor = state["cursor"]
        self._virgin = bytearray(state["virgin"])
        self._covered = set(state["covered"])
        report.execs = state["execs"]
        report.coverage_curve = [tuple(point)
                                 for point in state["coverage_curve"]]
        report.first_detected_exec = state["first_detected_exec"]
        report.first_detected_seconds = state["first_detected_seconds"]
        for site, data, at_exec, at_seconds in state["crashes"]:
            crashes[site] = CrashRecord(site, data, at_exec, at_seconds)
        return [bytes(item) for item in state["pending"]]

    # -- the campaign --------------------------------------------------------

    def run(
        self,
        max_execs: int = 2000,
        *,
        stop_on_first_crash: bool = False,
        minimize: bool = True,
        minimize_budget: int = 256,
        checkpoint: Callable[[dict], None] | None = None,
        resume: dict | None = None,
        stop_after_batches: int | None = None,
    ) -> GreyboxReport:
        """Fuzz for up to ``max_execs`` executions.

        ``stop_on_first_crash`` ends the campaign after the batch that
        produced the first detection (execs-to-first-detection is
        exact either way -- it is the input's position in the stream,
        not the point the loop noticed it).

        The loop is *pipelined* with a one-batch lag: batch N+1 is
        generated (from the corpus state as of batch N-1) and
        submitted before batch N's outcomes are integrated, so on the
        parallel path mutation generation and corpus triage in the
        master overlap worker execution.  The sequential path follows
        the identical schedule (generation is lazy-submitted, executed
        at resolve time), so sequential and parallel campaigns stay
        report-identical for a fixed seed.

        ``checkpoint`` is called with a resumable state dict after
        every integrated batch; passing that dict back as ``resume``
        continues the campaign from exactly that point -- the final
        report is fingerprint-identical to an uninterrupted run.
        ``stop_after_batches`` interrupts the campaign after that many
        integrated mutation batches (``report.interrupted`` is set and
        minimization is skipped; the last checkpoint resumes it).
        """
        report = GreyboxReport(self.program, self.config)
        crashes: dict[CrashSite, CrashRecord] = {}
        self.queue = []
        self._virgin = bytearray(MAP_SIZE)
        self._covered = set()
        self._det_stack = []
        self._cursor = 0
        started = perf_counter()
        resumed_pending: list[bytes] | None = None
        if resume is not None:
            resumed_pending = self._restore_state(resume, report, crashes)

        runner = None
        shared = None
        if self.jobs and self.jobs > 1:
            shared = SharedVirginMap.create()
            runner = CampaignRunner(
                InstrumentedFactory(self.factory, invariants=self.invariants,
                                    baseline_bytes=self.snapshot_bytes),
                trial=CoverageTrial(self.max_instructions,
                                    virgin_map=shared.name),
                jobs=self.jobs,
                chunksize=max(1, self.batch_size // max(1, self.jobs)),
            ).__enter__()
        batches_done = 0
        interrupted = False
        try:
            if resumed_pending is None:
                # Seed corpus first, synchronously: every seed joins
                # the queue, and the deterministic stages everything
                # else pipelines behind are derived from it.
                seed_batch = list(dict.fromkeys(self.seeds))[:max_execs]
                for data, outcome in zip(seed_batch,
                                         self._execute(seed_batch, runner)):
                    report.execs += 1
                    self._integrate(
                        data, outcome, report.execs,
                        perf_counter() - started, report, crashes,
                        force_add=True,
                    )
                current: list[bytes] = []
                if report.execs < max_execs and not (
                        stop_on_first_crash and report.first_detected_exec):
                    current = self._next_batch()[:max_execs - report.execs]
            else:
                # The checkpointed batch was generated (RNG already
                # advanced through it) but never integrated: it is the
                # resumed stream's next batch, verbatim.
                current = resumed_pending[:max(0, max_execs - report.execs)]
            if shared is not None:
                shared.publish(self._virgin)
            pending = self._submit(current, runner)
            if checkpoint is not None:
                checkpoint(self._campaign_state(report, crashes, current))
            while current:
                # Generate + submit the NEXT batch before integrating
                # the current one (the lag that buys the overlap).
                budget = max_execs - report.execs - len(current)
                upcoming = self._next_batch()[:budget] if budget > 0 else []
                next_pending = self._submit(upcoming, runner)
                for data, outcome in zip(current, self._resolve(pending)):
                    report.execs += 1
                    self._integrate(
                        data, outcome, report.execs,
                        perf_counter() - started, report, crashes,
                    )
                if shared is not None:
                    shared.publish(self._virgin)
                if stop_on_first_crash and report.first_detected_exec:
                    if next_pending is not None and not isinstance(
                            next_pending, list):
                        next_pending.cancel()
                    break
                if checkpoint is not None:
                    checkpoint(
                        self._campaign_state(report, crashes, upcoming))
                batches_done += 1
                if (stop_after_batches is not None
                        and batches_done >= stop_after_batches
                        and upcoming):
                    if next_pending is not None and not isinstance(
                            next_pending, list):
                        next_pending.cancel()
                    interrupted = True
                    break
                current, pending = upcoming, next_pending
        finally:
            if runner is not None:
                runner.close()
            if shared is not None:
                shared.close()

        if minimize and crashes and not interrupted:
            executor = self._local_executor()

            def run_outcome(data: bytes) -> ExecOutcome:
                return outcome_of(self._observer, executor.run(data),
                                  executor.monitor)

            for record in crashes.values():
                record.minimized, used = minimize_input(
                    run_outcome, record.input, record.site,
                    budget=minimize_budget,
                )
                report.minimization_execs += used

        report.interrupted = interrupted
        report.duration_seconds = perf_counter() - started
        report.edges = len(self._covered)
        report.corpus_size = len(self.queue)
        report.corpus_digest = _digest_corpus(self.queue)
        report.crashes = sorted(
            crashes.values(), key=lambda record: record.found_at_exec
        )
        if self._executor is not None:
            report.restored_pages = self._executor.restored_pages
        return report
