"""The static linker: object files to an executable image.

Performs the layout + relocation step of the compilation pipeline
described in Section II of the paper.  The default memory map mirrors
Figure 1(c):

* text segment low (``0x08048000``, the figure's own value);
* data segment above it;
* stack segment high (``0xbfff0000``), growing downward;
* kernel segments at the top of the address space;
* protected modules in their own page-aligned segments in between.

ASLR is expressed as per-segment shifts in the :class:`LayoutPlan`;
the loader draws them from the machine's entropy source, so linking
with a randomised plan *is* load-time randomisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkError
from repro.link.image import Image, ModuleSpec, Segment
from repro.link.objfile import DATA, ObjectFile, Symbol, TEXT
from repro.machine.memory import PAGE_SIZE, PERM_RW, PERM_RX

#: Source for the generated startup object: call main, then exit with
#: main's return value (already in r0, where ``sys exit`` reads it).
CRT0_SOURCE = """
.text
.global _start
_start:
    call main
    sys 3
"""


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


@dataclass
class LayoutPlan:
    """Where the linker places everything.

    The ``*_shift`` fields are the ASLR displacements (multiples of
    the page size); zero shifts give the classic fully predictable
    layout that Section III attacks assume.
    """

    text_base: int = 0x08048000
    data_base: int = 0x08100000
    stack_base: int = 0xBFFF0000
    stack_size: int = 0x10000
    module_base: int = 0x30000000
    kernel_base: int = 0xC0000000
    platform_base: int = 0x00010000
    #: SFI sandboxes: 1 MiB-aligned data and text areas (one slot per
    #: sandboxed object, 2 MiB stride so masked addresses of different
    #: sandboxes never alias).
    sfi_data_base: int = 0x50000000
    sfi_text_base: int = 0x58000000
    text_shift: int = 0
    data_shift: int = 0
    stack_shift: int = 0


@dataclass
class _Placement:
    """Where one object's sections landed."""

    text_start: int = 0
    data_start: int = 0
    obj: ObjectFile = None


def link(objects: list[ObjectFile], plan: LayoutPlan | None = None,
         add_crt0: bool = True) -> Image:
    """Link ``objects`` into an executable image.

    ``add_crt0`` prepends the generated startup object (needs a global
    ``main``); disable it for bare images driven directly by tests.
    """
    # Imported here: the assembler depends on the object-file model in
    # this package, so a module-level import would be circular.
    from repro.asm.assembler import assemble

    plan = plan or LayoutPlan()
    objects = list(objects)
    if add_crt0:
        objects.insert(0, assemble(CRT0_SOURCE, "crt0"))

    names = [obj.name for obj in objects]
    if len(set(names)) != len(names):
        raise LinkError(f"duplicate object names: {sorted(names)}")

    normal = [o for o in objects
              if not o.protected and not o.kernel and not o.sfi]
    protected = [o for o in objects if o.protected]
    kernel = [o for o in objects if o.kernel]
    sandboxed = [o for o in objects if o.sfi]
    if any(o.protected and o.kernel for o in objects):
        raise LinkError("an object cannot be both protected and kernel")
    if any(o.sfi and (o.protected or o.kernel) for o in objects):
        raise LinkError("an SFI object cannot be protected or kernel")

    image = Image()
    placements: dict[str, _Placement] = {}

    # --- layout ---------------------------------------------------------
    text_cursor = plan.text_base + plan.text_shift
    for obj in normal:
        placement = _Placement(obj=obj)
        placement.text_start = text_cursor
        text_cursor = _align(text_cursor + obj.text.size, 4)
        placements[obj.name] = placement
    text_start = plan.text_base + plan.text_shift
    text_size = text_cursor - text_start

    data_cursor = plan.data_base + plan.data_shift
    for obj in normal:
        placements[obj.name].data_start = data_cursor
        data_cursor = _align(data_cursor + obj.data.size, 4)
    data_start = plan.data_base + plan.data_shift
    data_size = data_cursor - data_start

    module_cursor = plan.module_base
    module_bounds: dict[str, tuple[int, int, int, int]] = {}
    for obj in protected:
        placement = _Placement(obj=obj)
        placement.text_start = module_cursor
        module_text_end = placement.text_start + obj.text.size
        placement.data_start = _align(module_text_end, PAGE_SIZE)
        module_data_end = placement.data_start + max(obj.data.size, 4)
        module_cursor = _align(module_data_end, PAGE_SIZE)
        placements[obj.name] = placement
        module_bounds[obj.name] = (
            placement.text_start, module_text_end,
            placement.data_start, module_data_end,
        )

    #: SFI sandboxes: each object gets a 1 MiB data sandbox (its .data
    #: at the bottom, its stack at the top) and a 1 MiB text slot.
    SANDBOX_SIZE = 0x100000
    sfi_bounds: dict[str, tuple[int, int]] = {}  # name -> (data_base, text_base)
    for position, obj in enumerate(sandboxed):
        data_base = plan.sfi_data_base + position * 2 * SANDBOX_SIZE
        text_base = plan.sfi_text_base + position * 2 * SANDBOX_SIZE
        placement = _Placement(obj=obj)
        placement.text_start = text_base
        placement.data_start = data_base
        placements[obj.name] = placement
        sfi_bounds[obj.name] = (data_base, text_base)
        if obj.text.size > SANDBOX_SIZE:
            raise LinkError(f"SFI object {obj.name} exceeds its text sandbox")
        if obj.data.size > SANDBOX_SIZE - 0x1000:
            raise LinkError(f"SFI object {obj.name} exceeds its data sandbox")

    kernel_cursor = plan.kernel_base
    kernel_bounds: dict[str, tuple[int, int]] = {}
    for obj in kernel:
        placement = _Placement(obj=obj)
        placement.text_start = kernel_cursor
        kernel_text_end = placement.text_start + obj.text.size
        placement.data_start = _align(kernel_text_end, 4)
        kernel_cursor = _align(placement.data_start + obj.data.size, PAGE_SIZE)
        placements[obj.name] = placement
        kernel_bounds[obj.name] = (placement.text_start, kernel_text_end)

    # --- symbol tables -----------------------------------------------------
    def address_of(obj: ObjectFile, symbol: Symbol) -> int:
        placement = placements[obj.name]
        base = placement.text_start if symbol.section == TEXT else placement.data_start
        return base + symbol.offset

    global_table: dict[str, int] = {}
    global_owner: dict[str, str] = {}
    for obj in objects:
        for symbol in obj.symbols.values():
            if not symbol.is_global:
                continue
            if symbol.name in global_table:
                raise LinkError(
                    f"duplicate global symbol {symbol.name!r} in "
                    f"{global_owner[symbol.name]} and {obj.name}"
                )
            global_table[symbol.name] = address_of(obj, symbol)
            global_owner[symbol.name] = obj.name

    # Platform symbols the toolchain may reference.
    canary_cell = plan.platform_base
    builtin_symbols = {"__canary": canary_cell}
    if sandboxed:
        if len(sandboxed) > 1:
            raise LinkError(
                "at most one SFI sandbox per image (its stack-top symbol "
                "is global)"
            )
        sandbox_data, _sandbox_text = sfi_bounds[sandboxed[0].name]
        builtin_symbols["__sfi_stack_top"] = sandbox_data + 0x100000 - 16
    else:
        # No sandbox in the image: the springboard (if linked) gets a
        # scratch area low in the ordinary stack segment -- this is the
        # "raw load" baseline where the untrusted module is unconfined.
        builtin_symbols["__sfi_stack_top"] = (
            plan.stack_base + plan.stack_shift + 0x8000
        )
    for name, addr in builtin_symbols.items():
        if name in global_table:
            raise LinkError(f"symbol {name!r} collides with a linker builtin")
        global_table[name] = addr

    for obj in objects:
        for symbol in obj.symbols.values():
            addr = address_of(obj, symbol)
            image.symbols[f"{obj.name}:{symbol.name}"] = addr
            if symbol.is_global:
                image.symbols[symbol.name] = addr
            elif symbol.name not in image.symbols:
                image.symbols[symbol.name] = addr
            if symbol.kind == "func":
                image.function_addresses.add(addr)
            elif symbol.kind == "object":
                image.data_addresses.add(addr)
        # Frame layouts ride from the compiler keyed by function name;
        # re-key them by linked entry address for runtime consumers
        # (the invariant monitors' object-bounds checks).
        for func_name, locals_ in obj.frame_info.items():
            symbol = obj.symbols.get(func_name)
            if symbol is not None and symbol.section == TEXT:
                image.frame_tables[address_of(obj, symbol)] = locals_
    image.symbols.update(builtin_symbols)

    # --- relocation ---------------------------------------------------------
    patched: dict[tuple[str, str], bytearray] = {}
    for obj in objects:
        for section_name in (TEXT, DATA):
            section = obj.section(section_name)
            blob = bytearray(section.data)
            for reloc in section.relocations:
                local = obj.symbols.get(reloc.symbol)
                if local is not None:
                    target = address_of(obj, local)
                elif obj.sfi and reloc.symbol in ("__sfi_sandbox", "__sfi_text"):
                    data_base, text_base = sfi_bounds[obj.name]
                    target = (data_base if reloc.symbol == "__sfi_sandbox"
                              else text_base)
                elif obj.protected and reloc.symbol in ("__module_start", "__module_end"):
                    # Per-module bounds for the secure-compilation
                    # function-pointer checks: the module span is
                    # [text_start, data_end).
                    text_lo, _text_hi, _data_lo, data_hi = module_bounds[obj.name]
                    target = text_lo if reloc.symbol == "__module_start" else data_hi
                elif reloc.symbol in global_table:
                    target = global_table[reloc.symbol]
                else:
                    raise LinkError(
                        f"{obj.name}: undefined symbol {reloc.symbol!r}"
                    )
                value = (target + reloc.addend) & 0xFFFFFFFF
                blob[reloc.offset : reloc.offset + 4] = value.to_bytes(4, "little")
            patched[(obj.name, section_name)] = blob

    # --- segments ---------------------------------------------------------------
    def concatenate(objs: list[ObjectFile], section_name: str, start: int,
                    total: int) -> bytes:
        blob = bytearray(total)
        for obj in objs:
            placement = placements[obj.name]
            base = (placement.text_start if section_name == TEXT
                    else placement.data_start)
            data = patched[(obj.name, section_name)]
            blob[base - start : base - start + len(data)] = data
        return bytes(blob)

    if text_size:
        image.segments.append(Segment(
            "text", text_start, concatenate(normal, TEXT, text_start, text_size),
            PERM_RX, "text",
        ))
    if data_size:
        image.segments.append(Segment(
            "data", data_start, concatenate(normal, DATA, data_start, data_size),
            PERM_RW, "data",
        ))

    stack_start = plan.stack_base + plan.stack_shift
    image.segments.append(Segment(
        "stack", stack_start, bytes(plan.stack_size), PERM_RW, "stack",
    ))
    image.stack_range = (stack_start, stack_start + plan.stack_size)
    image.initial_sp = stack_start + plan.stack_size - 32

    image.segments.append(Segment(
        "platform", plan.platform_base, bytes(PAGE_SIZE), PERM_RW, "platform",
    ))
    image.canary_cell = canary_cell

    for obj in protected:
        text_lo, text_hi, data_lo, data_hi = module_bounds[obj.name]
        text_bytes = bytes(patched[(obj.name, TEXT)])
        data_bytes = bytes(patched[(obj.name, DATA)]) or b"\x00\x00\x00\x00"
        image.segments.append(Segment(
            f"module:{obj.name}:text", text_lo, text_bytes, PERM_RX, "text",
        ))
        image.segments.append(Segment(
            f"module:{obj.name}:data", data_lo,
            data_bytes.ljust(data_hi - data_lo, b"\x00"), PERM_RW, "data",
        ))
        entry_points = {}
        for entry_name in obj.entry_points:
            symbol = obj.symbols[entry_name]
            if symbol.section != TEXT:
                raise LinkError(f"{obj.name}: entry point {entry_name!r} not in .text")
            entry_points[entry_name] = address_of(obj, symbol)
        image.protected_modules.append(ModuleSpec(
            obj.name, text_lo, text_hi, data_lo, data_hi, entry_points, text_bytes,
        ))

    for obj in kernel:
        placement = placements[obj.name]
        text_bytes = bytes(patched[(obj.name, TEXT)])
        data_bytes = bytes(patched[(obj.name, DATA)])
        blob = bytearray(text_bytes)
        blob += bytes(placement.data_start - (placement.text_start + len(text_bytes)))
        blob += data_bytes
        image.segments.append(Segment(
            f"kernel:{obj.name}", placement.text_start, bytes(blob), PERM_RX, "text",
        ))
        image.kernel_ranges.append(kernel_bounds[obj.name])

    for obj in sandboxed:
        data_base, text_base = sfi_bounds[obj.name]
        text_bytes = bytes(patched[(obj.name, TEXT)])
        image.segments.append(Segment(
            f"sfi:{obj.name}:text", text_base, text_bytes, PERM_RX, "text",
        ))
        # The whole data sandbox is mapped (object data at the bottom,
        # the sandboxed stack at the top), so masked accesses are
        # always defined.
        sandbox_blob = bytearray(SANDBOX_SIZE)
        data_bytes = patched[(obj.name, DATA)]
        sandbox_blob[: len(data_bytes)] = data_bytes
        image.segments.append(Segment(
            f"sfi:{obj.name}:data", data_base, bytes(sandbox_blob),
            PERM_RW, "data",
        ))

    # --- bookkeeping ------------------------------------------------------------
    for obj in objects:
        placement = placements[obj.name]
        image.object_layout[obj.name] = {
            TEXT: (placement.text_start, placement.text_start + obj.text.size),
            DATA: (placement.data_start, placement.data_start + obj.data.size),
        }

    # No two segments may overlap (a text segment growing into the
    # data base would silently corrupt the image).
    placed = sorted(image.segments, key=lambda s: s.addr)
    for before, after in zip(placed, placed[1:]):
        if before.end > after.addr:
            raise LinkError(
                f"segment {before.name!r} [0x{before.addr:08x}, "
                f"0x{before.end:08x}) overlaps {after.name!r} at "
                f"0x{after.addr:08x}"
            )

    entry = image.symbols.get("_start")
    if entry is None:
        entry = image.symbols.get("main")
    if entry is None:
        raise LinkError("image has no _start or main")
    image.entry = entry
    return image
