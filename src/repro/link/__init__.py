"""Object files, linker, executable images, and the loader."""

from repro.link.image import Image, ModuleSpec, Segment
from repro.link.linker import LayoutPlan, link
from repro.link.loader import LoadedProgram, load
from repro.link.objfile import DATA, ObjectFile, Relocation, Section, Symbol, TEXT

__all__ = [
    "Image",
    "ModuleSpec",
    "Segment",
    "LayoutPlan",
    "link",
    "LoadedProgram",
    "load",
    "DATA",
    "ObjectFile",
    "Relocation",
    "Section",
    "Symbol",
    "TEXT",
]
