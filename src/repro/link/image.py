"""Executable images: the linker's output, the loader's input.

An image is a concrete address-space plan: segments with contents and
intended permissions, a resolved global symbol table, per-object
section placement (used by experiments that need ground truth, e.g.
the scraper's notion of "where the secret module's data landed"), the
protected-module descriptors, and kernel-privileged ranges.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Segment:
    """One contiguous region to map: ``[addr, addr+len(data))``."""

    name: str
    addr: int
    data: bytes
    #: Intended permissions with DEP on; the loader degrades these to
    #: RWX when DEP is off.
    perms: int
    #: 'text' | 'data' | 'stack' | 'platform'
    kind: str = "data"

    @property
    def end(self) -> int:
        return self.addr + len(self.data)

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end


@dataclass
class ModuleSpec:
    """A protected module's placement within an image."""

    name: str
    text_start: int
    text_end: int
    data_start: int
    data_end: int
    entry_points: dict[str, int]
    #: The text bytes as linked (what the PMA hardware will measure).
    text_bytes: bytes = b""


@dataclass
class Image:
    """A fully linked executable image."""

    segments: list[Segment] = field(default_factory=list)
    #: Resolved addresses of all symbols, qualified ``object:name`` for
    #: locals and bare ``name`` for globals.
    symbols: dict[str, int] = field(default_factory=dict)
    #: Entry address (the generated ``_start``).
    entry: int = 0
    #: Initial stack pointer.
    initial_sp: int = 0
    #: Stack segment bounds (start, end).
    stack_range: tuple[int, int] = (0, 0)
    #: Valid indirect-transfer targets (function entry addresses).
    function_addresses: set[int] = field(default_factory=set)
    #: Per-object section placement: name -> {'.text': (s, e), '.data': (s, e)}.
    object_layout: dict[str, dict[str, tuple[int, int]]] = field(default_factory=dict)
    #: Protected modules to register with the PMA.
    protected_modules: list[ModuleSpec] = field(default_factory=list)
    #: Kernel-privileged text ranges.
    kernel_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: Address of the canary cell in the platform segment.
    canary_cell: int = 0
    #: Per-function frame layouts from the MinC compiler, keyed by the
    #: function's linked entry address:
    #: ``entry -> ((local, bp_offset, size), ...)``.  Debug metadata
    #: consumed by the invariant monitors' object-bounds checks.
    frame_tables: dict[int, tuple] = field(default_factory=dict)
    #: Linked addresses of data-object symbols (``kind == 'object'``),
    #: for deriving global-object extents by the next-symbol interval.
    data_addresses: set[int] = field(default_factory=set)

    def symbol(self, name: str) -> int:
        """Address of a symbol; raises ``KeyError`` with context."""
        try:
            return self.symbols[name]
        except KeyError:
            known = ", ".join(sorted(self.symbols)[:20])
            raise KeyError(f"symbol {name!r} not in image (have: {known} ...)") from None

    def function_symbols(self) -> list[tuple[int, str]]:
        """Function entry symbols as a sorted ``[(address, name)]`` list.

        Globals only (local symbols are qualified ``object:name``),
        restricted to known function entries.  This is the table the
        debugger and the guest profiler symbolise against.
        """
        return sorted(
            (addr, name)
            for name, addr in self.symbols.items()
            if ":" not in name and addr in self.function_addresses
        )

    def segment_named(self, name: str) -> Segment:
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise KeyError(f"no segment named {name!r}")

    def segment_at(self, addr: int) -> Segment | None:
        for segment in self.segments:
            if segment.contains(addr):
                return segment
        return None
