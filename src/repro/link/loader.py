"""The loader: places a linked image into a fresh machine.

This is where the load-time countermeasures of Section III-C1 become
real:

* **DEP** -- segments are mapped with W^X permissions; with DEP off,
  everything is RWX (the historical default that direct code injection
  needs);
* **ASLR** -- the text, data and stack segments are shifted by random
  page counts drawn from ``2**aslr_bits`` possibilities each (stack
  shifts downward so it cannot collide with the kernel area);
* **stack canary** -- a random word is written to the platform page's
  canary cell, from which compiled prologues copy it;
* **shadow stack / CFI** -- machine enforcement is switched on and the
  CFI valid-target set is filled with the image's function entries.

Protected modules are registered with the machine's PMA controller,
which measures their code and derives their keys (Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass
import random

from repro.errors import LoaderError
from repro.link.image import Image
from repro.link.linker import LayoutPlan, link
from repro.link.objfile import ObjectFile
from repro.machine.machine import Machine, MachineConfig, RunResult
from repro.machine.memory import PAGE_SIZE, PERM_RWX
from repro.mitigations.config import MitigationConfig, NONE
from repro.pma.module import PMAController, ProtectedModule

#: Maximum supported ASLR entropy (shifts stay within segment gaps).
MAX_ASLR_BITS = 16


@dataclass
class LoadedProgram:
    """A machine with a program loaded and ready to run."""

    machine: Machine
    image: Image
    config: MitigationConfig

    def feed(self, data: bytes) -> "LoadedProgram":
        """Feed attacker/user input; returns self for chaining."""
        self.machine.input.feed(data)
        return self

    def run(self, max_instructions: int = 2_000_000) -> RunResult:
        return self.machine.run(max_instructions)

    def symbol(self, name: str) -> int:
        return self.image.symbol(name)


def _aslr_shifts(config: MitigationConfig, rng: random.Random) -> tuple[int, int, int]:
    if not config.aslr_bits:
        return 0, 0, 0
    bits = config.aslr_bits
    if bits > MAX_ASLR_BITS:
        raise LoaderError(f"aslr_bits {bits} exceeds supported maximum {MAX_ASLR_BITS}")
    space = 1 << bits
    text = rng.randrange(space) * PAGE_SIZE
    data = rng.randrange(space) * PAGE_SIZE
    stack = -rng.randrange(space) * PAGE_SIZE
    return text, data, stack


def load(
    objects: list[ObjectFile],
    config: MitigationConfig = NONE,
    *,
    seed: int = 0,
    pma: PMAController | None = None,
    plan: LayoutPlan | None = None,
    add_crt0: bool = True,
    trace: bool = False,
    trace_limit: int = 100_000,
) -> LoadedProgram:
    """Link ``objects`` and load them into a fresh machine.

    ``seed`` drives every random choice (ASLR shifts, canary value,
    the machine's ``sys rand``), making attack experiments exactly
    reproducible; the ASLR sweep varies it.

    ``pma`` may be a pre-existing controller so that module state
    (monotonic counters, platform key) survives "reboots" across
    several ``load`` calls -- the substrate of the rollback
    experiments.
    """
    rng = random.Random(seed)
    text_shift, data_shift, stack_shift = _aslr_shifts(config, rng)
    plan = plan or LayoutPlan()
    plan.text_shift = text_shift
    plan.data_shift = data_shift
    plan.stack_shift = stack_shift

    image = link(objects, plan, add_crt0=add_crt0)

    machine_config = MachineConfig(
        shadow_stack=config.shadow_stack,
        cfi=config.cfi or config.cfi_typed,
        cfi_mode="typed" if config.cfi_typed else "coarse",
        redzones=config.asan,
        trace=trace,
        trace_limit=trace_limit,
        rng_seed=rng.getrandbits(32),
    )
    machine = Machine(machine_config, pma)

    for segment in image.segments:
        is_module = segment.name.startswith(("module:", "kernel:", "sfi:"))
        perms = segment.perms if (config.dep or is_module) else PERM_RWX
        machine.memory.map_region(segment.addr, max(len(segment.data), 1), perms)
        machine.memory.write_bytes(segment.addr, segment.data)

    for spec in image.protected_modules:
        module = ProtectedModule(
            name=spec.name,
            text_start=spec.text_start,
            text_end=spec.text_end,
            data_start=spec.data_start,
            data_end=spec.data_end,
            entry_points=frozenset(spec.entry_points.values()),
        )
        machine.pma.register(module, spec.text_bytes)

    for start, end in image.kernel_ranges:
        machine.add_kernel_region(start, end)

    machine.indirect_targets = set(image.function_addresses)

    canary_value = rng.getrandbits(32) if config.stack_canaries else 0
    machine.memory.write_word(image.canary_cell, canary_value)

    machine.cpu.ip = image.entry
    machine.cpu.sp = image.initial_sp
    program = LoadedProgram(machine, image, config)
    # Hand link-time metadata (symbol tables, frame layouts, the canary
    # cell) to any observers already attached -- e.g. via
    # ``observe_new_machines`` factories, which run at Machine
    # construction, before any of the above exists.
    hub = machine._observers
    if hub is not None:
        for observer in hub.observers:
            observer.bind_program(program)
    return program
