"""Relocatable object files.

The compilation model of Section II: each module (hand-written
assembly or MinC source) compiles separately to an object file with a
``.text`` and a ``.data`` section, a symbol table, and 32-bit absolute
relocations.  The linker lays the sections out in the address space
and patches the relocations.

Object files also carry the security-relevant metadata this
reproduction needs:

* ``protected`` -- the module asks to be loaded into a protected
  module (Section IV-A), with ``entry_points`` naming the symbols that
  become its hardware entry points;
* ``kernel`` -- the module asks to be loaded as kernel-privileged code
  (the machine-code attacker model's strongest position).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkError

TEXT = ".text"
DATA = ".data"


@dataclass
class Relocation:
    """Patch the 32-bit word at ``offset`` in the holding section with
    ``address_of(symbol) + addend``."""

    offset: int
    symbol: str
    addend: int = 0


@dataclass
class Symbol:
    """A named location: ``section`` + ``offset`` within one object."""

    name: str
    section: str
    offset: int
    #: 'func' for code labels, 'object' for data labels.
    kind: str = "func"
    #: Exported to other modules?  (Locals still resolve within the
    #: defining object.)
    is_global: bool = False


@dataclass
class Section:
    """One named byte blob plus its relocations."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    relocations: list[Relocation] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class ObjectFile:
    """One separately compiled module."""

    name: str
    sections: dict[str, Section] = field(default_factory=dict)
    symbols: dict[str, Symbol] = field(default_factory=dict)
    #: Symbols designated as PMA entry points (implies ``protected``).
    entry_points: list[str] = field(default_factory=list)
    #: Load into a protected module.
    protected: bool = False
    #: Load as kernel-privileged code.
    kernel: bool = False
    #: This object has been SFI-rewritten: the linker places it in a
    #: 1 MiB-aligned sandbox and resolves its ``__sfi_*`` symbols.
    sfi: bool = False
    #: Per-function stack-frame layout recorded by the MinC code
    #: generator: ``function name -> ((local, bp_offset, size), ...)``
    #: with BP-relative offsets (negative for locals).  Debug metadata
    #: for the invariant monitors' object-bounds checks; hand-written
    #: assembly has no entries.
    frame_info: dict[str, tuple] = field(default_factory=dict)

    def section(self, name: str) -> Section:
        """Get or create a section."""
        if name not in self.sections:
            self.sections[name] = Section(name)
        return self.sections[name]

    @property
    def text(self) -> Section:
        return self.section(TEXT)

    @property
    def data(self) -> Section:
        return self.section(DATA)

    def add_symbol(
        self,
        name: str,
        section: str,
        offset: int,
        kind: str = "func",
        is_global: bool = False,
    ) -> Symbol:
        if name in self.symbols:
            raise LinkError(f"{self.name}: duplicate symbol {name!r}")
        symbol = Symbol(name, section, offset, kind, is_global)
        self.symbols[name] = symbol
        return symbol

    def defined_symbols(self) -> list[str]:
        return sorted(self.symbols)

    def global_symbols(self) -> list[Symbol]:
        return [s for s in self.symbols.values() if s.is_global]

    def undefined_references(self) -> set[str]:
        """Symbols referenced by relocations but not defined here."""
        refs = {
            reloc.symbol
            for section in self.sections.values()
            for reloc in section.relocations
        }
        return refs - set(self.symbols)
