"""Builders: compile + link + load the canonical programs.

Each builder returns a :class:`~repro.link.loader.LoadedProgram` ready
to run.  All builders accept a :class:`MitigationConfig` and a seed so
the experiment harnesses can sweep postures and ASLR draws.

The simulated libc is linked into every victim (as on a real system),
which is what supplies return-to-libc targets and ROP gadget material.
"""

from __future__ import annotations

from repro.asm import assemble
from repro.link import LoadedProgram, load
from repro.link.objfile import ObjectFile
from repro.minic import compile_source
from repro.minic.compiler import options_from_mitigations
from repro.mitigations import MitigationConfig, NONE
from repro.pma.module import PMAController
from repro.programs import sources


def libc_object() -> ObjectFile:
    """The simulated libc, assembled fresh (objects are mutable)."""
    return assemble(sources.LIBC_ASM, "libc")


def build_victim(
    name: str,
    config: MitigationConfig = NONE,
    *,
    seed: int = 0,
    with_libc: bool = True,
    extra_objects: list[ObjectFile] | None = None,
    trace: bool = False,
) -> LoadedProgram:
    """Compile one of the named victim programs and load it.

    ``name`` is a key of :data:`repro.programs.sources.VICTIMS`.
    """
    source = sources.VICTIMS[name]
    options = options_from_mitigations(config)
    objects = [compile_source(source, name, options)]
    if with_libc:
        objects.append(libc_object())
    objects.extend(extra_objects or [])
    return load(objects, config, seed=seed, trace=trace)


def build_fig1(config: MitigationConfig = NONE, *, vulnerable: bool = True,
               seed: int = 0, wide_open: bool = False) -> LoadedProgram:
    """The Figure 1 server (safe, vulnerable, or wide-open variant)."""
    if wide_open:
        return build_victim("fig1_wide_open", config, seed=seed)
    return build_victim("fig1_vulnerable" if vulnerable else "fig1_safe",
                        config, seed=seed)


def build_secret_program(
    config: MitigationConfig = NONE,
    *,
    protected: bool = False,
    secure: bool = False,
    seed: int = 0,
    main_source: str | None = None,
    main_object: ObjectFile | None = None,
    fig4: bool = False,
    pma: PMAController | None = None,
    trace: bool = False,
) -> LoadedProgram:
    """The Figure 2/4 program: secret module + a driver.

    * ``protected`` loads the secret module into a protected module
      (Figure 3);
    * ``secure`` additionally applies the secure-compilation scheme
      (Section IV-B); without it the module is the *insecurely
      compiled* one the Figure 4 attack defeats;
    * ``main_source``/``main_object`` replace the honest driver with
      attacker-controlled code (the machine-code attacker model).
    """
    module_source = sources.SECRET_MODULE_FIG4 if fig4 else sources.SECRET_MODULE_FIG2
    module_options = options_from_mitigations(
        config, protected=protected, secure=secure
    )
    secret_obj = compile_source(module_source, "secret", module_options)
    if main_object is not None:
        main_obj = main_object
    else:
        source = main_source or (
            sources.SECRET_MAIN_FIG4 if fig4 else sources.SECRET_MAIN_FIG2
        )
        main_obj = compile_source(source, "main", options_from_mitigations(config))
    return load([main_obj, secret_obj, libc_object()], config, seed=seed,
                pma=pma, trace=trace)


def build_stateful_secret(
    config: MitigationConfig = NONE,
    *,
    main_object: ObjectFile,
    secure: bool = True,
    seed: int = 0,
    pma: PMAController | None = None,
) -> LoadedProgram:
    """The sealing/state-continuity module plus a host driver.

    The host (``main_object``) plays the operating system: it stores
    and replays sealed blobs.  ``pma`` should be shared across calls to
    model a persistent platform over restarts.
    """
    module_options = options_from_mitigations(
        config, protected=True, secure=secure
    )
    secret_obj = compile_source(
        sources.STATEFUL_SECRET_MODULE, "secret", module_options
    )
    return load([main_object, secret_obj, libc_object()], config, seed=seed, pma=pma)
