"""Multiple mutually distrustful protected modules.

Section IV-B closes with the open problem: "the work mentioned above
focuses on compilation of a single protected module, and does not
handle the case of multiple mutually distrustful modules".  This
substrate implements the scenario: two secure-compiled modules, each
with its own secrets, keys, private stack, and entry points, loaded
side by side.

The programs below let the experiments show:

* **mutual isolation** -- module A's code cannot touch module B's
  memory (each module is "outside" for the other);
* **mutual interaction** -- A can still *call* B through B's entry
  points (A's secure outcall stub -> B's entry stub -> back through
  A's re-entry point), so distrust does not preclude cooperation;
* **key separation** -- A cannot unseal B's sealed state (their
  hardware-derived keys differ because their measurements differ).
"""

MODULE_A = """
static int secret_a = 111;

int get_secret_b(int pin);

int get_secret_a(int pin) {
    if (pin == 1111) { return secret_a; }
    return 0;
}

// A's "curiosity": read an arbitrary address from inside module A.
// Against module B this must be denied by the hardware.
int probe_from_a(int addr) {
    int *p = addr;
    return *p;
}

// A calling B: mutual distrust must still allow cooperation through
// entry points (A's outcall stub -> B's entry stub).
int relay_to_b(int pin) {
    return get_secret_b(pin);
}

// Seal A's secret with A's hardware-derived key.
int seal_from_a(char *out) {
    return seal(&secret_a, 4, out, 96);
}
"""

MODULE_B = """
static int secret_b = 222;

int get_secret_b(int pin) {
    if (pin == 2222) { return secret_b; }
    return 0;
}

// Try to unseal a blob inside module B (fails for A's blobs: B's key
// differs because B's measurement differs).
int unseal_in_b(char *blob, int n) {
    int out = 0;
    int got = unseal(blob, n, &out, 4);
    if (got == -1) { return -1; }
    return out;
}
"""

#: Driver exercising the honest surface and the cross-module probes.
#: Input: one word -- an address for probe_from_a to read.
MULTI_MAIN = """
int get_secret_a(int pin);
int get_secret_b(int pin);
int probe_from_a(int addr);
int relay_to_b(int pin);
int seal_from_a(char *out);
int unseal_in_b(char *blob, int n);

static char blob[96];

int read_int() {
    int v = 0;
    read(0, &v, 4);
    return v;
}

void main() {
    print_int(get_secret_a(1111));       // 111: A serves its client
    print_int(get_secret_b(2222));       // 222: B serves its client
    print_int(relay_to_b(2222));         // 222: A -> B through entry points
    int n = seal_from_a(blob);
    print_int(unseal_in_b(blob, n));     // -1: B cannot open A's blob
    int target = read_int();
    print_int(probe_from_a(target));     // A probes an address (may fault)
}
"""
