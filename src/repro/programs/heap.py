"""The heap substrate: a first-fit allocator written in MinC.

Section III-A defines temporal vulnerabilities over *explicit*
deallocation too ("such deallocation can happen implicitly or
explicitly"); this module supplies the explicit side.  The allocator
is deliberately classic -- inline chunk headers, first fit, forward
coalescing -- because that is the design whose properties heap attacks
exploit: freed memory is recycled verbatim (use-after-free becomes
attacker-controlled aliasing) and chunks are adjacent (overflows cross
into neighbours and their metadata).

Two builds:

* :data:`HEAP_ALLOCATOR` -- the plain allocator;
* :data:`HEAP_ALLOCATOR_CHECKED` -- the same allocator instrumented
  with red zones (guard word after each allocation, freed payloads
  poisoned, double-free detected), the heap half of the
  "run-time checks during testing" countermeasure of Section III-C2.

Both are ordinary MinC modules; victims link one or the other.
"""

#: Shared interface (prototypes victims paste in).
HEAP_PROTOTYPES = """
int *malloc(int nbytes);
void free_ptr(int *p);
int heap_free_words();
"""

HEAP_ALLOCATOR = """
// heap.c -- first-fit free-list allocator over a static arena.
//
// Chunk layout (word granularity):
//   arena[i]     payload size in words
//   arena[i+1]   1 if free, 0 if allocated
//   arena[i+2..] payload
static int arena[512];
static int heap_ready = 0;

int *malloc(int nbytes) {
    if (heap_ready == 0) {
        arena[0] = 510;
        arena[1] = 1;
        heap_ready = 1;
    }
    int nwords = (nbytes + 3) / 4;
    if (nwords < 1) { nwords = 1; }
    int i = 0;
    while (i < 512) {
        int size = arena[i];
        if (arena[i + 1] == 1) {
            if (size >= nwords) {
                if (size >= nwords + 3) {
                    // split: new free chunk after this allocation
                    arena[i + 2 + nwords] = size - nwords - 2;
                    arena[i + 3 + nwords] = 1;
                    arena[i] = nwords;
                }
                arena[i + 1] = 0;
                return &arena[i + 2];
            }
        }
        i = i + 2 + size;
    }
    return 0;
}

void free_ptr(int *p) {
    int addr = p;
    int base = arena;
    int idx = (addr - base) / 4 - 2;
    arena[idx + 1] = 1;                 // no double-free check (classic)
    int next = idx + 2 + arena[idx];
    if (next < 511) {
        if (arena[next + 1] == 1) {
            // forward coalesce
            arena[idx] = arena[idx] + 2 + arena[next];
        }
    }
}

int heap_free_words() {
    if (heap_ready == 0) {
        arena[0] = 510;
        arena[1] = 1;
        heap_ready = 1;
    }
    int total = 0;
    int i = 0;
    while (i < 512) {
        if (arena[i + 1] == 1) { total = total + arena[i]; }
        i = i + 2 + arena[i];
    }
    return total;
}
"""

HEAP_ALLOCATOR_CHECKED = """
// heap_checked.c -- the same allocator with testing instrumentation:
//   * one poisoned guard word after every allocation (overflow trap)
//   * freed payloads poisoned (use-after-free trap)
//   * a one-slot quarantine delaying chunk reuse, so a dangling
//     pointer still points at poisoned memory after the next malloc
//     (the reason real AddressSanitizer quarantines frees)
//   * double frees abort with exit code 13
static int arena[512];
static int heap_ready = 0;
static int quarantine_idx = -1;

int *malloc(int nbytes) {
    if (heap_ready == 0) {
        arena[0] = 510;
        arena[1] = 1;
        heap_ready = 1;
        poison(&arena[2], 510 * 4);     // the virgin arena is off limits
    }
    int nwords = (nbytes + 3) / 4;
    if (nwords < 1) { nwords = 1; }
    int nalloc = nwords + 1;            // + guard word
    int i = 0;
    while (i < 512) {
        int size = arena[i];
        if (arena[i + 1] == 1) {
            if (size >= nalloc) {
                unpoison(&arena[i + 2], size * 4);
                if (size >= nalloc + 3) {
                    arena[i + 2 + nalloc] = size - nalloc - 2;
                    arena[i + 3 + nalloc] = 1;
                    arena[i] = nalloc;
                    poison(&arena[i + 4 + nalloc], (size - nalloc - 2) * 4);
                }
                arena[i + 1] = 0;
                poison(&arena[i + 2 + nwords], (arena[i] - nwords) * 4);
                return &arena[i + 2];
            }
        }
        i = i + 2 + size;
    }
    return 0;
}

void free_ptr(int *p) {
    int addr = p;
    int base = arena;
    int idx = (addr - base) / 4 - 2;
    if (idx == quarantine_idx) { exit(13); }   // double free (in quarantine)
    if (arena[idx + 1] == 1) { exit(13); }     // double free detected
    poison(&arena[idx + 2], arena[idx] * 4);
    // Release the previously quarantined chunk for real...
    if (quarantine_idx >= 0) {
        arena[quarantine_idx + 1] = 1;
        int next = quarantine_idx + 2 + arena[quarantine_idx];
        if (next < 511) {
            if (arena[next + 1] == 1) {
                arena[quarantine_idx] = arena[quarantine_idx] + 2 + arena[next];
            }
        }
    }
    // ...and park this one (still marked allocated, so malloc skips it).
    quarantine_idx = idx;
}

int heap_free_words() {
    if (heap_ready == 0) {
        arena[0] = 510;
        arena[1] = 1;
        heap_ready = 1;
        poison(&arena[2], 510 * 4);
    }
    int total = 0;
    int i = 0;
    while (i < 512) {
        if (arena[i + 1] == 1) { total = total + arena[i]; }
        i = i + 2 + arena[i];
    }
    return total;
}
"""

# ---------------------------------------------------------------------------
# Heap attack vehicles
# ---------------------------------------------------------------------------

#: Use-after-free onto a function pointer: the freed handler object is
#: recycled into an attacker-filled buffer; the dangling call goes
#: wherever the attacker wrote.
HEAP_UAF_VICTIM = HEAP_PROTOTYPES + """
int greet(int x) {
    print_int(x);
    return 0;
}

void main() {
    int *handler_obj = malloc(8);
    handler_obj[0] = greet;            // code pointer in a heap object
    handler_obj[1] = 42;
    free_ptr(handler_obj);             // BUG: object freed...
    int *request = malloc(8);          // ...its chunk is recycled...
    read(0, request, 8);               // ...and attacker-filled
    int (*f)(int);
    f = handler_obj[0];                // BUG: ...but still used (dangling)
    f(handler_obj[1]);
}
"""

#: Heap overflow into the adjacent chunk: the note buffer overflows
#: across the next chunk's header into the account object.
HEAP_OVERFLOW_VICTIM = HEAP_PROTOTYPES + """
int read_int() {
    int v = 0;
    read(0, &v, 4);
    return v;
}

void main() {
    int *note = malloc(16);
    int *account = malloc(8);
    account[0] = 0;                    // is_admin
    int n = read_int();
    read(0, note, n);                  // BUG: n is attacker-controlled
    if (account[0]) {
        print_int(31337);              // administrative action
    } else {
        print_int(0);
    }
}
"""

#: Double free (caught by the checked allocator, silent corruption
#: fodder in the plain one).
HEAP_DOUBLE_FREE_VICTIM = HEAP_PROTOTYPES + """
void main() {
    int *a = malloc(8);
    free_ptr(a);
    free_ptr(a);                       // BUG
    print_int(heap_free_words());
}
"""
