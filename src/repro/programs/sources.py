"""Canonical program sources: the paper's figures and the attack vehicles.

Each constant is MinC (or VN32 assembly) source for one module.  The
comments mark the deliberate bugs -- every one is an instance of the
vulnerability classes of Section III-A of the paper.
"""

# ---------------------------------------------------------------------------
# Figure 1: the server program.  The paper introduces the bug by
# changing the read length from 16 to 32.  Both variants are provided.
# ---------------------------------------------------------------------------

#: The correct server from Figure 1(a).
FIG1_SERVER_SAFE = """
void get_request(int fd, char buf[]) {
    read(fd, buf, 16);
}

void process(int fd) {
    char buf[16];
    get_request(fd, buf);
    // Process the request (the paper omits this part): echo it back.
    write(1, buf, 16);
}

void main() {
    int fd = 1;
    // Initialize server, wait for a connection (modelled by the
    // machine's input channel), then process the request:
    process(fd);
}
"""

#: The vulnerable variant: read(fd, buf, 32) into a 16-byte buffer --
#: the paper's canonical spatial vulnerability.
FIG1_SERVER_VULNERABLE = FIG1_SERVER_SAFE.replace(
    "read(fd, buf, 16);", "read(fd, buf, 32);   // BUG: buf holds only 16 bytes"
)

#: A variant with a much larger overflow, giving stack-smashing
#: payloads room for shellcode and ROP chains.
FIG1_SERVER_WIDE_OPEN = FIG1_SERVER_SAFE.replace(
    "read(fd, buf, 16);", "read(fd, buf, 256);  // BUG: buf holds only 16 bytes"
)

#: The coverage-guidance vehicle: the Figure 1 overflow hidden behind a
#: byte-at-a-time method check.  A blind fuzzer only reaches the
#: vulnerable ``read`` when the first three random bytes spell "GET"
#: (odds 2^-24 per input), while a coverage-guided fuzzer solves the
#: gates one comparison at a time -- each correct byte lights up a new
#: branch edge and gets kept in the corpus.
FIG1_SERVER_STAGED = """
void handle_request(int fd) {
    char buf[16];
    read(fd, buf, 64);                 // BUG: buf holds only 16 bytes
    write(1, buf, 16);
}

void main() {
    char method[4];
    read(0, method, 4);
    if (method[0] == 'G') {
        if (method[1] == 'E') {
            if (method[2] == 'T') {
                handle_request(0);
            }
        }
    }
}
"""

#: The staged victim with a parsing front-end: every request is
#: checksummed byte-by-byte before the method check, the way a real
#: server tokenizes before it routes.  Guest execution (a few hundred
#: instructions per request) dominates the per-input fixed cost here,
#: which is what makes this the fuzzing *throughput* vehicle: the
#: benchmark suite uses it to price coverage-observed dispatch, where
#: the tiny staged victim would mostly price snapshot restores.
FIG1_SERVER_PARSING = """
char body[64];

void handle_request(int fd) {
    char buf[16];
    read(fd, buf, 64);                 // BUG: buf holds only 16 bytes
    write(1, buf, 16);
}

void main() {
    char method[4];
    int sum = 0;
    int i;
    read(0, method, 4);
    read(0, body, 64);
    for (i = 0; i < 64; i = i + 1) {
        sum = sum * 31 + body[i];      // parse work on every request
        sum = sum ^ (sum >> 7);        // Jenkins-style avalanche mix
        sum = sum + (sum << 3);
        sum = sum ^ (sum >> 11);
    }
    if (method[0] == 'G') {
        if (method[1] == 'E') {
            if (method[2] == 'T') {
                handle_request(0);
            }
        }
    }
    print_int(sum);
}
"""

# ---------------------------------------------------------------------------
# Data-only attack vehicle (Section III-B): overflowing ``name``
# reaches the adjacent ``is_admin`` flag without touching the canary
# or any code pointer.
# ---------------------------------------------------------------------------

DATA_ONLY_VICTIM = """
static int account_balance = 31337;    // the admin-only datum

void main() {
    int is_admin = 0;
    char name[16];
    read(0, name, 64);                 // BUG: name holds only 16 bytes
    if (is_admin) {
        print_int(account_balance);    // administrative action
    } else {
        print_int(0);
    }
}
"""

# ---------------------------------------------------------------------------
# Arbitrary-write vehicle: ``arr[i] = v`` with attacker-controlled i
# and v.  As Section III-A notes, this reaches the entire address
# space (indexing wraps at the top of memory).
# ---------------------------------------------------------------------------

ARBITRARY_WRITE_VICTIM = """
int read_int() {
    int v = 0;
    read(0, &v, 4);
    return v;
}

void check_credentials() {
    // Patch target for the code-corruption attack: always prints 0
    // unless its code is rewritten.
    print_int(0);
}

void main() {
    int arr[4];
    int writes = read_int();
    int i;
    for (i = 0; i < writes; i = i + 1) {
        int idx = read_int();
        int val = read_int();
        arr[idx] = val;                // BUG: idx is never checked
    }
    check_credentials();
    exit(7);
}
"""

# ---------------------------------------------------------------------------
# Code-pointer overwrite vehicle: a function pointer sits between the
# buffer and the canary, so overwriting it evades canary checks.
# ---------------------------------------------------------------------------

FUNCPTR_VICTIM = """
int apply_discount(int price) {
    return price - 10;
}

// Same signature as apply_discount: the residual target typed CFI
// cannot exclude (it only checks the function *type*).
int waive_payment(int price) {
    return 0;
}

void main() {
    int (*handler)(int);
    char coupon[16];
    handler = &apply_discount;
    read(0, coupon, 64);               // BUG: coupon holds only 16 bytes
    print_int(handler(100));
}
"""

# ---------------------------------------------------------------------------
# Information-leak vehicles (Section III-B / Heartbleed; also the
# "memory secrecy" bypass of reference [5]).
# ---------------------------------------------------------------------------

#: Global over-read: echoes a request back with an attacker-chosen
#: length, leaking the secret key that sits after the reply buffer.
HEARTBLEED_VICTIM = """
char reply[16];
static char secret_key[16] = "KEY-19A7F3C055E";

int read_int() {
    int v = 0;
    read(0, &v, 4);
    return v;
}

void main() {
    int n = read_int();
    read(0, reply, 16);
    write(1, reply, n);                // BUG: n may exceed 16
}
"""

#: Stack over-read + later overflow in the same frame: leaks the
#: canary and a return address (defeating ASLR), then lets the
#: attacker smash with the leaked values.  Runs request rounds until
#: the input channel is exhausted.
LEAK_THEN_SMASH_VICTIM = """
int read_int() {
    int v = 0;
    read(0, &v, 4);
    return v;
}

void handle_request() {
    char buf[16];
    int fill = read_int();
    int echo = read_int();
    read(0, buf, fill);                // BUG if fill > 16
    write(1, buf, echo);               // BUG if echo > 16 (leak)
}

void main() {
    int rounds = read_int();
    int i;
    for (i = 0; i < rounds; i = i + 1) {
        handle_request();
    }
}
"""

# ---------------------------------------------------------------------------
# ROP exfiltration vehicle: a secret in static data plus a wide-open
# stack overflow.  Under DEP the attacker cannot inject code, but a
# chain of pre-existing gadgets can still ship the key out.
# ---------------------------------------------------------------------------

#: Pivot vehicle: the stack overflow is *tight* (just past the return
#: address), but the attacker also controls a large global message
#: store -- the paper's trampoline scenario: reset SP into the
#: attacker-controlled region and return.
ROP_PIVOT_VICTIM = """
static char inbox[128];                // attacker-filled message store

void store_message() {
    read(0, inbox, 128);
}

void serve() {
    char buf[16];
    read(0, buf, 28);                  // BUG, but only 8 bytes past buf+bp
}

void main() {
    store_message();
    serve();
}
"""

ROP_EXFIL_VICTIM = """
static char master_key[16] = "MK-7F3A55E90C2";

void serve() {
    char buf[16];
    read(0, buf, 512);                 // BUG: buf holds only 16 bytes
    write(1, buf, 4);
}

void main() {
    serve();
}
"""

# ---------------------------------------------------------------------------
# Temporal vulnerability (use-after-return), Section III-A.
# ---------------------------------------------------------------------------

TEMPORAL_VICTIM = """
int *make_counter() {
    int counter = 41;
    return &counter;                   // BUG: counter dies on return
}

int unrelated(int x) {
    int local = x;                     // reuses the dead frame
    return local + 1;
}

void main() {
    int *p = make_counter();
    unrelated(58);
    print_int(*p);                     // reads whatever unrelated() left
}
"""

#: The safe-language rewrite of the same program (what MinC-safe
#: accepts): state lives in a global, no addresses escape.
TEMPORAL_SAFE_REWRITE = """
static int counter = 41;

int unrelated(int x) {
    int local = x;
    return local + 1;
}

void main() {
    unrelated(58);
    print_int(counter);
}
"""

# ---------------------------------------------------------------------------
# Figure 2: the secret module and a driver.
# ---------------------------------------------------------------------------

SECRET_MODULE_FIG2 = """
static int tries_left = 3;
static int PIN = 1234;
static int secret = 666;

int get_secret(int provided_pin) {
    if (tries_left > 0) {
        if (PIN == provided_pin) {
            tries_left = 3;
            return secret;
        } else { tries_left-- ; return 0; }
    }
    else return 0;
}
"""

#: Driver for Figure 2: reads a guess count, then that many PIN
#: guesses (4-byte little-endian each), printing get_secret's answer.
SECRET_MAIN_FIG2 = """
int get_secret(int pin);

int read_int() {
    int v = 0;
    read(0, &v, 4);
    return v;
}

void main() {
    int guesses = read_int();
    int i;
    for (i = 0; i < guesses; i = i + 1) {
        print_int(get_secret(read_int()));
    }
}
"""

# ---------------------------------------------------------------------------
# Figure 4: the variant taking a get_pin() callback.
# ---------------------------------------------------------------------------

SECRET_MODULE_FIG4 = """
static int tries_left = 3;
static int PIN = 1234;
static int secret = 666;

int get_secret(int (*get_pin)()) {
    if (tries_left > 0) {
        if (PIN == get_pin()) {
            tries_left = 3;
            return secret;
        } else { tries_left-- ; return 0; }
    }
    else return 0;
}
"""

#: Honest driver for Figure 4: supplies a PIN-from-stdin callback.
SECRET_MAIN_FIG4 = """
int get_secret(int (*get_pin)());

int pin_from_stdin() {
    int v = 0;
    read(0, &v, 4);
    return v;
}

void main() {
    int rounds = pin_from_stdin();
    int i;
    for (i = 0; i < rounds; i = i + 1) {
        print_int(get_secret(&pin_from_stdin));
    }
}
"""

# ---------------------------------------------------------------------------
# Sealing / state continuity vehicle (Section IV-C): the secret module
# persists tries_left through the (attacker-controlled) OS.
# ---------------------------------------------------------------------------

#: Protected module that seals its state between invocations.  The
#: host passes blobs in and out; a rollback attacker replays old ones.
STATEFUL_SECRET_MODULE = """
static int tries_left = 3;
static int PIN = 1234;
static int secret = 666;
static char blob[128];

// Restore state from a sealed blob (0 bytes = first boot).
int secret_restore(char *stored, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) { blob[i] = stored[i]; }
    if (n == 0) { return 0; }
    int out = 0;
    int got = unseal(blob, n, &out, 4);
    if (got == 0 - 1) { tries_left = 0; return 0 - 1; }  // forged blob: lock
    tries_left = out;
    return 0;
}

// Try a PIN; seal the new state into the caller's buffer.
// Returns the secret (or 0); writes the sealed blob through out/out_len.
int secret_try(int provided_pin, char *out) {
    int result = 0;
    if (tries_left > 0) {
        if (PIN == provided_pin) {
            tries_left = 3;
            result = secret;
        } else {
            tries_left = tries_left - 1;
        }
    }
    int n = seal(&tries_left, 4, out, 128);
    return result * 1000 + n;                // pack result and blob size
}
"""

#: The same module hardened with the hardware monotonic counter
#: (Memoir-style state continuity, Section IV-C): sealed state carries
#: the counter value and stale blobs are refused.  First boot is only
#: accepted while the counter is still zero.
STATEFUL_SECRET_MODULE_MONOTONIC = """
static int tries_left = 3;
static int PIN = 1234;
static int secret = 666;
static char blob[128];

int secret_restore(char *stored, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) { blob[i] = stored[i]; }
    if (n == 0) {
        if (ctr_read() != 0) { tries_left = 0; return 0 - 3; }
        return 0;                            // genuine first boot
    }
    int state[2];
    state[0] = 0;
    state[1] = 0;
    int got = unseal(blob, n, state, 8);
    if (got == 0 - 1) { tries_left = 0; return 0 - 1; }
    if (state[1] != ctr_read()) { tries_left = 0; return 0 - 2; }  // stale!
    tries_left = state[0];
    return 0;
}

int secret_try(int provided_pin, char *out) {
    int result = 0;
    if (tries_left > 0) {
        if (PIN == provided_pin) {
            tries_left = 3;
            result = secret;
        } else {
            tries_left = tries_left - 1;
        }
    }
    int state[2];
    state[0] = tries_left;
    state[1] = ctr_incr();                   // freshness stamp
    int n = seal(state, 8, out, 128);
    return result * 1000 + n;
}
"""

#: Ice-style state continuity [37] at module level: seal stamps the
#: *next* counter value but does not bump it; the host persists the
#: blob and then calls secret_commit(), which bumps the counter.
#: Recovery accepts counter (committed) or counter+1 (persisted but
#: uncommitted -- the crash window), completing the increment itself.
#: Rollback-safe at every crash point, and never bricks.
STATEFUL_SECRET_MODULE_ICE = """
static int tries_left = 3;
static int PIN = 1234;
static int secret = 666;
static char blob[128];

int secret_restore(char *stored, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) { blob[i] = stored[i]; }
    if (n == 0) {
        if (ctr_read() != 0) { tries_left = 0; return -3; }
        return 0;                            // genuine first boot
    }
    int state[2];
    state[0] = 0;
    state[1] = 0;
    int got = unseal(blob, n, state, 8);
    if (got == -1) { tries_left = 0; return -1; }
    int ctr = ctr_read();
    if (state[1] == ctr + 1) {
        ctr_incr();                          // complete the in-flight update
        tries_left = state[0];
        return 0;
    }
    if (state[1] == ctr) {
        tries_left = state[0];
        return 0;
    }
    tries_left = 0;                          // stale: rollback attempt
    return -2;
}

int secret_try(int provided_pin, char *out) {
    int result = 0;
    if (tries_left > 0) {
        if (PIN == provided_pin) {
            tries_left = 3;
            result = secret;
        } else { tries_left--; }
    }
    int state[2];
    state[0] = tries_left;
    state[1] = ctr_read() + 1;               // stamp, but do NOT bump yet
    int n = seal(state, 8, out, 128);
    return result * 1000 + n;
}

int secret_commit() {
    ctr_incr();                              // host persisted: commit
    return 0;
}
"""

# ---------------------------------------------------------------------------
# The simulated libc, written in assembly.  Provides the classic
# return-to-libc target plus the register-restore epilogues and the
# stack-pivot trampoline that give ROP chains their gadgets.
# ---------------------------------------------------------------------------

LIBC_ASM = """
; libc.s -- support routines linked into every victim program.
.text

.global libc_spawn_shell
libc_spawn_shell:               ; the return-to-libc target (system())
    sys 4
    ret

.global libc_exit
libc_exit:                      ; exit(r0)
    sys 3
    ret

.global libc_write
libc_write:                     ; write(fd=r0, buf=r1, n=r2)
    sys 2
    ret

.global libc_read
libc_read:                      ; read(fd=r0, buf=r1, n=r2)
    sys 1
    ret

.global libc_memcpy
libc_memcpy:                    ; memcpy(dst=r0, src=r1, n=r2)
    mov r3, 0
.Lmemcpy_loop:
    cmp r3, r2
    jae .Lmemcpy_done
    mov r4, r1
    add r4, r3
    loadb r5, [r4]
    mov r4, r0
    add r4, r3
    storeb [r4], r5
    add r3, 1
    jmp .Lmemcpy_loop
.Lmemcpy_done:
    ret

.global libc_strlen
libc_strlen:                    ; strlen(s=r0) -> r0
    mov r1, 0
.Lstrlen_loop:
    mov r2, r0
    add r2, r1
    loadb r3, [r2]
    cmp r3, 0
    jz .Lstrlen_done
    add r1, 1
    jmp .Lstrlen_loop
.Lstrlen_done:
    mov r0, r1
    ret

; Callee-saved register restore sequences: ordinary function epilogues
; in real libraries, prime ROP gadget material here (Section III-B).
.global libc_restore_r0
libc_restore_r0:
    pop r0
    ret
.global libc_restore_r1
libc_restore_r1:
    pop r1
    ret
.global libc_restore_r2
libc_restore_r2:
    pop r2
    ret
.global libc_restore_r3
libc_restore_r3:
    pop r3
    ret

; The "trampoline" of the paper's ROP description: (1) reset SP to an
; attacker-controlled value, (2) return.
.global libc_stack_pivot
libc_stack_pivot:
    pop sp
    ret

; Syscall stubs that end in ret: sys-then-return gadgets.
.global libc_sys_write_gadget
libc_sys_write_gadget:
    sys 2
    ret
.global libc_sys_shell_gadget
libc_sys_shell_gadget:
    sys 4
    ret
"""

#: All victim sources keyed by a short name (used by the analysis
#: corpus and the experiment harnesses).
VICTIMS = {
    "fig1_safe": FIG1_SERVER_SAFE,
    "fig1_vulnerable": FIG1_SERVER_VULNERABLE,
    "fig1_wide_open": FIG1_SERVER_WIDE_OPEN,
    "fig1_staged": FIG1_SERVER_STAGED,
    "fig1_parsing": FIG1_SERVER_PARSING,
    "data_only": DATA_ONLY_VICTIM,
    "arbitrary_write": ARBITRARY_WRITE_VICTIM,
    "funcptr": FUNCPTR_VICTIM,
    "heartbleed": HEARTBLEED_VICTIM,
    "leak_then_smash": LEAK_THEN_SMASH_VICTIM,
    "rop_exfil": ROP_EXFIL_VICTIM,
    "rop_pivot": ROP_PIVOT_VICTIM,
    "temporal": TEMPORAL_VICTIM,
}
