"""Canonical programs: the paper's figures and the attack vehicles."""

from repro.programs import sources
from repro.programs.builders import (
    build_fig1,
    build_secret_program,
    build_stateful_secret,
    build_victim,
    libc_object,
)

__all__ = [
    "sources",
    "build_fig1",
    "build_secret_program",
    "build_stateful_secret",
    "build_victim",
    "libc_object",
]
