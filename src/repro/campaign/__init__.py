"""Snapshot-driven trial campaigns (the repeated-experiment engine).

:mod:`~repro.campaign.runner` is the in-process fan-out;
:mod:`~repro.campaign.service` and :mod:`~repro.campaign.store` are
the durable fuzzing-as-a-service layer on top of it.  The service
modules are imported lazily by the CLI to keep ``import
repro.campaign`` light; they are re-exported here for discoverability.
"""

from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignSession,
    ComposedTrial,
    PendingItems,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSession",
    "ComposedTrial",
    "PendingItems",
    "CampaignCoordinator",
    "CampaignSpec",
    "CampaignStore",
]


def __getattr__(name: str):
    if name in ("CampaignCoordinator", "CampaignSpec"):
        from repro.campaign import service

        return getattr(service, name)
    if name == "CampaignStore":
        from repro.campaign.store import CampaignStore

        return CampaignStore
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
