"""Snapshot-driven trial campaigns (the repeated-experiment engine)."""

from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignSession,
    ComposedTrial,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSession",
    "ComposedTrial",
]
