"""Snapshot-driven trial campaigns (the repeated-experiment engine)."""

from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    CampaignSession,
    ComposedTrial,
    PendingItems,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "CampaignSession",
    "ComposedTrial",
    "PendingItems",
]
