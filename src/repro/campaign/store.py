"""Persistent campaign state: corpus, triage, checkpoints, snapshots.

The fuzzing service's durability layer.  One :class:`CampaignStore`
owns one campaign directory:

.. code-block:: text

    <root>/
        meta.json        campaign identity + budget + live progress
        snapshot.rsnp    RSNP wire bytes of the baseline machine image
        checkpoint.bin   latest resumable GreyboxFuzzer state
        report.json      final report digest (written once, on finish)
        progress.jsonl   one observe-bus style event per batch
        corpus/<sha>.bin content-addressed corpus entries
        crashes.json     triage records keyed by CrashSite

Every write is atomic (temp file + ``os.replace``), so a campaign
killed mid-batch leaves the previous consistent state on disk -- the
coordinator resumes from the last checkpoint and, because the fuzzer's
exec stream is a pure function of ``(seed, checkpoint)``, converges to
the same report the uninterrupted run would have produced.

Corpus entries are content-addressed by sha256, which is also the
cross-run dedup: re-submitting a campaign over an existing store skips
blobs it already holds.  Crash records are keyed by the full
:class:`~repro.observe.coverage.CrashSite` -- fault type, faulting PC,
call-stack hash *and* first-breach attribution -- and a later run
never overwrites an earlier reproducer for the same site.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.observe.coverage import CrashSite

#: Magic + version prefix for checkpoint.bin (the pickled fuzzer
#: state itself carries its own CHECKPOINT_VERSION field).
_CHECKPOINT_MAGIC = b"RCKP\x01"


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` so readers see either the old or the new file."""
    temp = path.with_name(path.name + ".tmp")
    temp.write_bytes(data)
    os.replace(temp, path)


def _site_key(site: CrashSite) -> str:
    """Stable JSON key for a crash site (the dedup identity)."""
    breach = site.first_breach or "-"
    return f"{site.fault}@{site.ip:#x}/{site.call_hash:#x}/{breach}"


@dataclass(frozen=True)
class TriageRecord:
    """One deduplicated crash as the store persists it."""

    site: CrashSite
    input: bytes
    minimized: bytes | None
    found_at_exec: int

    @property
    def reproducer(self) -> bytes:
        return self.minimized if self.minimized is not None else self.input


class CampaignStore:
    """Durable on-disk state for one fuzzing campaign."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.corpus_dir = self.root / "corpus"
        self.corpus_dir.mkdir(exist_ok=True)

    # -- campaign metadata ---------------------------------------------------

    def save_meta(self, meta: dict) -> None:
        _atomic_write(self.root / "meta.json",
                      json.dumps(meta, indent=2, sort_keys=True).encode())

    def load_meta(self) -> dict | None:
        path = self.root / "meta.json"
        if not path.exists():
            return None
        return json.loads(path.read_bytes())

    # -- baseline snapshot (RSNP wire format) --------------------------------

    def save_snapshot(self, blob: bytes) -> None:
        _atomic_write(self.root / "snapshot.rsnp", blob)

    def load_snapshot(self) -> bytes | None:
        path = self.root / "snapshot.rsnp"
        return path.read_bytes() if path.exists() else None

    # -- resumable checkpoint ------------------------------------------------

    def save_checkpoint(self, state: dict) -> None:
        _atomic_write(self.root / "checkpoint.bin",
                      _CHECKPOINT_MAGIC + pickle.dumps(state))

    def load_checkpoint(self) -> dict | None:
        path = self.root / "checkpoint.bin"
        if not path.exists():
            return None
        blob = path.read_bytes()
        if not blob.startswith(_CHECKPOINT_MAGIC):
            raise ValueError(f"{path} is not a campaign checkpoint")
        return pickle.loads(blob[len(_CHECKPOINT_MAGIC):])

    def clear_checkpoint(self) -> None:
        """A finished campaign leaves no resume point behind."""
        path = self.root / "checkpoint.bin"
        if path.exists():
            path.unlink()

    # -- corpus (content-addressed, dedup across runs) -----------------------

    def add_corpus(self, data: bytes) -> bool:
        """Persist one corpus entry; False when already stored."""
        name = hashlib.sha256(data).hexdigest()
        path = self.corpus_dir / f"{name}.bin"
        if path.exists():
            return False
        _atomic_write(path, data)
        return True

    def corpus_blobs(self) -> list[bytes]:
        """Every stored corpus entry (sorted by content hash)."""
        return [path.read_bytes()
                for path in sorted(self.corpus_dir.glob("*.bin"))]

    # -- crash triage (dedup by CrashSite incl. first_breach) ----------------

    def record_crashes(self, records) -> int:
        """Merge crash records into ``crashes.json``; earliest
        reproducer per site wins.  Returns how many sites are new."""
        triage = self._load_triage()
        added = 0
        for record in records:
            key = _site_key(record.site)
            known = triage.get(key)
            if known is not None and known["found_at_exec"] <= record.found_at_exec:
                continue
            if known is None:
                added += 1
            minimized = getattr(record, "minimized", None)
            triage[key] = {
                "fault": record.site.fault,
                "ip": record.site.ip,
                "call_hash": record.site.call_hash,
                "first_breach": record.site.first_breach,
                "input": record.input.hex(),
                "minimized": None if minimized is None else minimized.hex(),
                "found_at_exec": record.found_at_exec,
            }
        _atomic_write(self.root / "crashes.json",
                      json.dumps(triage, indent=2, sort_keys=True).encode())
        return added

    def crash_records(self) -> list[TriageRecord]:
        """Every stored triage record, sorted by site key."""
        triage = self._load_triage()
        records = []
        for key in sorted(triage):
            entry = triage[key]
            records.append(TriageRecord(
                site=CrashSite(entry["fault"], entry["ip"],
                               entry["call_hash"], entry["first_breach"]),
                input=bytes.fromhex(entry["input"]),
                minimized=(None if entry["minimized"] is None
                           else bytes.fromhex(entry["minimized"])),
                found_at_exec=entry["found_at_exec"],
            ))
        return records

    def _load_triage(self) -> dict:
        path = self.root / "crashes.json"
        if not path.exists():
            return {}
        return json.loads(path.read_bytes())

    # -- final report + live progress ----------------------------------------

    def save_report(self, report: dict) -> None:
        _atomic_write(self.root / "report.json",
                      json.dumps(report, indent=2, sort_keys=True).encode())

    def load_report(self) -> dict | None:
        path = self.root / "report.json"
        if not path.exists():
            return None
        return json.loads(path.read_bytes())

    def append_progress(self, event: dict) -> None:
        """One JSONL progress line (the observe-bus export idiom)."""
        with open(self.root / "progress.jsonl", "a") as stream:
            stream.write(json.dumps(event) + "\n")

    def progress_events(self) -> list[dict]:
        path = self.root / "progress.jsonl"
        if not path.exists():
            return []
        return [json.loads(line)
                for line in path.read_text().splitlines() if line]
