"""Fuzzing as a service: the async campaign coordinator.

The ROADMAP's "heavy traffic" north star needs fuzzing campaigns that
outlive a single process: submit a job, pull the plug, come back, and
the campaign continues from where it stopped -- converging on exactly
the report the uninterrupted run would have produced.  This module is
that service layer on top of the PR 7/9 machinery:

* **jobs** are :class:`CampaignSpec` records spooled as JSON under
  ``<root>/jobs/``; each owns one durable
  :class:`~repro.campaign.store.CampaignStore` under
  ``<root>/campaigns/<job_id>/``;
* the :class:`CampaignCoordinator` drains the spool with an asyncio
  loop, running up to ``concurrency`` campaigns at once, each in a
  worker thread (inside which the fuzzer may fan out its own
  ``jobs > 1`` process pool -- the coordinator shards *campaigns*,
  the runner shards *batches*);
* every integrated batch checkpoints: the fuzzer state goes to
  ``checkpoint.bin``, new corpus entries and triage records merge
  into the store, and one observe-bus-style JSONL progress event is
  appended (``kind="campaign_progress"``, ``seq`` = exec count) --
  live ``tail -f`` telemetry in the same shape as
  :func:`repro.observe.export.export_jsonl`;
* resume is convergent by construction: the exec stream is a pure
  function of ``(seed, checkpoint)``, and the baseline machine image
  is pinned by the stored RSNP snapshot rather than trusted to a
  rebuild (:meth:`GreyboxFuzzer.baseline_snapshot_bytes`).

``python -m repro.experiments submit / serve / status`` is the CLI
front end.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.analysis.greybox import GreyboxFuzzer, GreyboxReport, VictimFactory
from repro.campaign.store import CampaignStore
from repro.mitigations.config import (
    MATRIX_PRESETS,
    SAFE_LANGUAGE,
    TESTING,
    MitigationConfig,
)

#: Named mitigation presets a job can request.
CONFIG_PRESETS: dict[str, MitigationConfig] = {
    **dict(MATRIX_PRESETS),
    "testing": TESTING,
    "safe": SAFE_LANGUAGE,
}


@dataclass(frozen=True)
class CampaignSpec:
    """One fuzzing job: victim, budget, and campaign parameters."""

    job_id: str
    victim: str
    config: str = "testing"
    seed: int = 0
    #: Per-job execution budget (the coordinator's unit of fairness).
    max_execs: int = 2000
    jobs: int | None = None
    max_len: int = 96
    invariants: bool = True
    minimize: bool = True

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        return cls(**payload)

    def mitigation_config(self) -> MitigationConfig:
        try:
            return CONFIG_PRESETS[self.config]
        except KeyError:
            raise ValueError(
                f"unknown config preset {self.config!r} "
                f"(choose from {', '.join(sorted(CONFIG_PRESETS))})"
            ) from None


def report_digest(report: GreyboxReport) -> dict:
    """The JSON shape of a finished campaign (what ``report.json``
    stores and the resume-equivalence tests compare)."""
    return {
        "program": report.program,
        "config": report.config,
        "execs": report.execs,
        "edges": report.edges,
        "corpus_size": report.corpus_size,
        "corpus_digest": report.corpus_digest,
        "coverage_curve": [list(point) for point in report.coverage_curve],
        "first_detected_exec": report.first_detected_exec,
        "unique_crashes": report.unique_crashes,
        "crashes": [
            {
                "fault": record.site.fault,
                "ip": record.site.ip,
                "call_hash": record.site.call_hash,
                "first_breach": record.site.first_breach,
                "input": record.input.hex(),
                "minimized": (None if record.minimized is None
                              else record.minimized.hex()),
                "found_at_exec": record.found_at_exec,
            }
            for record in report.crashes
        ],
        "interrupted": report.interrupted,
        "fingerprint": report.fingerprint(),
    }


@dataclass
class JobStatus:
    """One row of ``python -m repro.experiments status``."""

    job_id: str
    status: str
    execs: int = 0
    max_execs: int = 0
    corpus_size: int = 0
    unique_crashes: int = 0
    extra: dict = field(default_factory=dict)


class CampaignCoordinator:
    """Shards submitted campaigns over an asyncio worker pool.

    ``max_batches`` bounds how many mutation batches each campaign
    integrates *this drain* -- the interruption knob: a bounded serve
    leaves every unfinished campaign paused with a fresh checkpoint,
    and the next (unbounded) serve resumes them to completion.
    """

    def __init__(self, root: str | Path, *, concurrency: int = 2,
                 max_batches: int | None = None) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.campaigns_dir = self.root / "campaigns"
        self.campaigns_dir.mkdir(parents=True, exist_ok=True)
        self.concurrency = max(1, concurrency)
        self.max_batches = max_batches

    # -- job spool -----------------------------------------------------------

    def submit(self, spec: CampaignSpec) -> Path:
        """Spool one job; validates the spec eagerly so a bad submit
        fails at submit time, not inside the serve loop."""
        spec.mitigation_config()
        if spec.victim not in _victim_names():
            raise ValueError(
                f"unknown victim {spec.victim!r} "
                f"(choose from {', '.join(_victim_names())})"
            )
        path = self.jobs_dir / f"{spec.job_id}.json"
        path.write_text(json.dumps(spec.to_dict(), indent=2))
        return self.store_for(spec.job_id).root

    def specs(self) -> list[CampaignSpec]:
        return [CampaignSpec.from_dict(json.loads(path.read_text()))
                for path in sorted(self.jobs_dir.glob("*.json"))]

    def store_for(self, job_id: str) -> CampaignStore:
        return CampaignStore(self.campaigns_dir / job_id)

    # -- the drain loop ------------------------------------------------------

    async def drain(self) -> dict[str, dict]:
        """Run every spooled campaign that is not already done."""
        gate = asyncio.Semaphore(self.concurrency)

        async def one(spec: CampaignSpec) -> tuple[str, dict]:
            async with gate:
                digest = await asyncio.to_thread(self.run_job, spec)
            return spec.job_id, digest

        results = await asyncio.gather(*(one(spec) for spec in self.specs()))
        return dict(results)

    def serve(self) -> dict[str, dict]:
        """Synchronous front end for :meth:`drain`."""
        return asyncio.run(self.drain())

    # -- one campaign --------------------------------------------------------

    def run_job(self, spec: CampaignSpec) -> dict:
        """Run (or resume) one campaign to completion or interruption."""
        store = self.store_for(spec.job_id)
        meta = store.load_meta() or {}
        if meta.get("status") == "done":
            return store.load_report() or {}

        snapshot = store.load_snapshot()
        fuzzer = GreyboxFuzzer(
            VictimFactory(spec.victim, spec.mitigation_config(),
                          seed=spec.seed),
            seed=spec.seed,
            jobs=spec.jobs,
            max_len=spec.max_len,
            invariants=spec.invariants,
            program=spec.victim,
            config=spec.config,
            snapshot_bytes=snapshot,
        )
        if snapshot is None:
            # First run: pin the baseline image so every later resume
            # fuzzes these exact bytes, not a rebuild's.
            store.save_snapshot(fuzzer.baseline_snapshot_bytes())
        resume = store.load_checkpoint()

        def on_checkpoint(state: dict) -> None:
            store.save_checkpoint(state)
            for data, _found_at, _det in state["queue"]:
                store.add_corpus(data)
            store.record_crashes(
                _CheckpointCrash(site, data, found_at)
                for site, data, found_at, _seconds in state["crashes"]
            )
            store.save_meta({
                **spec.to_dict(),
                "status": "running",
                "execs": state["execs"],
                "corpus_size": len(state["queue"]),
                "unique_crashes": len(state["crashes"]),
            })
            store.append_progress({
                "kind": "campaign_progress",
                "seq": state["execs"],
                "job_id": spec.job_id,
                "corpus_size": len(state["queue"]),
                "edges": len(state["covered"]),
                "unique_crashes": len(state["crashes"]),
            })

        report = fuzzer.run(
            spec.max_execs,
            minimize=spec.minimize,
            checkpoint=on_checkpoint,
            resume=resume,
            stop_after_batches=self.max_batches,
        )
        digest = report_digest(report)
        if report.interrupted:
            store.save_meta({**spec.to_dict(), "status": "paused",
                             "execs": report.execs,
                             "corpus_size": report.corpus_size,
                             "unique_crashes": report.unique_crashes})
            return digest
        # Finished: persist the final triage (with minimized
        # reproducers), drop the resume point, seal the report.
        for entry in fuzzer.queue:
            store.add_corpus(entry.data)
        store.record_crashes(report.crashes)
        store.save_report(digest)
        store.clear_checkpoint()
        store.save_meta({**spec.to_dict(), "status": "done",
                         "execs": report.execs,
                         "corpus_size": report.corpus_size,
                         "unique_crashes": report.unique_crashes})
        return digest

    # -- status --------------------------------------------------------------

    def status(self) -> list[JobStatus]:
        rows = []
        for spec in self.specs():
            meta = self.store_for(spec.job_id).load_meta() or {}
            rows.append(JobStatus(
                job_id=spec.job_id,
                status=meta.get("status", "queued"),
                execs=meta.get("execs", 0),
                max_execs=spec.max_execs,
                corpus_size=meta.get("corpus_size", 0),
                unique_crashes=meta.get("unique_crashes", 0),
            ))
        return rows


@dataclass(frozen=True)
class _CheckpointCrash:
    """Adapter: checkpoint crash tuples -> the store's record shape
    (mid-campaign records have no minimized reproducer yet)."""

    site: object
    input: bytes
    found_at_exec: int
    minimized: bytes | None = None


def _victim_names() -> tuple[str, ...]:
    from repro.programs.sources import VICTIMS

    return tuple(sorted(VICTIMS))
