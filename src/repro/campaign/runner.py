"""Fork-server-style trial campaigns over machine snapshots.

The paper's two attacker models are *measured* through repeated trial
campaigns -- an ASLR entropy sweep, a PIN brute force against Figure
2's ``tries_left`` module, the attack x countermeasure matrix.  Before
this module every trial paid the full compile + link + load + cold
start cost.  A :class:`CampaignRunner` instead does what AFL-class
fuzzers call a fork server: build the victim *once*, take one
copy-on-write :meth:`~repro.machine.machine.Machine.snapshot`, then
per trial restore (O(dirty pages)), mutate the input, run, and extract
a verdict.  The PR 3 superblock cache stays warm across restores, so
trial N+1 starts with trial N's hot code.

Three picklable callables describe a campaign:

* ``factory()`` builds the warm target -- a
  :class:`~repro.link.loader.LoadedProgram` or a bare
  :class:`~repro.machine.machine.Machine`;
* ``mutator(target, index)`` injects trial ``index``'s input (stdin
  bytes, a PIN guess, a payload);
* ``verdict(target, result, index)`` reduces the finished
  :class:`~repro.machine.machine.RunResult` to whatever the campaign
  records (must pickle for the parallel path).

For trials that need mid-run interaction (a leak read back before the
smash payload goes in), pass a single ``trial(target, index)``
callable instead; the runner still owns the restore.

With ``jobs > 1`` trials fan out over a ``ProcessPoolExecutor``, one
warm snapshot per worker (the e4 matrix plumbing): the initializer
builds the target and snapshot once per process, and index batches
stream through it.  Results are index-ordered and identical to the
sequential path -- every trial derives its randomness from its index,
never from scheduling.  Like the matrix, the pool is skipped while
``observe_new_machines`` factories are active (observers cannot cross
process boundaries).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Callable


def _machine_of(target):
    """The Machine inside a factory product (LoadedProgram or Machine)."""
    return getattr(target, "machine", target)


@dataclass(frozen=True)
class ComposedTrial:
    """``mutator`` + run + ``verdict`` composed as one trial callable."""

    mutator: Callable
    verdict: Callable
    max_instructions: int = 2_000_000

    def __call__(self, target, index: int):
        self.mutator(target, index)
        result = _machine_of(target).run(self.max_instructions)
        return self.verdict(target, result, index)


class CampaignSession:
    """One warm worker: a built target plus its baseline snapshot.

    Every trial restores the baseline first, so trials are independent
    by construction -- including state the *guest* believes is durable
    (Figure 2's ``tries_left`` lockout), which is exactly the rollback
    attack snapshot/restore models.
    """

    def __init__(self, factory: Callable, trial: Callable) -> None:
        self.target = factory()
        self.machine = _machine_of(self.target)
        self.baseline = self.machine.snapshot()
        self.trial = trial
        #: Total dirty pages rewound across all restores (reset cost).
        self.restored_pages = 0

    def run_trial(self, index: int):
        self.restored_pages += self.machine.restore(self.baseline)
        return self.trial(self.target, index)

    def run_batch(self, indices) -> list:
        begin = getattr(self.trial, "begin_batch", None)
        if begin is not None:
            # Per-batch trial hook: the greybox fuzzer's CoverageTrial
            # refreshes its shared-virgin-map overlay here, once per
            # batch instead of once per trial.
            begin(self.target)
        run_trial = self.run_trial
        return [run_trial(index) for index in indices]


#: Per-worker-process warm session (parallel path), set by _worker_init.
_WORKER_SESSION: CampaignSession | None = None


def _worker_init(factory, trial, decode_default, block_default) -> None:
    """Pool initializer: build one warm session for this process.

    The parent's interpreter-cache defaults ride along so workers
    execute down the same machine path (the differential suites flip
    those module globals and expect whole pipelines to honour them).
    """
    import repro.machine.machine as machine_module

    machine_module.DECODE_CACHE_DEFAULT = decode_default
    machine_module.BLOCK_CACHE_DEFAULT = block_default
    global _WORKER_SESSION
    _WORKER_SESSION = CampaignSession(factory, trial)


def _worker_batch(indices) -> tuple[list, int]:
    session = _WORKER_SESSION
    before = session.restored_pages
    verdicts = session.run_batch(indices)
    return verdicts, session.restored_pages - before


def _worker_items(items) -> tuple[list, int]:
    """Like :func:`_worker_batch`, but over explicit trial items (the
    greybox fuzzer ships mutated inputs instead of index ranges)."""
    session = _WORKER_SESSION
    before = session.restored_pages
    verdicts = session.run_batch(items)
    return verdicts, session.restored_pages - before


class PendingItems:
    """In-flight work handed out by :meth:`CampaignRunner.submit_items`.

    On the pooled path the items are already executing when this
    object exists; :meth:`result` just collects the chunk futures.  On
    the sequential path execution is *lazy* -- it happens inside
    :meth:`result` -- so a pipelined client (submit batch N+1, then
    integrate batch N) observes the exact same execution order a plain
    ``run_items`` loop would, and the two paths stay verdict-identical.
    """

    def __init__(self, runner: "CampaignRunner", items: list,
                 futures: list | None, workers: int, started: float) -> None:
        self._runner = runner
        self._items = items
        self._futures = futures
        self._workers = workers
        self._started = started
        self._result: CampaignResult | None = None

    def result(self) -> "CampaignResult":
        """Block until every item has run; verdicts in item order."""
        if self._result is None:
            if self._futures is None:
                self._result = self._runner._run_items_now(
                    self._items, self._started)
            else:
                batches = [future.result() for future in self._futures]
                verdicts = [v for batch, _ in batches for v in batch]
                pages = sum(pages for _, pages in batches)
                self._result = CampaignResult(
                    verdicts, len(self._items), self._workers,
                    perf_counter() - self._started, pages,
                )
            self._runner._settle(self)
        return self._result

    def cancel(self) -> None:
        """Best-effort cancel of chunks not yet started (an abandoned
        pipelined batch after ``stop_on_first_crash``).  Chunks already
        running finish and are discarded."""
        if self._futures is not None:
            for future in self._futures:
                future.cancel()
            self._futures = [f for f in self._futures if not f.cancelled()]
        else:
            self._items = []
        if self._result is None:
            self._result = CampaignResult(
                [], 0, 0, perf_counter() - self._started, 0)
        self._runner._settle(self)


@dataclass
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` call."""

    verdicts: list
    trials: int
    workers: int
    duration_seconds: float
    #: Dirty pages rewound across all restores (the total reset cost;
    #: 0 for cold runs, which rebuild instead of restoring).
    restored_pages: int
    #: "snapshot" (restore-per-trial) or "cold" (rebuild-per-trial).
    mode: str = "snapshot"

    @property
    def trials_per_second(self) -> float:
        if self.duration_seconds <= 0.0:
            return 0.0
        return self.trials / self.duration_seconds


class CampaignRunner:
    """Run many mutated trials against one warm machine image."""

    def __init__(
        self,
        factory: Callable,
        mutator: Callable | None = None,
        verdict: Callable | None = None,
        *,
        trial: Callable | None = None,
        max_instructions: int = 2_000_000,
        jobs: int | None = None,
        chunksize: int | None = None,
    ) -> None:
        if trial is None:
            if mutator is None or verdict is None:
                raise ValueError(
                    "CampaignRunner needs mutator+verdict, or a trial callable"
                )
            trial = ComposedTrial(mutator, verdict, max_instructions)
        self.factory = factory
        self.trial = trial
        self.jobs = jobs
        #: Items per submitted work unit on the parallel path.  None
        #: means one contiguous chunk per worker (minimal dispatch
        #: overhead); smaller chunks let a pipelined client overlap a
        #: finishing batch's tail with the next batch's head.
        self.chunksize = chunksize
        #: Persistent worker pool (entered via ``with runner:``); None
        #: means every ``run``/``run_items`` call builds its own.
        self._pool: ProcessPoolExecutor | None = None
        self._pool_workers = 0
        #: Cached warm session for sequential ``run_items`` streams
        #: (the greybox fuzzer calls it once per mutation batch).
        self._session: CampaignSession | None = None
        #: In-flight ``submit_items`` handles not yet resolved or
        #: cancelled; ``close()`` settles them deterministically.
        self._pending: list[PendingItems] = []

    # -- persistent warm pool (batch-streaming clients) ----------------------

    def __enter__(self) -> "CampaignRunner":
        """Start a persistent worker pool: targets are built and
        snapshotted once per worker and then reused across every
        ``run``/``run_items`` call inside the ``with`` block --
        batch-streaming clients (the greybox fuzzer) would otherwise
        pay a full per-worker rebuild on every batch."""
        import repro.machine.machine as machine_module

        jobs = self.jobs or 1
        if jobs > 1:
            if machine_module._DEFAULT_OBSERVER_FACTORIES:
                warnings.warn(
                    f"CampaignRunner(jobs={jobs}) is running sequentially: "
                    "observe_new_machines() default observer factories are "
                    "active, and observers cannot cross worker process "
                    "boundaries",
                    RuntimeWarning,
                    stacklevel=2,
                )
            else:
                self._pool_workers = jobs
                self._pool = ProcessPoolExecutor(
                    max_workers=jobs,
                    initializer=_worker_init,
                    initargs=(self.factory, self.trial,
                              machine_module.DECODE_CACHE_DEFAULT,
                              machine_module.BLOCK_CACHE_DEFAULT),
                )
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _settle(self, handle: PendingItems) -> None:
        try:
            self._pending.remove(handle)
        except ValueError:
            pass

    def close(self) -> None:
        """Release the persistent pool and the cached warm session.

        Outstanding :meth:`submit_items` handles are settled first,
        deterministically: pooled batches are already executing, so
        they are *drained* (their verdicts stay collectable through
        ``.result()`` after close); lazy sequential batches have not
        started, so they are *cancelled* (resolving them later would
        silently resurrect the warm session this close just dropped).
        """
        for handle in list(self._pending):
            if handle._futures is not None:
                handle.result()
            else:
                handle.cancel()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_workers = 0
        # The sequential warm session pins a built machine plus its
        # baseline snapshot pages; a closed runner must not keep them
        # alive for its own lifetime.
        self._session = None

    def _chunks(self, trials: int, workers: int) -> list[range]:
        """Contiguous index ranges, one per worker (locality + order)."""
        base, extra = divmod(trials, workers)
        chunks, start = [], 0
        for worker in range(workers):
            count = base + (1 if worker < extra else 0)
            if count:
                chunks.append(range(start, start + count))
                start += count
        return chunks

    def run(self, trials: int) -> CampaignResult:
        """Execute ``trials`` snapshot/restore trials (index order)."""
        import repro.machine.machine as machine_module

        jobs = self.jobs or 1
        started = perf_counter()
        sequential = (
            jobs <= 1 or trials <= 1
            or machine_module._DEFAULT_OBSERVER_FACTORIES
        ) and self._pool is None
        if sequential:
            session = CampaignSession(self.factory, self.trial)
            verdicts = session.run_batch(range(trials))
            return CampaignResult(
                verdicts, trials, 1, perf_counter() - started,
                session.restored_pages,
            )
        chunks = self._chunks(trials, min(jobs, trials))
        batches, workers = self._map_chunks(_worker_batch, chunks,
                                            machine_module)
        verdicts = [v for batch, _ in batches for v in batch]
        pages = sum(pages for _, pages in batches)
        return CampaignResult(
            verdicts, trials, workers, perf_counter() - started, pages,
        )

    def run_items(self, items) -> CampaignResult:
        """Run one trial per explicit ``item`` (instead of an index).

        The trial callable receives each item where :meth:`run` would
        pass an index -- the greybox fuzzer ships batches of mutated
        inputs this way.  Results come back in item order and are
        identical to the sequential path (each trial starts from the
        same restored snapshot and sees only its own item).  Inside a
        ``with runner:`` block the warm worker pool (or the warm
        sequential session) is reused across calls.
        """
        return self.submit_items(items).result()

    def submit_items(self, items) -> PendingItems:
        """Dispatch ``items`` without waiting for their verdicts.

        Inside a ``with runner:`` block the items start executing on
        the persistent pool immediately, split into
        :attr:`chunksize`-item work units, and the returned
        :class:`PendingItems` collects them later -- a pipelined
        client generates its next mutation batch while this one runs.
        Outside a pool the work is deferred to ``.result()`` (the
        sequential warm session or a per-call pool), preserving
        run_items semantics exactly.
        """
        items = list(items)
        started = perf_counter()
        if not items or self._pool is None:
            handle = PendingItems(self, items, None, 0, started)
        else:
            workers = min(self._pool_workers, len(items))
            if self.chunksize is not None:
                size = max(1, self.chunksize)
                chunks = [items[pos:pos + size]
                          for pos in range(0, len(items), size)]
            else:
                chunks = [[items[i] for i in chunk]
                          for chunk in self._chunks(len(items), workers)]
            futures = [self._pool.submit(_worker_items, chunk)
                       for chunk in chunks]
            handle = PendingItems(self, items, futures, workers, started)
        self._pending.append(handle)
        return handle

    def _run_items_now(self, items: list, started: float) -> CampaignResult:
        """Synchronous item execution (the non-pooled legs)."""
        import repro.machine.machine as machine_module

        jobs = self.jobs or 1
        if not items:
            return CampaignResult([], 0, 0, perf_counter() - started, 0)
        sequential = (
            jobs <= 1 or len(items) <= 1
            or machine_module._DEFAULT_OBSERVER_FACTORIES
        ) and self._pool is None
        if sequential:
            if self._session is None:
                self._session = CampaignSession(self.factory, self.trial)
            session = self._session
            before = session.restored_pages
            verdicts = session.run_batch(items)
            return CampaignResult(
                verdicts, len(items), 1, perf_counter() - started,
                session.restored_pages - before,
            )
        workers = min(jobs, len(items))
        chunk_ranges = self._chunks(len(items), workers)
        chunks = [[items[i] for i in chunk] for chunk in chunk_ranges]
        batches, workers = self._map_chunks(_worker_items, chunks,
                                            machine_module)
        verdicts = [v for batch, _ in batches for v in batch]
        pages = sum(pages for _, pages in batches)
        return CampaignResult(
            verdicts, len(items), workers, perf_counter() - started, pages,
        )

    def _map_chunks(self, worker_fn, chunks, machine_module):
        """Map ``worker_fn`` over ``chunks``, reusing the persistent
        pool when one is active (``with runner:``)."""
        if self._pool is not None:
            return (list(self._pool.map(worker_fn, chunks)),
                    self._pool_workers)
        with ProcessPoolExecutor(
            max_workers=len(chunks),
            initializer=_worker_init,
            initargs=(self.factory, self.trial,
                      machine_module.DECODE_CACHE_DEFAULT,
                      machine_module.BLOCK_CACHE_DEFAULT),
        ) as pool:
            batches = list(pool.map(worker_fn, chunks))
        return batches, len(chunks)

    def run_cold(self, trials: int) -> CampaignResult:
        """The comparison baseline: rebuild the target for every trial.

        What every repeated-trial experiment did before snapshots --
        full compile + link + load per trial.  Used by the benchmark
        suite and the differential tests to prove restore-based trials
        byte-identical (and much faster) than fresh-machine trials.
        """
        started = perf_counter()
        verdicts = []
        for index in range(trials):
            target = self.factory()
            verdicts.append(self.trial(target, index))
        return CampaignResult(
            verdicts, trials, 1, perf_counter() - started, 0, mode="cold",
        )
