"""Exception hierarchy for the repro package.

Every error raised by the simulator, toolchain, or security machinery
derives from :class:`ReproError`, so callers can catch the whole family
with a single ``except`` clause.  Faults raised *during simulated
execution* (memory faults, protection faults, ...) additionally derive
from :class:`MachineFault` and carry the faulting instruction pointer,
because the attack experiments need to distinguish "the program crashed"
from "the toolchain rejected the program".
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# Toolchain errors (raised while *building* a program, not while running it)
# ---------------------------------------------------------------------------


class ToolchainError(ReproError):
    """Base class for assembler / compiler / linker / loader errors."""


class EncodingError(ToolchainError):
    """An instruction could not be encoded to bytes."""


class DecodeError(ToolchainError):
    """A byte sequence could not be decoded as an instruction.

    The ROP gadget finder relies on this being raised (rather than
    returning garbage) when a linear-sweep decode lands on an invalid
    opcode.
    """

    def __init__(self, message: str, offset: int | None = None):
        super().__init__(message)
        self.offset = offset


class AssemblerError(ToolchainError):
    """Error while assembling source text."""

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class LinkError(ToolchainError):
    """Error while linking object files into an image."""


class LoaderError(ToolchainError):
    """Error while loading an image into a machine."""


class CompileError(ToolchainError):
    """Error raised by the MinC compiler (lexer, parser, or sema)."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        location = ""
        if line is not None:
            location = f"line {line}"
            if col is not None:
                location += f", col {col}"
            message = f"{location}: {message}"
        super().__init__(message)
        self.line = line
        self.col = col


# ---------------------------------------------------------------------------
# Machine faults (raised during simulated execution)
# ---------------------------------------------------------------------------


class MachineFault(ReproError):
    """Base class for faults raised while the simulated CPU is running.

    ``ip`` is the address of the faulting instruction (or access),
    recorded so experiments can report *where* an attack was stopped.
    """

    def __init__(self, message: str, ip: int | None = None):
        if ip is not None:
            message = f"{message} (ip=0x{ip:08x})"
        super().__init__(message)
        self.ip = ip


class MemoryFault(MachineFault):
    """Access to an unmapped address."""


class PermissionFault(MachineFault):
    """Access violating page permissions (e.g. write to text, DEP)."""


class ProtectionFault(MachineFault):
    """Access violating the protected-module access-control rules."""


class InvalidInstructionFault(MachineFault):
    """The CPU fetched bytes that do not decode to a valid instruction."""


class DivisionFault(MachineFault):
    """Division (or modulo) by zero."""


class CanaryFault(MachineFault):
    """A stack canary check failed (``__stack_chk_fail``)."""


class BoundsFault(MachineFault):
    """A compiler-inserted bounds check (``CHK``) failed."""


class RedZoneFault(MachineFault):
    """An access hit a poisoned red zone (ASan-style testing checks)."""


class ShadowStackFault(MachineFault):
    """A ``RET`` popped a return address disagreeing with the shadow stack."""


class CFIFault(MachineFault):
    """An indirect call targeted an address outside the valid-target set."""


class SyscallFault(MachineFault):
    """A syscall was invoked with an invalid number or arguments."""


class ExecutionLimitExceeded(MachineFault):
    """The machine executed more instructions than the configured budget.

    Used to bound attack experiments: an attack that sends the program
    into an infinite loop has *not* succeeded.
    """


# ---------------------------------------------------------------------------
# Security-mechanism errors (PMA crypto, attestation, sealing)
# ---------------------------------------------------------------------------


class SecurityError(ReproError):
    """Base class for attestation / sealing / continuity failures."""


class AttestationError(SecurityError):
    """A remote-attestation report failed verification."""


class SealingError(SecurityError):
    """A sealed blob failed authentication or could not be unsealed."""


class RollbackError(SecurityError):
    """A state-continuity scheme rejected stale (rolled-back) state."""


class ContinuityLivenessError(SecurityError):
    """A state-continuity scheme can no longer make progress.

    Raised when recovery finds *no* acceptable stored state -- the
    liveness failure mode discussed in Section IV-C of the paper.
    """
