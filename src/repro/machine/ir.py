"""Decoded intermediate representation for VN32 instructions.

The execution tiers share one explicit instruction-record layer
between ``repro.isa`` decode and code generation: an :class:`IRInst`
pins down, per instruction, everything a compiler pass needs without
re-deriving it from opcode bytes --

* which architectural registers it reads and writes (``push``/``pop``/
  ``call``/``ret`` include SP, since the interpreter's handlers move it
  through ``machine.push_word``/``pop_word``);
* which FLAGS it defines and uses (``add``-family results define
  zf/lt only; ``cmp`` defines zf/lt/ult; conditional branches read the
  subset their predicate tests) -- the def/use sets that let the trace
  compiler elide flag materialisation when a later instruction
  overwrites FLAGS before any use;
* whether it can fault at execute time (memory access, div/mod, CFI
  checks, shadow-stack checks, bounds checks, syscalls);
* its control-flow kind and static target/fall-through addresses.

Consumers today are the superblock compiler
(:mod:`repro.machine.blocks`) and the trace JIT
(:mod:`repro.machine.trace`); the layer is deliberately free of any
machine/codegen imports so the SFI rewriter and static analyses can
lift the same records without touching the execution engine.

Note the fault-capability flag describes the *baseline* machine: with
protected modules (PMA) registered, every instruction can additionally
fault at fetch time, and with red zones every data access gains a
poison check.  Those are machine-wide modes the consumers account for
themselves (blocks embed the PMA fetch check; the trace JIT refuses to
trace under either).
"""

from __future__ import annotations

import enum
from typing import NamedTuple

from repro.errors import DecodeError, MemoryFault
from repro.isa.encoding import decode
from repro.isa.instructions import Instruction, Mem, WORD_MASK
from repro.isa.opcodes import BLOCK_END_OPCODES, OPCODE_LENGTHS
from repro.isa.registers import NUM_REGISTERS, SP

#: All architectural register numbers (R0-R7, SP, BP).
ALL_REGS = frozenset(range(NUM_REGISTERS))

_EMPTY: frozenset[int] = frozenset()
_NO_FLAGS: frozenset[str] = frozenset()
#: FLAGS defined by arithmetic/logic results (``_set_flags_result``).
RESULT_FLAGS = frozenset({"zf", "lt"})
#: FLAGS defined by comparisons (``_set_flags_compare``).
COMPARE_FLAGS = frozenset({"zf", "lt", "ult"})


class ControlKind(enum.Enum):
    """How an instruction affects control flow."""

    #: Straight-line: execution falls through to ``next_addr``.
    FALL = "fall"
    #: Unconditional direct jump to ``target``.
    JUMP = "jump"
    #: Indirect jump through a register.
    JUMP_REG = "jump_reg"
    #: Conditional branch: ``target`` if taken, ``next_addr`` if not.
    BRANCH = "branch"
    #: Direct call to ``target`` (pushes ``next_addr``).
    CALL = "call"
    #: Indirect call through a register.
    CALL_REG = "call_reg"
    #: Return through the architectural stack.
    RET = "ret"
    #: Syscall: the handler may halt, exit, or rewrite the machine.
    SYS = "sys"
    #: Halt.
    HALT = "halt"


class IRInst(NamedTuple):
    """One decoded, effect-annotated VN32 instruction."""

    #: Masked address of the first encoded byte.
    addr: int
    #: Encoded length in bytes.
    length: int
    #: Opcode byte (fixes the encoding, as in :class:`Instruction`).
    opcode: int
    #: The decoded instruction (operands live here).
    insn: Instruction
    #: Architectural registers read at execute time.
    reads: frozenset[int]
    #: Architectural registers written at execute time.
    writes: frozenset[int]
    #: FLAGS defined ({"zf","lt"} for results, +"ult" for compares).
    flags_written: frozenset[str]
    #: FLAGS read (conditional-branch predicates).
    flags_read: frozenset[str]
    #: Can this instruction fault during execution (baseline machine)?
    can_fault: bool
    #: Control-flow classification.
    kind: ControlKind
    #: Static transfer target (JUMP/BRANCH/CALL), else None.
    target: int | None
    #: Address of the next sequential instruction.
    next_addr: int

    @property
    def operands(self) -> tuple:
        return self.insn.operands

    @property
    def mnemonic(self) -> str:
        return self.insn.mnemonic

    @property
    def ends_block(self) -> bool:
        """True when the superblock compiler must stop after this."""
        return self.opcode in BLOCK_END_OPCODES


#: FLAGS each conditional-branch opcode reads (cpu dispatch predicates).
BRANCH_FLAGS_READ: dict[int, frozenset[str]] = {
    0x1B: frozenset({"zf"}),            # jz
    0x1C: frozenset({"zf"}),            # jnz
    0x1D: frozenset({"lt"}),            # jl
    0x1E: frozenset({"lt", "zf"}),      # jg
    0x1F: frozenset({"lt", "zf"}),      # jle
    0x20: frozenset({"lt"}),            # jge
    0x21: frozenset({"ult"}),           # jb
    0x22: frozenset({"ult"}),           # jae
}

_BRANCH_OPCODES = frozenset(BRANCH_FLAGS_READ)

#: Opcodes whose handlers go through checked memory access.
MEMORY_OPCODES = frozenset({0x04, 0x05, 0x06, 0x07, 0x08, 0x09})
#: The subset that writes memory.
STORE_OPCODES = frozenset({0x05, 0x07, 0x08})

#: Result-flag writers: add/sub (rr+ri), mul, div, mod, and/or/xor,
#: not, shl, shr.
_RESULT_FLAG_OPCODES = frozenset(
    {0x0A, 0x0B, 0x0C, 0x0D, 0x0E, 0x0F, 0x10,
     0x11, 0x12, 0x13, 0x14, 0x15, 0x16}
)

#: Execute-phase fault capability on the baseline machine: memory
#: access, div/mod by zero, indirect-transfer CFI checks, call/ret
#: stack traffic (+ shadow stack), syscalls, chk bounds checks.
_CAN_FAULT = MEMORY_OPCODES | frozenset(
    {0x0F, 0x10, 0x1A, 0x23, 0x24, 0x25, 0x26, 0x28}
)

_KIND_BY_OPCODE: dict[int, ControlKind] = {
    0x01: ControlKind.HALT,
    0x19: ControlKind.JUMP,
    0x1A: ControlKind.JUMP_REG,
    0x23: ControlKind.CALL,
    0x24: ControlKind.CALL_REG,
    0x25: ControlKind.RET,
    0x26: ControlKind.SYS,
}
for _op in _BRANCH_OPCODES:
    _KIND_BY_OPCODE[_op] = ControlKind.BRANCH


def _reg_effects(opcode: int, ops: tuple) -> tuple[frozenset[int], frozenset[int]]:
    """(reads, writes) register sets for one decoded instruction."""
    if opcode in (0x00, 0x01, 0x29):        # nop / halt / land
        return _EMPTY, _EMPTY
    if opcode == 0x02:                      # mov rr
        return frozenset({ops[1]}), frozenset({ops[0]})
    if opcode == 0x03:                      # mov ri
        return _EMPTY, frozenset({ops[0]})
    if opcode in (0x04, 0x06):              # load / loadb
        return frozenset({ops[1].base}), frozenset({ops[0]})
    if opcode in (0x05, 0x07):              # store / storeb
        return frozenset({ops[0], ops[1].base}), _EMPTY
    if opcode == 0x08:                      # push
        return frozenset({ops[0], SP}), frozenset({SP})
    if opcode == 0x09:                      # pop
        return frozenset({SP}), frozenset({ops[0], SP})
    if opcode in (0x0A, 0x0C, 0x0E, 0x0F, 0x10, 0x11, 0x12, 0x13):
        return frozenset({ops[0], ops[1]}), frozenset({ops[0]})
    if opcode in (0x0B, 0x0D, 0x15, 0x16):  # add/sub ri, shl, shr
        return frozenset({ops[0]}), frozenset({ops[0]})
    if opcode == 0x14:                      # not
        return frozenset({ops[0]}), frozenset({ops[0]})
    if opcode == 0x17:                      # cmp rr
        return frozenset({ops[0], ops[1]}), _EMPTY
    if opcode == 0x18:                      # cmp ri
        return frozenset({ops[0]}), _EMPTY
    if opcode == 0x19:                      # jmp abs
        return _EMPTY, _EMPTY
    if opcode == 0x1A:                      # jmp reg
        return frozenset({ops[0]}), _EMPTY
    if opcode in _BRANCH_OPCODES:
        return _EMPTY, _EMPTY
    if opcode == 0x23:                      # call abs: pushes next_addr
        return frozenset({SP}), frozenset({SP})
    if opcode == 0x24:                      # call reg
        return frozenset({ops[0], SP}), frozenset({SP})
    if opcode == 0x25:                      # ret
        return frozenset({SP}), frozenset({SP})
    if opcode == 0x26:                      # sys: handlers may touch any
        return ALL_REGS, ALL_REGS           # register (input/rand -> r0)
    if opcode == 0x27:                      # lea
        return frozenset({ops[1].base}), frozenset({ops[0]})
    if opcode == 0x28:                      # chk
        return frozenset({ops[0]}), _EMPTY
    raise AssertionError(f"unhandled opcode 0x{opcode:02x}")  # pragma: no cover


def lift(insn: Instruction, addr: int) -> IRInst:
    """Lift one decoded instruction at ``addr`` into an :class:`IRInst`."""
    opcode = insn.opcode
    length = OPCODE_LENGTHS[opcode]
    masked = addr & WORD_MASK
    reads, writes = _reg_effects(opcode, insn.operands)
    kind = _KIND_BY_OPCODE.get(opcode, ControlKind.FALL)
    target: int | None = None
    if kind in (ControlKind.JUMP, ControlKind.BRANCH, ControlKind.CALL):
        target = insn.operands[0] & WORD_MASK
    if opcode in _RESULT_FLAG_OPCODES:
        flags_written = RESULT_FLAGS
    elif opcode in (0x17, 0x18):
        flags_written = COMPARE_FLAGS
    else:
        flags_written = _NO_FLAGS
    return IRInst(
        addr=masked,
        length=length,
        opcode=opcode,
        insn=insn,
        reads=reads,
        writes=writes,
        flags_written=flags_written,
        flags_read=BRANCH_FLAGS_READ.get(opcode, _NO_FLAGS),
        can_fault=opcode in _CAN_FAULT,
        kind=kind,
        target=target,
        next_addr=(masked + length) & WORD_MASK,
    )


def lift_at(memory, addr: int) -> IRInst | None:
    """Lift the instruction whose first byte is at ``addr``.

    Reads raw bytes (no permission checks -- callers validate fetch
    legality themselves, e.g. by actually stepping the machine).
    Returns None for unmapped addresses and undecodable bytes.
    """
    masked = addr & WORD_MASK
    try:
        opcode = memory.read_byte(masked)
        length = OPCODE_LENGTHS[opcode]
        if length == 0:
            return None
        insn, _ = decode(memory.read_bytes(masked, length))
    except (MemoryFault, DecodeError):
        return None
    return lift(insn, masked)


def lift_block(
    memory,
    head: int,
    max_insns: int,
    entry_points: frozenset[int] = frozenset(),
) -> list[IRInst]:
    """Lift the superblock starting at ``head``.

    Decodes forward until a control transfer (:data:`BLOCK_END_OPCODES`),
    a page boundary (no block spans pages -- one page watch covers the
    whole block), a PMA ``entry_points`` hit past the head (block heads
    must stay aligned with legitimate entry addresses), an instruction
    whose encoding straddles the page edge, undecodable bytes, or
    ``max_insns``.  May return an empty list (head undecodable): the
    interpreter owns that address.
    """
    from repro.machine.memory import PAGE_SIZE, _PAGE_SHIFT

    page_mask = PAGE_SIZE - 1
    masked = head & WORD_MASK
    page = masked >> _PAGE_SHIFT
    out: list[IRInst] = []
    addr = masked
    while len(out) < max_insns:
        if addr >> _PAGE_SHIFT != page:
            break  # next instruction starts on another page
        if out and addr in entry_points:
            break  # never extend across a PMA entry point
        opcode = memory.read_byte(addr)
        length = OPCODE_LENGTHS[opcode]
        if length == 0 or (addr & page_mask) + length > PAGE_SIZE:
            break  # invalid or page-straddling encoding: interpreter's job
        try:
            insn, _ = decode(memory.read_bytes(addr, length))
        except DecodeError:
            break
        irx = lift(insn, addr)
        out.append(irx)
        addr = irx.next_addr
        if irx.ends_block:
            break
    return out
