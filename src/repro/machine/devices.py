"""Peripheral devices of the VN32 machine.

The I/O attacker model (Section III) is defined by these devices: the
attacker may write bytes to the :class:`InputChannel` and read bytes
from the :class:`OutputChannel`, and nothing else.

The :class:`ShellDevice` models the canonical attacker goal ("getting
a root shell"): the ``sys spawn_shell`` service sets an observable
flag.  An attack experiment counts as a compromise exactly when code
the *source program never asks to run* manages to set this flag or to
exfiltrate a secret on the output channel.
"""

from __future__ import annotations

import random


class InputChannel:
    """Byte stream feeding ``sys read`` -- the attacker's input vector."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._consumed = 0

    def feed(self, data: bytes) -> None:
        """Append bytes for the program to read (what an attacker sends)."""
        self._buffer += data

    def read(self, size: int) -> bytes:
        """Consume and return up to ``size`` bytes (empty at EOF)."""
        available = len(self._buffer) - self._consumed
        size = min(size, available)
        if size <= 0:
            return b""
        start = self._consumed
        self._consumed += size
        return bytes(self._buffer[start : start + size])

    @property
    def remaining(self) -> int:
        """Bytes fed but not yet consumed."""
        return len(self._buffer) - self._consumed

    def save_state(self) -> tuple:
        """Buffer + cursor, for machine snapshots."""
        return (bytes(self._buffer), self._consumed)

    def restore_state(self, state: tuple) -> None:
        data, consumed = state
        self._buffer[:] = data
        self._consumed = consumed


class OutputChannel:
    """Byte stream collecting ``sys write`` output -- what the attacker sees."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def write(self, data: bytes) -> None:
        self._buffer += data

    def getvalue(self) -> bytes:
        """All bytes written so far."""
        return bytes(self._buffer)

    def text(self, encoding: str = "latin-1") -> str:
        """Output decoded as text (latin-1 never fails)."""
        return self._buffer.decode(encoding)

    def clear(self) -> None:
        self._buffer.clear()

    def save_state(self) -> bytes:
        return bytes(self._buffer)

    def restore_state(self, state: bytes) -> None:
        self._buffer[:] = state


class ShellDevice:
    """Records whether (and where) a shell was spawned."""

    def __init__(self) -> None:
        self.spawned = False
        self.spawn_ip: int | None = None
        self.spawn_count = 0

    def spawn(self, ip: int) -> None:
        self.spawned = True
        self.spawn_count += 1
        if self.spawn_ip is None:
            self.spawn_ip = ip

    def reset(self) -> None:
        self.spawned = False
        self.spawn_ip = None
        self.spawn_count = 0

    def save_state(self) -> tuple:
        return (self.spawned, self.spawn_ip, self.spawn_count)

    def restore_state(self, state: tuple) -> None:
        self.spawned, self.spawn_ip, self.spawn_count = state


class RandomDevice:
    """Deterministic, seedable entropy source.

    Used by the loader for ASLR offsets and canary values, and exposed
    to programs through ``sys rand``.  Seeding makes every experiment
    reproducible; the ASLR sweep varies the seed explicitly.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        self._rng.seed(seed)

    def word(self) -> int:
        """A uniformly random 32-bit value."""
        return self._rng.getrandbits(32)

    def below(self, bound: int) -> int:
        """A uniformly random integer in ``[0, bound)``."""
        return self._rng.randrange(bound)

    def bytes(self, size: int) -> bytes:
        return self._rng.randbytes(size)

    def save_state(self) -> object:
        """The generator's full internal state (snapshot support), so
        a restored trial replays the identical entropy stream."""
        return self._rng.getstate()

    def restore_state(self, state) -> None:
        self._rng.setstate(state)
