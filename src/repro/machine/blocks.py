"""Basic-block translation: fuse decoded instructions into closures.

PR 1's decode cache removed the per-instruction *decode* cost but kept
the per-instruction *dispatch* cost: every retired instruction still
pays ``Machine.step`` -> cache probe -> ``cpu.execute`` -> handler.
This module removes that too.  On a block-cache miss the machine calls
:func:`compile_block`, which decodes forward from the miss address to
the next control transfer (or page boundary / PMA entry point /
:data:`MAX_BLOCK_INSNS`) and compiles the whole run into one Python
function: registers aliased to a local, flags threaded through locals,
immediates and effective-address arithmetic baked in as literals, the
instruction counter bumped once per block, and ``cpu.ip`` committed
once at the block end.

Fidelity rules (the attacker model makes these load-bearing -- an
exploit's machine state is part of the semantics):

* **Fetch checks per block, not per instruction.**  A block is only
  built on a PERM_X page and dies on any ``set_perms``/``map_region``
  (the machine's permission-change listener flushes the block cache),
  so a cached block implies every per-instruction fetch-permission
  check would pass -- the same invariant the decode cache relies on.
* **Exact fault states.**  Every site that can fault records the
  retired-instruction count (``n``) and the interpreter's fault-time
  IP (``eip``: the instruction's own address for pre-execute PMA
  faults, the *next* address for execute-phase faults, matching
  ``step()`` setting ``cpu.ip = next_ip`` before ``cpu.execute``).
  The shared ``except`` handler writes flags/IP/count back before
  re-raising, so a fault mid-block leaves the machine byte-identical
  to the interpreter faulting on the same instruction.
* **Memory accesses stay policy-checked.**  On machines with no PMA
  modules and no red zones, loads/stores inline the single-page
  permission fast path (mirroring ``Machine._check``) and fall back to
  the machine's checked accessor for anything unusual -- page
  straddles, permission denials (which kernel mode may still allow),
  unmapped pages, writes to watched code pages, and writes to
  snapshot-frozen pages (whose copy-on-write break must run before
  bytes move) -- so every fault message, kernel-mode bypass,
  copy-on-write break, and invalidation notification is the
  interpreter's own.  With PMA or red zones active the generated code
  always calls the checked accessors.
* **Self-modifying code.**  A store onto a watched code page
  invalidates that page's blocks mid-flight -- including, possibly,
  the block doing the writing.  Such writes take the slow path (the
  watched-page test is part of the inline fast path), and after each
  one the block compares the machine's block epoch: if any block died,
  the function writes back exact architectural state and returns, and
  the dispatch loop re-translates from the bytes just written
  (tests/test_differential_blocks.py holds this to the interpreter's
  behaviour byte for byte).
* **PMA.**  When protected modules exist at translation time the block
  embeds the interpreter's per-instruction ``check_fetch`` (module
  tracking, entry-point rule, no-execute-data rule); module-table
  changes flush the block cache, so the embedded checks can never be
  stale.  Blocks additionally never extend *across* a module entry
  point, keeping block heads aligned with legitimate entry addresses.

* **Block chaining.**  A block whose exit target is statically known
  (direct jump, either edge of a conditional branch, a direct call, or
  a fall-through end) returns its successor's :class:`CompiledBlock`
  through a *chain cell* -- a one-element list, shared with the
  machine's chain registry -- so the dispatch loop carries execution
  straight into the next block without re-probing the block cache.
  Cells are filled when the target block is compiled and nulled when
  it is invalidated (page write, perm/PMA flush, trace installation),
  so a chained hop can never reach a stale block: a nulled cell simply
  drops control back to the dispatcher, which re-translates.  Python
  has no tail calls, so chaining is trampoline-style (return the
  successor, let the dispatcher call it) rather than a direct call --
  a direct call would grow the host stack without bound on loops.

* **Observers.**  A machine whose hub is *dispatch-transparent* (see
  ``Observer.dispatch_transparent``: per-event subscribers only -- the
  invariant monitors) keeps executing blocks: the hub's subscriber
  tuples are baked into the generated code, transfer events are
  emitted at the terminators after the instruction-count bump (the
  interpreter's exact ordering), memory events on the inline
  single-page fast paths are emitted by generated code (exact IP
  committed first; slow-path accesses go through the observed
  accessors, which emit themselves), and the fault handler emits
  ``on_fault`` after writing back exact state.  Attach/detach flushes
  translations whenever the baked-in hub would change, so compiled
  emission can never go stale.  PMA-active machines refuse to compile
  blocks under a hub (the per-instruction path emits their
  enter/exit events).  Any *non*-transparent hub makes ``Machine.run``
  fall back to the per-instruction path, as before, so the event
  stream keeps its per-instruction exactness (``on_instruction``
  and the decode-cache hooks are inherently per-tier).
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.errors import MachineFault
from repro.isa.instructions import WORD_MASK
from repro.isa.opcodes import BLOCK_END_OPCODES
from repro.machine.cpu import c_div, c_mod
from repro.machine.ir import IRInst, lift_block
from repro.machine.memory import PAGE_SIZE, PERM_X, _PAGE_SHIFT, _U32

_PAGE_MASK = PAGE_SIZE - 1

#: Default for :attr:`MachineConfig.max_block_insns`: the longest run
#: of instructions fused into one block.  Long enough to swallow any
#: realistic straight-line run on a 4 KiB page, small enough to keep
#: translation latency negligible.
MAX_BLOCK_INSNS = 64

_M = WORD_MASK  # 4294967295
_SIGN = 0x80000000

#: Condition expressions for the conditional branches, over the local
#: flag variables of the generated function (same predicates as the
#: interpreter's dispatch table in repro.machine.cpu).
_BRANCH_CONDITIONS = {
    0x1B: "zf",                  # jz
    0x1C: "not zf",              # jnz
    0x1D: "lt",                  # jl
    0x1E: "not lt and not zf",   # jg
    0x1F: "lt or zf",            # jle
    0x20: "not lt",              # jge
    0x21: "ult",                 # jb
    0x22: "not ult",             # jae
}

_ARITH_RR = {0x0A: "+", 0x0C: "-", 0x0E: "*"}
_ARITH_RI = {0x0B: "+", 0x0D: "-"}
_LOGIC_RR = {0x11: "&", 0x12: "|", 0x13: "^"}

#: Opcodes that touch guest memory through the machine's checked
#: accessors: load, store, loadb, storeb, push, pop.
_MEMORY_OPCODES = frozenset({0x04, 0x05, 0x06, 0x07, 0x08, 0x09})

#: The subset that writes (and can therefore invalidate blocks,
#: including the one executing).
_STORE_OPCODES = frozenset({0x05, 0x07, 0x08})


class CompiledBlock(NamedTuple):
    """One translated basic block, keyed by its head address."""

    #: The generated function; called as ``fn(machine, machine.cpu)``
    #: and returning the chained successor block (or None to drop back
    #: to the dispatcher's cache probe).
    fn: Callable
    #: Masked address of the first instruction (the cache key).
    head: int
    #: Page the whole block lives on (the invalidation-index key).
    page: int
    #: Instructions retired by one complete execution of the block.
    count: int
    #: The generated Python source, kept for debugging and tests.
    source: str
    #: Static-exit chain cells as ``(target_head, cell)`` pairs; each
    #: cell is a one-element list the generated code returns from, and
    #: the machine fills/nulls as the target is compiled/invalidated.
    exits: tuple = ()


def compile_block(machine, head: int) -> CompiledBlock | None:
    """Translate the basic block starting at ``head``, or None.

    Returns None when the head is not on an executable page or its
    first instruction cannot be decoded -- the caller falls back to the
    interpreter, which reproduces the exact fault.
    """
    memory = machine.memory
    masked = head & WORD_MASK
    page = masked >> _PAGE_SHIFT
    if not memory.page_perms(page) & PERM_X:
        return None
    pma_active = bool(machine.pma.modules)
    hub = machine._blocks_hub
    if hub is not None and pma_active:
        # The per-instruction path owns PMA enter/exit event emission;
        # blocks with both module tracking and a hub baked in are not
        # worth their complexity.  Dispatch falls back to step().
        return None
    entry_points: frozenset[int] = frozenset()
    if pma_active:
        entry_points = frozenset().union(
            *(module.entry_points for module in machine.pma.modules)
        )
    insns = lift_block(memory, masked, machine.config.max_block_insns,
                       entry_points)
    if not insns:
        return None
    inline_mem = not pma_active and not machine.config.redzones
    source, exit_targets = _emit(insns, masked, pma_active, inline_mem, hub)
    cells = [[None] for _ in exit_targets]
    namespace = {
        "_MF": MachineFault,
        "_div": c_div,
        "_mod": c_mod,
        "_u32": _U32,
    }
    if hub is not None:
        namespace.update(_hj=hub.jump, _hb=hub.branch, _hc=hub.call,
                         _hr=hub.ret, _hf=hub.fault,
                         _hmr=hub.read, _hmw=hub.write)
    for index, cell in enumerate(cells):
        namespace[f"_x{index}"] = cell
    exec(compile(source, f"<block 0x{masked:08x}>", "exec"), namespace)
    exits = tuple(zip(exit_targets, cells))
    return CompiledBlock(namespace["_block"], masked, page, len(insns),
                         source, exits)


def _emit(insns: list[IRInst], head: int, pma_active: bool,
          inline_mem: bool, hub=None) -> tuple[str, list[int]]:
    """Generate the block function source and its static-exit targets.

    With a (dispatch-transparent) ``hub``, transfer and fault event
    emission is compiled in, matching ``Machine._step_observed``'s
    ordering exactly: events fire after the instruction-count bump,
    and ``on_fault`` fires after exact-state writeback.  Emission
    loops are only generated for hooks that have subscribers -- safe
    because any hub change flushes the block cache.
    """
    last_index = len(insns) - 1
    ev_jump = hub is not None and bool(hub.jump)
    ev_branch = hub is not None and bool(hub.branch)
    ev_call = hub is not None and bool(hub.call)
    ev_ret = hub is not None and bool(hub.ret)
    ev_fault = hub is not None and bool(hub.fault)
    # Memory events on the inline fast path are emitted by generated
    # code (with the exact IP committed first); slow-path accesses go
    # through the observed instance accessors, which emit themselves.
    ev_read = hub is not None and bool(hub.read)
    ev_write = hub is not None and bool(hub.write)
    #: Emission appended after the shared count-bump tail (reg-target
    #: terminators commit ``cpu.ip`` inside the try and fall through).
    tail_events: list[str] = []
    uses_epoch = any(
        irx.opcode in _STORE_OPCODES and k != last_index
        for k, irx in enumerate(insns)
    )
    uses_mem = inline_mem and any(
        irx.opcode in _MEMORY_OPCODES for irx in insns
    )
    exit_targets: list[int] = []

    def chain_cell(target: int) -> str:
        exit_targets.append(target)
        return f"_x{len(exit_targets) - 1}[0]"
    lines = [
        "def _block(m, cpu):",
        "    regs = cpu.regs",
        "    zf = cpu.zf; lt = cpu.lt; ult = cpu.ult",
        f"    n = 0; eip = {head}",
    ]
    if uses_epoch:
        lines.append("    _e = m._block_epoch")
    if uses_mem:
        # Stable aliases: these containers are mutated, never replaced.
        lines.append("    _mem = m.memory._pages; _pg = m.memory._perms")
        lines.append("    _wp = m.memory._watched_pages")
        # Snapshot-frozen pages must not be written in place: the
        # slow path below performs the copy-on-write break.
        lines.append("    _cw = m.memory._cow_pages")
    if pma_active:
        lines.append("    _cf = m.pma.check_fetch")
    lines.append("    try:")
    emit = lines.append
    for k, irx in enumerate(insns):
        ip = irx.addr
        nxt = irx.next_addr
        op = irx.opcode
        ops = irx.operands
        last = k == last_index

        if pma_active:
            # Pre-execute module check: a PMA fault here leaves the
            # interpreter's cpu.ip at the *instruction's* address.
            emit(f"        m.current_ip = {ip}; n = {k}; eip = {ip}")
            emit(f"        m.current_module = _cf(m.current_module, {ip})")

        #: Execute-phase fault markers: the interpreter has already
        #: advanced cpu.ip to next_ip when a handler faults.
        markers = f"m.current_ip = {ip}; n = {k}; eip = {nxt}"

        def flags() -> None:
            emit("        zf = _t == 0; lt = _t > 2147483647")

        def writeback() -> None:
            emit("        cpu.zf = zf; cpu.lt = lt; cpu.ult = ult")
            emit(f"        m.current_ip = {ip}")

        def slow_write(call: str, pad: str = "        ") -> None:
            # The checked-accessor path for a store: exact faults,
            # kernel-mode bypass, watched-page invalidation -- and,
            # since the write may have killed this very block, an
            # epoch check that bails out with exact state and lets
            # the dispatcher re-translate the just-written bytes.
            emit(pad + markers)
            emit(pad + call)
            if uses_epoch and not last:
                emit(pad + "if m._block_epoch != _e:")
                emit(pad + "    cpu.zf = zf; cpu.lt = lt; cpu.ult = ult")
                emit(pad + f"    cpu.ip = {nxt}")
                emit(pad + f"    m.instructions_executed += {k + 1}")
                emit(pad + "    return")

        if op in (0x00, 0x29):  # nop / land
            if not pma_active:
                emit("        pass")
        elif op == 0x02:  # mov rr
            emit(f"        regs[{ops[0]}] = regs[{ops[1]}]")
        elif op == 0x03:  # mov ri
            emit(f"        regs[{ops[0]}] = {ops[1] & _M}")
        elif op == 0x04:  # load
            reg, mem = ops
            emit(f"        _a = (regs[{mem.base}] + {mem.disp}) & 4294967295")
            if inline_mem:
                emit("        _o = _a & 4095")
                emit("        if _o <= 4092 and _pg.get(_a >> 12, 0) & 1:")
                emit(f"            regs[{reg}] = "
                     "_u32.unpack_from(_mem[_a >> 12], _o)[0]")
                if ev_read:
                    emit(f"            m.current_ip = {ip}")
                    emit(f"            for _ob in _hmr: "
                         f"_ob.on_read(m, _a, 4, regs[{reg}])")
                emit("        else:")
                emit(f"            {markers}")
                emit(f"            regs[{reg}] = m.read_word(_a)")
            else:
                emit(f"        {markers}")
                emit(f"        regs[{reg}] = m.read_word(_a)")
        elif op == 0x05:  # store
            reg, mem = ops
            emit(f"        _a = (regs[{mem.base}] + {mem.disp}) & 4294967295")
            if inline_mem:
                emit("        _o = _a & 4095; _pn = _a >> 12")
                emit("        if _o <= 4092 and _pg.get(_pn, 0) & 2 "
                     "and _pn not in _wp and _pn not in _cw:")
                emit(f"            _u32.pack_into(_mem[_pn], _o, regs[{reg}])")
                if ev_write:
                    emit(f"            m.current_ip = {ip}")
                    emit(f"            for _ob in _hmw: "
                         f"_ob.on_write(m, _a, 4, regs[{reg}])")
                emit("        else:")
                slow_write(f"m.write_word(_a, regs[{reg}])", "            ")
            else:
                slow_write(f"m.write_word(_a, regs[{reg}])")
        elif op == 0x06:  # loadb
            reg, mem = ops
            emit(f"        _a = (regs[{mem.base}] + {mem.disp}) & 4294967295")
            if inline_mem:
                emit("        if _pg.get(_a >> 12, 0) & 1:")
                emit(f"            regs[{reg}] = _mem[_a >> 12][_a & 4095]")
                if ev_read:
                    emit(f"            m.current_ip = {ip}")
                    emit(f"            for _ob in _hmr: "
                         f"_ob.on_read(m, _a, 1, regs[{reg}])")
                emit("        else:")
                emit(f"            {markers}")
                emit(f"            regs[{reg}] = m.read_byte(_a)")
            else:
                emit(f"        {markers}")
                emit(f"        regs[{reg}] = m.read_byte(_a)")
        elif op == 0x07:  # storeb
            reg, mem = ops
            emit(f"        _a = (regs[{mem.base}] + {mem.disp}) & 4294967295")
            if inline_mem:
                emit("        _pn = _a >> 12")
                emit("        if _pg.get(_pn, 0) & 2 and _pn not in _wp "
                     "and _pn not in _cw:")
                emit(f"            _mem[_pn][_a & 4095] = regs[{reg}] & 255")
                if ev_write:
                    emit(f"            m.current_ip = {ip}")
                    emit(f"            for _ob in _hmw: "
                         f"_ob.on_write(m, _a, 1, regs[{reg}] & 255)")
                emit("        else:")
                slow_write(f"m.write_byte(_a, regs[{reg}] & 255)",
                           "            ")
            else:
                slow_write(f"m.write_byte(_a, regs[{reg}] & 255)")
        elif op == 0x08:  # push: value read before SP moves (like the
            # interpreter); SP stays decremented if the write faults.
            emit(f"        _v = regs[{ops[0]}]")
            emit("        _sp = (regs[8] - 4) & 4294967295")
            emit("        regs[8] = _sp")
            if inline_mem:
                emit("        _o = _sp & 4095; _pn = _sp >> 12")
                emit("        if _o <= 4092 and _pg.get(_pn, 0) & 2 "
                     "and _pn not in _wp and _pn not in _cw:")
                emit("            _u32.pack_into(_mem[_pn], _o, _v)")
                if ev_write:
                    emit(f"            m.current_ip = {ip}")
                    emit("            for _ob in _hmw: "
                         "_ob.on_write(m, _sp, 4, _v)")
                emit("        else:")
                slow_write("m.write_word(_sp, _v)", "            ")
            else:
                slow_write("m.write_word(_sp, _v)")
        elif op == 0x09:  # pop: SP unchanged if the read faults
            emit("        _sp = regs[8]")
            if inline_mem:
                emit("        _o = _sp & 4095")
                emit("        if _o <= 4092 and _pg.get(_sp >> 12, 0) & 1:")
                emit("            _v = _u32.unpack_from(_mem[_sp >> 12], "
                     "_o)[0]")
                if ev_read:
                    emit(f"            m.current_ip = {ip}")
                    emit("            for _ob in _hmr: "
                         "_ob.on_read(m, _sp, 4, _v)")
                emit("        else:")
                emit(f"            {markers}")
                emit("            _v = m.read_word(_sp)")
            else:
                emit(f"        {markers}")
                emit("        _v = m.read_word(_sp)")
            emit("        regs[8] = (_sp + 4) & 4294967295")
            emit(f"        regs[{ops[0]}] = _v")
        elif op in _ARITH_RR:
            emit(f"        _t = (regs[{ops[0]}] {_ARITH_RR[op]} "
                 f"regs[{ops[1]}]) & 4294967295")
            emit(f"        regs[{ops[0]}] = _t")
            flags()
        elif op in _ARITH_RI:
            emit(f"        _t = (regs[{ops[0]}] {_ARITH_RI[op]} "
                 f"{ops[1] & _M}) & 4294967295")
            emit(f"        regs[{ops[0]}] = _t")
            flags()
        elif op in (0x0F, 0x10):  # div / mod (DivisionFault possible)
            helper = "_div" if op == 0x0F else "_mod"
            emit(f"        {markers}")
            emit(f"        _t = {helper}(regs[{ops[0]}], regs[{ops[1]}])")
            emit(f"        regs[{ops[0]}] = _t")
            flags()
        elif op in _LOGIC_RR:  # operands are masked, result stays masked
            emit(f"        _t = regs[{ops[0]}] {_LOGIC_RR[op]} regs[{ops[1]}]")
            emit(f"        regs[{ops[0]}] = _t")
            flags()
        elif op == 0x14:  # not
            emit(f"        _t = regs[{ops[0]}] ^ 4294967295")
            emit(f"        regs[{ops[0]}] = _t")
            flags()
        elif op == 0x15:  # shl
            emit(f"        _t = (regs[{ops[0]}] << {ops[1] & 31})"
                 " & 4294967295")
            emit(f"        regs[{ops[0]}] = _t")
            flags()
        elif op == 0x16:  # shr
            emit(f"        _t = regs[{ops[0]}] >> {ops[1] & 31}")
            emit(f"        regs[{ops[0]}] = _t")
            flags()
        elif op == 0x17:  # cmp rr (signed compare via sign-bit flip)
            emit(f"        _a = regs[{ops[0]}]; _b = regs[{ops[1]}]")
            emit("        zf = _a == _b; "
                 "lt = (_a ^ 2147483648) < (_b ^ 2147483648); ult = _a < _b")
        elif op == 0x18:  # cmp ri
            imm = ops[1] & _M
            emit(f"        _a = regs[{ops[0]}]")
            emit(f"        zf = _a == {imm}; "
                 f"lt = (_a ^ 2147483648) < {imm ^ _SIGN}; ult = _a < {imm}")
        elif op == 0x27:  # lea
            reg, mem = ops
            emit(f"        regs[{reg}] = (regs[{mem.base}] + {mem.disp})"
                 " & 4294967295")
        elif op == 0x28:  # chk
            emit(f"        {markers}")
            emit(f"        m.bounds_check(regs[{ops[0]}], {ops[1] & _M})")
        elif op == 0x19:  # jmp imm (terminator, chained)
            writeback()
            target = ops[0] & _M
            emit(f"        cpu.ip = {target}")
            emit(f"        m.instructions_executed += {len(insns)}")
            if ev_jump:
                emit(f"        for _o in _hj: _o.on_jump(m, {ip}, "
                     f"{target}, False)")
            emit(f"        return {chain_cell(target)}")
        elif op in _BRANCH_CONDITIONS:  # jcc (terminator, both edges chained)
            writeback()
            target = ops[0] & _M
            emit(f"        if {_BRANCH_CONDITIONS[op]}:")
            emit(f"            cpu.ip = {target}")
            emit(f"            m.instructions_executed += {len(insns)}")
            if ev_branch:
                # The interpreter derives "taken" from new_ip !=
                # next_ip, so a branch whose target *is* the next
                # instruction never reads as taken.
                emit(f"            for _o in _hb: _o.on_branch(m, {ip}, "
                     f"{target}, {target != nxt})")
            emit(f"            return {chain_cell(target)}")
            emit(f"        cpu.ip = {nxt}")
            emit(f"        m.instructions_executed += {len(insns)}")
            if ev_branch:
                emit(f"        for _o in _hb: _o.on_branch(m, {ip}, "
                     f"{target}, False)")
            emit(f"        return {chain_cell(nxt)}")
        elif op == 0x1A:  # jmp reg (terminator, CFI check may fault)
            writeback()
            emit(f"        n = {k}; eip = {nxt}")
            emit(f"        _t = regs[{ops[0]}]")
            emit("        m.check_indirect_target(_t)")
            emit("        cpu.ip = _t")
            if ev_jump:
                tail_events.append(
                    f"    for _o in _hj: _o.on_jump(m, {ip}, cpu.ip, True)")
        elif op == 0x23:  # call imm (terminator, stack push may fault;
            # chained -- any fault raises before the successor return)
            writeback()
            target = ops[0] & _M
            emit(f"        n = {k}; eip = {nxt}")
            emit(f"        m.push_return_address({nxt})")
            emit(f"        cpu.ip = {target}")
            emit(f"        m.instructions_executed += {len(insns)}")
            if ev_call:
                emit(f"        for _o in _hc: _o.on_call(m, {ip}, "
                     f"{target}, {nxt}, False)")
            emit(f"        return {chain_cell(target)}")
        elif op == 0x24:  # call reg (terminator)
            writeback()
            emit(f"        n = {k}; eip = {nxt}")
            emit(f"        _t = regs[{ops[0]}]")
            emit("        m.check_indirect_target(_t)")
            emit(f"        m.push_return_address({nxt})")
            emit("        cpu.ip = _t")
            if ev_call:
                tail_events.append(
                    f"    for _o in _hc: _o.on_call(m, {ip}, cpu.ip, "
                    f"{nxt}, True)")
        elif op == 0x25:  # ret (terminator, pop/shadow check may fault)
            writeback()
            emit(f"        n = {k}; eip = {nxt}")
            emit("        cpu.ip = m.pop_return_address()")
            if ev_ret:
                tail_events.append(
                    f"    for _o in _hr: _o.on_ret(m, {ip}, cpu.ip)")
        elif op == 0x01:  # halt (terminator)
            writeback()
            emit(f"        cpu.ip = {nxt}")
            emit("        m.halt()")
        elif op == 0x26:  # sys (terminator; the handler must see the
            # same committed state the interpreter gives it)
            writeback()
            emit(f"        n = {k}; eip = {nxt}")
            emit(f"        cpu.ip = {nxt}")
            emit(f"        m.do_syscall({ops[0]})")
        else:  # pragma: no cover - decode() only yields table opcodes
            raise AssertionError(f"untranslatable opcode 0x{op:02x}")

    last_insn = insns[last_index]
    if last_insn.opcode not in BLOCK_END_OPCODES:
        # Fall-through end (page boundary / entry point / size limit):
        # the successor head is static, so this edge chains too.
        emit("        cpu.zf = zf; cpu.lt = lt; cpu.ult = ult")
        emit(f"        m.current_ip = {last_insn.addr}")
        emit(f"        cpu.ip = {last_insn.next_addr}")
        emit(f"        m.instructions_executed += {len(insns)}")
        emit(f"        return {chain_cell(last_insn.next_addr)}")
    if ev_fault:
        # State is written back *before* on_fault, so the observers
        # see the interpreter's exact fault-time machine (current_ip
        # was set by the faulting site's markers).
        lines += [
            "    except _MF as _exc:",
            "        cpu.zf = zf; cpu.lt = lt; cpu.ult = ult",
            "        cpu.ip = eip",
            "        m.instructions_executed += n",
            "        for _o in _hf: _o.on_fault(m, _exc, m.current_ip)",
            "        raise",
        ]
    else:
        lines += [
            "    except _MF:",
            "        cpu.zf = zf; cpu.lt = lt; cpu.ult = ult",
            "        cpu.ip = eip",
            "        m.instructions_executed += n",
            "        raise",
        ]
    lines.append(f"    m.instructions_executed += {len(insns)}")
    lines.extend(tail_events)
    return "\n".join(lines) + "\n", exit_targets
