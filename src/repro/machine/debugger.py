"""A debugger for VN32 programs: breakpoints, watchpoints, backtraces.

This is the tool the attacker's "study phase" informally plays at
(Section III-B: "the attacker should use his knowledge about the
low-level details of the executing program"): run a local copy under
instrumentation, stop at interesting points, inspect the frame chain,
watch values change.  It is equally the honest developer's tool for
understanding what the attacks in this package actually do.

Implementation notes: breakpoints are checked before each fetch (no
code patching, so they work on R-X pages); watchpoints ride the
repro.observe event bus -- a write-event subscriber marks watches
whose range a store overlapped, and only those get their bytes
re-compared after the step.  Machines with no watchpoints stay on the
unobserved fast path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.errors import MachineFault
from repro.isa.registers import BP, REGISTER_NAMES
from repro.machine.machine import Machine, RunStatus
from repro.observe.events import Observer

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.link.loader import LoadedProgram


class StopReason(enum.Enum):
    BREAKPOINT = "breakpoint"
    WATCHPOINT = "watchpoint"
    STEPPED = "stepped"
    EXITED = "exited"
    HALTED = "halted"
    FAULTED = "faulted"
    LIMIT = "limit"


@dataclass
class StopEvent:
    """Why the debugger handed control back."""

    reason: StopReason
    address: int
    detail: str = ""
    fault: MachineFault | None = None

    def __str__(self) -> str:
        return f"{self.reason.value} at 0x{self.address:08x} {self.detail}".strip()


@dataclass
class Frame:
    """One backtrace entry."""

    index: int
    ip: int
    bp: int
    function: str

    def __str__(self) -> str:
        return f"#{self.index} 0x{self.ip:08x} in {self.function} (bp=0x{self.bp:08x})"


@dataclass
class _Watch:
    address: int
    size: int
    label: str
    last: bytes = b""
    #: Set by the write-event subscriber when a store overlapped this
    #: range during the last step; cleared once the bytes are compared.
    dirty: bool = False


class _WatchObserver(Observer):
    """Write-event subscriber that marks overlapped watches dirty."""

    def __init__(self, watches: list[_Watch]):
        self.watches = watches

    def on_write(self, machine, addr, size, value):
        end = addr + size
        for watch in self.watches:
            if addr < watch.address + watch.size and watch.address < end:
                watch.dirty = True


class Debugger:
    """Drives one loaded program interactively."""

    def __init__(self, program: "LoadedProgram"):
        self.program = program
        self.machine: Machine = program.machine
        self.breakpoints: set[int] = set()
        self._watches: list[_Watch] = []
        self._watch_observer: _WatchObserver | None = None
        #: Function symbols sorted by address, for symbolisation.
        self._functions = program.image.function_symbols()

    # -- configuration ------------------------------------------------------

    def resolve(self, location: int | str) -> int:
        """An address, or a symbol name from the image."""
        if isinstance(location, int):
            return location
        return self.program.image.symbol(location)

    def add_breakpoint(self, location: int | str) -> int:
        address = self.resolve(location)
        self.breakpoints.add(address)
        return address

    def remove_breakpoint(self, location: int | str) -> None:
        self.breakpoints.discard(self.resolve(location))

    def add_watchpoint(self, location: int | str, size: int = 4,
                       label: str = "") -> None:
        """Stop when the bytes at ``location`` change."""
        address = self.resolve(location)
        watch = _Watch(address, size, label or f"0x{address:08x}")
        watch.last = self._snapshot(watch)
        self._watches.append(watch)
        if self._watch_observer is None:
            self._watch_observer = _WatchObserver(self._watches)
            self.machine.attach_observer(self._watch_observer)

    def _snapshot(self, watch: _Watch) -> bytes:
        try:
            return self.machine.memory.read_bytes(watch.address, watch.size)
        except MachineFault:
            return b""

    # -- execution -----------------------------------------------------------

    def step(self) -> StopEvent:
        """Execute exactly one instruction.

        Always the per-instruction interpreter path: ``Machine.step``
        never dispatches through translated superblocks, so stepping
        stays instruction-granular regardless of
        ``MachineConfig.block_cache``.
        """
        try:
            self.machine.step()
        except MachineFault as fault:
            return StopEvent(StopReason.FAULTED, self.machine.current_ip,
                             str(fault), fault)
        event = self._check_watches()
        if event is not None:
            return event
        if self.machine._status is RunStatus.EXITED:
            return StopEvent(StopReason.EXITED, self.machine.current_ip)
        if self.machine._status is RunStatus.HALTED:
            return StopEvent(StopReason.HALTED, self.machine.current_ip)
        return StopEvent(StopReason.STEPPED, self.machine.cpu.ip)

    def cont(self, max_instructions: int = 2_000_000) -> StopEvent:
        """Run until a breakpoint, watchpoint change, end, or budget.

        If stopped *on* a breakpoint, steps off it first (standard
        debugger resume semantics).
        """
        if self.machine.cpu.ip in self.breakpoints:
            event = self.step()
            if event.reason is not StopReason.STEPPED:
                return event
        for _ in range(max_instructions):
            if self.machine.cpu.ip in self.breakpoints:
                return StopEvent(
                    StopReason.BREAKPOINT, self.machine.cpu.ip,
                    f"({self.symbolize(self.machine.cpu.ip)})",
                )
            event = self.step()
            if event.reason is not StopReason.STEPPED:
                return event
        return StopEvent(StopReason.LIMIT, self.machine.cpu.ip,
                         f"after {max_instructions} instructions")

    def _check_watches(self) -> StopEvent | None:
        for watch in self._watches:
            if not watch.dirty:
                continue
            watch.dirty = False
            now = self._snapshot(watch)
            if now != watch.last:
                before, watch.last = watch.last, now
                return StopEvent(
                    StopReason.WATCHPOINT, self.machine.current_ip,
                    f"{watch.label}: {before.hex()} -> {now.hex()}",
                )
        return None

    # -- inspection -----------------------------------------------------------

    def symbolize(self, address: int) -> str:
        """Nearest preceding function symbol, with offset."""
        best = None
        for func_addr, name in self._functions:
            if func_addr > address:
                break
            best = (func_addr, name)
        if best is None:
            return f"0x{address:08x}"
        offset = address - best[0]
        return best[1] if offset == 0 else f"{best[1]}+0x{offset:x}"

    def registers(self) -> dict[str, int]:
        state = {name: self.machine.cpu.regs[number]
                 for number, name in enumerate(REGISTER_NAMES)}
        state["ip"] = self.machine.cpu.ip
        return state

    def backtrace(self, limit: int = 16) -> list[Frame]:
        """Walk the saved-BP chain, as the attacker's study phase does."""
        frames: list[Frame] = []
        ip = self.machine.cpu.ip
        bp = self.machine.cpu.regs[BP]
        stack_lo, stack_hi = self.program.image.stack_range
        for index in range(limit):
            frames.append(Frame(index, ip, bp, self.symbolize(ip)))
            if not stack_lo <= bp < stack_hi:
                break
            try:
                ip = self.machine.memory.read_word(bp + 4)
                bp = self.machine.memory.read_word(bp)
            except MachineFault:
                break
            if ip == 0:
                break
        return frames

    def disassemble_around(self, location: int | str, count: int = 8) -> str:
        """Disassemble ``count`` instructions starting at a location."""
        from repro.asm.disassembler import disassemble

        address = self.resolve(location)
        data = self.machine.memory.read_bytes(address, count * 6)
        symbols = {
            addr: name for addr, name in self._functions
        }
        lines = disassemble(data, address, symbols=symbols)[:count]
        marker_lines = []
        for line in lines:
            marker = " ->" if line.address == self.machine.cpu.ip else "   "
            marker_lines.append(marker + " " + line.render())
        return "\n".join(marker_lines)

    def dump(self, location: int | str, words: int = 8) -> str:
        """Hex-dump words of memory with symbolised annotations."""
        address = self.resolve(location)
        out = []
        for offset in range(0, words * 4, 4):
            try:
                value = self.machine.memory.read_word(address + offset)
            except MachineFault:
                out.append(f"0x{address + offset:08x}  <unmapped>")
                continue
            note = ""
            segment = self.program.image.segment_at(value)
            if segment is not None and segment.kind == "text":
                note = f"  ; {self.symbolize(value)}"
            out.append(f"0x{address + offset:08x}  0x{value:08x}{note}")
        return "\n".join(out)
