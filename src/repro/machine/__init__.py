"""The VN32 machine simulator: memory, CPU, devices, and syscalls."""

from repro.machine.access import AccessKind
from repro.machine.cpu import CPU
from repro.machine.debugger import Debugger, Frame, StopEvent, StopReason
from repro.machine.devices import InputChannel, OutputChannel, RandomDevice, ShellDevice
from repro.machine.machine import Machine, MachineConfig, RunResult, RunStatus
from repro.machine.memory import (
    Memory,
    PAGE_SIZE,
    PERM_R,
    PERM_RW,
    PERM_RWX,
    PERM_RX,
    PERM_W,
    PERM_X,
    perms_to_str,
)

__all__ = [
    "AccessKind",
    "CPU",
    "Debugger",
    "Frame",
    "StopEvent",
    "StopReason",
    "InputChannel",
    "OutputChannel",
    "RandomDevice",
    "ShellDevice",
    "Machine",
    "MachineConfig",
    "RunResult",
    "RunStatus",
    "Memory",
    "PAGE_SIZE",
    "PERM_R",
    "PERM_RW",
    "PERM_RWX",
    "PERM_RX",
    "PERM_W",
    "PERM_X",
    "perms_to_str",
]
