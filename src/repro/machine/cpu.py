"""The VN32 CPU: registers, flags, and the execute stage.

The CPU holds architectural state and knows how to execute one decoded
instruction against a :class:`~repro.machine.machine.Machine` (which
provides checked memory access and platform services).  Keeping the
execute stage here and all policy (page permissions, PMA rules, shadow
stack, CFI) in the machine mirrors the paper's layering: the attacks
live entirely in the semantics below; the countermeasures are hooks
around them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import DivisionFault
from repro.isa.instructions import Instruction, Mem, WORD_MASK, to_signed, to_unsigned
from repro.isa.registers import NUM_REGISTERS, REGISTER_NAMES, SP

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine


class CPU:
    """Architectural state: R0-R7, SP, BP, IP and comparison flags.

    Flags are stored as the *outcomes* of the last comparison
    (``zf``/``lt``/``ult``) rather than as raw carry/overflow bits;
    this keeps signed/unsigned branching exact without modelling
    two's-complement overflow flags.
    """

    def __init__(self) -> None:
        self.regs: list[int] = [0] * NUM_REGISTERS
        self.ip: int = 0
        #: Last comparison: equal?
        self.zf: bool = False
        #: Last comparison: signed less-than?
        self.lt: bool = False
        #: Last comparison: unsigned less-than (below)?
        self.ult: bool = False

    # -- register access ----------------------------------------------------

    def get(self, reg: int) -> int:
        return self.regs[reg]

    def set(self, reg: int, value: int) -> None:
        self.regs[reg] = value & WORD_MASK

    @property
    def sp(self) -> int:
        return self.regs[SP]

    @sp.setter
    def sp(self, value: int) -> None:
        self.regs[SP] = value & WORD_MASK

    def snapshot(self) -> dict[str, int]:
        """A copy of the register file for tracing and register-leak
        experiments (machine-code attackers can read registers)."""
        state = {name: self.regs[number] for number, name in enumerate(REGISTER_NAMES)}
        state["ip"] = self.ip
        return state

    # -- flag helpers ---------------------------------------------------------

    def _set_flags_result(self, result: int) -> None:
        result &= WORD_MASK
        self.zf = result == 0
        self.lt = to_signed(result) < 0

    def _set_flags_compare(self, a: int, b: int) -> None:
        a &= WORD_MASK
        b &= WORD_MASK
        self.zf = a == b
        self.lt = to_signed(a) < to_signed(b)
        self.ult = a < b

    # -- execution -------------------------------------------------------------

    def execute(self, insn: Instruction, machine: "Machine", next_ip: int) -> None:
        """Execute one decoded instruction.

        ``next_ip`` is the address of the following instruction; the
        handler either leaves ``self.ip`` at ``next_ip`` (already set
        by the machine) or overwrites it for control transfers.
        """
        _DISPATCH[insn.opcode](self, insn, machine)


def _mem_addr(cpu: CPU, mem: Mem) -> int:
    return (cpu.regs[mem.base] + mem.disp) & WORD_MASK


# Handler functions, one per opcode. Each receives (cpu, insn, machine).


def _nop(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    pass


def _halt(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    machine.halt()


def _mov_rr(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    dst, src = insn.operands
    cpu.regs[dst] = cpu.regs[src]


def _mov_ri(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    dst, imm = insn.operands
    cpu.regs[dst] = imm & WORD_MASK


def _load(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    dst, mem = insn.operands
    cpu.regs[dst] = machine.read_word(_mem_addr(cpu, mem))


def _store(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    src, mem = insn.operands
    machine.write_word(_mem_addr(cpu, mem), cpu.regs[src])


def _loadb(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    dst, mem = insn.operands
    cpu.regs[dst] = machine.read_byte(_mem_addr(cpu, mem))


def _storeb(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    src, mem = insn.operands
    machine.write_byte(_mem_addr(cpu, mem), cpu.regs[src] & 0xFF)


def _push(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    (reg,) = insn.operands
    machine.push_word(cpu.regs[reg])


def _pop(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    (reg,) = insn.operands
    cpu.regs[reg] = machine.pop_word()


def _binary_op(op: Callable[[int, int], int]) -> Callable:
    def handler(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
        dst, src = insn.operands
        result = op(cpu.regs[dst], cpu.regs[src]) & WORD_MASK
        cpu.regs[dst] = result
        cpu._set_flags_result(result)

    return handler


def _binary_imm_op(op: Callable[[int, int], int]) -> Callable:
    def handler(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
        dst, imm = insn.operands
        result = op(cpu.regs[dst], imm) & WORD_MASK
        cpu.regs[dst] = result
        cpu._set_flags_result(result)

    return handler


def _c_div(a: int, b: int) -> int:
    """C-style signed division (truncation toward zero)."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        raise DivisionFault("division by zero")
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return to_unsigned(quotient)


def _c_mod(a: int, b: int) -> int:
    """C-style signed remainder (sign follows the dividend)."""
    sa, sb = to_signed(a), to_signed(b)
    if sb == 0:
        raise DivisionFault("modulo by zero")
    remainder = abs(sa) % abs(sb)
    if sa < 0:
        remainder = -remainder
    return to_unsigned(remainder)


#: Public names for the division helpers: the block translator
#: (repro.machine.blocks) embeds direct calls to these in generated
#: code so div/mod keep the exact C-style truncation semantics and
#: DivisionFault behaviour of the interpreter.
c_div = _c_div
c_mod = _c_mod


def _not(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    (reg,) = insn.operands
    result = (~cpu.regs[reg]) & WORD_MASK
    cpu.regs[reg] = result
    cpu._set_flags_result(result)


def _shl(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    reg, amount = insn.operands
    result = (cpu.regs[reg] << (amount & 31)) & WORD_MASK
    cpu.regs[reg] = result
    cpu._set_flags_result(result)


def _shr(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    reg, amount = insn.operands
    result = (cpu.regs[reg] & WORD_MASK) >> (amount & 31)
    cpu.regs[reg] = result
    cpu._set_flags_result(result)


def _cmp_rr(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    a, b = insn.operands
    cpu._set_flags_compare(cpu.regs[a], cpu.regs[b])


def _cmp_ri(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    a, imm = insn.operands
    cpu._set_flags_compare(cpu.regs[a], imm)


def _jmp_abs(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    cpu.ip = insn.operands[0] & WORD_MASK


def _jmp_reg(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    target = cpu.regs[insn.operands[0]]
    machine.check_indirect_target(target)
    cpu.ip = target


def _conditional(predicate: Callable[[CPU], bool]) -> Callable:
    def handler(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
        if predicate(cpu):
            cpu.ip = insn.operands[0] & WORD_MASK

    return handler


def _call_abs(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    machine.push_return_address(cpu.ip)
    cpu.ip = insn.operands[0] & WORD_MASK


def _call_reg(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    target = cpu.regs[insn.operands[0]]
    machine.check_indirect_target(target)
    machine.push_return_address(cpu.ip)
    cpu.ip = target


def _ret(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    cpu.ip = machine.pop_return_address()


def _sys(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    machine.do_syscall(insn.operands[0])


def _lea(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    dst, mem = insn.operands
    cpu.regs[dst] = _mem_addr(cpu, mem)


def _chk(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    reg, limit = insn.operands
    machine.bounds_check(cpu.regs[reg], limit)


_HANDLERS: dict[int, Callable] = {
    0x00: _nop,
    0x01: _halt,
    0x02: _mov_rr,
    0x03: _mov_ri,
    0x04: _load,
    0x05: _store,
    0x06: _loadb,
    0x07: _storeb,
    0x08: _push,
    0x09: _pop,
    0x0A: _binary_op(lambda a, b: a + b),
    0x0B: _binary_imm_op(lambda a, b: a + b),
    0x0C: _binary_op(lambda a, b: a - b),
    0x0D: _binary_imm_op(lambda a, b: a - b),
    0x0E: _binary_op(lambda a, b: a * b),
    0x0F: _binary_op(_c_div),
    0x10: _binary_op(_c_mod),
    0x11: _binary_op(lambda a, b: a & b),
    0x12: _binary_op(lambda a, b: a | b),
    0x13: _binary_op(lambda a, b: a ^ b),
    0x14: _not,
    0x15: _shl,
    0x16: _shr,
    0x17: _cmp_rr,
    0x18: _cmp_ri,
    0x19: _jmp_abs,
    0x1A: _jmp_reg,
    0x1B: _conditional(lambda cpu: cpu.zf),
    0x1C: _conditional(lambda cpu: not cpu.zf),
    0x1D: _conditional(lambda cpu: cpu.lt),
    0x1E: _conditional(lambda cpu: not cpu.lt and not cpu.zf),
    0x1F: _conditional(lambda cpu: cpu.lt or cpu.zf),
    0x20: _conditional(lambda cpu: not cpu.lt),
    0x21: _conditional(lambda cpu: cpu.ult),
    0x22: _conditional(lambda cpu: not cpu.ult),
    0x23: _call_abs,
    0x24: _call_reg,
    0x25: _ret,
    0x26: _sys,
    0x27: _lea,
    0x28: _chk,
    0x29: _nop,  # land: a typed-CFI landing pad, inert when executed
}


def _undefined(cpu: CPU, insn: Instruction, machine: "Machine") -> None:
    # Decoded instructions always carry a valid opcode; this only fires
    # for hand-built Instruction objects with a bogus opcode byte.
    from repro.errors import InvalidInstructionFault

    raise InvalidInstructionFault(f"invalid opcode 0x{insn.opcode:02x}", cpu.ip)


#: Flat 256-entry dispatch table indexed by opcode byte -- one list
#: index instead of a dict hash on the interpreter's hottest line.
_DISPATCH: list[Callable] = [_undefined] * 256
for _opcode, _handler in _HANDLERS.items():
    _DISPATCH[_opcode] = _handler
