"""The VN32 machine: CPU + memory + devices + protection machinery.

:class:`Machine` is the facade the rest of the package programs
against.  It composes, in checking order, every runtime protection the
paper discusses:

1. **Protected-module access control** (Section IV-A) -- consulted
   first and for *every* access, including kernel-privileged ones;
2. **Page permissions** (DEP, Section III-C1) -- skipped for
   kernel-privileged code, which is exactly why DEP alone is useless
   against the machine-code attacker;
3. **Red zones** (ASan-style testing checks, Section III-C2);
4. **Shadow stack** and **coarse CFI** on the control-transfer path.

All of these are *disabled by default*: a bare machine is the
historical unprotected platform that the Section III attacks assume.
The loader switches them on according to a
:class:`~repro.mitigations.config.MitigationConfig`.
"""

from __future__ import annotations

import enum
import os
import pickle
from dataclasses import dataclass, field, fields
from time import perf_counter

from repro.errors import (
    BoundsFault,
    CFIFault,
    DecodeError,
    ExecutionLimitExceeded,
    InvalidInstructionFault,
    MachineFault,
    MemoryFault,
    PermissionFault,
    RedZoneFault,
    ShadowStackFault,
    SyscallFault,
)
from repro.isa.encoding import decode
from repro.isa.instructions import Instruction, WORD_MASK
from repro.isa.opcodes import OPCODE_LENGTHS, OPCODE_SPECS
from repro.machine.access import AccessKind
from repro.machine.blocks import CompiledBlock, compile_block
from repro.machine.cpu import CPU
from repro.machine.devices import InputChannel, OutputChannel, RandomDevice, ShellDevice
from repro.machine.memory import (
    Memory,
    MemorySnapshot,
    PAGE_SIZE,
    PERM_R,
    PERM_W,
    PERM_X,
    _PAGE_SHIFT,
    _U32,
)
from repro.machine.syscalls import HANDLERS
from repro.observe.events import ObserverHub
from repro.observe.tracer import InstructionTracer
from repro.pma.module import PMAController

if False:  # pragma: no cover - typing only
    from repro.observe.events import Observer

_PAGE_MASK = PAGE_SIZE - 1

#: Control-transfer opcode bytes, mirroring the dispatch table in
#: :mod:`repro.machine.cpu` (0x19..0x25 is the contiguous transfer
#: block).  The *observed* step classifies transfers by opcode after
#: execution, so the fast path and the cpu dispatch need no
#: instrumentation at all.
_OP_JMP_ABS, _OP_JMP_REG = 0x19, 0x1A
_OP_CALL_ABS, _OP_CALL_REG, _OP_RET = 0x23, 0x24, 0x25

#: Factories called with every newly constructed :class:`Machine`;
#: each returns an :class:`~repro.observe.events.Observer` to attach
#: (or None).  Normally empty -- zero cost -- and managed through
#: :func:`repro.observe.observe_new_machines`, which lets the
#: experiments CLI instrument pipelines that build machines
#: internally.
_DEFAULT_OBSERVER_FACTORIES: list = []

#: Instance attributes swapped to their ``_*_observed`` variants while
#: a subscriber cares about memory events.  With no such subscriber
#: the class-level accessors run untouched (zero cost).
_MEMORY_ACCESSORS = (
    "read_bytes",
    "write_bytes",
    "read_word",
    "write_word",
    "read_byte",
    "write_byte",
)

#: Permission bit required for each access kind, hoisted out of the
#: per-access path (building this dict per call was measurable).
_NEEDED = {
    AccessKind.FETCH: PERM_X,
    AccessKind.READ: PERM_R,
    AccessKind.WRITE: PERM_W,
}

#: Default for :attr:`MachineConfig.decode_cache`.  The differential
#: suite flips this module global to run whole experiment pipelines
#: (which construct their machines internally) without the cache.
DECODE_CACHE_DEFAULT = True

#: Default for :attr:`MachineConfig.block_cache`, flipped the same way
#: by the block-mode differential suite.
BLOCK_CACHE_DEFAULT = True

#: Default for :attr:`MachineConfig.trace_jit`, flipped the same way
#: by the trace-mode differential suite.
TRACE_JIT_DEFAULT = True


def _env_override(name: str) -> bool | None:
    """Tri-state environment switch: None when unset, else its truth.

    Lets CI run the whole suite down a chosen execution path
    (``REPRO_BLOCK_CACHE=0 pytest ...``) without touching any test.
    """
    value = os.environ.get(name)
    if value is None:
        return None
    return value.strip().lower() not in ("0", "false", "no", "off", "")


def _decode_cache_default() -> bool:
    env = _env_override("REPRO_DECODE_CACHE")
    return DECODE_CACHE_DEFAULT if env is None else env


def _block_cache_default() -> bool:
    env = _env_override("REPRO_BLOCK_CACHE")
    return BLOCK_CACHE_DEFAULT if env is None else env


def _trace_jit_default() -> bool:
    env = _env_override("REPRO_TRACE")
    return TRACE_JIT_DEFAULT if env is None else env


class RunStatus(enum.Enum):
    """How a :meth:`Machine.run` ended."""

    EXITED = "exited"
    HALTED = "halted"
    FAULT = "fault"
    LIMIT = "limit"


@dataclass
class RunResult:
    """Outcome of one :meth:`Machine.run` call."""

    status: RunStatus
    exit_code: int | None = None
    fault: MachineFault | None = None
    instructions: int = 0
    output: bytes = b""
    shell_spawned: bool = False
    #: Wall-clock seconds the :meth:`Machine.run` call took.
    duration_seconds: float = 0.0

    @property
    def crashed(self) -> bool:
        """True if execution ended in a fault (any kind)."""
        return self.status is RunStatus.FAULT

    @property
    def instructions_per_second(self) -> float:
        """Simulated-instruction throughput of this run (0.0 when the
        run was too short for the clock to resolve)."""
        if self.duration_seconds <= 0.0:
            return 0.0
        return self.instructions / self.duration_seconds

    def fault_name(self) -> str:
        """Short class name of the fault, or '-' if none."""
        return type(self.fault).__name__ if self.fault else "-"


#: Wire-format header for serialized snapshots: magic + format version.
_SNAPSHOT_MAGIC = b"RSNP"
_SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class MachineSnapshot:
    """Frozen machine state, produced by :meth:`Machine.snapshot`.

    Everything is an immutable copy except ``memory``, whose page
    objects are shared copy-on-write with the live machine (see
    :class:`~repro.machine.memory.MemorySnapshot`), and
    ``current_module``, which references the registered
    :class:`~repro.pma.module.ProtectedModule` object itself (restore
    re-installs the module table, so the reference stays valid).

    :meth:`to_bytes`/:meth:`from_bytes` round-trip the whole state
    through a self-contained byte string, so a snapshot can cross
    *hosts* (a distributed campaign coordinator), not just ``fork``.
    """

    memory: MemorySnapshot
    regs: tuple
    ip: int
    zf: bool
    lt: bool
    ult: bool
    current_ip: int
    current_module: object
    kernel_regions: tuple
    indirect_targets: frozenset
    redzones: frozenset
    shadow_stack: tuple
    instructions_executed: int
    status: "RunStatus | None"
    exit_code: int | None
    input_state: tuple
    output_state: bytes
    shell_state: tuple
    rng_state: object
    pma_state: tuple

    @property
    def pages(self) -> int:
        """Pages frozen in the snapshot's page table."""
        return self.memory.page_count

    def to_bytes(self) -> bytes:
        """Serialize to a self-contained, versioned byte string.

        The sparse page table travels as sorted page numbers plus one
        zlib stream (:meth:`MemorySnapshot.to_payload`); registers,
        flags, device cursors, the RNG stream, the shadow stack and
        the PMA module table (including ``current_module``, whose
        identity link into the module table survives because both ride
        in one pickle) are pickled alongside it.
        """
        payload = {f.name: getattr(self, f.name) for f in fields(self)}
        payload["memory"] = self.memory.to_payload()
        return (
            _SNAPSHOT_MAGIC
            + bytes((_SNAPSHOT_VERSION,))
            + pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "MachineSnapshot":
        """Rebuild a snapshot serialized by :meth:`to_bytes`.

        The result restores onto any machine built from the same
        program image exactly like the original snapshot would (the
        round-trip differential suite proves the restored machines
        byte-identical).  Deserialization trusts its input -- the
        payload is a pickle -- so snapshots are only accepted from the
        campaign's own coordinator/workers, never from guests.
        """
        header = len(_SNAPSHOT_MAGIC) + 1
        if data[:len(_SNAPSHOT_MAGIC)] != _SNAPSHOT_MAGIC:
            raise ValueError("not a serialized MachineSnapshot")
        version = data[len(_SNAPSHOT_MAGIC)]
        if version != _SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported snapshot format version {version}")
        payload = pickle.loads(data[header:])
        payload["memory"] = MemorySnapshot.from_payload(payload["memory"])
        return cls(**payload)


@dataclass
class MachineConfig:
    """Runtime-protection switches for one machine instance."""

    #: Enforce the shadow stack on call/ret.
    shadow_stack: bool = False
    #: Enforce CFI on indirect calls/jumps.
    cfi: bool = False
    #: CFI precision: "coarse" admits any function entry; "typed"
    #: requires a ``land`` landing pad whose tag matches the call
    #: site's expected type tag (carried in r7 by convention).
    cfi_mode: str = "coarse"
    #: Enforce ASan-style red zones on data accesses.
    redzones: bool = False
    #: Record an execution trace (addresses + instructions).  Served
    #: by an auto-attached
    #: :class:`~repro.observe.tracer.InstructionTracer` (read it back
    #: through ``Machine.trace``/``Machine.tracer``); must be set at
    #: construction time.
    trace: bool = False
    #: Maximum trace entries retained; overflow is counted in
    #: ``Machine.trace_dropped`` instead of being silently discarded.
    trace_limit: int = 100_000
    #: Seed for the machine's entropy source.
    rng_seed: int = 0
    #: Cache decoded instructions per page (invalidated on writes to
    #: executable pages and on permission/module-table changes).  Off
    #: reproduces the historical decode-every-step interpreter; the
    #: differential suite asserts both modes are observationally
    #: identical.
    decode_cache: bool = field(default_factory=_decode_cache_default)
    #: Translate straight-line instruction runs into fused superblock
    #: closures dispatched block-at-a-time by :meth:`Machine.run`
    #: (see :mod:`repro.machine.blocks`).  Shares the decode cache's
    #: write/perm/PMA invalidation machinery; observed machines and
    #: :meth:`Machine.step` always use the per-instruction path.
    block_cache: bool = field(default_factory=_block_cache_default)
    #: Longest instruction run fused into one superblock (see
    #: :data:`repro.machine.blocks.MAX_BLOCK_INSNS` for the rationale
    #: behind the default).
    max_block_insns: int = 64
    #: Tier-2 trace JIT: count block-head executions and, past
    #: :attr:`trace_hot_threshold`, record the hot path through taken
    #: branches into a single guarded loop closure (see
    #: :mod:`repro.machine.trace`).  Requires ``block_cache``; opt out
    #: with ``REPRO_TRACE=0`` or ``trace_jit=False``, mirroring the
    #: block-cache switches.
    trace_jit: bool = field(default_factory=_trace_jit_default)
    #: Block-head executions before the trace recorder kicks in.
    trace_hot_threshold: int = 20
    #: Longest recorded trace (instructions per loop iteration).
    trace_max_insns: int = 256


class Machine:
    """One simulated VN32 computer."""

    def __init__(
        self,
        config: MachineConfig | None = None,
        pma: PMAController | None = None,
    ) -> None:
        self.config = config or MachineConfig()
        self.memory = Memory()
        self.cpu = CPU()
        self.input = InputChannel()
        self.output = OutputChannel()
        self.shell = ShellDevice()
        self.rng = RandomDevice(self.config.rng_seed)
        self.pma = pma or PMAController()
        #: The protected module the IP is currently inside (or None).
        self.current_module = None
        #: Address of the instruction currently executing.
        self.current_ip = 0
        #: Ranges of kernel-privileged code ``(start, end)``; code
        #: fetched from these bypasses page permissions (but not PMA).
        self.kernel_regions: list[tuple[int, int]] = []
        #: Valid targets for indirect calls/jumps under CFI.
        self.indirect_targets: set[int] = set()
        #: Poisoned byte addresses (red zones).
        self._redzones: set[int] = set()
        #: Page-level index over ``_redzones``: page -> poisoned-byte
        #: count, so the common access into a poison-free page skips
        #: the per-byte set scan entirely.
        self._redzone_pages: dict[int, int] = {}
        #: Decoded-instruction cache: address -> (Instruction, length).
        #: Entries are only created for addresses on executable pages
        #: whose encoding does not cross a page boundary, and the whole
        #: page's entries die on any write to that page (von-Neumann
        #: fidelity: self-modifying code and code injection must
        #: execute the bytes last written, not stale decodes).
        self._decode_cache: dict[int, tuple[Instruction, int]] = {}
        #: Invalidation index: page -> addresses cached on that page.
        self._decode_pages: dict[int, list[int]] = {}
        #: Translated-block cache: head address -> CompiledBlock (see
        #: repro.machine.blocks).  Invalidation rides the same
        #: page-watch machinery as the decode cache above.
        self._block_cache: dict[int, CompiledBlock] = {}
        #: Invalidation index: page -> block head addresses on it.
        self._block_pages: dict[int, list[int]] = {}
        #: Bumped whenever any block is invalidated; a running block
        #: compares it after every store so self-modifying code that
        #: overwrites the block's own tail aborts back to the
        #: dispatcher instead of executing stale decodes.
        self._block_epoch = 0
        #: Chain cells: successor head -> list of one-element lists
        #: embedded in compiled predecessor blocks.  Filling a cell
        #: lets the predecessor hand the successor straight back to
        #: the dispatcher without a dict probe; nulling it (on
        #: invalidation or trace install) severs the chain.
        self._chain_registry: dict[int, list[list]] = {}
        #: Tier-2 trace cache: loop-head address -> CompiledTrace.
        self._trace_cache: dict = {}
        #: Invalidation index: page -> trace head addresses touching it.
        self._trace_pages: dict[int, list[int]] = {}
        #: Block-head execution counters feeding the hotness check.
        self._trace_counts: dict[int, int] = {}
        #: Heads where recording aborted (side exits, caps, syscalls);
        #: never retried until the page is invalidated.
        self._trace_failed: set[int] = set()
        self.memory.code_write_listener = self._invalidate_code_page
        self.memory.perm_change_listener = self.flush_decode_cache
        self.pma.add_change_listener(self.flush_decode_cache)
        self._shadow_stack: list[int] = []
        #: Observation hooks ``f(machine, syscall_number)`` called
        #: before each syscall -- used by tests and by the attacker's
        #: local "debugger" when studying a binary.
        self.syscall_hooks: list = []
        self.instructions_executed = 0
        self._status: RunStatus | None = None
        self._exit_code: int | None = None
        #: Event-bus dispatch hub, or None when nothing is attached --
        #: the single check the fast path pays (see repro.observe).
        self._observers: ObserverHub | None = None
        #: The hub the translated blocks were compiled against: None
        #: for plain unobserved blocks, or a *dispatch-transparent* hub
        #: whose event emission is baked into the block bodies.  Block
        #: dispatch is only legal while ``_observers is _blocks_hub``;
        #: any other hub demotes ``run()`` to per-instruction stepping.
        self._blocks_hub: ObserverHub | None = None
        #: The auto-attached legacy tracer (``config.trace``), if any.
        self.tracer: InstructionTracer | None = None
        if self.config.trace:
            self.tracer = InstructionTracer(self.config.trace_limit)
            self.attach_observer(self.tracer)
        if _DEFAULT_OBSERVER_FACTORIES:
            for factory in _DEFAULT_OBSERVER_FACTORIES:
                observer = factory(self)
                if observer is not None:
                    self.attach_observer(observer)

    # -- observability -------------------------------------------------------

    @property
    def observers(self) -> tuple:
        """The attached observers, in attach order."""
        return self._observers.observers if self._observers else ()

    def attach_observer(self, observer: "Observer") -> "Observer":
        """Subscribe ``observer`` to this machine's event stream."""
        attached = list(self.observers)
        attached.append(observer)
        self._observers = ObserverHub(attached)
        self._sync_memory_accessors()
        self._sync_block_observers()
        return observer

    def detach_observer(self, observer: "Observer") -> None:
        """Unsubscribe ``observer``; with none left the machine drops
        back to the zero-cost unobserved fast path."""
        remaining = [obs for obs in self.observers if obs is not observer]
        self._observers = ObserverHub(remaining) if remaining else None
        self._sync_memory_accessors()
        self._sync_block_observers()

    def _sync_memory_accessors(self) -> None:
        """Swap the checked accessors to their event-emitting variants
        only while some subscriber wants memory events, so unobserved
        machines (and observed ones that don't care about memory) keep
        the unwrapped class methods."""
        hub = self._observers
        if hub is not None and hub.wants_memory:
            for name in _MEMORY_ACCESSORS:
                self.__dict__[name] = getattr(self, f"_{name}_observed")
        else:
            for name in _MEMORY_ACCESSORS:
                self.__dict__.pop(name, None)

    def _sync_block_observers(self) -> None:
        """Keep the translated-block cache honest about observers.

        A *dispatch-transparent* hub (every subscriber opts in, no
        per-instruction or decode-cache hooks) becomes the block tier's
        target hub: existing translations are flushed, and blocks are
        recompiled with that hub's event emission baked in.  Any other
        hub simply demotes dispatch to the per-instruction loop without
        touching the cache (the status-quo behaviour for ordinary
        observers), so the warm translations survive a temporary
        tracer attach.  A running dispatch loop picks the change up on
        its next iteration; the one block already in flight finishes
        on its compiled-in emission (at most ``max_block_insns``
        instructions of skew, only reachable from mid-run attaches out
        of syscall hooks).
        """
        hub = self._observers
        target = hub if (hub is not None and hub.transparent) else None
        if target is not self._blocks_hub:
            self._flush_translations()
            self._blocks_hub = target

    def _flush_translations(self) -> None:
        """Drop translated blocks, chains and traces -- but keep the
        per-instruction decode cache, which is dispatch-independent.

        Unlike :meth:`flush_decode_cache` this emits no
        ``decode_invalidate`` events: it marks a dispatch-strategy
        change, not a semantic invalidation, and emitting here would
        make event streams differ across dispatch legs."""
        if self._block_cache:
            self._block_cache.clear()
            self._block_pages.clear()
            self._block_epoch += 1
        registry = self._chain_registry
        if registry:
            for cells in registry.values():
                for cell in cells:
                    cell[0] = None
            registry.clear()
        if self._trace_cache:
            self._trace_cache.clear()
            self._trace_pages.clear()
            self._block_epoch += 1
        self._trace_counts.clear()
        self._trace_failed.clear()

    def emit_breach(self, breach: object) -> None:
        """Publish an invariant breach to ``on_invariant_breach``
        subscribers (called by
        :class:`~repro.observe.invariants.InvariantMonitor`)."""
        hub = self._observers
        if hub is not None and hub.breach:
            for observer in hub.breach:
                observer.on_invariant_breach(self, breach)

    @property
    def trace(self) -> list[tuple[int, Instruction]]:
        """Legacy execution trace: ``(ip, insn)`` pairs.

        Compatibility shim over the auto-attached
        :class:`~repro.observe.tracer.InstructionTracer`; empty when
        ``config.trace`` was not set at construction.
        """
        return self.tracer.entries if self.tracer is not None else []

    @property
    def trace_dropped(self) -> int:
        """Trace entries discarded after ``config.trace_limit`` filled
        (the legacy list stopped silently; this says by how much)."""
        return self.tracer.dropped if self.tracer is not None else 0

    # -- privilege ----------------------------------------------------------

    def add_kernel_region(self, start: int, end: int) -> None:
        """Mark ``[start, end)`` as kernel-privileged code."""
        self.kernel_regions.append((start, end))

    def in_kernel(self, ip: int) -> bool:
        """True if ``ip`` lies in a kernel-privileged region."""
        for start, end in self.kernel_regions:
            if start <= ip < end:
                return True
        return False

    @property
    def kernel_mode(self) -> bool:
        """True if the currently executing instruction is kernel code."""
        regions = self.kernel_regions
        if not regions:
            return False
        ip = self.current_ip
        for start, end in regions:
            if start <= ip < end:
                return True
        return False

    # -- checked memory access ------------------------------------------------

    def _check(self, kind: AccessKind, addr: int, size: int) -> None:
        addr &= WORD_MASK
        if self.pma.modules:
            if kind is not AccessKind.FETCH:
                self.pma.check_data_access(
                    self.current_module, kind, addr, size, self.current_ip
                )
        page = addr >> _PAGE_SHIFT
        single_page = (addr & _PAGE_MASK) + size <= PAGE_SIZE
        if single_page:
            # Fused fast path: one dict probe against the page table,
            # permission verdict from the hoisted _NEEDED map, and the
            # kernel-region walk only on the deny path (kernel mode
            # merely widens what is allowed, never narrows it).
            perms = self.memory._perms.get(page)
            if perms is None:
                raise MemoryFault(
                    f"access to unmapped address 0x{page << _PAGE_SHIFT:08x}"
                )
            if not perms & _NEEDED[kind] and not self.kernel_mode:
                raise PermissionFault(
                    f"{kind.value} of 0x{addr:08x} denied by page permissions",
                    self.current_ip,
                )
        elif not self.kernel_mode:
            perms = self.memory.range_perms(addr, size)
            if not perms & _NEEDED[kind]:
                raise PermissionFault(
                    f"{kind.value} of 0x{addr:08x} denied by page permissions",
                    self.current_ip,
                )
        else:
            # Kernel code still faults on unmapped memory.
            self.memory.range_perms(addr, size)
        if self.config.redzones and kind is not AccessKind.FETCH and self._redzones:
            # Page-level short circuit: only scan byte-by-byte when
            # some touched page actually holds poison.
            redzone_pages = self._redzone_pages
            if single_page:
                if page not in redzone_pages:
                    return
            elif not any(
                ((addr + offset) & WORD_MASK) >> _PAGE_SHIFT in redzone_pages
                for offset in range(0, size + PAGE_SIZE - 1, PAGE_SIZE)
            ):
                return
            for offset in range(size):
                if (addr + offset) & WORD_MASK in self._redzones:
                    raise RedZoneFault(
                        f"{kind.value} of 0x{(addr + offset) & WORD_MASK:08x} "
                        "hit a red zone",
                        self.current_ip,
                    )

    # The word/byte accessors below fuse the permission check with the
    # page access: one page-table probe answers both "may I" and "give
    # me the buffer".  They handle only the common shape -- no PMA
    # modules, access inside one mapped page with the needed permission
    # bit, no poisoned byte under the access -- and fall back to the full
    # ``_check`` + Memory accessor pair (identical semantics, identical
    # fault text) for everything else, including every deny so kernel
    # mode and error messages stay in exactly one place.  Campaign
    # workloads are dominated by these accessors: the ASan-instrumented
    # fuzzing victims spend about half their instructions on stack
    # traffic that lands here.

    def read_bytes(self, addr: int, size: int) -> bytes:
        self._check(AccessKind.READ, addr, size)
        return self.memory.read_bytes(addr, size)

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(AccessKind.WRITE, addr, len(data))
        self.memory.write_bytes(addr, data)

    def read_word(self, addr: int) -> int:
        addr &= WORD_MASK
        if not self.pma.modules and (addr & _PAGE_MASK) <= PAGE_SIZE - 4:
            memory = self.memory
            page = addr >> _PAGE_SHIFT
            perms = memory._perms.get(page)
            if perms is not None and perms & PERM_R:
                rz = self._redzones
                if (not rz or page not in self._redzone_pages
                        or not self.config.redzones
                        or not (addr in rz or addr + 1 in rz
                                or addr + 2 in rz or addr + 3 in rz)):
                    return _U32.unpack_from(memory._pages[page],
                                            addr & _PAGE_MASK)[0]
        self._check(AccessKind.READ, addr, 4)
        return self.memory.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        addr &= WORD_MASK
        if not self.pma.modules and (addr & _PAGE_MASK) <= PAGE_SIZE - 4:
            memory = self.memory
            page = addr >> _PAGE_SHIFT
            perms = memory._perms.get(page)
            if perms is not None and perms & PERM_W:
                rz = self._redzones
                if (not rz or page not in self._redzone_pages
                        or not self.config.redzones
                        or not (addr in rz or addr + 1 in rz
                                or addr + 2 in rz or addr + 3 in rz)):
                    if page in memory._cow_pages:
                        memory._cow_break(page)
                    _U32.pack_into(memory._pages[page], addr & _PAGE_MASK,
                                   value & WORD_MASK)
                    if page in memory._watched_pages:
                        memory._notify_code_write(page)
                    return
        self._check(AccessKind.WRITE, addr, 4)
        self.memory.write_word(addr, value)

    def read_byte(self, addr: int) -> int:
        addr &= WORD_MASK
        if not self.pma.modules:
            memory = self.memory
            page = addr >> _PAGE_SHIFT
            perms = memory._perms.get(page)
            if perms is not None and perms & PERM_R:
                rz = self._redzones
                if (not rz or addr not in rz or not self.config.redzones):
                    return memory._pages[page][addr & _PAGE_MASK]
        self._check(AccessKind.READ, addr, 1)
        return self.memory.read_byte(addr)

    def write_byte(self, addr: int, value: int) -> None:
        addr &= WORD_MASK
        if not self.pma.modules:
            memory = self.memory
            page = addr >> _PAGE_SHIFT
            perms = memory._perms.get(page)
            if perms is not None and perms & PERM_W:
                rz = self._redzones
                if (not rz or addr not in rz or not self.config.redzones):
                    if page in memory._cow_pages:
                        memory._cow_break(page)
                    memory._pages[page][addr & _PAGE_MASK] = value & 0xFF
                    if page in memory._watched_pages:
                        memory._notify_code_write(page)
                    return
        self._check(AccessKind.WRITE, addr, 1)
        self.memory.write_byte(addr, value)

    # -- observed memory access -------------------------------------------------
    #
    # Event-emitting twins of the checked accessors above.  They are
    # installed as *instance* attributes by _sync_memory_accessors only
    # while some observer subscribes to read/write events; otherwise
    # the plain class methods run and the unobserved path pays nothing.

    def _read_bytes_observed(self, addr: int, size: int) -> bytes:
        self._check(AccessKind.READ, addr, size)
        data = self.memory.read_bytes(addr, size)
        hub = self._observers
        if hub is not None and hub.read:
            masked = addr & WORD_MASK
            for observer in hub.read:
                observer.on_read(self, masked, size, data)
        return data

    def _write_bytes_observed(self, addr: int, data: bytes) -> None:
        self._check(AccessKind.WRITE, addr, len(data))
        self.memory.write_bytes(addr, data)
        hub = self._observers
        if hub is not None and hub.write:
            masked = addr & WORD_MASK
            for observer in hub.write:
                observer.on_write(self, masked, len(data), data)

    def _read_word_observed(self, addr: int) -> int:
        self._check(AccessKind.READ, addr, 4)
        value = self.memory.read_word(addr)
        hub = self._observers
        if hub is not None and hub.read:
            masked = addr & WORD_MASK
            for observer in hub.read:
                observer.on_read(self, masked, 4, value)
        return value

    def _write_word_observed(self, addr: int, value: int) -> None:
        self._check(AccessKind.WRITE, addr, 4)
        self.memory.write_word(addr, value)
        hub = self._observers
        if hub is not None and hub.write:
            masked = addr & WORD_MASK
            for observer in hub.write:
                observer.on_write(self, masked, 4, value & WORD_MASK)

    def _read_byte_observed(self, addr: int) -> int:
        self._check(AccessKind.READ, addr, 1)
        value = self.memory.read_byte(addr)
        hub = self._observers
        if hub is not None and hub.read:
            masked = addr & WORD_MASK
            for observer in hub.read:
                observer.on_read(self, masked, 1, value)
        return value

    def _write_byte_observed(self, addr: int, value: int) -> None:
        self._check(AccessKind.WRITE, addr, 1)
        self.memory.write_byte(addr, value)
        hub = self._observers
        if hub is not None and hub.write:
            masked = addr & WORD_MASK
            for observer in hub.write:
                observer.on_write(self, masked, 1, value & 0xFF)

    # -- stack helpers ----------------------------------------------------------

    def push_word(self, value: int) -> None:
        self.cpu.sp = self.cpu.sp - 4
        self.write_word(self.cpu.sp, value)

    def pop_word(self) -> int:
        value = self.read_word(self.cpu.sp)
        self.cpu.sp = self.cpu.sp + 4
        return value

    def push_return_address(self, addr: int) -> None:
        """Used by ``call``: pushes to the architectural stack and, when
        enabled, to the protected shadow stack."""
        self.push_word(addr)
        if self.config.shadow_stack:
            self._shadow_stack.append(addr)

    def pop_return_address(self) -> int:
        """Used by ``ret``: pops the architectural return address and
        cross-checks it against the shadow stack when enabled."""
        addr = self.pop_word()
        if self.config.shadow_stack:
            if not self._shadow_stack:
                raise ShadowStackFault(
                    "ret with empty shadow stack", self.current_ip
                )
            expected = self._shadow_stack.pop()
            if expected != addr:
                raise ShadowStackFault(
                    f"return address 0x{addr:08x} disagrees with shadow "
                    f"stack (expected 0x{expected:08x})",
                    self.current_ip,
                )
        return addr

    # -- control-flow policy -------------------------------------------------------

    def check_indirect_target(self, target: int) -> None:
        """CFI policy on indirect calls/jumps.

        Coarse mode: the target must be a known function entry.
        Typed mode: the target must be a ``land`` landing pad whose
        tag equals the expected-type tag the call site placed in r7
        (the FineIBT/BTI-style refinement).
        """
        if not self.config.cfi:
            return
        if self.config.cfi_mode == "typed":
            from repro.isa.opcodes import LAND_OPCODE
            from repro.isa.registers import R7

            try:
                opcode = self.memory.read_byte(target)
                tag = self.memory.read_byte((target + 1) & WORD_MASK)
            except MachineFault:
                raise CFIFault(
                    f"indirect transfer to unmapped address 0x{target:08x}",
                    self.current_ip,
                ) from None
            expected = self.cpu.regs[R7] & 0xFF
            if opcode != LAND_OPCODE:
                raise CFIFault(
                    f"indirect transfer to 0x{target:08x}: no landing pad",
                    self.current_ip,
                )
            if tag != expected:
                raise CFIFault(
                    f"indirect transfer to 0x{target:08x}: landing-pad tag "
                    f"{tag} does not match expected type tag {expected}",
                    self.current_ip,
                )
            return
        if target not in self.indirect_targets:
            raise CFIFault(
                f"indirect transfer to non-function address 0x{target:08x}",
                self.current_ip,
            )

    def bounds_check(self, value: int, limit: int) -> None:
        """The ``chk`` instruction: fault if ``value >= limit`` (unsigned)."""
        if (value & WORD_MASK) >= (limit & WORD_MASK):
            raise BoundsFault(
                f"index {value} out of bounds (limit {limit})", self.current_ip
            )

    # -- red zones -----------------------------------------------------------------

    def poison(self, addr: int, size: int) -> None:
        redzones = self._redzones
        pages = self._redzone_pages
        for offset in range(size):
            byte = (addr + offset) & WORD_MASK
            if byte not in redzones:
                redzones.add(byte)
                page = byte >> _PAGE_SHIFT
                pages[page] = pages.get(page, 0) + 1

    def unpoison(self, addr: int, size: int) -> None:
        redzones = self._redzones
        pages = self._redzone_pages
        for offset in range(size):
            byte = (addr + offset) & WORD_MASK
            if byte in redzones:
                redzones.discard(byte)
                page = byte >> _PAGE_SHIFT
                count = pages.get(page, 0) - 1
                if count <= 0:
                    pages.pop(page, None)
                else:
                    pages[page] = count

    # -- syscalls -------------------------------------------------------------------

    def do_syscall(self, number: int) -> None:
        handler = HANDLERS.get(number)
        if handler is None:
            raise SyscallFault(f"invalid syscall number {number}", self.current_ip)
        for hook in self.syscall_hooks:
            hook(self, number)
        hub = self._observers
        if hub is not None and hub.syscall:
            for observer in hub.syscall:
                observer.on_syscall(self, number)
        handler(self)

    # -- termination -------------------------------------------------------------------

    def halt(self) -> None:
        self._status = RunStatus.HALTED

    def exit(self, code: int) -> None:
        self._status = RunStatus.EXITED
        self._exit_code = code

    # -- decode cache ------------------------------------------------------------------

    def flush_decode_cache(self) -> None:
        """Drop every cached decoded instruction and translated block.

        Called on any permission change (``map_region``/``set_perms``)
        and on PMA module-table changes; cheap because these events are
        rare compared to instruction fetches.
        """
        dropped = len(self._decode_cache) + len(self._block_cache)
        self._decode_cache.clear()
        self._decode_pages.clear()
        if self._block_cache:
            self._block_cache.clear()
            self._block_pages.clear()
            self._block_epoch += 1
        registry = self._chain_registry
        if registry:
            for cells in registry.values():
                for cell in cells:
                    cell[0] = None
            registry.clear()
        if self._trace_cache:
            self._trace_cache.clear()
            self._trace_pages.clear()
            self._block_epoch += 1
        self._trace_counts.clear()
        self._trace_failed.clear()
        self.memory.unwatch_all()
        hub = self._observers
        if hub is not None and hub.decode_invalidate:
            for observer in hub.decode_invalidate:
                observer.on_decode_invalidate(self, None, dropped)

    def _invalidate_code_page(self, page: int) -> None:
        """A watched (executable, cached) page was written: kill its
        cached decodes and translated blocks so the newly written
        bytes are what executes."""
        dropped = 0
        addrs = self._decode_pages.pop(page, None)
        if addrs:
            cache = self._decode_cache
            for addr in addrs:
                cache.pop(addr, None)
            dropped += len(addrs)
        heads = self._block_pages.pop(page, None)
        if heads:
            for head in heads:
                self._drop_block(head)
            dropped += len(heads)
            self._block_epoch += 1
        trace_heads = self._trace_pages.pop(page, None)
        if trace_heads:
            traces = self._trace_cache
            pages_index = self._trace_pages
            for head in trace_heads:
                trace = traces.pop(head, None)
                if trace is None:
                    continue
                # Multi-page traces are indexed under every page they
                # touch; scrub the other pages' entries too.
                for other in trace.pages:
                    if other != page:
                        siblings = pages_index.get(other)
                        if siblings is not None:
                            try:
                                siblings.remove(head)
                            except ValueError:
                                pass
            dropped += len(trace_heads)
            self._block_epoch += 1
        counts = self._trace_counts
        if counts:
            for head in [h for h in counts if h >> 12 == page]:
                del counts[head]
        failed = self._trace_failed
        if failed:
            for head in [h for h in failed if h >> 12 == page]:
                failed.discard(head)
        if dropped:
            hub = self._observers
            if hub is not None and hub.decode_invalidate:
                for observer in hub.decode_invalidate:
                    observer.on_decode_invalidate(self, page, dropped)

    def _drop_block(self, head: int) -> None:
        """Remove one compiled block and sever every chain through it.

        Cells *inside* the dead block are nulled and deregistered (so
        the registry does not grow across campaign restores), and cells
        in *other* blocks pointing at ``head`` are nulled so no stale
        closure is ever handed back to the dispatcher.
        """
        block = self._block_cache.pop(head, None)
        registry = self._chain_registry
        if block is not None and block.exits:
            for target, cell in block.exits:
                cell[0] = None
                cells = registry.get(target)
                if cells is not None:
                    try:
                        cells.remove(cell)
                    except ValueError:
                        pass
                    if not cells:
                        del registry[target]
        cells = registry.get(head)
        if cells is not None:
            for cell in cells:
                cell[0] = None

    def block_cache_stats(self) -> dict[str, int]:
        """Counters for tests and diagnostics (not a stable API)."""
        return {
            "blocks": len(self._block_cache),
            "pages": len(self._block_pages),
            "epoch": self._block_epoch,
        }

    def trace_cache_stats(self) -> dict[str, int]:
        """Tier-2 trace counters for tests and diagnostics."""
        return {
            "traces": len(self._trace_cache),
            "pages": len(self._trace_pages),
            "failed": len(self._trace_failed),
            "chained": sum(len(c) for c in self._chain_registry.values()),
        }

    # -- snapshot / restore ------------------------------------------------------------

    def snapshot(self) -> MachineSnapshot:
        """Freeze the complete machine state as a campaign reset point.

        The page table freezes copy-on-write (no bytes are copied
        until someone writes), so taking a snapshot is O(pages) set
        bookkeeping; registers, flags, device cursors, the RNG stream
        and PMA state are tiny and copied outright.  Restoring the
        result with :meth:`restore` rewinds the machine to this exact
        point without recompiling or reloading anything.
        """
        cpu = self.cpu
        snap = MachineSnapshot(
            memory=self.memory.snapshot(),
            regs=tuple(cpu.regs),
            ip=cpu.ip,
            zf=cpu.zf,
            lt=cpu.lt,
            ult=cpu.ult,
            current_ip=self.current_ip,
            current_module=self.current_module,
            kernel_regions=tuple(self.kernel_regions),
            indirect_targets=frozenset(self.indirect_targets),
            redzones=frozenset(self._redzones),
            shadow_stack=tuple(self._shadow_stack),
            instructions_executed=self.instructions_executed,
            status=self._status,
            exit_code=self._exit_code,
            input_state=self.input.save_state(),
            output_state=self.output.save_state(),
            shell_state=self.shell.save_state(),
            rng_state=self.rng.save_state(),
            pma_state=self.pma.save_state(),
        )
        hub = self._observers
        if hub is not None and hub.snapshot_taken:
            for observer in hub.snapshot_taken:
                observer.on_snapshot_taken(self, snap.pages)
        return snap

    def restore(self, snap: MachineSnapshot) -> int:
        """Rewind the machine to ``snap``; returns the dirty-page count.

        O(pages written since the snapshot): only dirty pages are
        swapped back to their frozen contents.  Decoded-instruction and
        translated-block caches survive for every page that stayed
        clean -- trial N+1 starts with trial N's hot superblocks --
        while entries on rewound pages are invalidated through the same
        per-page machinery a guest write uses (a permission or
        module-table difference falls back to the wholesale flush).
        Devices (input cursor, output buffer, shell flag, RNG stream),
        PMA counters and CPU state all return to their snapshot values,
        so a restored trial is indistinguishable from a fresh machine
        that executed the same prefix.  Note the PMA monotonic counters
        rewind too: snapshot/restore deliberately models the *rollback
        attack* a real platform's non-volatile counters exist to
        resist (Section IV-C).
        """
        changed, perms_changed = self.memory.restore(snap.memory)
        pma_changed = self.pma.restore_state(snap.pma_state)
        if perms_changed:
            self.flush_decode_cache()
        elif not pma_changed:
            # The common campaign path: invalidate only what the
            # rewind actually changed, keeping clean pages' decodes
            # and superblocks warm.  (A PMA change already flushed
            # everything through the module-table listener.)
            watched = self.memory._watched_pages
            for page in changed:
                watched.discard(page)
                self.memory._update_fast_page(page)
                self._invalidate_code_page(page)
        cpu = self.cpu
        cpu.regs[:] = snap.regs
        cpu.ip = snap.ip
        cpu.zf = snap.zf
        cpu.lt = snap.lt
        cpu.ult = snap.ult
        self.current_ip = snap.current_ip
        self.current_module = snap.current_module
        self.kernel_regions = list(snap.kernel_regions)
        self.indirect_targets = set(snap.indirect_targets)
        self._redzones = set(snap.redzones)
        redzone_pages: dict[int, int] = {}
        for byte in snap.redzones:
            page = byte >> _PAGE_SHIFT
            redzone_pages[page] = redzone_pages.get(page, 0) + 1
        self._redzone_pages = redzone_pages
        self._shadow_stack = list(snap.shadow_stack)
        self.instructions_executed = snap.instructions_executed
        self._status = snap.status
        self._exit_code = snap.exit_code
        self.input.restore_state(snap.input_state)
        self.output.restore_state(snap.output_state)
        self.shell.restore_state(snap.shell_state)
        self.rng.restore_state(snap.rng_state)
        hub = self._observers
        if hub is not None and hub.snapshot_restored:
            for observer in hub.snapshot_restored:
                observer.on_snapshot_restored(self, len(changed))
        return len(changed)

    # -- execution ---------------------------------------------------------------------

    def fetch_instruction(self, ip: int) -> Instruction:
        """Fetch and decode the instruction at ``ip``.

        Performs the PMA entry-point check (updating the current-module
        tracking) and the page execute-permission check.
        """
        if self.pma.modules:
            self.current_module = self.pma.check_fetch(self.current_module, ip)
        entry = self._decode_cache.get(ip)
        if entry is None:
            entry = self._fetch_slow(ip)
        return entry[0]

    def _fetch_slow(self, ip: int) -> tuple[Instruction, int]:
        """Decode-cache miss: full checked fetch + decode, then cache.

        An address is cached only when its page carries PERM_X (so a
        cache hit implies the fetch would pass the permission check for
        kernel and non-kernel code alike) and the encoding does not
        cross a page boundary (so one page watch covers all its bytes).
        """
        hub = self._observers
        if hub is not None and hub.decode_miss:
            for observer in hub.decode_miss:
                observer.on_decode_miss(self, ip)
        self._check(AccessKind.FETCH, ip, 1)
        opcode = self.memory.read_byte(ip)
        spec = OPCODE_SPECS[opcode]
        if spec is None:
            raise InvalidInstructionFault(f"invalid opcode 0x{opcode:02x}", ip)
        length = OPCODE_LENGTHS[opcode]
        if length > 1:
            self._check(AccessKind.FETCH, ip + 1, length - 1)
        raw = self.memory.read_bytes(ip, length)
        try:
            insn, _ = decode(raw)
        except DecodeError as exc:
            raise InvalidInstructionFault(str(exc), ip) from exc
        entry = (insn, length)
        if self.config.decode_cache:
            masked = ip & WORD_MASK
            page = masked >> _PAGE_SHIFT
            if (masked & _PAGE_MASK) + length <= PAGE_SIZE and (
                self.memory.page_perms(page) & PERM_X
            ):
                self._decode_cache[masked] = entry
                self._decode_pages.setdefault(page, []).append(masked)
                self.memory.watch_page(page)
        return entry

    def step(self) -> None:
        """Fetch, decode and execute a single instruction.

        The one ``self._observers`` check below is the entire cost the
        observability layer (repro.observe) adds to an unobserved
        machine; everything else about this loop is the PR 1 fast
        path, unchanged.
        """
        if self._observers is not None:
            return self._step_observed()
        cpu = self.cpu
        ip = cpu.ip
        self.current_ip = ip
        if self.pma.modules:
            self.current_module = self.pma.check_fetch(self.current_module, ip)
        entry = self._decode_cache.get(ip)
        if entry is None:
            entry = self._fetch_slow(ip)
        insn, length = entry
        next_ip = (ip + length) & WORD_MASK
        cpu.ip = next_ip
        cpu.execute(insn, self, next_ip)
        self.instructions_executed += 1

    def _step_observed(self) -> None:
        """One instruction with event emission (observers attached).

        Mirrors :meth:`step` exactly -- the differential suite
        (tests/test_observe_differential.py) holds both paths to
        byte-identical behaviour.  Every added branch is behind a
        subscriber-list check, so event kinds nobody subscribed to
        stay free even in observed mode.  Control transfers are
        classified *after* execution by opcode byte, which keeps the
        cpu dispatch table untouched and naturally records hijacked
        targets (the observed ``ret`` target is wherever the possibly
        clobbered return slot pointed).
        """
        hub = self._observers
        cpu = self.cpu
        ip = cpu.ip
        self.current_ip = ip
        try:
            if self.pma.modules:
                module_before = self.current_module
                module = self.pma.check_fetch(module_before, ip)
                self.current_module = module
                if module is not module_before:
                    if module_before is not None and hub.pma_exit:
                        for observer in hub.pma_exit:
                            observer.on_pma_exit(self, module_before, ip)
                    if module is not None and hub.pma_enter:
                        for observer in hub.pma_enter:
                            observer.on_pma_enter(self, module, ip)
            entry = self._decode_cache.get(ip)
            if entry is None:
                entry = self._fetch_slow(ip)
            insn, length = entry
            next_ip = (ip + length) & WORD_MASK
            cpu.ip = next_ip
            cpu.execute(insn, self, next_ip)
        except MachineFault as fault:
            if hub.fault:
                for observer in hub.fault:
                    observer.on_fault(self, fault, ip)
            raise
        self.instructions_executed += 1
        if hub.insn:
            for observer in hub.insn:
                observer.on_instruction(self, ip, insn, length)
        opcode = insn.opcode
        if _OP_JMP_ABS <= opcode <= _OP_RET:
            new_ip = cpu.ip
            if opcode >= _OP_CALL_ABS:
                if opcode == _OP_RET:
                    if hub.ret:
                        for observer in hub.ret:
                            observer.on_ret(self, ip, new_ip)
                elif hub.call:
                    for observer in hub.call:
                        observer.on_call(self, ip, new_ip, next_ip,
                                         opcode == _OP_CALL_REG)
            elif opcode <= _OP_JMP_REG:
                if hub.jump:
                    for observer in hub.jump:
                        observer.on_jump(self, ip, new_ip,
                                         opcode == _OP_JMP_REG)
            elif hub.branch:
                target = insn.operands[0] & WORD_MASK
                for observer in hub.branch:
                    observer.on_branch(self, ip, target, new_ip != next_ip)

    def run(self, max_instructions: int = 2_000_000) -> RunResult:
        """Run until exit, halt, fault, or the instruction budget.

        Never raises on machine faults -- they are part of the
        experiment outcome and are returned in the result.

        Unobserved machines with ``config.block_cache`` dispatch
        block-at-a-time through translated superblocks, as do machines
        whose only observers are *dispatch-transparent* (their event
        emission is compiled into the blocks; see
        ``Observer.dispatch_transparent``).  Any other observed
        machine (and ``block_cache=False``) runs the per-instruction
        loop, whose behaviour the differential suites hold the block
        path to exactly.
        """
        self._status = None
        start_count = self.instructions_executed
        started = perf_counter()
        try:
            if self.config.block_cache and self._observers is self._blocks_hub:
                self._run_blocks(max_instructions, start_count)
            else:
                self._run_steps(max_instructions, start_count)
        except MachineFault as fault:
            return self._result(RunStatus.FAULT, fault, start_count, started)
        return self._result(self._status, None, start_count, started)

    def _run_steps(self, max_instructions: int, start_count: int) -> None:
        """The per-instruction run loop (observed machines, and
        ``block_cache=False``)."""
        step = self.step
        while self._status is None:
            if self.instructions_executed - start_count >= max_instructions:
                limit = ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions", self.cpu.ip
                )
                hub = self._observers
                if hub is not None and hub.fault:
                    for observer in hub.fault:
                        observer.on_fault(self, limit, self.cpu.ip)
                raise limit
            step()

    def _run_blocks(self, max_instructions: int, start_count: int) -> None:
        """Block-at-a-time dispatch through the translated-block cache.

        Falls back to :meth:`step` for addresses that cannot be
        translated (non-executable page, undecodable bytes) so faults
        reproduce exactly, and for blocks longer than the remaining
        instruction budget so :class:`ExecutionLimitExceeded` fires at
        the identical instruction count and IP as the interpreter.
        Re-checks the observer hub each dispatch: a syscall handler or
        hook attaching one mid-run demotes the rest of the run to the
        per-instruction loop -- unless the hub is dispatch-transparent,
        in which case blocks are recompiled with its event emission
        baked in and dispatch continues here.

        Two tier-2 layers ride on top of plain block dispatch (see
        DESIGN.md "Trace JIT & decoded IR"):

        * **Chaining** -- ``entry.fn`` returns the successor's
          :class:`CompiledBlock` when a static exit's chain cell is
          filled, so hot block-to-block transfers skip the cache probe
          entirely (``entry`` loops straight back into dispatch).
        * **Hot traces** -- block-head execution counts past
          ``config.trace_hot_threshold`` trigger the trace recorder;
          an installed trace runs whole loop iterations inside one
          closure and only returns here on a guard exit.  A trace
          returning 1 means "a guard failed at the trace head itself";
          ``skip`` makes the very next dispatch take the block path
          once so a permanently failing guard cannot livelock.
        """
        cpu = self.cpu
        blocks = self._block_cache
        traces = self._trace_cache
        counts = self._trace_counts
        failed = self._trace_failed
        config = self.config
        jit = config.trace_jit
        threshold = config.trace_hot_threshold
        entry = None
        skip = None
        while self._status is None:
            if self._observers is not self._blocks_hub or not config.block_cache:
                return self._run_steps(max_instructions, start_count)
            # Traces carry no observer emission, so the trace tier only
            # engages on genuinely unobserved machines; with a
            # transparent hub attached, hot loops run as (event-
            # emitting) blocks.  Re-derived each iteration because a
            # syscall hook may attach/detach observers mid-run.
            tracing = jit and self._blocks_hub is None
            remaining = max_instructions - (
                self.instructions_executed - start_count
            )
            if remaining <= 0:
                limit = ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions", cpu.ip
                )
                hub = self._observers
                if hub is not None and hub.fault:
                    for observer in hub.fault:
                        observer.on_fault(self, limit, cpu.ip)
                raise limit
            if entry is None:
                ip = cpu.ip
                if tracing:
                    trace = traces.get(ip)
                    if (
                        trace is not None
                        and trace is not skip
                        and trace.count <= remaining
                    ):
                        skip = trace if trace.fn(self, cpu, remaining) else None
                        continue
                    skip = None
                entry = blocks.get(ip)
                if entry is None:
                    entry = self._translate_block(ip)
                    if entry is None:
                        self.step()
                        continue
            if entry.count > remaining:
                self.step()
                entry = None
                continue
            if tracing:
                head = entry.head
                count = counts.get(head, 0) + 1
                counts[head] = count
                if (
                    count >= threshold
                    and head not in failed
                    and head not in traces
                ):
                    entry = None
                    self._record_trace(head, max_instructions, start_count)
                    continue
            entry = entry.fn(self, cpu)

    def _translate_block(self, head: int) -> CompiledBlock | None:
        """Translate and cache the block at ``head`` (None if the
        interpreter must handle that address).

        Wires up chaining both ways: the new block's static-exit cells
        are filled for successors already compiled, and every compiled
        predecessor waiting on ``head`` gets its cell filled -- unless
        a trace owns the address, which must keep first claim on
        dispatch (chained predecessors would bypass it)."""
        block = compile_block(self, head)
        if block is None:
            return None
        blocks = self._block_cache
        traces = self._trace_cache
        registry = self._chain_registry
        blocks[block.head] = block
        self._block_pages.setdefault(block.page, []).append(block.head)
        self.memory.watch_page(block.page)
        for target, cell in block.exits:
            if target not in traces:
                cell[0] = blocks.get(target)
            registry.setdefault(target, []).append(cell)
        if block.head not in traces:
            for cell in registry.get(block.head, ()):
                cell[0] = block
        return block

    def _record_trace(self, head: int, max_instructions: int,
                      start_count: int) -> None:
        """Record and install the hot trace at ``head`` (or blacklist
        it so a head that will not trace is never retried).

        PMA module boundaries and red zones take the conservative road:
        their per-instruction bookkeeping (boundary checks, poison
        scans) is not replicated in trace codegen, so those
        configurations simply never trace."""
        from repro.machine.trace import record_and_compile

        if self._observers is not None:
            # Unreachable while dispatch re-derives ``tracing`` per
            # iteration; kept as a safety net.  Not blacklisted: the
            # head may trace fine once the observers detach.
            return
        if self.pma.modules or self.config.redzones:
            self._trace_failed.add(head)
            return
        trace = record_and_compile(self, head, max_instructions, start_count)
        if trace is None:
            self._trace_failed.add(head)
            return
        self._trace_cache[head] = trace
        pages_index = self._trace_pages
        for page in trace.pages:
            pages_index.setdefault(page, []).append(head)
            self.memory.watch_page(page)
        # The trace owns this address now: drop the block so dispatch
        # cannot race past the trace, and sever chains aimed at it.
        self._drop_block(head)
        for cell in self._chain_registry.get(head, ()):
            cell[0] = None

    def _result(
        self,
        status: RunStatus,
        fault: MachineFault | None,
        start_count: int,
        started: float,
    ) -> RunResult:
        return RunResult(
            status=status,
            exit_code=self._exit_code,
            fault=fault,
            instructions=self.instructions_executed - start_count,
            output=self.output.getvalue(),
            shell_spawned=self.shell.spawned,
            duration_seconds=perf_counter() - started,
        )
