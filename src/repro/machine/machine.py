"""The VN32 machine: CPU + memory + devices + protection machinery.

:class:`Machine` is the facade the rest of the package programs
against.  It composes, in checking order, every runtime protection the
paper discusses:

1. **Protected-module access control** (Section IV-A) -- consulted
   first and for *every* access, including kernel-privileged ones;
2. **Page permissions** (DEP, Section III-C1) -- skipped for
   kernel-privileged code, which is exactly why DEP alone is useless
   against the machine-code attacker;
3. **Red zones** (ASan-style testing checks, Section III-C2);
4. **Shadow stack** and **coarse CFI** on the control-transfer path.

All of these are *disabled by default*: a bare machine is the
historical unprotected platform that the Section III attacks assume.
The loader switches them on according to a
:class:`~repro.mitigations.config.MitigationConfig`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import (
    BoundsFault,
    CFIFault,
    DecodeError,
    ExecutionLimitExceeded,
    InvalidInstructionFault,
    MachineFault,
    PermissionFault,
    RedZoneFault,
    ShadowStackFault,
    SyscallFault,
)
from repro.isa.encoding import decode
from repro.isa.instructions import Instruction, WORD_MASK
from repro.isa.opcodes import BY_OPCODE, FORMAT_LENGTHS
from repro.machine.access import AccessKind
from repro.machine.cpu import CPU
from repro.machine.devices import InputChannel, OutputChannel, RandomDevice, ShellDevice
from repro.machine.memory import Memory, PERM_R, PERM_W, PERM_X
from repro.machine.syscalls import HANDLERS
from repro.pma.module import PMAController


class RunStatus(enum.Enum):
    """How a :meth:`Machine.run` ended."""

    EXITED = "exited"
    HALTED = "halted"
    FAULT = "fault"
    LIMIT = "limit"


@dataclass
class RunResult:
    """Outcome of one :meth:`Machine.run` call."""

    status: RunStatus
    exit_code: int | None = None
    fault: MachineFault | None = None
    instructions: int = 0
    output: bytes = b""
    shell_spawned: bool = False

    @property
    def crashed(self) -> bool:
        """True if execution ended in a fault (any kind)."""
        return self.status is RunStatus.FAULT

    def fault_name(self) -> str:
        """Short class name of the fault, or '-' if none."""
        return type(self.fault).__name__ if self.fault else "-"


@dataclass
class MachineConfig:
    """Runtime-protection switches for one machine instance."""

    #: Enforce the shadow stack on call/ret.
    shadow_stack: bool = False
    #: Enforce CFI on indirect calls/jumps.
    cfi: bool = False
    #: CFI precision: "coarse" admits any function entry; "typed"
    #: requires a ``land`` landing pad whose tag matches the call
    #: site's expected type tag (carried in r7 by convention).
    cfi_mode: str = "coarse"
    #: Enforce ASan-style red zones on data accesses.
    redzones: bool = False
    #: Record an execution trace (addresses + instructions).
    trace: bool = False
    #: Maximum trace entries retained.
    trace_limit: int = 100_000
    #: Seed for the machine's entropy source.
    rng_seed: int = 0


class Machine:
    """One simulated VN32 computer."""

    def __init__(
        self,
        config: MachineConfig | None = None,
        pma: PMAController | None = None,
    ) -> None:
        self.config = config or MachineConfig()
        self.memory = Memory()
        self.cpu = CPU()
        self.input = InputChannel()
        self.output = OutputChannel()
        self.shell = ShellDevice()
        self.rng = RandomDevice(self.config.rng_seed)
        self.pma = pma or PMAController()
        #: The protected module the IP is currently inside (or None).
        self.current_module = None
        #: Address of the instruction currently executing.
        self.current_ip = 0
        #: Ranges of kernel-privileged code ``(start, end)``; code
        #: fetched from these bypasses page permissions (but not PMA).
        self.kernel_regions: list[tuple[int, int]] = []
        #: Valid targets for indirect calls/jumps under CFI.
        self.indirect_targets: set[int] = set()
        #: Poisoned byte addresses (red zones).
        self._redzones: set[int] = set()
        self._shadow_stack: list[int] = []
        #: Observation hooks ``f(machine, syscall_number)`` called
        #: before each syscall -- used by tests and by the attacker's
        #: local "debugger" when studying a binary.
        self.syscall_hooks: list = []
        self.trace: list[tuple[int, Instruction]] = []
        self.instructions_executed = 0
        self._status: RunStatus | None = None
        self._exit_code: int | None = None

    # -- privilege ----------------------------------------------------------

    def add_kernel_region(self, start: int, end: int) -> None:
        """Mark ``[start, end)`` as kernel-privileged code."""
        self.kernel_regions.append((start, end))

    def in_kernel(self, ip: int) -> bool:
        """True if ``ip`` lies in a kernel-privileged region."""
        return any(start <= ip < end for start, end in self.kernel_regions)

    @property
    def kernel_mode(self) -> bool:
        """True if the currently executing instruction is kernel code."""
        return self.in_kernel(self.current_ip)

    # -- checked memory access ------------------------------------------------

    def _check(self, kind: AccessKind, addr: int, size: int) -> None:
        addr &= WORD_MASK
        if self.pma.modules:
            if kind is not AccessKind.FETCH:
                self.pma.check_data_access(
                    self.current_module, kind, addr, size, self.current_ip
                )
        if not self.kernel_mode:
            perms = self.memory.range_perms(addr, size)
            needed = {
                AccessKind.FETCH: PERM_X,
                AccessKind.READ: PERM_R,
                AccessKind.WRITE: PERM_W,
            }[kind]
            if not perms & needed:
                raise PermissionFault(
                    f"{kind.value} of 0x{addr:08x} denied by page permissions",
                    self.current_ip,
                )
        else:
            # Kernel code still faults on unmapped memory.
            self.memory.range_perms(addr, size)
        if self.config.redzones and kind is not AccessKind.FETCH and self._redzones:
            for offset in range(size):
                if (addr + offset) & WORD_MASK in self._redzones:
                    raise RedZoneFault(
                        f"{kind.value} of 0x{(addr + offset) & WORD_MASK:08x} "
                        "hit a red zone",
                        self.current_ip,
                    )

    def read_bytes(self, addr: int, size: int) -> bytes:
        self._check(AccessKind.READ, addr, size)
        return self.memory.read_bytes(addr, size)

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check(AccessKind.WRITE, addr, len(data))
        self.memory.write_bytes(addr, data)

    def read_word(self, addr: int) -> int:
        self._check(AccessKind.READ, addr, 4)
        return self.memory.read_word(addr)

    def write_word(self, addr: int, value: int) -> None:
        self._check(AccessKind.WRITE, addr, 4)
        self.memory.write_word(addr, value)

    def read_byte(self, addr: int) -> int:
        self._check(AccessKind.READ, addr, 1)
        return self.memory.read_byte(addr)

    def write_byte(self, addr: int, value: int) -> None:
        self._check(AccessKind.WRITE, addr, 1)
        self.memory.write_byte(addr, value)

    # -- stack helpers ----------------------------------------------------------

    def push_word(self, value: int) -> None:
        self.cpu.sp = self.cpu.sp - 4
        self.write_word(self.cpu.sp, value)

    def pop_word(self) -> int:
        value = self.read_word(self.cpu.sp)
        self.cpu.sp = self.cpu.sp + 4
        return value

    def push_return_address(self, addr: int) -> None:
        """Used by ``call``: pushes to the architectural stack and, when
        enabled, to the protected shadow stack."""
        self.push_word(addr)
        if self.config.shadow_stack:
            self._shadow_stack.append(addr)

    def pop_return_address(self) -> int:
        """Used by ``ret``: pops the architectural return address and
        cross-checks it against the shadow stack when enabled."""
        addr = self.pop_word()
        if self.config.shadow_stack:
            if not self._shadow_stack:
                raise ShadowStackFault(
                    "ret with empty shadow stack", self.current_ip
                )
            expected = self._shadow_stack.pop()
            if expected != addr:
                raise ShadowStackFault(
                    f"return address 0x{addr:08x} disagrees with shadow "
                    f"stack (expected 0x{expected:08x})",
                    self.current_ip,
                )
        return addr

    # -- control-flow policy -------------------------------------------------------

    def check_indirect_target(self, target: int) -> None:
        """CFI policy on indirect calls/jumps.

        Coarse mode: the target must be a known function entry.
        Typed mode: the target must be a ``land`` landing pad whose
        tag equals the expected-type tag the call site placed in r7
        (the FineIBT/BTI-style refinement).
        """
        if not self.config.cfi:
            return
        if self.config.cfi_mode == "typed":
            from repro.isa.opcodes import LAND_OPCODE
            from repro.isa.registers import R7

            try:
                opcode = self.memory.read_byte(target)
                tag = self.memory.read_byte((target + 1) & WORD_MASK)
            except MachineFault:
                raise CFIFault(
                    f"indirect transfer to unmapped address 0x{target:08x}",
                    self.current_ip,
                ) from None
            expected = self.cpu.regs[R7] & 0xFF
            if opcode != LAND_OPCODE:
                raise CFIFault(
                    f"indirect transfer to 0x{target:08x}: no landing pad",
                    self.current_ip,
                )
            if tag != expected:
                raise CFIFault(
                    f"indirect transfer to 0x{target:08x}: landing-pad tag "
                    f"{tag} does not match expected type tag {expected}",
                    self.current_ip,
                )
            return
        if target not in self.indirect_targets:
            raise CFIFault(
                f"indirect transfer to non-function address 0x{target:08x}",
                self.current_ip,
            )

    def bounds_check(self, value: int, limit: int) -> None:
        """The ``chk`` instruction: fault if ``value >= limit`` (unsigned)."""
        if (value & WORD_MASK) >= (limit & WORD_MASK):
            raise BoundsFault(
                f"index {value} out of bounds (limit {limit})", self.current_ip
            )

    # -- red zones -----------------------------------------------------------------

    def poison(self, addr: int, size: int) -> None:
        for offset in range(size):
            self._redzones.add((addr + offset) & WORD_MASK)

    def unpoison(self, addr: int, size: int) -> None:
        for offset in range(size):
            self._redzones.discard((addr + offset) & WORD_MASK)

    # -- syscalls -------------------------------------------------------------------

    def do_syscall(self, number: int) -> None:
        handler = HANDLERS.get(number)
        if handler is None:
            raise SyscallFault(f"invalid syscall number {number}", self.current_ip)
        for hook in self.syscall_hooks:
            hook(self, number)
        handler(self)

    # -- termination -------------------------------------------------------------------

    def halt(self) -> None:
        self._status = RunStatus.HALTED

    def exit(self, code: int) -> None:
        self._status = RunStatus.EXITED
        self._exit_code = code

    # -- execution ---------------------------------------------------------------------

    def fetch_instruction(self, ip: int) -> Instruction:
        """Fetch and decode the instruction at ``ip``.

        Performs the PMA entry-point check (updating the current-module
        tracking) and the page execute-permission check.
        """
        if self.pma.modules:
            self.current_module = self.pma.check_fetch(self.current_module, ip)
        self._check(AccessKind.FETCH, ip, 1)
        opcode = self.memory.read_byte(ip)
        spec = BY_OPCODE.get(opcode)
        if spec is None:
            raise InvalidInstructionFault(f"invalid opcode 0x{opcode:02x}", ip)
        length = FORMAT_LENGTHS[spec.fmt]
        if length > 1:
            self._check(AccessKind.FETCH, ip + 1, length - 1)
        raw = self.memory.read_bytes(ip, length)
        try:
            insn, _ = decode(raw)
        except DecodeError as exc:
            raise InvalidInstructionFault(str(exc), ip) from exc
        return insn

    def step(self) -> None:
        """Fetch, decode and execute a single instruction."""
        ip = self.cpu.ip
        self.current_ip = ip
        insn = self.fetch_instruction(ip)
        if self.config.trace and len(self.trace) < self.config.trace_limit:
            self.trace.append((ip, insn))
        self.cpu.ip = (ip + insn.length) & WORD_MASK
        self.cpu.execute(insn, self, self.cpu.ip)
        self.instructions_executed += 1

    def run(self, max_instructions: int = 2_000_000) -> RunResult:
        """Run until exit, halt, fault, or the instruction budget.

        Never raises on machine faults -- they are part of the
        experiment outcome and are returned in the result.
        """
        self._status = None
        start_count = self.instructions_executed
        try:
            while self._status is None:
                if self.instructions_executed - start_count >= max_instructions:
                    raise ExecutionLimitExceeded(
                        f"exceeded {max_instructions} instructions", self.cpu.ip
                    )
                self.step()
        except MachineFault as fault:
            return self._result(RunStatus.FAULT, fault, start_count)
        return self._result(self._status, None, start_count)

    def _result(
        self, status: RunStatus, fault: MachineFault | None, start_count: int
    ) -> RunResult:
        return RunResult(
            status=status,
            exit_code=self._exit_code,
            fault=fault,
            instructions=self.instructions_executed - start_count,
            output=self.output.getvalue(),
            shell_spawned=self.shell.spawned,
        )
