"""Platform services (``sys n``) of the VN32 machine.

These model the thin OS/hardware interface the paper's programs use:
``read``/``write`` on the I/O channels, ``exit``, and the simulated
"dangerous" services (``spawn_shell``) plus the protected-module
hardware services of Section IV-C (attest, seal/unseal, monotonic
counter).

All memory touched on behalf of a syscall goes through the machine's
*checked* accessors with the privileges of the code that invoked the
syscall.  This is what makes ``read(fd, buf, 32)`` into a 16-byte
buffer the faithful spatial-vulnerability primitive of Section III-A:
the service writes wherever the pointer says, but cannot write into a
protected module on behalf of outside code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Final

from repro.errors import CanaryFault, SealingError, SyscallFault
from repro.isa.instructions import WORD_MASK, to_signed
from repro.isa.registers import R0, R1, R2, R3

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine

#: Syscall numbers.
SYS_READ: Final[int] = 1
SYS_WRITE: Final[int] = 2
SYS_EXIT: Final[int] = 3
SYS_SPAWN_SHELL: Final[int] = 4
SYS_RAND: Final[int] = 5
SYS_PRINT_INT: Final[int] = 6
SYS_ATTEST: Final[int] = 7
SYS_SEAL: Final[int] = 8
SYS_UNSEAL: Final[int] = 9
SYS_CTR_READ: Final[int] = 10
SYS_CTR_INCR: Final[int] = 11
SYS_POISON: Final[int] = 12
SYS_UNPOISON: Final[int] = 13
SYS_CANARY_FAIL: Final[int] = 14

#: Largest single I/O transfer the platform will honour (an EFAULT-ish
#: sanity cap so attacker-controlled lengths cannot stall the
#: simulator; real kernels bound copies similarly).
MAX_IO_SIZE: Final[int] = 1 << 20

#: Value returned in R0 to signal failure from services that return
#: lengths (all real lengths are far below 2**32-1).
SYS_ERROR: Final[int] = 0xFFFFFFFF


def _sys_read(machine: "Machine") -> None:
    """``read(fd=r0, buf=r1, n=r2) -> r0 = bytes_read``.

    Copies up to ``n`` bytes from the input channel to ``buf``.  No
    bounds information exists at this level -- if ``n`` exceeds the
    buffer the program allocated, adjacent memory is overwritten.
    """
    buf = machine.cpu.regs[R1]
    size = min(machine.cpu.regs[R2], MAX_IO_SIZE)
    data = machine.input.read(size)
    if data:
        machine.write_bytes(buf, data)
    machine.cpu.regs[R0] = len(data)


def _sys_write(machine: "Machine") -> None:
    """``write(fd=r0, buf=r1, n=r2) -> r0 = n``.

    Reads ``n`` bytes at ``buf`` and emits them on the output channel.
    An attacker-controlled ``n`` larger than the buffer leaks adjacent
    memory (the Heartbleed pattern of Section III-B).
    """
    buf = machine.cpu.regs[R1]
    size = min(machine.cpu.regs[R2], MAX_IO_SIZE)
    if size:
        data = machine.read_bytes(buf, size)
        machine.output.write(data)
    machine.cpu.regs[R0] = size


def _sys_exit(machine: "Machine") -> None:
    """``exit(code=r0)`` -- orderly termination."""
    machine.exit(to_signed(machine.cpu.regs[R0]))


def _sys_spawn_shell(machine: "Machine") -> None:
    """Spawn a shell: the canonical attacker goal, recorded as a flag."""
    machine.shell.spawn(machine.current_ip)
    machine.cpu.regs[R0] = 0


def _sys_rand(machine: "Machine") -> None:
    """``r0 = random 32-bit word``."""
    machine.cpu.regs[R0] = machine.rng.word()


def _sys_print_int(machine: "Machine") -> None:
    """Write the signed decimal of r0 plus newline to the output channel."""
    machine.output.write(str(to_signed(machine.cpu.regs[R0])).encode() + b"\n")


def _require_module(machine: "Machine", service: str):
    module = machine.current_module
    if module is None:
        raise SyscallFault(
            f"sys {service} requires executing inside a protected module",
            machine.current_ip,
        )
    return module


def _sys_attest(machine: "Machine") -> None:
    """``attest(nonce=r0, nonce_len=r1, out=r2)``.

    Writes a 32-byte report ``HMAC(module_key, nonce)`` to ``out``.
    The module key is derived by the hardware from the *measured* code,
    so a tampered module produces reports that fail verification.
    """
    module = _require_module(machine, "attest")
    nonce = machine.read_bytes(machine.cpu.regs[R0], min(machine.cpu.regs[R1], 4096))
    report = machine.pma.attest(module, nonce)
    machine.write_bytes(machine.cpu.regs[R2], report)
    machine.cpu.regs[R0] = len(report)


def _sys_seal(machine: "Machine") -> None:
    """``seal(data=r0, len=r1, out=r2, cap=r3) -> r0 = blob_len``."""
    module = _require_module(machine, "seal")
    data = machine.read_bytes(machine.cpu.regs[R0], min(machine.cpu.regs[R1], MAX_IO_SIZE))
    blob = machine.pma.seal(module, data, machine.rng.bytes(16))
    if len(blob) > machine.cpu.regs[R3]:
        machine.cpu.regs[R0] = SYS_ERROR
        return
    machine.write_bytes(machine.cpu.regs[R2], blob)
    machine.cpu.regs[R0] = len(blob)


def _sys_unseal(machine: "Machine") -> None:
    """``unseal(blob=r0, len=r1, out=r2, cap=r3) -> r0 = plain_len``.

    Returns ``SYS_ERROR`` in r0 if the blob fails authentication (it
    was sealed by a different module, or tampered with).
    """
    module = _require_module(machine, "unseal")
    blob = machine.read_bytes(machine.cpu.regs[R0], min(machine.cpu.regs[R1], MAX_IO_SIZE))
    try:
        plain = machine.pma.unseal(module, blob)
    except SealingError:
        machine.cpu.regs[R0] = SYS_ERROR
        return
    if len(plain) > machine.cpu.regs[R3]:
        machine.cpu.regs[R0] = SYS_ERROR
        return
    if plain:
        machine.write_bytes(machine.cpu.regs[R2], plain)
    machine.cpu.regs[R0] = len(plain)


def _sys_ctr_read(machine: "Machine") -> None:
    """``r0 = module's non-volatile monotonic counter``."""
    module = _require_module(machine, "ctr_read")
    machine.cpu.regs[R0] = machine.pma.counter_read(module) & WORD_MASK


def _sys_ctr_incr(machine: "Machine") -> None:
    """Atomically increment the module's counter; ``r0 = new value``."""
    module = _require_module(machine, "ctr_incr")
    machine.cpu.regs[R0] = machine.pma.counter_increment(module) & WORD_MASK


def _sys_poison(machine: "Machine") -> None:
    """``poison(addr=r0, len=r1)`` -- mark a red zone (testing mode)."""
    machine.poison(machine.cpu.regs[R0], machine.cpu.regs[R1])
    machine.cpu.regs[R0] = 0


def _sys_unpoison(machine: "Machine") -> None:
    """``unpoison(addr=r0, len=r1)`` -- clear a red zone."""
    machine.unpoison(machine.cpu.regs[R0], machine.cpu.regs[R1])
    machine.cpu.regs[R0] = 0


def _sys_canary_fail(machine: "Machine") -> None:
    """``__stack_chk_fail``: abort with a canary fault."""
    raise CanaryFault("stack canary check failed", machine.current_ip)


HANDLERS: Final[dict[int, Callable[["Machine"], None]]] = {
    SYS_READ: _sys_read,
    SYS_WRITE: _sys_write,
    SYS_EXIT: _sys_exit,
    SYS_SPAWN_SHELL: _sys_spawn_shell,
    SYS_RAND: _sys_rand,
    SYS_PRINT_INT: _sys_print_int,
    SYS_ATTEST: _sys_attest,
    SYS_SEAL: _sys_seal,
    SYS_UNSEAL: _sys_unseal,
    SYS_CTR_READ: _sys_ctr_read,
    SYS_CTR_INCR: _sys_ctr_incr,
    SYS_POISON: _sys_poison,
    SYS_UNPOISON: _sys_unpoison,
    SYS_CANARY_FAIL: _sys_canary_fail,
}
