"""Tier-2 trace JIT: record hot loop paths, compile to guarded closures.

When a block head's execution count crosses
``MachineConfig.trace_hot_threshold``, the dispatcher calls
:func:`record_and_compile`: the machine *actually executes* one loop
iteration through the interpreter while the recorder notes each
retired instruction (lifted through :mod:`repro.machine.ir`) and the
control edge it took.  The recorded path -- loop body across the
back-edge, taken branches, inlined leaf calls -- is compiled into one
Python closure that runs whole iterations back to back without
touching the dispatch loop.

The compiler applies four optimisations the superblock tier cannot
(they need a loop-shaped region and the IR's def/use sets):

* **Register allocation** -- guest registers live in Python locals for
  the whole loop; memory (``cpu.regs``) is only written at exits.
* **Base-page guards** -- accesses whose address is ``base-reg +
  constant`` (tracked symbolically, including through ``lea``/``mov``/
  ``add``) are grouped per base register; one guard per iteration
  proves the whole group hits a single resident, unwatched,
  non-copy-on-write page, then every access in the group becomes a
  direct ``bytearray`` read/write at a fixed offset.
* **Store-to-load forwarding** -- a load provably reading what a prior
  store in the same iteration wrote (same symbolic base, same offset
  and width, no intervening may-alias store or helper) reuses the
  stored value and never touches memory.  Groups containing such loads
  still guard readability, so a W-only page faults exactly as the
  interpreter would.
* **Lazy flags** -- arithmetic results do not materialise zf/lt on the
  hot path; the pending result is kept in ``_t`` and branch guards
  substitute ``_t == 0`` / ``_t > 2147483647`` directly.  Exits,
  fault-capable calls and the loop close materialise, so architectural
  flags are exact wherever they can be observed.

Exactness contract (same as blocks.py, held by the differential
suites): every exit -- guard failure, budget exhaustion, epoch bump
after a slow store, or a machine fault -- writes back registers,
flags, ``cpu.ip``, ``current_ip`` and the retired-instruction count
byte-identically to the interpreter executing the same prefix.
Machines with PMA modules or red zones never trace (the per
-instruction checks those modes need are not replicated here), and
observed machines never reach this tier at all.
"""

from __future__ import annotations

from typing import Callable, NamedTuple

from repro.errors import ExecutionLimitExceeded, MachineFault
from repro.isa.instructions import WORD_MASK
from repro.machine.cpu import c_div, c_mod
from repro.machine.ir import ControlKind, IRInst, lift_at
from repro.machine.memory import _U32

_M = WORD_MASK
_SIGN = 0x80000000
_PAGE = 4096

_ARITH_RR = {0x0A: "+", 0x0C: "-", 0x0E: "*"}
_ARITH_RI = {0x0B: "+", 0x0D: "-"}
_LOGIC_RR = {0x11: "&", 0x12: "|", 0x13: "^"}

#: Flags each conditional branch needs, and its predicate builder.
_COND_NEEDS = {
    0x1B: ("zf",), 0x1C: ("zf",),
    0x1D: ("lt",), 0x20: ("lt",),
    0x1E: ("lt", "zf"), 0x1F: ("lt", "zf"),
    0x21: ("ult",), 0x22: ("ult",),
}


def _cond_expr(op: int, zf: str, lt: str, ult: str) -> str:
    return {
        0x1B: f"{zf}",
        0x1C: f"not {zf}",
        0x1D: f"{lt}",
        0x1E: f"not {lt} and not {zf}",
        0x1F: f"{lt} or {zf}",
        0x20: f"not {lt}",
        0x21: f"{ult}",
        0x22: f"not {ult}",
    }[op]


def _cond_value(op: int, zf: bool, lt: bool, ult: bool | None) -> bool:
    return {
        0x1B: zf, 0x1C: not zf,
        0x1D: lt, 0x1E: not lt and not zf,
        0x1F: lt or zf, 0x20: not lt,
        0x21: bool(ult), 0x22: not ult,
    }[op]


def _signed(value: int) -> int:
    value &= _M
    return value - 0x100000000 if value >= _SIGN else value


class TraceStep(NamedTuple):
    """One recorded instruction and the control edge it took."""

    ir: IRInst
    #: Raw encoding at record time (re-verified before install).
    raw: bytes
    #: ``cpu.ip`` after the step: the observed successor address.
    observed: int


class CompiledTrace(NamedTuple):
    """One installed hot trace, keyed by its loop-head address."""

    #: Called as ``fn(machine, cpu, budget_remaining)``; returns 1 when
    #: a loop-top guard failed with the machine parked exactly at the
    #: head (the dispatcher must run the block path once to make
    #: progress), else None.
    fn: Callable
    head: int
    #: Pages holding the recorded code (the invalidation-index keys).
    pages: tuple
    #: Instructions retired per complete loop iteration.
    count: int
    #: Generated Python source, kept for debugging and tests.
    source: str


class _TraceAbort(Exception):
    """Recording or compilation cannot produce a sound trace."""


def record_and_compile(machine, head: int, max_instructions: int,
                       start_count: int):
    """Record one hot-loop iteration at ``head`` and compile it.

    The machine genuinely executes while recording (the budget check
    mirrors ``_run_steps`` so :class:`ExecutionLimitExceeded` fires at
    the identical count and IP).  Returns a :class:`CompiledTrace`, or
    None when the path will not trace -- it reaches a syscall/halt,
    exceeds ``trace_max_insns`` without closing the loop, an
    instruction cannot be lifted, or the recorded bytes changed under
    a store the trace itself performed.
    """
    cpu = machine.cpu
    memory = machine.memory
    cap = machine.config.trace_max_insns
    steps: list[TraceStep] = []
    try:
        while True:
            if machine._status is not None:
                return None
            if machine.instructions_executed - start_count >= max_instructions:
                raise ExecutionLimitExceeded(
                    f"exceeded {max_instructions} instructions", cpu.ip
                )
            irx = lift_at(memory, cpu.ip)
            if irx is None:
                return None
            if irx.kind in (ControlKind.SYS, ControlKind.HALT):
                return None
            if len(steps) >= cap:
                return None
            raw = bytes(memory.read_bytes(irx.addr, irx.length))
            machine.step()
            steps.append(TraceStep(irx, raw, cpu.ip))
            if cpu.ip == head:
                break
    except MachineFault:
        # The fault is real execution and must propagate, but the head
        # is blacklisted so a faulting loop is not re-recorded on
        # every subsequent run.
        machine._trace_failed.add(head)
        raise
    try:
        source, fn = _TraceCompiler(steps, head).compile()
    except _TraceAbort:
        return None
    # Self-modifying recording: a store later in the iteration may
    # have rewritten an earlier instruction's bytes.  The trace is
    # only sound for the bytes it was lifted from.
    for step in steps:
        try:
            current = bytes(memory.read_bytes(step.ir.addr, step.ir.length))
        except MachineFault:
            return None
        if current != step.raw:
            return None
    pages = tuple(sorted({step.ir.addr >> 12 for step in steps}))
    return CompiledTrace(fn, head, pages, len(steps), source)


class _TraceCompiler:
    """Three-phase compiler: symbolic analysis, grouping, emission.

    Phase A walks the recorded steps with a symbolic register state
    (constant / base-register-plus-offset / unknown) deciding
    store-to-load forwarding; phase B groups symbolic memory accesses
    per base register and demotes groups whose offset span cannot fit
    one page; phase C re-runs the identical symbolic walk emitting
    Python source, consulting the recorded decisions.
    """

    def __init__(self, steps: list[TraceStep], head: int) -> None:
        self.steps = steps
        self.head = head
        self.close_ip = steps[-1].ir.addr
        reads: set[int] = set()
        writes: set[int] = set()
        for step in steps:
            reads |= step.ir.reads
            writes |= step.ir.writes
        self.used_regs = sorted(reads | writes)
        self.written_regs = sorted(writes)
        self.has_helpers = any(
            s.ir.kind in (ControlKind.CALL, ControlKind.CALL_REG,
                          ControlKind.RET)
            for s in steps
        )
        self.mem_writing_helpers = any(
            s.ir.kind in (ControlKind.CALL, ControlKind.CALL_REG)
            for s in steps
        )
        # Phase A results, consulted by phase C:
        self.load_fwd: dict[int, tuple[str, object]] = {}
        self.store_temp: dict[int, str] = {}
        self.access_rec: list[tuple] = []    # (k, kind, size, basekey, off)
        self.access_group: dict[int, tuple[int, int]] = {}
        self.groups: list[dict] = []
        self.has_dyn_store = False
        self.has_dyn_mem = False

    # -- symbolic values: ('c', v) | ('r', base, off) | None --------------------------

    @staticmethod
    def _sym_plus(sym, imm: int):
        if sym is None:
            return None
        if sym[0] == "c":
            return ("c", (sym[1] + imm) & _M)
        return ("r", sym[1], sym[2] + _signed(imm))

    def _mem_sym(self, sym_state, mem):
        return self._sym_plus(sym_state[mem.base], mem.disp)

    # -- phase A ----------------------------------------------------------------------

    def _analyze(self) -> None:
        sym = {r: ("r", r, 0) for r in range(16)}
        regver = {r: 0 for r in range(16)}
        # live forwarding candidates:
        # dict(step, basekey, off, size, src, ver, vsym, byte)
        live: list[dict] = []

        def addr_key(asym, size):
            if asym is None:
                return None, None
            if asym[0] == "c":
                addr = asym[1]
                if (addr & 4095) + size > 4096:
                    return None, None   # page-straddling constant access
                return ("c", addr >> 12), addr
            return ("r", asym[1]), asym[2]

        def record_access(k, kind, size, basekey, off):
            self.access_rec.append((k, kind, size, basekey, off))

        def kill_for_store(basekey, off, size):
            survivors = []
            for st in live:
                if basekey is None or st["basekey"] is None:
                    continue              # dynamic store: kills everything
                if st["basekey"] != basekey:
                    continue              # different base may alias: kill
                if off is None or st["off"] is None:
                    continue
                if st["off"] < off + size and off < st["off"] + st["size"]:
                    continue              # same base, overlapping bytes
                survivors.append(st)
            live[:] = survivors

        def note_store(k, basekey, off, size, src, vsym, byte):
            kill_for_store(basekey, off, size)
            if basekey is not None:
                live.append(dict(step=k, basekey=basekey, off=off, size=size,
                                 src=src, ver=regver[src], vsym=vsym,
                                 byte=byte))

        def try_forward(k, basekey, off, size, byte):
            if basekey is None:
                return None
            for st in reversed(live):
                if (st["basekey"] == basekey and st["off"] == off
                        and st["size"] == size and st["byte"] == byte):
                    return st
            return None

        def forward_expr(st) -> tuple[str, object]:
            vsym = st["vsym"]
            if vsym is not None and vsym[0] == "c":
                return str(vsym[1]), vsym
            if (vsym is not None and vsym[0] == "r"
                    and regver[vsym[1]] == 0):
                base, off = vsym[1], vsym[2]
                if off == 0:
                    return f"r{base}", vsym
                return f"(r{base} + {off & _M}) & 4294967295", vsym
            src = st["src"]
            if regver[src] == st["ver"]:
                expr = f"r{src}"
                if st["byte"]:
                    expr = f"r{src} & 255"
                return expr, vsym
            # Source clobbered between store and load: stash a temp at
            # the store site.
            self.store_temp[st["step"]] = st["temp_val"]
            return f"_f{st['step']}", vsym

        def write_reg(reg, value_sym):
            sym[reg] = value_sym
            regver[reg] += 1

        self.sym_at: list[dict] = []
        for k, step in enumerate(self.steps):
            # Snapshot the symbolic state entering step k: phase C
            # folds from these exact values instead of re-deriving
            # them, so the two walks can never diverge.
            self.sym_at.append(dict(sym))
            irx = step.ir
            op = irx.opcode
            ops = irx.operands
            kind = irx.kind
            if op in (0x00, 0x29, 0x01):            # nop / land (halt filtered)
                continue
            if op == 0x02:                          # mov rr
                write_reg(ops[0], sym[ops[1]])
            elif op == 0x03:                        # mov ri
                write_reg(ops[0], ("c", ops[1] & _M))
            elif op in (0x04, 0x06):                # load / loadb
                byte = op == 0x06
                size = 1 if byte else 4
                asym = self._mem_sym(sym, ops[1])
                basekey, off = addr_key(asym, size)
                record_access(k, "r", size, basekey, off)
                st = try_forward(k, basekey, off, size, byte)
                if st is not None:
                    expr, vsym = forward_expr(st)
                    self.load_fwd[k] = (expr, vsym)
                    write_reg(ops[0], vsym)
                else:
                    write_reg(ops[0], None)
                    if basekey is not None:
                        # Redundant-load elimination: the slot now
                        # provably holds r{d}, so a later load of the
                        # same bytes forwards like a store would.
                        live.append(dict(step=k, basekey=basekey,
                                         off=off, size=size, src=ops[0],
                                         ver=regver[ops[0]], vsym=None,
                                         byte=byte,
                                         temp_val=f"r{ops[0]}"))
            elif op in (0x05, 0x07):                # store / storeb
                byte = op == 0x07
                size = 1 if byte else 4
                asym = self._mem_sym(sym, ops[1])
                basekey, off = addr_key(asym, size)
                record_access(k, "w", size, basekey, off)
                src = ops[0]
                vsym = sym[src]
                if byte:
                    vsym = (("c", vsym[1] & 255)
                            if vsym is not None and vsym[0] == "c" else None)
                note_store(k, basekey, off, size, src, vsym, byte)
                if basekey is not None:
                    live[-1]["temp_val"] = (f"r{src} & 255" if byte
                                            else f"r{src}")
                if basekey is None:
                    self.has_dyn_store = True
            elif op == 0x08:                        # push
                src = ops[0]
                vsym = sym[src]
                asym = self._sym_plus(sym[8], -4 & _M)
                basekey, off = addr_key(asym, 4)
                record_access(k, "w", 4, basekey, off)
                note_store(k, basekey, off, 4, src, vsym, False)
                if basekey is not None:
                    live[-1]["temp_val"] = "_v" if src == 8 else f"r{src}"
                if basekey is None:
                    self.has_dyn_store = True
                write_reg(8, asym)
            elif op == 0x09:                        # pop
                asym = sym[8]
                basekey, off = addr_key(asym, 4)
                record_access(k, "r", 4, basekey, off)
                st = try_forward(k, basekey, off, 4, False)
                vsym = None
                if st is not None:
                    expr, vsym = forward_expr(st)
                    self.load_fwd[k] = (expr, vsym)
                new_sp = self._sym_plus(asym, 4) if asym is not None else None
                write_reg(8, new_sp)
                if ops[0] != 8:
                    write_reg(ops[0], vsym if st is not None else None)
                else:
                    sym[8] = vsym if st is not None else None
                if st is None and basekey is not None:
                    live.append(dict(step=k, basekey=basekey, off=off,
                                     size=4, src=ops[0],
                                     ver=regver[ops[0]], vsym=None,
                                     byte=False,
                                     temp_val=f"r{ops[0]}"))
            elif op in _ARITH_RR or op in _LOGIC_RR or op in (0x0F, 0x10):
                d, s = ops
                a, b = sym[d], sym[s]
                res = self._fold_rr(op, a, b)
                write_reg(d, res)
                if op in (0x0F, 0x10):
                    write_reg(d, None)  # div/mod: never folded
            elif op in _ARITH_RI:
                d = ops[0]
                imm = ops[1] & _M
                a = sym[d]
                if a is not None and a[0] == "c":
                    v = ((a[1] + imm) if op == 0x0B else (a[1] - imm)) & _M
                    write_reg(d, ("c", v))
                elif a is not None and a[0] == "r":
                    delta = _signed(imm) if op == 0x0B else -_signed(imm)
                    write_reg(d, ("r", a[1], a[2] + delta))
                else:
                    write_reg(d, None)
            elif op == 0x14:                        # not
                a = sym[ops[0]]
                write_reg(ops[0], ("c", a[1] ^ _M)
                          if a is not None and a[0] == "c" else None)
            elif op in (0x15, 0x16):                # shl / shr
                a = sym[ops[0]]
                sh = ops[1] & 31
                if a is not None and a[0] == "c":
                    v = ((a[1] << sh) & _M) if op == 0x15 else (a[1] >> sh)
                    write_reg(ops[0], ("c", v))
                else:
                    write_reg(ops[0], None)
            elif op in (0x17, 0x18):                # cmp: flags only
                continue
            elif op == 0x27:                        # lea
                write_reg(ops[0], self._mem_sym(sym, ops[1]))
            elif op == 0x28:                        # chk: no reg effects
                continue
            elif kind in (ControlKind.JUMP, ControlKind.BRANCH,
                          ControlKind.JUMP_REG):
                continue
            elif kind in (ControlKind.CALL, ControlKind.CALL_REG):
                live.clear()                        # helper writes memory
                write_reg(8, None)
            elif kind is ControlKind.RET:
                write_reg(8, None)
            else:  # pragma: no cover - recorder filters sys/halt
                raise _TraceAbort(f"unsupported opcode 0x{op:02x}")
        self.has_dyn_mem = any(rec[3] is None for rec in self.access_rec)

    @staticmethod
    def _fold_rr(op, a, b):
        """Symbolic result of a register-register ALU op (or None)."""
        if a is not None and b is not None and a[0] == "c" and b[0] == "c":
            x, y = a[1], b[1]
            if op == 0x0A:
                return ("c", (x + y) & _M)
            if op == 0x0C:
                return ("c", (x - y) & _M)
            if op == 0x0E:
                return ("c", (x * y) & _M)
            if op == 0x11:
                return ("c", x & y)
            if op == 0x12:
                return ("c", x | y)
            if op == 0x13:
                return ("c", x ^ y)
            return None
        if op == 0x0A:                              # add: rel + const
            if (a is not None and a[0] == "r"
                    and b is not None and b[0] == "c"):
                return ("r", a[1], a[2] + _signed(b[1]))
            if (b is not None and b[0] == "r"
                    and a is not None and a[0] == "c"):
                return ("r", b[1], b[2] + _signed(a[1]))
        if op == 0x0C:                              # sub: rel - const
            if (a is not None and a[0] == "r"
                    and b is not None and b[0] == "c"):
                return ("r", a[1], a[2] - _signed(b[1]))
        return None

    # -- phase B ----------------------------------------------------------------------

    def _build_groups(self) -> None:
        by_base: dict = {}
        order: list = []
        for k, kind, size, basekey, off in self.access_rec:
            if basekey is None:
                continue
            if basekey not in by_base:
                by_base[basekey] = []
                order.append(basekey)
            by_base[basekey].append((k, kind, size, off))
        for basekey in order:
            accs = by_base[basekey]
            min_off = min(off for _, _, _, off in accs)
            max_end = max(off + size for _, _, size, off in accs)
            if basekey[0] == "r" and max_end - min_off > _PAGE:
                continue                            # demoted: dynamic access
            gid = len(self.groups)
            group = dict(
                gid=gid,
                basekey=basekey,
                min_off=min_off,
                max_end=max_end,
                has_read=any(kind == "r" for _, kind, _, _ in accs),
                has_write=any(kind == "w" for _, kind, _, _ in accs),
            )
            self.groups.append(group)
            for k, _, _, off in accs:
                if basekey[0] == "c":
                    self.access_group[k] = (gid, off & 4095)
                else:
                    self.access_group[k] = (gid, off - min_off)

    # -- phase C ----------------------------------------------------------------------

    def compile(self):
        self._analyze()
        self._build_groups()
        source = self._emit()
        namespace = {"_MF": MachineFault, "_u32": _U32,
                     "_div": c_div, "_mod": c_mod}
        exec(compile(source, f"<trace 0x{self.head:08x}>", "exec"), namespace)
        return source, namespace["_trace"]

    def _emit(self) -> str:
        steps = self.steps
        total = len(steps)
        uses_epoch = self.has_dyn_store or self.mem_writing_helpers
        needs_fr = any(kind == "r" for _, kind, _, _, _ in self.access_rec)
        needs_fw = any(kind == "w" for _, kind, _, _, _ in self.access_rec)
        needs_mem = bool(self.access_rec)
        needs_cw = any(not g["has_write"] for g in self.groups)
        out: list[str] = []

        def emit(line: str, ind: int = 3) -> None:
            out.append("    " * ind + line)

        # Emission-time flag state: None = locals architectural,
        # "res" = zf/lt pending in _t, ("const", zb, lb) = known.
        state = {"pending": None, "ult": None}

        def mat_lines() -> list[str]:
            pending = state["pending"]
            if pending is None:
                return []
            if pending == "res":
                return ["zf = _t == 0", "lt = _t > 2147483647"]
            return [f"zf = {pending[1]}", f"lt = {pending[2]}"]

        def mat(ind: int) -> None:
            for line in mat_lines():
                emit(line, ind)

        def mat_main() -> None:
            mat(3)
            state["pending"] = None

        def flag_exprs() -> tuple[str, str, str]:
            pending = state["pending"]
            ult = "ult" if state["ult"] is None else str(state["ult"])
            if pending == "res":
                return "(_t == 0)", "(_t > 2147483647)", ult
            if pending is not None:
                return str(pending[1]), str(pending[2]), ult
            return "zf", "lt", ult

        def exit_block(ind: int, ip_expr, retired: str,
                       current_ip=None, ret: str = "None") -> None:
            mat(ind)
            for reg in self.written_regs:
                emit(f"regs[{reg}] = r{reg}", ind)
            emit("cpu.zf = zf; cpu.lt = lt; cpu.ult = ult", ind)
            if current_ip is not None:
                emit(f"m.current_ip = {current_ip}", ind)
            emit(f"cpu.ip = {ip_expr}", ind)
            emit(f"m.instructions_executed += {retired}", ind)
            emit(f"return {ret}", ind)

        def markers(k: int, ind: int = 3) -> None:
            irx = steps[k].ir
            emit(f"m.current_ip = {irx.addr}; n = {k}; "
                 f"eip = {irx.next_addr}", ind)

        def reg_expr(sym, reg: int) -> str:
            value = sym.get(reg)
            if value is not None and value[0] == "c":
                return str(value[1])
            return f"r{reg}"

        def addr_line(base: int, disp: int) -> None:
            if disp == 0:
                emit(f"_a = r{base}")
            else:
                emit(f"_a = (r{base} + {disp & _M}) & 4294967295")

        def group_off(k: int) -> str:
            gid, delta = self.access_group[k]
            group = self.groups[gid]
            if group["basekey"][0] == "c":
                return str(delta)
            return f"_o{gid}" if delta == 0 else f"_o{gid} + {delta}"

        def epoch_bail(k: int, ip_expr, ind: int) -> None:
            emit(f"if m._block_epoch != _e:", ind)
            exit_block(ind + 1, ip_expr, f"_nb + {k + 1}")

        # -- prologue -----------------------------------------------------------------
        out.append("def _trace(m, cpu, _lim):")
        emit("regs = cpu.regs", 1)
        for reg in self.used_regs:
            emit(f"r{reg} = regs[{reg}]", 1)
        emit("zf = cpu.zf; lt = cpu.lt; ult = cpu.ult", 1)
        emit(f"n = 0; eip = {self.head}; _nb = 0", 1)
        if self.has_helpers:
            emit("_hp = 0", 1)
        if needs_mem:
            emit("_mem = m.memory._pages", 1)
            emit("_pk = _u32.pack_into; _up = _u32.unpack_from", 1)
        if needs_fr:
            emit("_fr = m.memory._fast_read", 1)
        if needs_fw:
            emit("_fw = m.memory._fast_write", 1)
        if needs_cw:
            emit("_cw = m.memory._cow_pages", 1)
        if uses_epoch:
            emit("_e = m._block_epoch", 1)
        emit("try:", 1)
        emit("while True:", 2)

        # -- loop-top page guards -----------------------------------------------------
        for group in self.groups:
            gid = group["gid"]
            basekey = group["basekey"]
            checks = []
            if group["has_write"]:
                checks.append(f"_p{gid} not in _fw")
            if group["has_read"]:
                checks.append(f"_p{gid} not in _fr")
            if not group["has_write"]:
                checks.append(f"_p{gid} in _cw")
            if basekey[0] == "c":
                emit(f"_p{gid} = {basekey[1]}")
                emit(f"if {' or '.join(checks)}:")
            else:
                base = basekey[1]
                lo = group["min_off"] & _M
                hi = (group["max_end"] - 1) & _M
                emit(f"_a{gid} = r{base}" if lo == 0 else
                     f"_a{gid} = (r{base} + {lo}) & 4294967295")
                emit(f"_p{gid} = _a{gid} >> 12")
                span = (f"((r{base} + {hi}) & 4294967295) >> 12 "
                        f"!= _p{gid}")
                emit(f"if {span} or {' or '.join(checks)}:")
            emit("if _nb:", 4)
            emit(f"m.current_ip = {self.close_ip}", 5)
            exit_block(4, self.head, "_nb", ret="1")
            emit(f"_b{gid} = _mem[_p{gid}]")
            if basekey[0] != "c":
                emit(f"_o{gid} = _a{gid} & 4095")

        # -- body ---------------------------------------------------------------------
        for k, step in enumerate(steps):
            irx = step.ir
            op = irx.opcode
            ops = irx.operands
            kind = irx.kind
            sym = self.sym_at[k]
            nxt = irx.next_addr
            grouped = k in self.access_group
            fwd = self.load_fwd.get(k)
            if op in (0x00, 0x29):
                continue
            elif op == 0x02:
                emit(f"r{ops[0]} = r{ops[1]}")
            elif op == 0x03:
                emit(f"r{ops[0]} = {ops[1] & _M}")
            elif op in (0x04, 0x06):                # load / loadb
                d, mem = ops
                byte = op == 0x06
                if grouped:
                    if fwd is not None:
                        emit(f"r{d} = {fwd[0]}")
                    elif byte:
                        emit(f"r{d} = _b{self.access_group[k][0]}"
                             f"[{group_off(k)}]")
                    else:
                        emit(f"r{d} = _up("
                             f"_b{self.access_group[k][0]}, "
                             f"{group_off(k)})[0]")
                else:
                    addr_line(mem.base, mem.disp)
                    if byte:
                        emit("if _a >> 12 in _fr:")
                        emit(f"r{d} = " + (fwd[0] if fwd is not None else
                                           "_mem[_a >> 12][_a & 4095]"), 4)
                        emit("else:")
                        mat(4)
                        markers(k, 4)
                        emit(f"r{d} = m.read_byte(_a)", 4)
                    else:
                        emit("_o = _a & 4095")
                        emit("if _o <= 4092 and _a >> 12 in _fr:")
                        emit(f"r{d} = " + (
                            fwd[0] if fwd is not None else
                            "_up(_mem[_a >> 12], _o)[0]"), 4)
                        emit("else:")
                        mat(4)
                        markers(k, 4)
                        emit(f"r{d} = m.read_word(_a)", 4)
                if k in self.store_temp:
                    emit(f"_f{k} = {self.store_temp[k]}")
            elif op in (0x05, 0x07):                # store / storeb
                s, mem = ops
                byte = op == 0x07
                if grouped:
                    gid = self.access_group[k][0]
                    if byte:
                        emit(f"_b{gid}[{group_off(k)}] = r{s} & 255")
                    else:
                        emit(f"_pk(_b{gid}, {group_off(k)}, "
                             f"r{s})")
                else:
                    addr_line(mem.base, mem.disp)
                    if byte:
                        emit("_pn = _a >> 12")
                        emit("if _pn in _fw:")
                        emit(f"_mem[_pn][_a & 4095] = r{s} & 255", 4)
                        emit("else:")
                        mat(4)
                        markers(k, 4)
                        emit(f"m.write_byte(_a, r{s} & 255)", 4)
                        epoch_bail(k, nxt, 4)
                    else:
                        emit("_o = _a & 4095; _pn = _a >> 12")
                        emit("if _o <= 4092 and _pn in _fw:")
                        emit(f"_pk(_mem[_pn], _o, r{s})", 4)
                        emit("else:")
                        mat(4)
                        markers(k, 4)
                        emit(f"m.write_word(_a, r{s})", 4)
                        epoch_bail(k, nxt, 4)
                if k in self.store_temp:
                    emit(f"_f{k} = {self.store_temp[k]}")
            elif op == 0x08:                        # push
                s = ops[0]
                val = f"r{s}"
                if s == 8:
                    emit("_v = r8")
                    val = "_v"
                emit("r8 = (r8 - 4) & 4294967295")
                if grouped:
                    gid = self.access_group[k][0]
                    emit(f"_pk(_b{gid}, {group_off(k)}, {val})")
                else:
                    emit("_o = r8 & 4095; _pn = r8 >> 12")
                    emit("if _o <= 4092 and _pn in _fw:")
                    emit(f"_pk(_mem[_pn], _o, {val})", 4)
                    emit("else:")
                    mat(4)
                    markers(k, 4)
                    emit(f"m.write_word(r8, {val})", 4)
                    epoch_bail(k, nxt, 4)
                if k in self.store_temp:
                    emit(f"_f{k} = {self.store_temp[k]}")
            elif op == 0x09:                        # pop
                d = ops[0]
                if grouped:
                    vexpr = (fwd[0] if fwd is not None else
                             f"_up(_b{self.access_group[k][0]},"
                             f" {group_off(k)})[0]")
                    if d == 8:
                        emit(f"r8 = {vexpr}")
                    else:
                        emit(f"r{d} = {vexpr}")
                        emit("r8 = (r8 + 4) & 4294967295")
                else:
                    emit("_o = r8 & 4095")
                    emit("if _o <= 4092 and r8 >> 12 in _fr:")
                    emit("_v = " + (fwd[0] if fwd is not None else
                                    "_up(_mem[r8 >> 12], "
                                    "_o)[0]"), 4)
                    emit("else:")
                    mat(4)
                    markers(k, 4)
                    emit("_v = m.read_word(r8)", 4)
                    if d == 8:
                        emit("r8 = _v")
                    else:
                        emit("r8 = (r8 + 4) & 4294967295")
                        emit(f"r{d} = _v")
                if k in self.store_temp:
                    emit(f"_f{k} = {self.store_temp[k]}")
            elif op in _ARITH_RR or op in _LOGIC_RR:
                d, s = ops
                res = self._fold_rr(op, sym.get(d), sym.get(s))
                if res is not None and res[0] == "c":
                    emit(f"r{d} = {res[1]}")
                    state["pending"] = ("const", res[1] == 0,
                                        res[1] > 0x7FFFFFFF)
                else:
                    ea, eb = reg_expr(sym, d), reg_expr(sym, s)
                    if op in _ARITH_RR:
                        emit(f"_t = ({ea} {_ARITH_RR[op]} {eb})"
                             " & 4294967295")
                    else:
                        emit(f"_t = {ea} {_LOGIC_RR[op]} {eb}")
                    emit(f"r{d} = _t")
                    state["pending"] = "res"
            elif op in _ARITH_RI:
                d = ops[0]
                imm = ops[1] & _M
                a = sym.get(d)
                if a is not None and a[0] == "c":
                    v = ((a[1] + imm) if op == 0x0B else (a[1] - imm)) & _M
                    emit(f"r{d} = {v}")
                    state["pending"] = ("const", v == 0, v > 0x7FFFFFFF)
                else:
                    emit(f"_t = (r{d} {_ARITH_RI[op]} {imm})"
                         " & 4294967295")
                    emit(f"r{d} = _t")
                    state["pending"] = "res"
            elif op in (0x0F, 0x10):                # div / mod
                mat_main()
                markers(k)
                helper = "_div" if op == 0x0F else "_mod"
                emit(f"_t = {helper}(r{ops[0]}, r{ops[1]})")
                emit(f"r{ops[0]} = _t")
                state["pending"] = "res"
            elif op == 0x14:                        # not
                d = ops[0]
                a = sym.get(d)
                if a is not None and a[0] == "c":
                    v = a[1] ^ _M
                    emit(f"r{d} = {v}")
                    state["pending"] = ("const", v == 0, v > 0x7FFFFFFF)
                else:
                    emit(f"_t = r{d} ^ 4294967295")
                    emit(f"r{d} = _t")
                    state["pending"] = "res"
            elif op in (0x15, 0x16):                # shl / shr
                d = ops[0]
                sh = ops[1] & 31
                a = sym.get(d)
                if a is not None and a[0] == "c":
                    v = ((a[1] << sh) & _M) if op == 0x15 else (a[1] >> sh)
                    emit(f"r{d} = {v}")
                    state["pending"] = ("const", v == 0, v > 0x7FFFFFFF)
                else:
                    if op == 0x15:
                        emit(f"_t = (r{d} << {sh}) & 4294967295")
                    else:
                        emit(f"_t = r{d} >> {sh}")
                    emit(f"r{d} = _t")
                    state["pending"] = "res"
            elif op in (0x17, 0x18):                # cmp rr / cmp ri
                if op == 0x17:
                    a, b = sym.get(ops[0]), sym.get(ops[1])
                    eb = reg_expr(sym, ops[1])
                else:
                    a, b = sym.get(ops[0]), ("c", ops[1] & _M)
                    eb = str(ops[1] & _M)
                ea = reg_expr(sym, ops[0])
                if (a is not None and a[0] == "c"
                        and b is not None and b[0] == "c"):
                    x, y = a[1], b[1]
                    zv, lv, uv = (x == y,
                                  (x ^ _SIGN) < (y ^ _SIGN), x < y)
                    emit(f"zf = {zv}; lt = {lv}; ult = {uv}")
                    state["ult"] = uv
                else:
                    eax = (str(a[1] ^ _SIGN) if a is not None
                           and a[0] == "c" else f"({ea} ^ 2147483648)")
                    ebx = (str(b[1] ^ _SIGN) if b is not None
                           and b[0] == "c" else f"({eb} ^ 2147483648)")
                    if b is not None and b[0] == "c" and b[1] == 0:
                        # Nothing unsigned is below zero.
                        emit(f"zf = {ea} == 0; lt = {eax} < {ebx}; "
                             "ult = False")
                        state["ult"] = False
                    else:
                        emit(f"zf = {ea} == {eb}; lt = {eax} < {ebx}; "
                             f"ult = {ea} < {eb}")
                        state["ult"] = None
                state["pending"] = None
            elif op == 0x27:                        # lea
                d, mem = ops
                a = sym.get(mem.base)
                if a is not None and a[0] == "c":
                    emit(f"r{d} = {(a[1] + mem.disp) & _M}")
                elif mem.disp == 0:
                    emit(f"r{d} = r{mem.base}")
                else:
                    emit(f"r{d} = (r{mem.base} + {mem.disp & _M})"
                         " & 4294967295")
            elif op == 0x28:                        # chk
                mat_main()
                markers(k)
                emit(f"m.bounds_check(r{ops[0]}, {ops[1] & _M})")
            elif kind is ControlKind.JUMP:
                continue
            elif kind is ControlKind.BRANCH:
                taken = step.observed == irx.target
                other = irx.next_addr if taken else irx.target
                pending = state["pending"]
                zk = lk = None
                if pending is not None and pending != "res":
                    zk, lk = pending[1], pending[2]
                known = {"zf": zk is not None, "lt": lk is not None,
                         "ult": state["ult"] is not None}
                if all(known[f] for f in _COND_NEEDS[op]):
                    if _cond_value(op, bool(zk), bool(lk),
                                   state["ult"]) != taken:
                        raise _TraceAbort("static branch contradicts "
                                          "recording")
                    continue                        # guard always holds
                zfE, ltE, ultE = flag_exprs()
                cond = _cond_expr(op, zfE, ltE, ultE)
                emit(f"if not ({cond}):" if taken else f"if ({cond}):")
                exit_block(4, other, f"_nb + {k + 1}",
                           current_ip=irx.addr)
            elif kind is ControlKind.JUMP_REG:
                mat_main()
                markers(k)
                emit(f"_j = r{ops[0]}")
                emit("m.check_indirect_target(_j)")
                emit(f"if _j != {step.observed}:")
                exit_block(4, "_j", f"_nb + {k + 1}")
            elif kind is ControlKind.CALL:
                mat_main()
                markers(k)
                emit("regs[8] = r8")
                emit("_hp = 1")
                emit(f"m.push_return_address({nxt})")
                emit("r8 = regs[8]")
                emit("_hp = 0")
                epoch_bail(k, irx.target, 3)
            elif kind is ControlKind.CALL_REG:
                mat_main()
                markers(k)
                emit(f"_j = r{ops[0]}")
                emit("m.check_indirect_target(_j)")
                emit("regs[8] = r8")
                emit("_hp = 1")
                emit(f"m.push_return_address({nxt})")
                emit("r8 = regs[8]")
                emit("_hp = 0")
                emit(f"if _j != {step.observed} or m._block_epoch != _e:")
                exit_block(4, "_j", f"_nb + {k + 1}")
            elif kind is ControlKind.RET:
                mat_main()
                markers(k)
                emit("regs[8] = r8")
                emit("_hp = 1")
                emit("_j = m.pop_return_address()")
                emit("r8 = regs[8]")
                emit("_hp = 0")
                emit(f"if _j != {step.observed}:")
                exit_block(4, "_j", f"_nb + {k + 1}")
            else:  # pragma: no cover - recorder filters sys/halt
                raise _TraceAbort(f"unsupported kind {kind}")

        # -- loop close ---------------------------------------------------------------
        mat_main()
        emit(f"_nb += {total}")
        emit(f"if _nb + {total} > _lim:")
        exit_block(4, self.head, "_nb", current_ip=self.close_ip)

        # -- fault handler ------------------------------------------------------------
        emit("except _MF:", 1)
        for reg in self.written_regs:
            if reg == 8 and self.has_helpers:
                emit("if not _hp:", 2)
                emit("regs[8] = r8", 3)
            else:
                emit(f"regs[{reg}] = r{reg}", 2)
        emit("cpu.zf = zf; cpu.lt = lt; cpu.ult = ult", 2)
        emit("cpu.ip = eip", 2)
        emit("m.instructions_executed += _nb + n", 2)
        emit("raise", 2)
        return "\n".join(out) + "\n"
