"""Memory-access kinds shared by the CPU and the protection machinery."""

from __future__ import annotations

import enum


class AccessKind(enum.Enum):
    """What a memory access is for.

    Every access performed by the CPU or on behalf of a syscall is one
    of these; the page-permission check and the protected-module check
    both dispatch on it.
    """

    FETCH = "fetch"
    READ = "read"
    WRITE = "write"
