"""Paged virtual memory for the VN32 machine.

The address space is the flat 32-bit space described in Section II of
the paper: 2**32 bytes, little-endian, holding code, data, stack and
management information side by side.  Storage is sparse (a dict of
4 KiB pages) so a full address space costs nothing until touched.

Each page carries R/W/X permission bits.  Data Execution Prevention
(Section III-C1) is expressed entirely through these bits: the loader
maps text pages R+X and data/stack pages R+W.  With DEP disabled, the
loader simply maps every page RWX, which is the historical pre-DEP
behaviour that direct code injection relies on.

This module performs *no* permission checking itself -- it only stores
bytes and permission bits.  Checked accesses (page permissions, PMA
rules, red zones) are composed in :class:`repro.machine.machine.Machine`,
because what is allowed depends on who is executing (Section IV).
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import MemoryFault
from repro.isa.instructions import WORD_MASK

#: Page size in bytes.
PAGE_SIZE = 0x1000
_PAGE_SHIFT = 12

#: Permission bits.
PERM_R = 1
PERM_W = 2
PERM_X = 4
PERM_RW = PERM_R | PERM_W
PERM_RX = PERM_R | PERM_X
PERM_RWX = PERM_R | PERM_W | PERM_X

_U32 = struct.Struct("<I")


def perms_to_str(perms: int) -> str:
    """Render permission bits as an ``rwx`` string.

    >>> perms_to_str(PERM_RX)
    'r-x'
    """
    return (
        ("r" if perms & PERM_R else "-")
        + ("w" if perms & PERM_W else "-")
        + ("x" if perms & PERM_X else "-")
    )


class Memory:
    """Sparse paged byte-addressable memory with per-page permissions."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._perms: dict[int, int] = {}

    # -- mapping ----------------------------------------------------------

    def map_region(self, addr: int, size: int, perms: int = PERM_RW) -> None:
        """Map all pages covering ``[addr, addr+size)`` with ``perms``.

        Already-mapped pages keep their contents; their permissions are
        overwritten.
        """
        if size <= 0:
            return
        first = addr >> _PAGE_SHIFT
        last = (addr + size - 1) >> _PAGE_SHIFT
        for page in range(first, last + 1):
            if page not in self._pages:
                self._pages[page] = bytearray(PAGE_SIZE)
            self._perms[page] = perms

    def set_perms(self, addr: int, size: int, perms: int) -> None:
        """Change permissions of already-mapped pages covering a range."""
        first = addr >> _PAGE_SHIFT
        last = (addr + size - 1) >> _PAGE_SHIFT
        for page in range(first, last + 1):
            if page not in self._pages:
                raise MemoryFault(f"set_perms on unmapped page 0x{page << _PAGE_SHIFT:08x}")
            self._perms[page] = perms

    def is_mapped(self, addr: int) -> bool:
        """Return True if the byte at ``addr`` is mapped."""
        return ((addr & WORD_MASK) >> _PAGE_SHIFT) in self._pages

    def perms_at(self, addr: int) -> int:
        """Return the permission bits of the page containing ``addr``.

        Raises :class:`MemoryFault` if unmapped.
        """
        page = (addr & WORD_MASK) >> _PAGE_SHIFT
        try:
            return self._perms[page]
        except KeyError:
            raise MemoryFault(f"access to unmapped address 0x{addr & WORD_MASK:08x}") from None

    def range_perms(self, addr: int, size: int) -> int:
        """Return the AND of permissions across ``[addr, addr+size)``."""
        if size <= 0:
            return 0
        perms = PERM_RWX
        first = addr >> _PAGE_SHIFT
        last = (addr + size - 1) >> _PAGE_SHIFT
        for page in range(first, last + 1):
            try:
                perms &= self._perms[page]
            except KeyError:
                raise MemoryFault(
                    f"access to unmapped address 0x{(page << _PAGE_SHIFT) & WORD_MASK:08x}"
                ) from None
        return perms

    def mapped_regions(self) -> list[tuple[int, int]]:
        """Return maximal contiguous mapped regions as ``(start, end)``.

        ``end`` is exclusive.  Used by memory-scraping attacks, which
        sweep everything that is addressable.
        """
        pages = sorted(self._pages)
        regions: list[tuple[int, int]] = []
        for page in pages:
            start = page << _PAGE_SHIFT
            end = start + PAGE_SIZE
            if regions and regions[-1][1] == start:
                regions[-1] = (regions[-1][0], end)
            else:
                regions.append((start, end))
        return regions

    # -- raw access (no permission checks) --------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read ``size`` raw bytes starting at ``addr``."""
        addr &= WORD_MASK
        out = bytearray()
        remaining = size
        while remaining > 0:
            page = addr >> _PAGE_SHIFT
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            try:
                data = self._pages[page]
            except KeyError:
                raise MemoryFault(f"read from unmapped address 0x{addr:08x}") from None
            out += data[offset : offset + chunk]
            addr = (addr + chunk) & WORD_MASK
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write raw bytes starting at ``addr``."""
        addr &= WORD_MASK
        offset_in_data = 0
        remaining = len(data)
        while remaining > 0:
            page = addr >> _PAGE_SHIFT
            offset = addr & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - offset)
            try:
                target = self._pages[page]
            except KeyError:
                raise MemoryFault(f"write to unmapped address 0x{addr:08x}") from None
            target[offset : offset + chunk] = data[offset_in_data : offset_in_data + chunk]
            addr = (addr + chunk) & WORD_MASK
            offset_in_data += chunk
            remaining -= chunk

    def read_byte(self, addr: int) -> int:
        return self.read_bytes(addr, 1)[0]

    def write_byte(self, addr: int, value: int) -> None:
        self.write_bytes(addr, bytes([value & 0xFF]))

    def read_word(self, addr: int) -> int:
        """Read a 32-bit little-endian word."""
        return _U32.unpack(self.read_bytes(addr, 4))[0]

    def write_word(self, addr: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        self.write_bytes(addr, _U32.pack(value & WORD_MASK))

    def iter_words(self, start: int, end: int) -> Iterator[tuple[int, int]]:
        """Yield ``(address, word)`` for word-aligned addresses in range."""
        addr = start
        while addr + 4 <= end:
            yield addr, self.read_word(addr)
            addr += 4
