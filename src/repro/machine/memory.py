"""Paged virtual memory for the VN32 machine.

The address space is the flat 32-bit space described in Section II of
the paper: 2**32 bytes, little-endian, holding code, data, stack and
management information side by side.  Storage is sparse (a dict of
4 KiB pages) so a full address space costs nothing until touched.

Each page carries R/W/X permission bits.  Data Execution Prevention
(Section III-C1) is expressed entirely through these bits: the loader
maps text pages R+X and data/stack pages R+W.  With DEP disabled, the
loader simply maps every page RWX, which is the historical pre-DEP
behaviour that direct code injection relies on.

This module performs *no* permission checking itself -- it only stores
bytes and permission bits.  Checked accesses (page permissions, PMA
rules, red zones) are composed in :class:`repro.machine.machine.Machine`,
because what is allowed depends on who is executing (Section IV).

The machine's decoded-instruction cache subscribes to two hooks here:
``code_write_listener`` fires when a write lands on a page the machine
has marked with :meth:`Memory.watch_page` (a page holding cached
decoded instructions), and ``perm_change_listener`` fires on any
mapping or permission change.  Von-Neumann fidelity -- self-modifying
code and code injection executing exactly the bytes last written --
depends on these notifications, so every mutating path below reports
through them.

**Copy-on-write snapshots.**  :meth:`Memory.snapshot` freezes the page
table the way a fork server freezes its parent image: every currently
mapped page becomes *shared* between the live table and the snapshot
(same ``bytearray`` object, recorded in ``_cow_pages``), and the first
subsequent write to a shared page copies it (:meth:`_cow_break`) and
marks it dirty.  :meth:`Memory.restore` then rewinds in O(dirty pages)
by re-installing the shared objects -- it never copies clean pages, so
a trial that touches a handful of stack/data pages resets in
microseconds regardless of image size.  Frozen page objects are never
mutated, which is what makes *multiple* outstanding snapshots sound:
restoring a snapshot other than the most recent one falls back to an
identity diff over the (sparse) page table.
"""

from __future__ import annotations

import struct
import zlib
from itertools import chain, count
from typing import Callable, Iterable, Iterator

from repro.errors import MemoryFault
from repro.isa.instructions import WORD_MASK

#: Page size in bytes.
PAGE_SIZE = 0x1000
_PAGE_SHIFT = 12
_PAGE_MASK = PAGE_SIZE - 1
#: Number of pages in the 32-bit address space.
_NUM_PAGES = 1 << (32 - _PAGE_SHIFT)

#: Permission bits.
PERM_R = 1
PERM_W = 2
PERM_X = 4
PERM_RW = PERM_R | PERM_W
PERM_RX = PERM_R | PERM_X
PERM_RWX = PERM_R | PERM_W | PERM_X

_U32 = struct.Struct("<I")


def perms_to_str(perms: int) -> str:
    """Render permission bits as an ``rwx`` string.

    >>> perms_to_str(PERM_RX)
    'r-x'
    """
    return (
        ("r" if perms & PERM_R else "-")
        + ("w" if perms & PERM_W else "-")
        + ("x" if perms & PERM_X else "-")
    )


def _pages_covering(addr: int, size: int) -> Iterable[int]:
    """Page numbers covering ``[addr, addr+size)``, wrapping at 2**32.

    ``addr`` is masked to the 32-bit space first, matching the raw
    accessors (:meth:`Memory.read_bytes` et al.), so a wrapped address
    near 2**32 resolves to the pages those accessors actually touch.
    """
    addr &= WORD_MASK
    first = addr >> _PAGE_SHIFT
    last = ((addr + size - 1) & WORD_MASK) >> _PAGE_SHIFT
    if first <= last:
        return range(first, last + 1)
    # The byte range wraps past the top of the address space.
    return chain(range(first, _NUM_PAGES), range(0, last + 1))


#: Epochs handed to deserialized snapshots.  Strictly negative and
#: never repeated, so a snapshot that came over the wire can never be
#: mistaken for the live table's most-recent snapshot (whose epochs
#: are positive): restoring one always takes the identity-diff path
#: the first time, then participates in O(dirty) epoch tracking like
#: any other restore point.
_WIRE_EPOCHS = count(-1, -1)


class MemorySnapshot:
    """A frozen page table: shared page objects + a permission copy.

    Produced by :meth:`Memory.snapshot`; opaque to everyone else.  The
    ``bytearray`` objects in ``pages`` are shared with the live table
    (and with any other snapshot taken while they stayed clean) and are
    never mutated -- the live side copies before writing.
    """

    __slots__ = ("epoch", "pages", "perms")

    def __init__(self, epoch: int, pages: dict[int, bytearray],
                 perms: dict[int, int]) -> None:
        self.epoch = epoch
        self.pages = pages
        self.perms = perms

    @property
    def page_count(self) -> int:
        return len(self.pages)

    def to_payload(self) -> tuple:
        """Serializable digest of the frozen page table.

        ``(perms, sorted page numbers, zlib blob)`` -- the sparse
        pages are concatenated in page-number order and compressed as
        one stream (guest images are mostly zeros and repeated code
        patterns; one stream lets the compressor share its window
        across pages).
        """
        nums = sorted(self.pages)
        blob = zlib.compress(
            b"".join(bytes(self.pages[num]) for num in nums), 6)
        return (dict(self.perms), nums, blob)

    @classmethod
    def from_payload(cls, payload: tuple) -> "MemorySnapshot":
        """Rebuild a restorable snapshot from :meth:`to_payload`."""
        perms, nums, blob = payload
        raw = zlib.decompress(blob)
        if len(raw) != len(nums) * PAGE_SIZE:
            raise ValueError(
                f"memory payload holds {len(raw)} bytes for "
                f"{len(nums)} pages"
            )
        pages = {
            num: bytearray(raw[pos:pos + PAGE_SIZE])
            for pos, num in zip(range(0, len(raw), PAGE_SIZE), nums)
        }
        return cls(next(_WIRE_EPOCHS), pages, dict(perms))


class Memory:
    """Sparse paged byte-addressable memory with per-page permissions."""

    def __init__(self) -> None:
        self._pages: dict[int, bytearray] = {}
        self._perms: dict[int, int] = {}
        #: Pages whose raw contents someone wants to be told about
        #: (the machine's decode cache).  Kept tiny: only pages that
        #: currently hold cached decoded instructions are watched.
        self._watched_pages: set[int] = set()
        #: Pages shared with a live :class:`MemorySnapshot`; the first
        #: write to one must copy it (:meth:`_cow_break`).  Mutated in
        #: place, never replaced: the block translator holds aliases.
        self._cow_pages: set[int] = set()
        #: Derived indexes for the trace JIT's inline memory guards:
        #: ``_fast_read`` holds every mapped page with PERM_R;
        #: ``_fast_write`` holds every mapped page with PERM_W that is
        #: neither watched (cached code lives there -- writes must
        #: take the notifying slow path) nor snapshot-shared (writes
        #: must run the copy-on-write break first).  A single set
        #: membership test therefore replaces the perms-dict probe,
        #: the permission mask, and the watched/CoW exclusions on the
        #: generated fast paths.  Like ``_cow_pages`` these are
        #: mutated in place, never replaced: compiled traces alias
        #: them.  Every mutating path below keeps them current.
        self._fast_read: set[int] = set()
        self._fast_write: set[int] = set()
        #: Pages copied or created since the last snapshot()/restore()
        #: -- exactly what a restore of the current snapshot must undo.
        self._dirty_pages: set[int] = set()
        #: Monotonic snapshot-id generator (never reused, so stale
        #: snapshots can always be told apart from the current one).
        self._snap_counter = 0
        #: Id of the snapshot ``_dirty_pages`` is relative to.
        self._snap_epoch = 0
        #: Called with the page number when a watched page is written.
        self.code_write_listener: Callable[[int], None] | None = None
        #: Called (no arguments) on any map_region/set_perms change.
        self.perm_change_listener: Callable[[], None] | None = None

    # -- change notification ----------------------------------------------

    def watch_page(self, page: int) -> None:
        """Ask for ``code_write_listener`` to fire when ``page`` is written."""
        self._watched_pages.add(page)
        self._fast_write.discard(page)

    def unwatch_all(self) -> None:
        released = list(self._watched_pages)
        self._watched_pages.clear()
        for page in released:
            self._update_fast_page(page)

    def _update_fast_page(self, page: int) -> None:
        """Recompute ``page``'s membership in the fast read/write sets."""
        if page not in self._pages:
            self._fast_read.discard(page)
            self._fast_write.discard(page)
            return
        perms = self._perms.get(page, 0)
        if perms & PERM_R:
            self._fast_read.add(page)
        else:
            self._fast_read.discard(page)
        if (perms & PERM_W and page not in self._watched_pages
                and page not in self._cow_pages):
            self._fast_write.add(page)
        else:
            self._fast_write.discard(page)

    def _notify_code_write(self, page: int) -> None:
        self._watched_pages.discard(page)
        self._update_fast_page(page)
        listener = self.code_write_listener
        if listener is not None:
            listener(page)

    def _notify_perm_change(self) -> None:
        listener = self.perm_change_listener
        if listener is not None:
            listener()

    # -- copy-on-write snapshots -------------------------------------------

    def _cow_break(self, page: int) -> None:
        """First write to a snapshot-shared page: replace the shared
        ``bytearray`` with a private copy and mark the page dirty.  The
        shared object stays untouched inside every snapshot holding it."""
        self._pages[page] = bytearray(self._pages[page])
        self._cow_pages.discard(page)
        self._dirty_pages.add(page)
        if self._perms.get(page, 0) & PERM_W and page not in self._watched_pages:
            self._fast_write.add(page)

    def snapshot(self) -> MemorySnapshot:
        """Freeze the current page table into a restorable snapshot.

        O(pages) bookkeeping, zero copying: every mapped page becomes
        shared and the dirty set restarts empty."""
        pages = self._pages
        self._cow_pages.update(pages)
        self._fast_write.clear()
        self._dirty_pages.clear()
        self._snap_counter += 1
        self._snap_epoch = self._snap_counter
        return MemorySnapshot(self._snap_epoch, dict(pages), dict(self._perms))

    def restore(self, snap: MemorySnapshot) -> tuple[list[int], bool]:
        """Rewind contents and permissions to ``snap``.

        Returns ``(changed_pages, perms_changed)`` so the machine
        wrapper (:meth:`Machine.restore`) can invalidate exactly the
        decode/block cache entries that now describe stale bytes --
        this raw layer deliberately does not fire the write/perm
        listeners itself.  O(dirty pages) when ``snap`` is the most
        recent snapshot or restore point; an identity diff over the
        sparse page table otherwise."""
        pages = self._pages
        frozen = snap.pages
        if snap.epoch == self._snap_epoch:
            changed = sorted(self._dirty_pages)
        else:
            stale = {page for page, buf in pages.items()
                     if frozen.get(page) is not buf}
            stale.update(frozen.keys() - pages.keys())
            changed = sorted(stale)
        cow = self._cow_pages
        for page in changed:
            shared = frozen.get(page)
            if shared is None:
                # Mapped after the snapshot: unmap it again.
                del pages[page]
                cow.discard(page)
                self._watched_pages.discard(page)
            else:
                pages[page] = shared
                cow.add(page)
        perms_changed = self._perms != snap.perms
        if perms_changed:
            self._perms.clear()
            self._perms.update(snap.perms)
            # Permissions moved under an unknown set of pages: rebuild
            # the fast sets wholesale (restores that change perms are
            # rare; the campaign path below stays O(changed)).
            self._fast_read.clear()
            self._fast_write.clear()
            for page in self._pages:
                self._update_fast_page(page)
        else:
            for page in changed:
                self._update_fast_page(page)
        self._dirty_pages.clear()
        self._snap_epoch = snap.epoch
        return changed, perms_changed

    @property
    def dirty_page_count(self) -> int:
        """Pages copied or created since the last snapshot/restore."""
        return len(self._dirty_pages)

    # -- mapping ----------------------------------------------------------

    def map_region(self, addr: int, size: int, perms: int = PERM_RW) -> None:
        """Map all pages covering ``[addr, addr+size)`` with ``perms``.

        Already-mapped pages keep their contents; their permissions are
        overwritten.
        """
        if size <= 0:
            return
        pages = self._pages
        page_perms = self._perms
        dirty = self._dirty_pages
        for page in _pages_covering(addr, size):
            if page not in pages:
                pages[page] = bytearray(PAGE_SIZE)
                dirty.add(page)
            page_perms[page] = perms
            self._update_fast_page(page)
        self._notify_perm_change()

    def set_perms(self, addr: int, size: int, perms: int) -> None:
        """Change permissions of already-mapped pages covering a range."""
        for page in _pages_covering(addr, size):
            if page not in self._pages:
                raise MemoryFault(f"set_perms on unmapped page 0x{page << _PAGE_SHIFT:08x}")
            self._perms[page] = perms
            self._update_fast_page(page)
        self._notify_perm_change()

    def is_mapped(self, addr: int) -> bool:
        """Return True if the byte at ``addr`` is mapped."""
        return ((addr & WORD_MASK) >> _PAGE_SHIFT) in self._pages

    def page_perms(self, page: int) -> int:
        """Return the permission bits of ``page`` (0 when unmapped).

        The page-number twin of :meth:`perms_at`, for callers that
        already work in page units (the machine's decode cache and
        block translator); unmapped pages read as no-permissions
        rather than faulting.
        """
        return self._perms.get(page, 0)

    def perms_at(self, addr: int) -> int:
        """Return the permission bits of the page containing ``addr``.

        Raises :class:`MemoryFault` if unmapped.
        """
        page = (addr & WORD_MASK) >> _PAGE_SHIFT
        try:
            return self._perms[page]
        except KeyError:
            raise MemoryFault(f"access to unmapped address 0x{addr & WORD_MASK:08x}") from None

    def range_perms(self, addr: int, size: int) -> int:
        """Return the AND of permissions across ``[addr, addr+size)``."""
        if size <= 0:
            return 0
        perms = PERM_RWX
        page_perms = self._perms
        for page in _pages_covering(addr, size):
            try:
                perms &= page_perms[page]
            except KeyError:
                raise MemoryFault(
                    f"access to unmapped address 0x{(page << _PAGE_SHIFT) & WORD_MASK:08x}"
                ) from None
        return perms

    def mapped_regions(self) -> list[tuple[int, int]]:
        """Return maximal contiguous mapped regions as ``(start, end)``.

        ``end`` is exclusive.  Used by memory-scraping attacks, which
        sweep everything that is addressable.
        """
        pages = sorted(self._pages)
        regions: list[tuple[int, int]] = []
        for page in pages:
            start = page << _PAGE_SHIFT
            end = start + PAGE_SIZE
            if regions and regions[-1][1] == start:
                regions[-1] = (regions[-1][0], end)
            else:
                regions.append((start, end))
        return regions

    # -- raw access (no permission checks) --------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read ``size`` raw bytes starting at ``addr``."""
        addr &= WORD_MASK
        page = addr >> _PAGE_SHIFT
        offset = addr & _PAGE_MASK
        pages = self._pages
        if offset + size <= PAGE_SIZE:
            # Fast path: the whole read lives inside one page.
            try:
                data = pages[page]
            except KeyError:
                raise MemoryFault(f"read from unmapped address 0x{addr:08x}") from None
            return bytes(data[offset : offset + size])
        out = bytearray()
        remaining = size
        while remaining > 0:
            page = addr >> _PAGE_SHIFT
            offset = addr & _PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            try:
                data = pages[page]
            except KeyError:
                raise MemoryFault(f"read from unmapped address 0x{addr:08x}") from None
            out += data[offset : offset + chunk]
            addr = (addr + chunk) & WORD_MASK
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        """Write raw bytes starting at ``addr``."""
        addr &= WORD_MASK
        pages = self._pages
        watched = self._watched_pages
        cow = self._cow_pages
        offset_in_data = 0
        remaining = len(data)
        while remaining > 0:
            page = addr >> _PAGE_SHIFT
            offset = addr & _PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            if page in cow:
                self._cow_break(page)
            try:
                target = pages[page]
            except KeyError:
                raise MemoryFault(f"write to unmapped address 0x{addr:08x}") from None
            target[offset : offset + chunk] = data[offset_in_data : offset_in_data + chunk]
            if page in watched:
                self._notify_code_write(page)
            addr = (addr + chunk) & WORD_MASK
            offset_in_data += chunk
            remaining -= chunk

    def read_byte(self, addr: int) -> int:
        addr &= WORD_MASK
        try:
            return self._pages[addr >> _PAGE_SHIFT][addr & _PAGE_MASK]
        except KeyError:
            raise MemoryFault(f"read from unmapped address 0x{addr:08x}") from None

    def write_byte(self, addr: int, value: int) -> None:
        addr &= WORD_MASK
        page = addr >> _PAGE_SHIFT
        if page in self._cow_pages:
            self._cow_break(page)
        try:
            self._pages[page][addr & _PAGE_MASK] = value & 0xFF
        except KeyError:
            raise MemoryFault(f"write to unmapped address 0x{addr:08x}") from None
        if page in self._watched_pages:
            self._notify_code_write(page)

    def read_word(self, addr: int) -> int:
        """Read a 32-bit little-endian word."""
        addr &= WORD_MASK
        offset = addr & _PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            # Fast path: the word lies inside one page.
            try:
                return _U32.unpack_from(self._pages[addr >> _PAGE_SHIFT], offset)[0]
            except KeyError:
                raise MemoryFault(f"read from unmapped address 0x{addr:08x}") from None
        return _U32.unpack(self.read_bytes(addr, 4))[0]

    def write_word(self, addr: int, value: int) -> None:
        """Write a 32-bit little-endian word."""
        addr &= WORD_MASK
        offset = addr & _PAGE_MASK
        if offset <= PAGE_SIZE - 4:
            page = addr >> _PAGE_SHIFT
            if page in self._cow_pages:
                self._cow_break(page)
            try:
                _U32.pack_into(self._pages[page], offset, value & WORD_MASK)
            except KeyError:
                raise MemoryFault(f"write to unmapped address 0x{addr:08x}") from None
            if page in self._watched_pages:
                self._notify_code_write(page)
            return
        self.write_bytes(addr, _U32.pack(value & WORD_MASK))

    def iter_words(self, start: int, end: int) -> Iterator[tuple[int, int]]:
        """Yield ``(address, word)`` for word-aligned addresses in range.

        The inner loop of the memory-scraping attacks: each page's
        buffer is snapshot once and unpacked with
        :meth:`struct.Struct.iter_unpack`, instead of a chunked
        ``read_bytes`` round-trip per word.
        """
        addr = start
        pages = self._pages
        while addr + 4 <= end:
            masked = addr & WORD_MASK
            offset = masked & _PAGE_MASK
            run = min(end - addr, PAGE_SIZE - offset)
            if run >= 4:
                try:
                    buf = pages[masked >> _PAGE_SHIFT]
                except KeyError:
                    raise MemoryFault(
                        f"read from unmapped address 0x{masked:08x}"
                    ) from None
                count = run >> 2
                chunk = bytes(buf[offset : offset + (count << 2)])
                for (word,) in _U32.iter_unpack(chunk):
                    yield addr, word
                    addr += 4
            else:
                # An unaligned word straddling a page boundary.
                yield addr, self.read_word(addr)
                addr += 4
