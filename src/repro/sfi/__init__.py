"""Software Fault Isolation (Section IV-A's second mechanism)."""

from repro.sfi.rewriter import (
    DATA_BASE_SYMBOL,
    EXIT_SYMBOL,
    SANDBOX_MASK,
    SFIRewriter,
    TEXT_BASE_SYMBOL,
    sfi_rewrite,
)

#: The trusted host-side springboard: saves the host stack pointer in
#: a trusted cell, switches to the sandbox stack, and enters the
#: sandbox at the requested address; ``__sfi_exit`` is the only way
#: control returns (the rewriter routes every sandbox ``ret`` through
#: it, and it restores the host context).
SFI_RUNTIME_ASM = """
; sfi_runtime.s -- trusted springboard for one SFI sandbox.
.text
.global sfi_invoke
sfi_invoke:                 ; sfi_invoke(entry, arg) -> sandbox result
    mov r6, __sfi_saved_sp
    store [r6], sp          ; save host context in trusted memory
    load r7, [sp+4]         ; entry address (chosen by the host)
    load r0, [sp+8]         ; argument, passed to the sandbox in r0
    mov r1, __sfi_stack_top
    mov sp, r1              ; switch to the sandboxed stack
    push r0                 ; argument, per the stack convention too
    mov r1, __sfi_exit
    push r1                 ; the entry's eventual ret exits here
    jmp r7

.global __sfi_exit
__sfi_exit:                 ; every sandbox return funnels here
    mov r6, __sfi_saved_sp
    load sp, [r6]           ; back on the host stack (r0 = result)
    ret

.data
__sfi_saved_sp: .word 0
"""


def sfi_runtime_object():
    """Assemble a fresh trusted-runtime object (objects are mutable)."""
    from repro.asm import assemble

    return assemble(SFI_RUNTIME_ASM, "sfi_runtime")


__all__ = [
    "DATA_BASE_SYMBOL",
    "EXIT_SYMBOL",
    "SANDBOX_MASK",
    "SFIRewriter",
    "TEXT_BASE_SYMBOL",
    "sfi_rewrite",
    "SFI_RUNTIME_ASM",
    "sfi_runtime_object",
]
