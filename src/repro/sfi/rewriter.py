"""Software Fault Isolation: sandboxing untrusted machine code by
rewriting (Section IV-A, Wahbe et al. [19] / NaCl [20]).

The paper lists SFI as the second isolation mechanism: "by
combinations of code analysis and code rewriting, the newly loaded
module can be enforced not to do any harm" -- with the critical
assumption that the *host* can inspect/rewrite the module before
loading it, and the fundamental limitation that protection is
**asymmetric**: the host is protected from the module, never the other
way around.  Both properties are implemented and measured here.

The rewriter takes a relocatable object file (the untrusted module as
shipped) and produces a sandboxed object:

* every ``load``/``store``/``loadb``/``storeb`` is preceded by a guard
  that computes the effective address, masks it to the low 20 bits,
  and rebases it into the module's 1 MiB data sandbox;
* every write to SP is followed by the same mask-and-rebase, so the
  stack can never leave the sandbox (pushes/calls are then safe
  without per-op guards);
* indirect jumps/calls are masked into the module's code region;
* ``ret`` is rewritten to pop the return target and either (a) take
  the dedicated trusted exit stub address verbatim, or (b) mask it
  into the code region -- so control can only leave through the host's
  springboard;
* ``sys`` is replaced with ``halt``: sandboxed code gets no direct
  platform access.

The guards use r6/r7 as dedicated scratch registers (a register
reservation, as real SFI ABIs make).  Because the assembler emits
relocations for *every* label reference, the rewriter can expand
instructions freely: it remaps symbol offsets and relocation sites and
lets the linker repatch everything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError, LinkError
from repro.isa import build
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Instruction, Mem
from repro.isa.registers import R6, R7, SP
from repro.link.objfile import ObjectFile, Relocation, Symbol, TEXT

#: Sandbox size: low bits preserved by the mask.
SANDBOX_MASK = 0xFFFFF  # 1 MiB

#: Linker-provided bases (resolved per SFI object, like __module_start).
DATA_BASE_SYMBOL = "__sfi_sandbox"
TEXT_BASE_SYMBOL = "__sfi_text"
EXIT_SYMBOL = "__sfi_exit"

_MEM_OPS = {"load", "store", "loadb", "storeb"}


@dataclass
class _Emitted:
    """One output instruction, plus an optional relocation for its
    imm32 and an optional label bound to its start."""

    instruction: Instruction
    reloc_symbol: str | None = None
    reloc_addend: int = 0
    #: imm32 byte offset within the encoding (2 for reg-imm, 1 for imm).
    reloc_imm_offset: int = 2


def _mask_into(base_symbol: str) -> list[_Emitted]:
    """Mask r6 to the sandbox and rebase: r6 = base | (r6 & MASK)."""
    return [
        _Emitted(build.mov_ri(R7, SANDBOX_MASK)),
        _Emitted(build.and_rr(R6, R7)),
        _Emitted(build.mov_ri(R7, 0), reloc_symbol=base_symbol),
        _Emitted(build.or_rr(R6, R7)),
    ]


class SFIRewriter:
    """Rewrites one untrusted object file into its sandboxed form."""

    def __init__(self, obj: ObjectFile):
        self.source = obj
        self._label_counter = 0

    def rewrite(self) -> ObjectFile:
        data = bytes(self.source.text.data)
        relocs_by_offset: dict[int, Relocation] = {}
        for reloc in self.source.text.relocations:
            relocs_by_offset[reloc.offset] = reloc

        out = ObjectFile(self.source.name)
        out.sfi = True
        out.protected = False
        out.kernel = False
        # Data section passes through untouched (it lives inside the
        # sandbox; only code needs confinement).
        out.data.data = bytearray(self.source.data.data)
        out.data.relocations = list(self.source.data.relocations)

        offset_map: dict[int, int] = {}
        emitted: list[_Emitted] = []
        extra_symbols: list[tuple[str, int]] = []  # (name, emitted-index)

        offset = 0
        while offset < len(data):
            try:
                insn, length = decode(data, offset)
            except DecodeError as exc:
                raise LinkError(
                    f"SFI rewriter: undecodable byte at offset {offset} in "
                    f"{self.source.name}: {exc}"
                ) from exc
            offset_map[offset] = len(emitted)
            original_reloc = None
            for position in range(offset, offset + length):
                if position in relocs_by_offset:
                    original_reloc = relocs_by_offset[position]
            emitted.extend(
                self._rewrite_one(insn, original_reloc, extra_symbols,
                                  len(emitted))
            )
            offset += length
        offset_map[len(data)] = len(emitted)

        # Serialise, assigning byte offsets.
        byte_offsets: list[int] = []
        blob = bytearray()
        for item in emitted:
            byte_offsets.append(len(blob))
            blob += encode(item.instruction)
        byte_offsets.append(len(blob))
        out.text.data = blob

        for index, item in enumerate(emitted):
            if item.reloc_symbol is not None:
                out.text.relocations.append(Relocation(
                    byte_offsets[index] + item.reloc_imm_offset,
                    item.reloc_symbol, item.reloc_addend,
                ))

        # Remap the source's symbols onto the new layout.
        for symbol in self.source.symbols.values():
            if symbol.section == TEXT:
                new_index = offset_map[symbol.offset]
                new_offset = byte_offsets[new_index]
            else:
                new_offset = symbol.offset
            out.symbols[symbol.name] = Symbol(
                symbol.name, symbol.section, new_offset, symbol.kind,
                symbol.is_global,
            )
        for name, index in extra_symbols:
            out.symbols[name] = Symbol(name, TEXT, byte_offsets[index], "label")
        return out

    # -- per-instruction rules ------------------------------------------------

    def _fresh_label(self) -> str:
        self._label_counter += 1
        return f".Lsfi_{self._label_counter}"

    def _rewrite_one(
        self,
        insn: Instruction,
        original_reloc: Relocation | None,
        extra_symbols: list,
        emitted_base: int,
    ) -> list[_Emitted]:
        mnemonic = insn.mnemonic

        def passthrough() -> list[_Emitted]:
            item = _Emitted(insn)
            if original_reloc is not None:
                item.reloc_symbol = original_reloc.symbol
                item.reloc_addend = original_reloc.addend
                # imm32 position within this encoding:
                from repro.isa.opcodes import OperandFormat

                item.reloc_imm_offset = 1 if insn.fmt is OperandFormat.IMM32 else 2
            return [item]

        if mnemonic == "sys":
            # No direct platform access from the sandbox.
            return [_Emitted(build.halt())]

        if mnemonic in _MEM_OPS:
            reg, mem = insn.operands
            guarded: list[_Emitted] = [
                _Emitted(build.mov_rr(R6, mem.base)),
                _Emitted(build.add_ri(R6, mem.disp)),
                *_mask_into(DATA_BASE_SYMBOL),
            ]
            replacement = {
                "load": build.load, "store": build.store,
                "loadb": build.loadb, "storeb": build.storeb,
            }[mnemonic](reg, Mem(R6, 0))
            guarded.append(_Emitted(replacement))
            return guarded

        from repro.isa.opcodes import OperandFormat

        if mnemonic in ("jmp", "call") and insn.fmt is OperandFormat.REG:
            (reg,) = insn.operands
            out = [_Emitted(build.mov_rr(R6, reg))]
            out += _mask_into(TEXT_BASE_SYMBOL)
            transfer = build.jmp_reg(R6) if mnemonic == "jmp" else build.call_reg(R6)
            out.append(_Emitted(transfer))
            return out

        if mnemonic == "ret":
            # pop target; allow the exact trusted exit; else mask into
            # the sandbox's own code.
            skip = self._fresh_label()
            out = [
                _Emitted(build.pop(R6)),
                _Emitted(build.mov_ri(R7, 0), reloc_symbol=EXIT_SYMBOL),
                _Emitted(build.cmp_rr(R6, R7)),
                _Emitted(build.jz(0), reloc_symbol=skip, reloc_imm_offset=1),
                *_mask_into(TEXT_BASE_SYMBOL),
            ]
            skip_index = emitted_base + len(out)
            extra_symbols.append((skip, skip_index))
            out.append(_Emitted(build.jmp_reg(R6)))
            return out

        result = passthrough()
        # Any instruction that may move SP gets a confinement suffix.
        writes_sp = (
            (mnemonic in ("mov", "add", "sub") and insn.operands
             and insn.operands[0] == SP)
            or (mnemonic == "pop" and insn.operands[0] == SP)
        )
        if writes_sp:
            result += [
                _Emitted(build.mov_rr(R6, SP)),
                *_mask_into(DATA_BASE_SYMBOL),
                _Emitted(build.mov_rr(SP, R6)),
            ]
        return result


def sfi_rewrite(obj: ObjectFile) -> ObjectFile:
    """Sandbox an untrusted object file (see module docstring)."""
    return SFIRewriter(obj).rewrite()
