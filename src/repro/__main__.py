"""Command-line interface for the repro toolchain.

Usage::

    python -m repro run PROG.c [--mitigations deployed] [--stdin-hex 4141..]
    python -m repro asm PROG.c            # show generated assembly
    python -m repro disasm PROG.c         # show machine code listing
    python -m repro debug PROG.c -b main  # break, then drop a report
    python -m repro experiments [ids...]  # same as python -m repro.experiments
"""

from __future__ import annotations

import argparse
import sys

from repro.link import load
from repro.minic import compile_source, compile_to_asm
from repro.minic.compiler import options_from_mitigations
from repro.mitigations import config as mitigations_config
from repro.programs.builders import libc_object

#: Named postures accepted by ``--mitigations``.
POSTURES = {
    "none": mitigations_config.NONE,
    "canary": mitigations_config.CANARY,
    "dep": mitigations_config.DEP,
    "aslr": mitigations_config.ASLR,
    "deployed": mitigations_config.DEPLOYED,
    "hardened": mitigations_config.HARDENED,
    "safe": mitigations_config.SAFE_LANGUAGE,
    "testing": mitigations_config.TESTING,
}


def _read_source(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _build(args) -> "repro.link.LoadedProgram":
    config = POSTURES[args.mitigations]
    options = options_from_mitigations(config)
    if getattr(args, "optimize", False):
        from dataclasses import replace

        options = replace(options, optimize=True)
    objects = [compile_source(_read_source(args.program), "program", options)]
    if not getattr(args, "no_libc", False):
        objects.append(libc_object())
    return load(objects, config, seed=getattr(args, "seed", 0))


def cmd_run(args) -> int:
    program = _build(args)
    if args.stdin_hex:
        program.feed(bytes.fromhex(args.stdin_hex))
    if args.stdin:
        program.feed(args.stdin.encode())
    result = program.run(args.max_instructions)
    sys.stdout.write(result.output.decode("latin-1"))
    sys.stdout.flush()
    print(f"\n-- {result.status.value}"
          + (f" (exit {result.exit_code})" if result.exit_code is not None else "")
          + (f" [{result.fault}]" if result.fault else "")
          + f", {result.instructions} instructions", file=sys.stderr)
    if result.shell_spawned:
        print("-- SHELL SPAWNED (attack succeeded)", file=sys.stderr)
    return 0 if result.exit_code in (0, None) and not result.fault else 1


def cmd_asm(args) -> int:
    config = POSTURES[args.mitigations]
    print(compile_to_asm(_read_source(args.program), "program",
                         options_from_mitigations(config)))
    return 0


def cmd_disasm(args) -> int:
    from repro.asm.disassembler import disassemble_text

    config = POSTURES[args.mitigations]
    obj = compile_source(_read_source(args.program), "program",
                         options_from_mitigations(config))
    print(disassemble_text(bytes(obj.text.data)))
    return 0


def cmd_debug(args) -> int:
    from repro.machine.debugger import Debugger

    program = _build(args)
    if args.stdin_hex:
        program.feed(bytes.fromhex(args.stdin_hex))
    if args.stdin:
        program.feed(args.stdin.encode())
    debugger = Debugger(program)
    for location in args.breakpoints or []:
        debugger.add_breakpoint(location)
    event = debugger.cont(args.max_instructions)
    print(f"stopped: {event}")
    print("\nregisters:")
    for name, value in debugger.registers().items():
        print(f"  {name:<4} 0x{value:08x}")
    print("\nbacktrace:")
    for frame in debugger.backtrace():
        print(f"  {frame}")
    print("\ncode:")
    print(debugger.disassemble_around(debugger.machine.cpu.ip, count=6))
    return 0


def cmd_experiments(args) -> int:
    from repro.experiments.__main__ import main as experiments_main

    return experiments_main(args.ids)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MinC/VN32 toolchain from the DATE'16 software-security "
                    "reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("program", help="MinC source file")
        p.add_argument("--mitigations", choices=sorted(POSTURES), default="none")

    run_p = sub.add_parser("run", help="compile and execute a MinC program")
    common(run_p)
    run_p.add_argument("--stdin", default="", help="input text to feed")
    run_p.add_argument("--stdin-hex", default="", help="input bytes in hex")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--optimize", action="store_true")
    run_p.add_argument("--no-libc", action="store_true")
    run_p.add_argument("--max-instructions", type=int, default=2_000_000)
    run_p.set_defaults(func=cmd_run)

    asm_p = sub.add_parser("asm", help="show the generated assembly")
    common(asm_p)
    asm_p.set_defaults(func=cmd_asm)

    disasm_p = sub.add_parser("disasm", help="show the machine-code listing")
    common(disasm_p)
    disasm_p.set_defaults(func=cmd_disasm)

    debug_p = sub.add_parser("debug", help="run under the debugger")
    common(debug_p)
    debug_p.add_argument("-b", "--breakpoints", action="append",
                         help="symbol or address to break at")
    debug_p.add_argument("--stdin", default="")
    debug_p.add_argument("--stdin-hex", default="")
    debug_p.add_argument("--seed", type=int, default=0)
    debug_p.add_argument("--max-instructions", type=int, default=2_000_000)
    debug_p.set_defaults(func=cmd_debug)

    exp_p = sub.add_parser("experiments", help="run the paper experiments")
    exp_p.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    exp_p.set_defaults(func=cmd_experiments)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
