"""E7 -- countering the *introduction* of vulnerabilities (III-C2).

Three prongs, as in the paper:

1. **safe language** -- MinC-safe rejects the bounds-losing constructs
   outright; programs that compile cannot be memory-unsafe (every
   surviving array access carries a ``chk``).  The vulnerable victims
   either fail to compile or their exploit attempt dies on a bounds
   fault.
2. **static analysis** -- measured precision/recall on the labelled
   corpus, for the all-findings and definite-only reporting policies.
3. **testing with run-time checks** -- fuzzing detection rates with
   and without ASan-style red zones.
"""

from __future__ import annotations

from repro.analysis.fuzzer import compare_detection
from repro.analysis.static_analyzer import evaluate_on_corpus
from repro.errors import BoundsFault, CompileError
from repro.experiments.reporting import render_kv, render_table
from repro.minic import CompileOptions, compile_source
from repro.programs import sources

#: Safe-language rewrite of the Figure 1 server: the buffer parameter
#: carries its size, so the compiler clamps the read (and the original
#: `char buf[]` version is *rejected* by the safe type rules).
FIG1_SAFE_LANGUAGE = """
void get_request(int fd, char buf[16]) {
    read(fd, buf, 32);
}

void process(int fd) {
    char buf[16];
    get_request(fd, buf);
    write(1, buf, 16);
}

void main() {
    int fd = 1;
    process(fd);
}
"""


def safe_language_report() -> list[dict]:
    """What MinC-safe does to each vulnerable victim."""
    rows = []
    safe_options = CompileOptions(bounds_checks=True)
    for name, source in sources.VICTIMS.items():
        if name == "fig1_safe":
            continue
        try:
            compile_source(source, name, safe_options)
            status = "compiles (bounds-checked)"
        except CompileError as exc:
            status = f"rejected: {str(exc)[:60]}"
        rows.append({"victim": name, "safe_mode": status})

    # The rewritten server compiles -- and the Figure 1 attack input
    # now dies on the compiler-inserted clamp instead of smashing.
    from repro.link import load
    from repro.programs.builders import libc_object
    from repro.mitigations.config import SAFE_LANGUAGE

    obj = compile_source(FIG1_SAFE_LANGUAGE, "fig1_rewrite", safe_options)
    program = load([obj, libc_object()], SAFE_LANGUAGE)
    program.feed(b"A" * 32)
    result = program.run()
    blocked = isinstance(result.fault, BoundsFault)
    rows.append({
        "victim": "fig1 (safe-language rewrite)",
        "safe_mode": "overflow attempt -> BoundsFault"
        if blocked else f"UNEXPECTED: {result.status}",
    })
    return rows


def render_safe_language(rows: list[dict]) -> str:
    return render_table(
        ["victim", "under MinC-safe (the Java/Rust stand-in)"],
        [[r["victim"], r["safe_mode"]] for r in rows],
        title="E7a: the safe language closes every vehicle",
    )


def static_analysis_report() -> str:
    evaluation = evaluate_on_corpus()
    deep = evaluate_on_corpus(interprocedural=True)
    body = render_table(
        ["program", "vulnerable", "flagged(all)", "flagged(definite)",
         "expected behaviour"],
        [[r["name"], r["vulnerable"], r["flagged_any"], r["flagged_definite"],
          r["expected"]] for r in evaluation["rows"]],
        title="E7b: static analyzer on the labelled corpus",
    )
    all_metrics = evaluation["all_findings"]
    definite = evaluation["definite_only"]
    deep_metrics = deep["all_findings"]
    summary = render_kv("the effort ladder ([13] -> [14][15])", {
        "definite only (lowest effort)":
            f"precision {definite['precision']:.2f}, "
            f"recall {definite['recall']:.2f} "
            f"(FP={definite['fp']}, FN={definite['fn']})",
        "all findings":
            f"precision {all_metrics['precision']:.2f}, "
            f"recall {all_metrics['recall']:.2f} "
            f"(FP={all_metrics['fp']}, FN={all_metrics['fn']})",
        "interprocedural (highest effort)":
            f"precision {deep_metrics['precision']:.2f}, "
            f"recall {deep_metrics['recall']:.2f} "
            f"(FP={deep_metrics['fp']}, FN={deep_metrics['fn']})",
    })
    return body + "\n" + summary


def fuzzing_report(runs: int = 120) -> str:
    comparison = compare_detection(runs=runs)
    plain = comparison["plain"]
    asan = comparison["asan"]
    return render_table(
        ["build", "triggering inputs", "detected", "silent-class detected"],
        [
            ["plain", plain.triggering, plain.detected,
             f"{plain.detected_silent}/{plain.silent_class}"],
            ["asan red zones", asan.triggering, asan.detected,
             f"{asan.detected_silent}/{asan.silent_class}"],
        ],
        title="E7c: fuzzing detection with vs without run-time checks",
    )
