"""Extension experiment -- mutually distrustful protected modules.

Implements the multi-module scenario the paper lists as ongoing
research (Section IV-B, [32][33]) on top of the existing PMA and
secure-compilation machinery, and measures:

* both modules serve their honest clients;
* A calls B through B's entry point (cooperation under distrust);
* B cannot unseal A's sealed state (hardware key separation);
* A's in-module probe reads ordinary memory fine but faults on B's
  memory (each module is "outside" for the other).
"""

from __future__ import annotations

from repro.attacks.payloads import p32
from repro.errors import ProtectionFault
from repro.experiments.reporting import render_table
from repro.link import LoadedProgram, load
from repro.minic import compile_source
from repro.minic.compiler import options_from_mitigations
from repro.mitigations.config import MitigationConfig, NONE
from repro.programs import multimodule
from repro.programs.builders import libc_object


def build_multimodule(config: MitigationConfig = NONE, *,
                      seed: int = 0) -> LoadedProgram:
    module_options = options_from_mitigations(config, protected=True,
                                              secure=True)
    objects = [
        compile_source(multimodule.MULTI_MAIN, "main",
                       options_from_mitigations(config)),
        compile_source(multimodule.MODULE_A, "module_a", module_options),
        compile_source(multimodule.MODULE_B, "module_b", module_options),
        libc_object(),
    ]
    return load(objects, config, seed=seed)


def multimodule_report(seed: int = 0) -> dict:
    # Run 1: probe a harmless address (main's own data) -- everything
    # should work end to end.
    program = build_multimodule(seed=seed)
    benign_target = program.image.symbol("main:blob")
    program.feed(p32(benign_target))
    benign = program.run()
    benign_lines = [int(x) for x in benign.output.split()]

    # Run 2: module A probes module B's secret.
    program = build_multimodule(seed=seed)
    secret_b_addr = program.image.symbol("module_b:secret_b")
    program.feed(p32(secret_b_addr))
    hostile = program.run()
    hostile_lines = [int(x) for x in hostile.output.split()]

    # Run 3: module A probes module A's own data (fine from inside A).
    program = build_multimodule(seed=seed)
    secret_a_addr = program.image.symbol("module_a:secret_a")
    program.feed(p32(secret_a_addr))
    own = program.run()
    own_lines = [int(x) for x in own.output.split()]

    modules = program.machine.pma.modules
    return {
        "a_serves_client": benign_lines[0] == 111,
        "b_serves_client": benign_lines[1] == 222,
        "a_calls_b_through_entry": benign_lines[2] == 222,
        "b_cannot_unseal_a": benign_lines[3] == -1,
        "benign_probe_ok": benign.status.value == "exited",
        "a_probing_b_denied": isinstance(hostile.fault, ProtectionFault),
        "a_probe_output_before_fault": hostile_lines,
        "a_reads_own_secret": own_lines[-1] == 111,
        "distinct_module_keys": modules[0].module_key != modules[1].module_key,
    }


def render_multimodule(report: dict) -> str:
    rows = [
        ["A serves its client (111)", report["a_serves_client"]],
        ["B serves its client (222)", report["b_serves_client"]],
        ["A calls B via B's entry point", report["a_calls_b_through_entry"]],
        ["B cannot unseal A's sealed state", report["b_cannot_unseal_a"]],
        ["A probing ordinary memory works", report["benign_probe_ok"]],
        ["A probing its own secret works", report["a_reads_own_secret"]],
        ["A probing B's secret denied by hardware", report["a_probing_b_denied"]],
        ["hardware-derived keys are distinct", report["distinct_module_keys"]],
    ]
    return render_table(
        ["property (mutually distrustful modules)", "holds"],
        rows,
        title="multi-module PMA: isolation with cooperation",
    )
