"""E10 -- Figure 4: secure compilation vs the function-pointer attack.

Four scenarios over the callback-taking secret module:

* honest client, insecure compile -- even the *legitimate* callback
  breaks: its return re-enters the module mid-code, which the PMA
  refuses (naive compilation to a PMA is wrong both ways);
* honest client, secure compile -- works (the outcall/re-entry stubs
  route the callback's return through an entry point);
* attacker, insecure compile -- the Figure 4 exploit: tries_left is
  reset and the secret leaks through the hijacked epilogue;
* attacker, secure compile -- the inserted function-pointer check
  aborts the call.

Plus the end-to-end brute-force comparison the paper frames the attack
with.
"""

from __future__ import annotations

from repro.attacks.payloads import p32
from repro.attacks.pma_exploit import (
    attack_direct_midmodule_call,
    attack_fig4_function_pointer,
    brute_force_report,
)
from repro.experiments.reporting import render_kv, render_table
from repro.mitigations.config import NONE
from repro.programs.builders import build_secret_program


def honest_client(secure: bool, seed: int = 0) -> dict:
    """The legitimate Figure 4 usage: a pin-from-stdin callback."""
    program = build_secret_program(NONE, protected=True, secure=secure,
                                   fig4=True, seed=seed)
    program.feed(p32(2) + p32(7777) + p32(1234))
    result = program.run()
    answers = [int(line) for line in result.output.split()] if not result.crashed else []
    return {
        "compile": "secure" if secure else "insecure",
        "status": result.status.value,
        "fault": result.fault_name(),
        "answers": answers,
        "works": answers == [0, 666],
    }


def scenario_table(seed: int = 0) -> list[dict]:
    rows = []
    for secure in (False, True):
        honest = honest_client(secure, seed=seed)
        rows.append({
            "scenario": f"honest client, {'secure' if secure else 'insecure'} compile",
            "outcome": "works" if honest["works"]
            else f"{honest['status']} [{honest['fault']}]",
        })
    for secure in (False, True):
        attack = attack_fig4_function_pointer(secure=secure, seed=seed)
        rows.append({
            "scenario": f"fig4 attacker, {'secure' if secure else 'insecure'} compile",
            "outcome": f"{attack.outcome.value}: {attack.detail[:48]}",
        })
    direct = attack_direct_midmodule_call(seed=seed)
    rows.append({
        "scenario": "attacker calls mid-module address directly",
        "outcome": f"{direct.outcome.value}: {direct.detail[:48]}",
    })
    return rows


def render_scenarios(rows: list[dict]) -> str:
    return render_table(
        ["scenario", "outcome"],
        [[r["scenario"], r["outcome"]] for r in rows],
        title="E10: Figure 4 -- insecure vs secure compilation to the PMA",
    )


def render_brute_force(seed: int = 0) -> str:
    insecure = brute_force_report(secure=False, seed=seed)
    secure = brute_force_report(secure=True, seed=seed)
    return render_kv("E10b: PIN brute force with a 20-candidate space", {
        "insecure compile": (
            f"secret obtained={insecure['secret_obtained']} "
            f"(hijack {insecure['hijack']}, "
            f"{insecure['effective_guesses']} effective guess)"
        ),
        "secure compile": (
            f"secret obtained={secure['secret_obtained']} "
            f"(hijack {secure['hijack']}, lockout holds at "
            f"{secure['effective_guesses']} tries over "
            f"{secure.get('guesses_burned')} candidates)"
        ),
    })
