"""E6 -- ASLR entropy sweep (Section III-C1 + reference [5]).

ASLR works by making addresses unpredictable: a payload built from the
attacker's local study is correct only if the victim drew the same
shifts.  Success probability should fall roughly as ``2**-bits`` per
randomised segment consulted by the payload -- and should return to
~100% when an information leak reveals the shift (the "memory secrecy"
bypass [5]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attacks.io_attacks import attack_leak_then_smash, attack_ret2libc
from repro.experiments.reporting import render_table
from repro.mitigations.config import MitigationConfig


def _trial_seeds(trials: int, base_seed: int,
                 rng: random.Random | None) -> list[int]:
    """Victim load seeds for ``trials`` runs.

    With an explicit ``rng`` the seeds are drawn from it (the CLI's
    ``--seed`` builds one, making the whole sweep one reproducible
    random stream); otherwise the legacy deterministic ladder
    ``base_seed + trial`` is kept so recorded results stay comparable.
    """
    if rng is None:
        return [base_seed + trial for trial in range(trials)]
    return [rng.randrange(2 ** 31) for _ in range(trials)]


@dataclass
class SweepPoint:
    bits: int
    trials: int
    blind_successes: int
    leak_successes: int

    @property
    def blind_rate(self) -> float:
        return self.blind_successes / self.trials

    @property
    def leak_rate(self) -> float:
        return self.leak_successes / self.trials

    @property
    def expected_blind_rate(self) -> float:
        """One correct guess of the text shift among 2**bits."""
        return 2.0 ** -self.bits


def sweep(bits_list=(0, 1, 2, 3, 4, 6), trials: int = 32,
          base_seed: int = 100,
          rng: random.Random | None = None) -> list[SweepPoint]:
    """Run both attacks at each entropy level over fresh victim seeds."""
    points = []
    for bits in bits_list:
        config = MitigationConfig(aslr_bits=bits) if bits else MitigationConfig()
        blind = 0
        with_leak = 0
        for seed in _trial_seeds(trials, base_seed, rng):
            if attack_ret2libc(config, seed=seed).succeeded:
                blind += 1
            if attack_leak_then_smash(config, seed=seed).succeeded:
                with_leak += 1
        points.append(SweepPoint(bits, trials, blind, with_leak))
    return points


def partial_overwrite_comparison(trials: int = 48, bits: int = 16,
                                 base_seed: int = 500,
                                 rng: random.Random | None = None) -> dict:
    """Full-address guess vs 2-byte partial overwrite under page ASLR.

    The partial overwrite only needs the shift's bits 12..15 to be
    zero (~1/16); the full guess needs the entire shift (~2^-16).
    """
    from repro.attacks.io_attacks import attack_partial_overwrite

    config = MitigationConfig(aslr_bits=bits)
    full = 0
    partial = 0
    for seed in _trial_seeds(trials, base_seed, rng):
        if attack_ret2libc(config, seed=seed).succeeded:
            full += 1
        if attack_partial_overwrite(config, seed=seed).succeeded:
            partial += 1
    return {
        "trials": trials,
        "aslr_bits": bits,
        "full_overwrite_successes": full,
        "partial_overwrite_successes": partial,
        "full_rate": full / trials,
        "partial_rate": partial / trials,
        "expected_full_rate": 2.0 ** -bits,
        "expected_partial_rate": 1 / 16,
    }


def render_sweep(points: list[SweepPoint]) -> str:
    rows = [
        [p.bits, p.trials,
         f"{p.blind_rate:.3f}", f"{p.expected_blind_rate:.3f}",
         f"{p.leak_rate:.3f}"]
        for p in points
    ]
    return render_table(
        ["ASLR bits", "trials", "blind success", "~expected 2^-bits",
         "with info leak"],
        rows,
        title="E6: attack success probability vs ASLR entropy",
    )
