"""Extension experiment -- Software Fault Isolation (Section IV-A).

The paper's second isolation mechanism: the host *rewrites* the
untrusted module before loading it, confining every memory access and
control transfer to a sandbox.  Measured here:

* a benign sandboxed module still computes correctly (through the
  trusted springboard, on its own sandboxed stack);
* a hostile module that reads the host's secret / corrupts host data /
  jumps into host code / invokes syscalls succeeds when loaded raw and
  is fully contained once rewritten;
* the **asymmetry** the paper calls fundamental: the host reads the
  sandbox's memory freely -- SFI protects the host from the module,
  never the module from the host (that is what the PMA is for).
"""

from __future__ import annotations

from repro.asm import assemble
from repro.experiments.reporting import render_table
from repro.link import LoadedProgram, load
from repro.minic import CompileOptions, compile_source
from repro.mitigations.config import NONE
from repro.programs.builders import libc_object
from repro.sfi import sfi_rewrite, sfi_runtime_object

#: The host application: runs the untrusted module through the
#: springboard, then checks its own state.
HOST_MAIN = """
int sfi_invoke(int entry, int arg);
int sandbox_main(int x);

static int host_secret = 99119911;

void main() {
    print_int(sfi_invoke(sandbox_main, 7));
    print_int(host_secret);
}
"""

#: A benign untrusted module (MinC): pure computation on its own data.
BENIGN_SANDBOX = """
static int table[16];

int sandbox_main(int x) {
    int i;
    for (i = 0; i < 16; i++) { table[i] = x + i; }
    int total = 0;
    for (i = 0; i < 16; i++) { total += table[i]; }
    return total;
}
"""

#: Hostile untrusted modules (assembly), parameterised by host addresses.
HOSTILE_READ = """
.text
.global sandbox_main
sandbox_main:
    mov r1, 0x{secret:x}
    load r0, [r1]          ; steal the host's secret
    ret
"""

HOSTILE_WRITE = """
.text
.global sandbox_main
sandbox_main:
    mov r1, 0x{secret:x}
    mov r0, 0xbad
    store [r1], r0         ; corrupt the host's state
    mov r0, 1
    ret
"""

HOSTILE_JUMP = """
.text
.global sandbox_main
sandbox_main:
    mov r1, 0x{target:x}
    jmp r1                 ; escape into host code
"""

HOSTILE_SYSCALL = """
.text
.global sandbox_main
sandbox_main:
    sys 4                  ; spawn a shell directly
    mov r0, 1
    ret
"""


def build_sfi_program(sandbox_obj, *, rewrite: bool, seed: int = 0) -> LoadedProgram:
    if rewrite:
        sandbox_obj = sfi_rewrite(sandbox_obj)
    host = compile_source(HOST_MAIN, "host", CompileOptions())
    return load([host, sandbox_obj, sfi_runtime_object(), libc_object()],
                NONE, seed=seed)


def _study_addresses(template: str) -> dict:
    """The attacker knows the host binary: link a same-shaped dummy to
    learn the layout (all addresses are fixed-width imm32 fields, so
    the sizes do not depend on the values)."""
    dummy = assemble(template.format(secret=0, target=0), "sandbox")
    program = build_sfi_program(dummy, rewrite=False)
    return {
        "secret": program.image.symbol("host:host_secret"),
        "spawn": program.image.symbol("libc_spawn_shell"),
    }


def sfi_table(seed: int = 0) -> list[dict]:
    rows = []

    # Benign module: must work in both modes.
    for rewrite in (False, True):
        benign = compile_source(BENIGN_SANDBOX, "sandbox", CompileOptions())
        program = build_sfi_program(benign, rewrite=rewrite, seed=seed)
        result = program.run()
        lines = [int(x) for x in result.output.split()] if result.fault is None else []
        expected = sum(7 + i for i in range(16))
        rows.append({
            "module": "benign computation",
            "mode": "sandboxed" if rewrite else "raw",
            "outcome": "correct result"
            if lines[:1] == [expected] else f"{result.status.value}",
        })

    scenarios = [
        ("reads host secret", HOSTILE_READ,
         lambda r, lines: lines[:1] == [99119911]),
        ("writes host state", HOSTILE_WRITE,
         lambda r, lines: len(lines) > 1 and lines[1] != 99119911),
        ("jumps into host code", HOSTILE_JUMP,
         lambda r, lines: r.shell_spawned),
        ("invokes syscalls", HOSTILE_SYSCALL,
         lambda r, lines: r.shell_spawned),
    ]
    for label, template, breached in scenarios:
        addresses = _study_addresses(template)
        source = template.format(secret=addresses["secret"],
                                 target=addresses["spawn"])
        for rewrite in (False, True):
            sandbox = assemble(source, "sandbox")
            program = build_sfi_program(sandbox, rewrite=rewrite, seed=seed)
            result = program.run(2_000_000)
            lines = ([int(x) for x in result.output.split()]
                     if result.output else [])
            if breached(result, lines):
                outcome = "HOST COMPROMISED"
            elif result.fault is not None or result.status.value == "halted":
                outcome = "contained (module stopped)"
            else:
                outcome = "contained (host intact)"
            rows.append({
                "module": f"hostile: {label}",
                "mode": "sandboxed" if rewrite else "raw",
                "outcome": outcome,
            })
    return rows


def asymmetry_report(seed: int = 0) -> dict:
    """SFI's fundamental asymmetry: the host can read the sandbox."""
    benign = compile_source(BENIGN_SANDBOX, "sandbox", CompileOptions())
    program = build_sfi_program(benign, rewrite=True, seed=seed)
    program.run()
    table_addr = program.image.symbol("sandbox:table")
    first = program.machine.read_word(table_addr)  # host-context read
    return {
        "host_reads_sandbox_data": first == 7,
        "note": "the sandbox's state is an open book to the host -- "
                "contrast with the PMA, where even the kernel is denied",
    }


def render_sfi(rows: list[dict]) -> str:
    return render_table(
        ["untrusted module", "raw load", "after SFI rewriting"],
        _pivot(rows),
        title="SFI: untrusted modules, before and after rewriting",
    )


def _pivot(rows: list[dict]) -> list[list[str]]:
    order: list[str] = []
    by_module: dict[str, dict] = {}
    for row in rows:
        if row["module"] not in by_module:
            order.append(row["module"])
            by_module[row["module"]] = {}
        by_module[row["module"]][row["mode"]] = row["outcome"]
    return [[name, by_module[name].get("raw", "-"),
             by_module[name].get("sandboxed", "-")] for name in order]
