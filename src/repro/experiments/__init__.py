"""Experiment harnesses: one module per paper artefact (see DESIGN.md)."""

from repro.experiments import (
    analysis_exp,
    aslr,
    attestation_exp,
    cfi_exp,
    fig1,
    fuzz_exp,
    heap_exp,
    fig4_exp,
    matrix,
    modules_exp,
    multimodule_exp,
    overhead,
    reporting,
    securecomp_exp,
    sfi_exp,
)

__all__ = [
    "analysis_exp",
    "aslr",
    "attestation_exp",
    "cfi_exp",
    "fig1",
    "fuzz_exp",
    "heap_exp",
    "fig4_exp",
    "matrix",
    "modules_exp",
    "multimodule_exp",
    "overhead",
    "reporting",
    "securecomp_exp",
    "sfi_exp",
]
