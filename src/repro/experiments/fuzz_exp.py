"""E7d -- greybox vs blind fuzzing (Section III-C2, measured).

The paper's claim is qualitative: testing for memory-safety bugs "is
made significantly more effective with the use of run-time checks".
E7c (``analysis_exp.fuzzing_report``) measures the *run-time checks*
axis with a blind random fuzzer.  This experiment adds the *testing
strength* axis: the same victims, the same snapshot fork-server, but
coverage-guided input generation (:mod:`repro.analysis.greybox`)
against blind randomness -- reporting executions-to-first-detection,
wall-clock time, and the coverage curve each strategy climbs.

Two victim families:

* ``fig1_staged`` -- the Figure 1 overflow gated behind a
  byte-at-a-time ``"GET"`` method check.  A blind fuzzer reaches the
  vulnerable ``read`` only when three random bytes spell the method
  (~2^-24 per input); the greybox loop solves the gates one branch
  edge at a time.
* ``data_only`` and the labelled corpus entries -- shallow overflows
  both strategies can trigger, where the comparison shows greybox's
  deterministic length-extension stage finding the boundary in a
  handful of executions.

Every execution (both strategies) runs through a warm
:class:`~repro.analysis.greybox.SnapshotExecutor`, so the comparison
isolates the search strategy, not the harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fuzzer import FuzzReport, fuzz_campaign
from repro.analysis.greybox import (
    GreyboxFuzzer,
    GreyboxReport,
    SnapshotExecutor,
    SourceFactory,
    VictimFactory,
)
from repro.analysis.corpus import CORPUS
from repro.experiments.reporting import render_table
from repro.mitigations.config import NONE, TESTING

#: Default execution budget per (victim, config, strategy) cell.  The
#: staged victim needs ~1.5k greybox execs to solve the method gate;
#: blind random realistically never will inside any budget we can run.
DEFAULT_MAX_EXECS = 4000

#: Corpus entries fuzzed alongside the named victims (the shallow
#: overflow shapes the static analyzer is graded on in E7b).
CORPUS_TARGETS = ("overflow_read", "off_by_one_loop")


@dataclass
class FuzzCell:
    """One (victim, config) comparison: blind vs greybox."""

    program: str
    config_name: str
    blind: FuzzReport
    grey: GreyboxReport


def _corpus_source(name: str) -> str:
    for entry in CORPUS:
        if entry.name == name:
            return entry.source
    raise KeyError(name)


def _targets(victims, corpus):
    """``(label, factory-maker)`` pairs; the maker takes a config."""
    targets = []
    for name in victims:
        targets.append((name, lambda config, name=name:
                        VictimFactory(name, config)))
    for name in corpus:
        source = _corpus_source(name)
        targets.append((f"corpus:{name}",
                        lambda config, source=source, name=name:
                        SourceFactory(source, name, config)))
    return targets


def fuzz_comparison(
    max_execs: int = DEFAULT_MAX_EXECS,
    seed: int = 7,
    jobs: int | None = None,
    victims: tuple[str, ...] = ("fig1_staged", "data_only"),
    corpus: tuple[str, ...] = CORPUS_TARGETS,
) -> list[FuzzCell]:
    """Blind vs greybox over ``victims`` + ``corpus``, NONE vs TESTING.

    Both strategies get the same execution budget and stop at the
    first detection (execs-to-first-detection is the headline metric;
    a cell that never detects reports the full budget spent).
    """
    cells = []
    for label, make_factory in _targets(victims, corpus):
        for config, config_name in ((NONE, "NONE"), (TESTING, "TESTING")):
            factory = make_factory(config)
            blind = fuzz_campaign(
                label, config, runs=max_execs, seed=seed,
                executor=SnapshotExecutor(factory),
            )
            grey = GreyboxFuzzer(
                factory, seed=seed, jobs=jobs,
                program=label, config=config_name,
            ).run(max_execs, stop_on_first_crash=True)
            cells.append(FuzzCell(label, config_name, blind, grey))
    return cells


def _first(value) -> str:
    return str(value) if value is not None else "never"


def render_comparison(cells: list[FuzzCell]) -> str:
    rows = []
    for cell in cells:
        blind_first = cell.blind.first_detected_exec
        grey_first = cell.grey.first_detected_exec
        if grey_first and blind_first:
            advantage = f"{blind_first / grey_first:.1f}x"
        elif grey_first:
            advantage = f">{cell.blind.runs / grey_first:.1f}x"
        elif blind_first:
            advantage = "blind only"
        else:
            advantage = "-"
        rows.append([
            cell.program, cell.config_name,
            _first(blind_first), _first(grey_first),
            advantage, cell.grey.edges, cell.grey.unique_crashes,
            f"{cell.grey.execs_per_second:,.0f}",
        ])
    return render_table(
        ["victim", "build", "blind: first detect (execs)",
         "greybox: first detect (execs)", "greybox advantage",
         "edges", "uniq crashes", "execs/s"],
        rows,
        title="E7d: execs-to-first-detection, blind vs coverage-guided "
              "(same budget, same fork-server)",
    )


def render_curve(report: GreyboxReport, width: int = 60) -> str:
    """The coverage curve as a text plot: edges found vs executions."""
    lines = [f"coverage curve: {report.program} [{report.config}] "
             f"({report.execs} execs, {report.edges} edges)"]
    if not report.coverage_curve:
        return lines[0] + "\n  (no coverage recorded)"
    max_edges = max(edges for _, edges in report.coverage_curve)
    for execs, edges in report.coverage_curve:
        bar = "#" * max(1, round(width * edges / max_edges))
        marker = ""
        if report.first_detected_exec and execs >= report.first_detected_exec:
            marker = "  <- after first detection"
        lines.append(f"  {execs:>6} execs | {bar} {edges}{marker}")
    return "\n".join(lines)


def run_fuzz(jobs: int | None = None, seed: int | None = None,
             max_execs: int = DEFAULT_MAX_EXECS) -> str:
    """The ``python -m repro.experiments fuzz`` entry point."""
    cells = fuzz_comparison(max_execs=max_execs,
                            seed=7 if seed is None else seed, jobs=jobs)
    parts = [render_comparison(cells)]
    # The curve that tells the story: the staged victim under TESTING,
    # where each solved comparison byte is a visible coverage step.
    for cell in cells:
        if cell.program == "fig1_staged" and cell.config_name == "TESTING":
            parts.append(render_curve(cell.grey))
            break
    detected = sum(1 for cell in cells if cell.grey.detected)
    blind_detected = sum(1 for cell in cells if cell.blind.first_detected_exec)
    parts.append(
        f"greybox detected {detected}/{len(cells)} cells; "
        f"blind detected {blind_detected}/{len(cells)} "
        f"(budget {max_execs} execs per cell)"
    )
    return "\n\n".join(parts)
