"""Plain-text table rendering for experiment results."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render an ASCII table (all cells stringified)."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))

    def line(parts: list[str]) -> str:
        return "| " + " | ".join(
            part.ljust(width) for part, width in zip(parts, widths)
        ) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(headers))
    out.append(separator)
    for row in cells:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def render_kv(title: str, pairs: dict) -> str:
    """Render a key/value block."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = [title]
    for key, value in pairs.items():
        lines.append(f"  {str(key).ljust(width)} : {value}")
    return "\n".join(lines)
