"""Plain-text table rendering for experiment results."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Render an ASCII table (all cells stringified)."""
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))

    def line(parts: list[str]) -> str:
        return "| " + " | ".join(
            part.ljust(width) for part, width in zip(parts, widths)
        ) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    out = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(headers))
    out.append(separator)
    for row in cells:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def render_kv(title: str, pairs: dict) -> str:
    """Render a key/value block."""
    width = max((len(str(k)) for k in pairs), default=0)
    lines = [title]
    for key, value in pairs.items():
        lines.append(f"  {str(key).ljust(width)} : {value}")
    return "\n".join(lines)


def render_metrics(snapshot: dict, title: str = "Execution metrics") -> str:
    """Render a :meth:`MetricsCollector.snapshot` dict as text.

    Flat counters become a key/value block; the opcode histogram is a
    table of the ten most-retired mnemonics.
    """
    memory = snapshot["memory"]
    cache = snapshot["decode_cache"]
    pairs = {
        "instructions": snapshot["instructions"],
        "control": ", ".join(f"{kind}={count}" for kind, count
                             in snapshot["control"].items()) or "-",
        "memory": (f"{memory['reads']} reads / {memory['writes']} writes "
                   f"({memory['bytes_read']}B / {memory['bytes_written']}B, "
                   f"{memory['pages_touched']} pages)"),
        "syscalls": ", ".join(f"{number}x{count}" for number, count
                              in snapshot["syscalls"].items()) or "-",
        "faults": ", ".join(f"{name}={count}" for name, count
                            in snapshot["faults"].items()) or "-",
        "decode cache": (f"{cache['hits']} hits / {cache['misses']} misses, "
                         f"{cache['invalidated_entries']} invalidated, "
                         f"{cache['flushes']} flushes"),
        "pma crossings": snapshot["pma_crossings"],
        "red-zone checked": snapshot["redzone_checked_accesses"],
    }
    breaches = snapshot.get("invariant_breaches")
    if breaches:
        pairs["invariant breaches"] = ", ".join(
            f"{name}={count}" for name, count in breaches.items())
    snapshots = snapshot.get("snapshots")
    if snapshots and snapshots.get("taken"):
        pairs["snapshots"] = (
            f"{snapshots['taken']} taken / {snapshots['restored']} restored "
            f"({snapshots['dirty_pages_restored']} dirty pages rewound)")
    top = sorted(snapshot["opcodes"].items(),
                 key=lambda item: (-item[1], item[0]))[:10]
    table = render_table(
        ["mnemonic", "retired"],
        [[mnemonic, count] for mnemonic, count in top],
        title="Top opcodes:",
    )
    return render_kv(title, pairs) + "\n\n" + table


def render_profile(rows: list[dict], title: str = "Guest profile",
                   top: int = 15) -> str:
    """Render :meth:`GuestProfiler.flat_profile` rows as a table."""
    return render_table(
        ["function", "self", "inclusive", "calls", "self%"],
        [[row["function"], row["self"], row["inclusive"], row["calls"],
          f"{row['self_pct']:.1f}"] for row in rows[:top]],
        title=title,
    )
