"""E12b -- ablation of the secure-compilation scheme (Section IV-B).

Each hardening component exists to stop a specific attack; removing it
(keeping the rest) should let exactly that attack through:

* **function-pointer checks** -> the Figure 4 hijack;
* **module-private stack** -> stack-residue harvesting;
* **register scrubbing** -> register-residue harvesting;
* **reentrancy guard** -> reentering the module during an outcall,
  corrupting its in-flight state.
"""

from __future__ import annotations

from dataclasses import replace

from repro.asm import assemble
from repro.attacks.base import AttackResult, Outcome, classify_failure, finish
from repro.experiments.reporting import render_table
from repro.minic import CompileOptions, compile_source
from repro.minic.codegen import SECURITY_ABORT_EXIT_CODE
from repro.mitigations.config import NONE
from repro.programs import sources
from repro.programs.builders import libc_object

#: A client whose callback re-enters the module while the module is
#: blocked in an outcall -- the reentrancy attack.
_REENTRANCY_MAIN = """
.text
.global main
main:
    mov r0, reenter_cb
    push r0
    call get_secret         ; outer entry
    add sp, 4
    sys 6                   ; print what the outer call returned
    mov r0, 0
    sys 3

reenter_cb:                 ; get_pin() that re-enters the module
    push bp
    mov bp, sp
    mov r0, honest_cb
    push r0
    call get_secret         ; nested entry during the outer outcall
    add sp, 4
    mov r0, 1111
    mov sp, bp
    pop bp
    ret

honest_cb:
    mov r0, 2222
    ret
"""


def _module_options(**overrides) -> CompileOptions:
    return replace(CompileOptions.secure_module(), **overrides)


def _build_fig4_with(options: CompileOptions, main_object,
                     seed: int = 0):
    from repro.link import load

    secret_obj = compile_source(sources.SECRET_MODULE_FIG4, "secret", options)
    return load([main_object, secret_obj, libc_object()], NONE, seed=seed)


def attack_reentrancy(options: CompileOptions, seed: int = 0) -> AttackResult:
    """Re-enter the module mid-outcall; the guard should abort it."""
    name = "reentrancy"
    main_obj = assemble(_REENTRANCY_MAIN, "main")
    program = _build_fig4_with(options, main_obj, seed)
    run = program.run()
    if run.exit_code == SECURITY_ABORT_EXIT_CODE:
        return AttackResult(name, Outcome.DETECTED,
                            "reentrancy guard aborted the nested entry", run)
    if run.fault is not None:
        return finish(name, classify_failure(
            run, "module state corrupted until it faulted"))
    return AttackResult(
        name, Outcome.SUCCESS,
        f"nested entry ran to completion (output {run.output!r}): in-flight "
        "state was silently overwritten", run,
    )


def ablation_table(seed: int = 0) -> list[dict]:
    """One row per removed component; columns are the attacks."""
    def fig4_with(options: CompileOptions) -> str:
        # Rebuild the fig4 attack against a custom-hardened module by
        # monkey-free plumbing: compile module with `options`, link
        # the standard exploit main against it.
        from repro.attacks.pma_exploit import (
            _EXPLOIT_MAIN_TEMPLATE,
            find_reset_instruction,
        )
        from repro.minic import compile_source as cs
        from repro.link import load

        secret_obj = cs(sources.SECRET_MODULE_FIG4, "secret", options)
        honest = cs(sources.SECRET_MAIN_FIG4, "main", CompileOptions())
        study = load([honest, secret_obj, libc_object()], NONE, seed=seed)
        target = find_reset_instruction(study)
        exploit_main = assemble(_EXPLOIT_MAIN_TEMPLATE.format(target=target),
                                "main")
        secret_obj = cs(sources.SECRET_MODULE_FIG4, "secret", options)
        program = load([exploit_main, secret_obj, libc_object()], NONE, seed=seed)
        run = program.run()
        if b"666" in run.output:
            return "EXPLOITED (secret leaked)"
        if run.exit_code == SECURITY_ABORT_EXIT_CODE:
            return "detected (aborted)"
        return f"{run.status.value} [{run.fault_name()}]"

    def residues(options: CompileOptions) -> tuple[str, str]:
        # attack_{stack,register}_residue build via the standard
        # builders; reproduce with custom options.
        from repro.link import load
        from repro.attacks.machinecode import (
            _REGISTER_PROBE_ASM,
            _RESIDUE_PROBE_ASM,
        )
        from repro.attacks.payloads import p32, u32

        secret_obj = compile_source(sources.SECRET_MODULE_FIG2, "secret", options)
        stack_probe = assemble(_RESIDUE_PROBE_ASM, "main")
        program = load([stack_probe, secret_obj, libc_object()], NONE, seed=seed)
        run = program.run()
        data_lo, data_hi = program.image.object_layout["secret"][".data"]
        stack_leak = run.fault is None and (
            p32(1234) in run.output
            or any(
                data_lo <= u32(run.output, position) < data_hi
                for position in range(0, len(run.output) - 3, 4)
            )
        )

        secret_obj = compile_source(sources.SECRET_MODULE_FIG2, "secret", options)
        reg_probe = assemble(_REGISTER_PROBE_ASM, "main")
        program = load([reg_probe, secret_obj, libc_object()], NONE, seed=seed)
        run = program.run()
        module = program.machine.pma.modules[0] if program.machine.pma.modules else None
        reg_leak = bool(module) and any(
            module.contains(value)
            for position, value in enumerate(program.machine.cpu.regs[:8])
            if position != 0
        )
        return ("LEAKED" if stack_leak else "clean",
                "LEAKED" if reg_leak else "clean")

    configurations = [
        ("full secure compilation", _module_options()),
        ("without pointer checks", _module_options(pma_pointer_checks=False)),
        ("without private stack", _module_options(pma_private_stack=False)),
        ("without register scrubbing", _module_options(pma_scrub_registers=False)),
        ("without reentrancy guard", _module_options(pma_reentrancy_guard=False)),
    ]
    rows = []
    for label, options in configurations:
        fig4 = fig4_with(options)
        stack_leak, reg_leak = residues(options)
        reentrancy = attack_reentrancy(options, seed=seed)
        rows.append({
            "build": label,
            "fig4_attack": fig4,
            "stack_residue": stack_leak,
            "register_residue": reg_leak,
            "reentrancy": reentrancy.outcome.value,
        })
    return rows


def render_ablation(rows: list[dict]) -> str:
    return render_table(
        ["module build", "fig4 hijack", "stack residue", "reg residue",
         "reentrancy"],
        [[r["build"], r["fig4_attack"], r["stack_residue"],
          r["register_residue"], r["reentrancy"]] for r in rows],
        title="E12b: secure-compilation ablation -- each component stops "
              "its attack",
    )
