"""Extension experiment -- heap vulnerabilities and defences.

Completes Section III-A's temporal story with *explicit* deallocation:
use-after-free, adjacent-chunk overflow, and double free against the
MinC heap substrate, under three postures:

* plain allocator -- everything works (the historical baseline);
* typed CFI -- catches the UAF's dangling *call* (it is just an
  indirect call) but is blind to the data-only overflow;
* checked allocator (red-zone guards + quarantine + double-free
  aborts) -- the testing-time instrumentation of Section III-C2
  applied to the heap: catches all three.
"""

from __future__ import annotations

from repro.attacks.heap import (
    attack_heap_double_free,
    attack_heap_overflow,
    attack_heap_uaf,
)
from repro.experiments.reporting import render_table
from repro.mitigations.config import MitigationConfig, NONE


def heap_table(seed: int = 0) -> list[dict]:
    typed_cfi = MitigationConfig(cfi_typed=True)
    rows = []
    for attack_name, attack_fn in (
        ("use-after-free (dangling fn ptr)", attack_heap_uaf),
        ("heap overflow (adjacent chunk)", attack_heap_overflow),
        ("double free", attack_heap_double_free),
    ):
        rows.append({
            "attack": attack_name,
            "plain": attack_fn(NONE, seed=seed).outcome.value,
            "typed cfi": attack_fn(typed_cfi, seed=seed).outcome.value,
            "checked allocator": attack_fn(
                NONE, checked_allocator=True, seed=seed
            ).outcome.value,
        })
    return rows


def render_heap(rows: list[dict]) -> str:
    return render_table(
        ["attack", "plain", "typed cfi", "checked allocator"],
        [[r["attack"], r["plain"], r["typed cfi"], r["checked allocator"]]
         for r in rows],
        title="heap attacks vs defences (temporal vulnerabilities, "
              "explicit deallocation)",
    )
