"""E5/E12 -- runtime overhead of the countermeasures.

The paper's cost claims, measured in executed instructions (the
architecture-neutral cost unit of the simulator):

* stack canaries are "cheap and straightforward" -- a small constant
  per function call;
* run-time bounds checks "often impose a performance overhead that is
  unacceptable in production systems" -- a cost per memory access,
  growing with the work done;
* secure compilation to a PMA adds a per-boundary-crossing cost
  (entry stub, private-stack switch, scrubbing), not a per-instruction
  cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import render_table
from repro.minic import CompileOptions, compile_source
from repro.minic.compiler import options_from_mitigations
from repro.mitigations.config import (
    CANARY,
    MitigationConfig,
    NONE,
    SAFE_LANGUAGE,
    TESTING,
)
from repro.programs.builders import build_secret_program, libc_object

#: A compute-heavy workload: bounded array traffic that the safe mode
#: accepts, so the identical source compiles in every posture.
WORKLOAD_SOURCE = """
static int table[64];

int churn(int rounds) {
    int acc = 0;
    int r;
    for (r = 0; r < rounds; r = r + 1) {
        int i;
        for (i = 0; i < 64; i = i + 1) {
            table[i] = table[i] + i;
        }
        for (i = 0; i < 64; i = i + 1) {
            acc = acc + table[i];
        }
    }
    return acc;
}

int leaf(int x) {
    char scratch[16];
    int i;
    for (i = 0; i < 16; i = i + 1) {
        scratch[i] = x + i;
    }
    return scratch[0] + scratch[15];
}

int call_storm(int calls) {
    int acc = 0;
    int i;
    for (i = 0; i < calls; i = i + 1) {
        acc = acc + leaf(i);
    }
    return acc;
}

void main() {
    print_int(churn(10));
    print_int(call_storm(100));
}
"""


@dataclass
class OverheadRow:
    posture: str
    instructions: int
    overhead_pct: float


def measure_workload(config: MitigationConfig, optimize: bool = False) -> int:
    """Instructions to run the workload under one posture."""
    from dataclasses import replace

    from repro.link import load

    options = replace(options_from_mitigations(config), optimize=optimize)
    obj = compile_source(WORKLOAD_SOURCE, "workload", options)
    program = load([obj, libc_object()], config)
    result = program.run(50_000_000)
    assert result.exit_code == 0, result
    return result.instructions


def overhead_table(optimize: bool = False) -> list[OverheadRow]:
    """E5: instruction overhead of canaries vs bounds checks vs ASan.

    ``optimize`` measures against the peephole-optimized baseline --
    the tighter the surrounding code, the larger the *relative* cost
    of per-access checks (the ablation DESIGN.md calls out).
    """
    postures = [
        ("none", NONE),
        ("canaries", CANARY),
        ("safe-language (bounds checks)", SAFE_LANGUAGE.with_(dep=False)),
        ("asan (testing red zones)", TESTING),
    ]
    baseline = measure_workload(NONE, optimize)
    rows = []
    for name, config in postures:
        instructions = measure_workload(config, optimize)
        rows.append(OverheadRow(
            name, instructions,
            100.0 * (instructions - baseline) / baseline,
        ))
    return rows


def render_overhead(rows: list[OverheadRow], optimized: bool = False) -> str:
    flavour = "optimized" if optimized else "unoptimized"
    return render_table(
        ["posture", "instructions", "overhead %"],
        [[r.posture, r.instructions, f"{r.overhead_pct:+.1f}%"] for r in rows],
        title=f"E5: runtime overhead by countermeasure ({flavour} baseline)",
    )


# ---------------------------------------------------------------------------
# E5b: scaling shape -- canaries cost per *call*, bounds checks per *access*
# ---------------------------------------------------------------------------

_SCALING_SOURCE = """
static int table[128];

int touch(int accesses) {{
    int acc = 0;
    int i;
    for (i = 0; i < accesses; i = i + 1) {{
        int idx = i % 128;
        acc = acc + table[idx];
    }}
    return acc;
}}

void main() {{
    print_int(touch({accesses}));
}}
"""


def scaling_table(access_counts=(64, 256, 1024, 4096)) -> list[dict]:
    """Overhead vs memory-access density.

    The canary adds a constant per call (flat line); the bounds check
    adds one ``chk`` per access (linear growth) -- the shape behind
    the paper's "acceptable in testing, unacceptable in production"
    judgement for per-access run-time checks.
    """
    from repro.link import load

    rows = []
    for accesses in access_counts:
        source = _SCALING_SOURCE.format(accesses=accesses)
        instructions = {}
        for name, config in (("none", NONE), ("canary", CANARY),
                             ("bounds", SAFE_LANGUAGE.with_(dep=False))):
            obj = compile_source(source, "scaling", options_from_mitigations(config))
            program = load([obj, libc_object()], config)
            result = program.run(100_000_000)
            assert result.exit_code == 0
            instructions[name] = result.instructions
        rows.append({
            "accesses": accesses,
            "baseline": instructions["none"],
            "canary_extra": instructions["canary"] - instructions["none"],
            "bounds_extra": instructions["bounds"] - instructions["none"],
        })
    return rows


def render_scaling(rows: list[dict]) -> str:
    return render_table(
        ["accesses", "baseline instr", "canary extra", "bounds extra"],
        [[r["accesses"], r["baseline"], r["canary_extra"], r["bounds_extra"]]
         for r in rows],
        title="E5b: canary cost is per-call (flat); bounds-check cost is "
              "per-access (linear)",
    )


# ---------------------------------------------------------------------------
# E12: cost of one protected-module boundary crossing
# ---------------------------------------------------------------------------

#: Driver that calls get_secret() `N` times; the per-call cost is the
#: slope, independent of the constant program setup.
_CROSSING_DRIVER = """
int get_secret(int pin);

void main() {{
    int i;
    int acc = 0;
    for (i = 0; i < {calls}; i = i + 1) {{
        acc = acc + get_secret(1234);
    }}
    print_int(acc);
}}
"""


def _crossing_cost(protected: bool, secure: bool, calls_low: int = 10,
                   calls_high: int = 110) -> float:
    """Per-call instruction cost via a two-point slope."""
    costs = {}
    for calls in (calls_low, calls_high):
        driver = compile_source(
            _CROSSING_DRIVER.format(calls=calls), "main", CompileOptions()
        )
        program = build_secret_program(
            NONE, protected=protected, secure=secure, main_object=driver,
        )
        result = program.run(50_000_000)
        assert result.exit_code == 0, (result.status, result.fault)
        costs[calls] = result.instructions
    return (costs[calls_high] - costs[calls_low]) / (calls_high - calls_low)


def boundary_crossing_table() -> list[dict]:
    """E12: instructions per cross-module call, plain vs PMA vs secure."""
    rows = []
    baseline = None
    for name, protected, secure in (
        ("plain call (no PMA)", False, False),
        ("protected module, insecure compile", True, False),
        ("protected module, secure compile", True, True),
    ):
        per_call = _crossing_cost(protected, secure)
        if baseline is None:
            baseline = per_call
        rows.append({
            "scheme": name,
            "instructions_per_call": round(per_call, 1),
            "overhead_per_call": round(per_call - baseline, 1),
        })
    return rows


def render_crossing(rows: list[dict]) -> str:
    return render_table(
        ["scheme", "instr/call", "overhead/call"],
        [[r["scheme"], r["instructions_per_call"], r["overhead_per_call"]]
         for r in rows],
        title="E12: cost of one protected-module boundary crossing",
    )
