"""E1 -- regenerate Figure 1: source, machine code, run-time state.

The paper's Figure 1 shows (a) the server's source code, (b) the
compiled machine code of ``process()`` with assembly and hex bytes,
and (c) a snapshot of the run-time machine state just after entering
``get_request()``: the two activation records, the saved base pointer
and return address, the IP and SP.

This experiment compiles the same program with our toolchain and
prints the same three artefacts, with the stack snapshot annotated the
way the figure annotates it.

:func:`attack_provenance` extends the figure with what the paper
describes in prose: it replays the Section II attack (request longer
than the buffer) under the repro.observe event bus and reconstructs
the provenance timeline -- which instruction legitimately pushed
``process()``'s return address, which instruction overwrote it, where
the hijacked ``ret`` then went, and the fault that followed.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.asm.disassembler import disassemble, render_listing
from repro.attacks.study import run_until_syscall
from repro.isa.registers import BP, SP
from repro.machine import syscalls
from repro.mitigations.config import MitigationConfig, NONE
from repro.programs.builders import build_fig1
from repro.programs.sources import FIG1_SERVER_VULNERABLE


@dataclass
class Fig1Artifacts:
    source: str
    process_listing: str
    stack_snapshot: str
    registers: dict

    def render(self) -> str:
        return "\n\n".join([
            "=== (a) Program source code ===",
            self.source.strip(),
            "=== (b) Machine code for process() ===",
            self.process_listing,
            "=== (c) Run-time machine state (just entered get_request) ===",
            self.stack_snapshot,
            "registers: " + ", ".join(
                f"{name}=0x{value:08x}" for name, value in self.registers.items()
            ),
        ])


def _function_extent(program, name: str) -> tuple[int, int]:
    """Approximate [start, end) of a function in the text segment:
    from its symbol to the next function symbol."""
    image = program.image
    start = image.symbol(name)
    candidates = [addr for addr in image.function_addresses if addr > start]
    end = min(candidates) if candidates else image.segment_named("text").end
    return start, end


def generate_fig1(config: MitigationConfig = NONE, *,
                  request: bytes = b"ABCDEFGHIJKLMNO\x00") -> Fig1Artifacts:
    """Build, run to the Figure 1 moment, and collect the artefacts."""
    program = build_fig1(config, vulnerable=True)
    image = program.image
    start, end = _function_extent(program, "process")
    text_segment = image.segment_named("text")
    code = text_segment.data[start - text_segment.addr : end - text_segment.addr]
    symbols = {addr: name for name, addr in image.symbols.items()
               if ":" not in name}
    listing = render_listing(disassemble(code, start, symbols=symbols))

    program.feed(request)
    machine = run_until_syscall(program, syscalls.SYS_READ)
    cpu = machine.cpu

    # Annotate the stack from SP up to the initial stack pointer,
    # walking the saved-BP chain to label activation records.
    frame_bp = cpu.regs[BP]
    annotations: dict[int, str] = {}
    # get_request's frame (we are inside its read call).
    annotations[frame_bp] = "saved base pointer      <- get_request() record"
    annotations[frame_bp + 4] = "saved return address"
    annotations[frame_bp + 8] = "fd parameter"
    annotations[frame_bp + 12] = "buf parameter"
    process_bp = machine.memory.read_word(frame_bp)
    buf_addr = machine.memory.read_word(frame_bp + 12)
    offset = 0
    while buf_addr + offset < process_bp - (4 if config.stack_canaries else 0):
        annotations[buf_addr + offset] = f"buf[{offset}..{offset + 3}]"
        offset += 4
    if config.stack_canaries:
        annotations[process_bp - 4] = "stack canary"
    annotations[process_bp] = "saved base pointer      <- process() record"
    annotations[process_bp + 4] = "saved return address"
    annotations[process_bp + 8] = "fd parameter"
    main_bp = machine.memory.read_word(process_bp)
    annotations[main_bp] = "saved base pointer      <- main() record"
    annotations[main_bp + 4] = "saved return address (into _start)"

    lines = ["ADDRESS      CONTENTS     ANNOTATION"]
    top = image.initial_sp
    addr = cpu.regs[SP]
    while addr <= top:
        word = machine.memory.read_word(addr)
        label = annotations.get(addr, "")
        pointer = ""
        if addr == cpu.regs[SP]:
            pointer = "  <-- SP"
        lines.append(f"0x{addr:08x}   0x{word:08x}   {label}{pointer}")
        addr += 4
    snapshot = "\n".join(lines)

    return Fig1Artifacts(
        source=FIG1_SERVER_VULNERABLE,
        process_listing=listing,
        stack_snapshot=snapshot,
        registers={"ip": cpu.ip, "sp": cpu.regs[SP], "bp": cpu.regs[BP]},
    )


# -- attack provenance (repro.observe) ---------------------------------------


@dataclass
class ProvenanceReport:
    """The reconstructed who-overwrote-the-return-address timeline."""

    return_addr_slot: int
    original_return: int
    #: IP of the instruction whose write clobbered the slot (the ``sys``
    #: instruction driving the vulnerable read), or None if nothing did.
    clobber_ip: int | None
    clobber_symbol: str
    clobber_value: int | None
    #: Selected events as (seq, kind, ip, description) rows.
    timeline: list[tuple[int, str, int, str]] = field(default_factory=list)
    run_status: str = ""
    fault: str = ""

    def render(self) -> str:
        from repro.experiments.reporting import render_kv, render_table

        if self.clobber_ip is None:
            verdict = "return address was never overwritten"
        else:
            verdict = (
                f"instruction at 0x{self.clobber_ip:08x} "
                f"({self.clobber_symbol}) overwrote the return address "
                f"with 0x{self.clobber_value:08x}"
            )
        summary = render_kv("Attack provenance (event-bus reconstruction)", {
            "return-address slot": f"0x{self.return_addr_slot:08x}",
            "legitimate return": f"0x{self.original_return:08x}",
            "verdict": verdict,
            "run ended": self.run_status + (f" ({self.fault})" if self.fault
                                            else ""),
        })
        table = render_table(
            ["seq", "event", "ip", "what happened"],
            [[seq, kind, f"0x{ip:08x}", what]
             for seq, kind, ip, what in self.timeline],
            title="Timeline (event sequence numbers from the trace):",
        )
        return summary + "\n\n" + table


def _written_slot_value(event, slot: int) -> int | None:
    """The word a recorded write event left at ``slot`` (None if the
    write only partially covers the 4-byte slot)."""
    addr, size = event.data["addr"], event.data["size"]
    value = event.data["value"]
    data = (value.to_bytes(size, "little") if isinstance(value, int)
            else bytes.fromhex(value))
    offset = slot - addr
    if offset < 0 or offset + 4 > size:
        return None
    return int.from_bytes(data[offset:offset + 4], "little")


def attack_provenance(request: bytes = b"A" * 32,
                      config: MitigationConfig = NONE) -> ProvenanceReport:
    """Replay the Section II overflow under full event tracing.

    Uses the attacker's own study step (:func:`locate_overflow`) to
    learn where ``process()``'s return-address slot lives, then runs a
    fresh instance with an :class:`EventTrace` attached and asks the
    trace which write clobbered that slot.
    """
    from repro.attacks.study import locate_overflow
    from repro.observe.tracer import EventTrace

    site = locate_overflow(build_fig1(config, vulnerable=True), frames_up=1)

    program = build_fig1(config, vulnerable=True)
    program.feed(request)
    trace = EventTrace()
    program.machine.attach_observer(trace)
    result = program.run()

    functions = program.image.function_symbols()
    starts = [addr for addr, _ in functions]

    def symbolize(address: int) -> str:
        index = bisect_right(starts, address) - 1
        if index < 0:
            return f"0x{address:08x}"
        addr, name = functions[index]
        offset = address - addr
        return name if offset == 0 else f"{name}+0x{offset:x}"

    slot = site.return_addr_slot
    writes = trace.writes_to(slot)
    clobber = None
    for event in writes:
        if _written_slot_value(event, slot) != site.original_return:
            clobber = event
    clobber_value = (_written_slot_value(clobber, slot)
                     if clobber is not None else None)

    timeline: list[tuple[int, str, int, str]] = []
    for event in writes:
        value = _written_slot_value(event, slot)
        if event is clobber:
            what = (f"CLOBBER: {event.data['size']}-byte write over the "
                    f"slot, leaving 0x{value:08x}")
        elif value == site.original_return:
            what = f"legitimate call push (0x{value:08x})"
        else:
            what = f"write leaving 0x{value:08x}" if value is not None \
                else "partial write over the slot"
        timeline.append((event.seq, "write", event.ip, what))
    if clobber is not None:
        for event in trace.events:
            if event.seq <= clobber.seq:
                continue
            if (event.kind == "ret"
                    and event.data["target"] == clobber_value):
                timeline.append((
                    event.seq, "ret", event.ip,
                    f"returns to hijacked 0x{event.data['target']:08x} "
                    f"instead of 0x{site.original_return:08x}",
                ))
                break
    for event in trace.events:
        if event.kind == "fault":
            timeline.append((event.seq, "fault", event.ip,
                             f"{event.data['fault']}: {event.data['detail']}"))
    timeline.sort()

    return ProvenanceReport(
        return_addr_slot=slot,
        original_return=site.original_return,
        clobber_ip=clobber.ip if clobber is not None else None,
        clobber_symbol=symbolize(clobber.ip) if clobber is not None else "",
        clobber_value=clobber_value,
        timeline=timeline,
        run_status=result.status.value,
        fault=result.fault_name() or "",
    )
