"""E1 -- regenerate Figure 1: source, machine code, run-time state.

The paper's Figure 1 shows (a) the server's source code, (b) the
compiled machine code of ``process()`` with assembly and hex bytes,
and (c) a snapshot of the run-time machine state just after entering
``get_request()``: the two activation records, the saved base pointer
and return address, the IP and SP.

This experiment compiles the same program with our toolchain and
prints the same three artefacts, with the stack snapshot annotated the
way the figure annotates it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.disassembler import disassemble, render_listing
from repro.attacks.study import run_until_syscall
from repro.isa.registers import BP, SP
from repro.machine import syscalls
from repro.mitigations.config import MitigationConfig, NONE
from repro.programs.builders import build_fig1
from repro.programs.sources import FIG1_SERVER_VULNERABLE


@dataclass
class Fig1Artifacts:
    source: str
    process_listing: str
    stack_snapshot: str
    registers: dict

    def render(self) -> str:
        return "\n\n".join([
            "=== (a) Program source code ===",
            self.source.strip(),
            "=== (b) Machine code for process() ===",
            self.process_listing,
            "=== (c) Run-time machine state (just entered get_request) ===",
            self.stack_snapshot,
            "registers: " + ", ".join(
                f"{name}=0x{value:08x}" for name, value in self.registers.items()
            ),
        ])


def _function_extent(program, name: str) -> tuple[int, int]:
    """Approximate [start, end) of a function in the text segment:
    from its symbol to the next function symbol."""
    image = program.image
    start = image.symbol(name)
    candidates = [addr for addr in image.function_addresses if addr > start]
    end = min(candidates) if candidates else image.segment_named("text").end
    return start, end


def generate_fig1(config: MitigationConfig = NONE, *,
                  request: bytes = b"ABCDEFGHIJKLMNO\x00") -> Fig1Artifacts:
    """Build, run to the Figure 1 moment, and collect the artefacts."""
    program = build_fig1(config, vulnerable=True)
    image = program.image
    start, end = _function_extent(program, "process")
    text_segment = image.segment_named("text")
    code = text_segment.data[start - text_segment.addr : end - text_segment.addr]
    symbols = {addr: name for name, addr in image.symbols.items()
               if ":" not in name}
    listing = render_listing(disassemble(code, start, symbols=symbols))

    program.feed(request)
    machine = run_until_syscall(program, syscalls.SYS_READ)
    cpu = machine.cpu

    # Annotate the stack from SP up to the initial stack pointer,
    # walking the saved-BP chain to label activation records.
    frame_bp = cpu.regs[BP]
    annotations: dict[int, str] = {}
    # get_request's frame (we are inside its read call).
    annotations[frame_bp] = "saved base pointer      <- get_request() record"
    annotations[frame_bp + 4] = "saved return address"
    annotations[frame_bp + 8] = "fd parameter"
    annotations[frame_bp + 12] = "buf parameter"
    process_bp = machine.memory.read_word(frame_bp)
    buf_addr = machine.memory.read_word(frame_bp + 12)
    offset = 0
    while buf_addr + offset < process_bp - (4 if config.stack_canaries else 0):
        annotations[buf_addr + offset] = f"buf[{offset}..{offset + 3}]"
        offset += 4
    if config.stack_canaries:
        annotations[process_bp - 4] = "stack canary"
    annotations[process_bp] = "saved base pointer      <- process() record"
    annotations[process_bp + 4] = "saved return address"
    annotations[process_bp + 8] = "fd parameter"
    main_bp = machine.memory.read_word(process_bp)
    annotations[main_bp] = "saved base pointer      <- main() record"
    annotations[main_bp + 4] = "saved return address (into _start)"

    lines = ["ADDRESS      CONTENTS     ANNOTATION"]
    top = image.initial_sp
    addr = cpu.regs[SP]
    while addr <= top:
        word = machine.memory.read_word(addr)
        label = annotations.get(addr, "")
        pointer = ""
        if addr == cpu.regs[SP]:
            pointer = "  <-- SP"
        lines.append(f"0x{addr:08x}   0x{word:08x}   {label}{pointer}")
        addr += 4
    snapshot = "\n".join(lines)

    return Fig1Artifacts(
        source=FIG1_SERVER_VULNERABLE,
        process_listing=listing,
        stack_snapshot=snapshot,
        registers={"ip": cpu.ip, "sp": cpu.regs[SP], "bp": cpu.regs[BP]},
    )
