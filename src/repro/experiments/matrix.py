"""E4 -- the attack x countermeasure matrix (Sections III-B/III-C1).

Runs every I/O-attack technique against every mitigation preset and
tabulates the outcome.  The paper's qualitative claims, made
quantitative:

* each widely deployed countermeasure blocks the attack class it was
  designed for (canaries -> return-address smashes, DEP -> injected
  code, ASLR -> address-dependent payloads);
* code-reuse attacks (return-to-libc, ROP) survive DEP;
* data-only attacks and information leaks survive *all* of the
  deployed countermeasures;
* an information leak lets a clever combination bypass
  canary+DEP+ASLR together [5];
* the stronger (less deployed) shadow-stack/CFI pair catches most of
  what remains -- but still not data-only attacks or pure leaks.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.attacks import io_attacks
from repro.attacks.base import AttackResult
from repro.experiments.reporting import render_table
from repro.mitigations.config import MATRIX_PRESETS, MitigationConfig

#: The attack battery, in the order the paper introduces the techniques.
ATTACKS = (
    ("stack smash + code injection", io_attacks.attack_stack_smash_injection),
    ("code-pointer overwrite (ret addr)", io_attacks.attack_stack_smash_injection),
    ("code-pointer overwrite (func ptr->libc)", io_attacks.attack_funcptr_to_libc),
    ("code-pointer overwrite (func ptr->inject)", io_attacks.attack_funcptr_to_injected),
    ("code corruption (arbitrary write)", io_attacks.attack_code_corruption),
    ("code reuse: return-to-libc", io_attacks.attack_ret2libc),
    ("code reuse: ROP (shell)", io_attacks.attack_rop_shell),
    ("code reuse: ROP (exfiltrate)", io_attacks.attack_rop_exfiltrate),
    ("code reuse: ROP (pivot trampoline)", io_attacks.attack_rop_pivot),
    ("data-only (is_admin)", io_attacks.attack_data_only),
    ("info leak (heartbleed)", io_attacks.attack_heartbleed),
    ("leak-then-smash [5]", io_attacks.attack_leak_then_smash),
)

#: Unique battery (the duplicate row above illustrates that the return
#: address is itself a code pointer; run each function once, keeping
#: the first name it appears under).
_unique: dict = {}
for _name, _fn in ATTACKS:
    _unique.setdefault(_fn, _name)
UNIQUE_ATTACKS = tuple(_unique.items())

_SYMBOLS = {
    "success": "EXPLOITED",
    "detected": "detected",
    "crashed": "crashed",
    "no_effect": "no effect",
}


@dataclass
class MatrixCell:
    attack: str
    preset: str
    result: AttackResult
    #: ``invariant@ip`` label of the first security invariant the cell's
    #: victim broke (None when invariant monitoring was off or nothing
    #: was breached).
    first_breach: str | None = None


def _run_cell(task: tuple) -> MatrixCell:
    """Run one (attack, preset) cell.  Module-level so it pickles.

    The parent's interpreter-cache defaults ride along in the task so
    worker processes execute down the same machine path (the
    differential suites flip those module globals and expect whole
    pipelines -- parallel or not -- to honour them).
    """
    (attack_fn, attack_name, preset_name, preset, seed,
     decode_default, block_default, invariants) = task
    import repro.machine.machine as machine_module

    machine_module.DECODE_CACHE_DEFAULT = decode_default
    machine_module.BLOCK_CACHE_DEFAULT = block_default
    if not invariants:
        return MatrixCell(attack_name, preset_name,
                          attack_fn(preset, seed=seed))

    from repro.observe import InvariantMonitor, observe_new_machines

    monitors: list[InvariantMonitor] = []

    def factory(machine) -> InvariantMonitor:
        monitor = InvariantMonitor()
        monitors.append(monitor)
        return monitor

    with observe_new_machines(factory):
        result = attack_fn(preset, seed=seed)
    # Multi-stage attacks (leak-then-smash) build several machines;
    # the victim is the last one whose timeline is non-empty.
    first = None
    for monitor in reversed(monitors):
        if monitor.first_breach is not None:
            first = monitor.first_breach
            break
    return MatrixCell(attack_name, preset_name, result,
                      first_breach=first.label() if first else None)


def run_matrix(
    presets: tuple[tuple[str, MitigationConfig], ...] = MATRIX_PRESETS,
    seed: int = 7,
    jobs: int | None = None,
    invariants: bool = False,
) -> list[MatrixCell]:
    """Run the full battery; one cell per (attack, preset).

    Each cell is an independent machine, so with ``jobs`` > 1 the
    cells fan out over a :class:`ProcessPoolExecutor`.  ``jobs=None``
    or ``1`` keeps the sequential in-process path (deterministic
    debugging, and required when ``observe_new_machines`` factories
    are active -- observers cannot cross process boundaries, so the
    pool is skipped for them regardless of ``jobs``).  Cell order and
    content are identical either way: every cell is seeded
    explicitly, so the table does not depend on scheduling.

    ``invariants`` attaches a fresh
    :class:`~repro.observe.invariants.InvariantMonitor` to every
    machine each cell builds and records the victim's first breach in
    :attr:`MatrixCell.first_breach` -- the per-cell scope is local to
    the worker, so the pool still applies.
    """
    import repro.machine.machine as machine_module

    tasks = [
        (attack_fn, attack_name, preset_name, preset, seed,
         machine_module.DECODE_CACHE_DEFAULT,
         machine_module.BLOCK_CACHE_DEFAULT, invariants)
        for attack_fn, attack_name in UNIQUE_ATTACKS
        for preset_name, preset in presets
    ]
    sequential = (
        jobs is None or jobs <= 1
        or machine_module._DEFAULT_OBSERVER_FACTORIES
    )
    if sequential:
        return [_run_cell(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_cell, tasks))


def render_matrix(cells: list[MatrixCell],
                  invariants: bool = False) -> str:
    presets = list(dict.fromkeys(cell.preset for cell in cells))
    attacks = list(dict.fromkeys(cell.attack for cell in cells))
    by_key = {(cell.attack, cell.preset): cell for cell in cells}
    rows = []
    for attack in attacks:
        row = [attack]
        for preset in presets:
            cell = by_key[(attack, preset)]
            row.append(_SYMBOLS[cell.result.outcome.value])
        rows.append(row)
    out = render_table(["attack \\ mitigations"] + presets, rows,
                       title="E4: attack outcome by deployment posture")
    if invariants or any(cell.first_breach for cell in cells):
        breach_rows = []
        for attack in attacks:
            row = [attack]
            for preset in presets:
                cell = by_key[(attack, preset)]
                row.append(cell.first_breach or "-")
            breach_rows.append(row)
        out += "\n\n" + render_table(
            ["attack \\ mitigations"] + presets, breach_rows,
            title="E4: first invariant broken (breach attribution)")
    return out


def matrix_summary(cells: list[MatrixCell]) -> dict:
    """Aggregates used by the benchmark assertions."""
    available = {cell.preset for cell in cells}

    def exploited(attack_substr: str, preset: str) -> bool:
        for cell in cells:
            if attack_substr in cell.attack and cell.preset == preset:
                return cell.result.succeeded
        raise KeyError((attack_substr, preset))

    def survives_all(attack_substr: str, presets: tuple[str, ...]) -> bool:
        return all(
            exploited(attack_substr, preset)
            for preset in presets
            if preset in available
        )

    return {
        "injection_blocked_by_dep": not exploited("code injection", "dep"),
        "injection_blocked_by_canary": not exploited("code injection", "canary"),
        "ret2libc_survives_dep": exploited("return-to-libc", "dep"),
        "rop_survives_dep": exploited("ROP (shell)", "dep"),
        "data_only_survives_everything": survives_all(
            "data-only",
            ("none", "canary", "dep", "aslr", "canary+dep", "deployed",
             "hardened"),
        ),
        "leak_survives_everything_deployed": survives_all(
            "heartbleed", ("none", "canary", "dep", "aslr", "deployed"),
        ),
        "leak_then_smash_beats_deployed": exploited("leak-then-smash", "deployed"),
    }
