"""Run every experiment and print the paper-artefact reports.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments e4 e10     # selected experiment ids
"""

from __future__ import annotations

import sys

from repro.experiments import (
    analysis_exp,
    aslr,
    attestation_exp,
    cfi_exp,
    fig1,
    heap_exp,
    fig4_exp,
    matrix,
    modules_exp,
    multimodule_exp,
    overhead,
    securecomp_exp,
    sfi_exp,
)
from repro.experiments.reporting import render_kv


def run_e1() -> str:
    return fig1.generate_fig1().render()


def run_e4() -> str:
    return matrix.render_matrix(matrix.run_matrix())


def run_e5() -> str:
    return "\n\n".join([
        overhead.render_overhead(overhead.overhead_table()),
        overhead.render_overhead(overhead.overhead_table(optimize=True),
                                 optimized=True),
        overhead.render_scaling(overhead.scaling_table()),
    ])


def run_e6() -> str:
    comparison = aslr.partial_overwrite_comparison(trials=48)
    return (aslr.render_sweep(aslr.sweep(trials=16))
            + "\n\n" + render_kv(
                "E6b: eroding ASLR with a partial overwrite (16-bit ASLR)",
                {
                    "full-address guess": f"{comparison['full_rate']:.4f} "
                    f"(expected ~{comparison['expected_full_rate']:.5f})",
                    "2-byte partial overwrite": f"{comparison['partial_rate']:.4f} "
                    f"(expected ~{comparison['expected_partial_rate']:.4f})",
                }))


def run_e7() -> str:
    return "\n\n".join([
        analysis_exp.render_safe_language(analysis_exp.safe_language_report()),
        analysis_exp.static_analysis_report(),
        analysis_exp.fuzzing_report(),
    ])


def run_e8_e9() -> str:
    lockout = modules_exp.io_attacker_lockout()
    parts = [
        render_kv("E8a: I/O attacker vs the bug-free module", lockout),
        modules_exp.render_scrapers(modules_exp.scraper_table()),
        modules_exp.render_census(modules_exp.sweep_census()),
        render_kv("E9c: functionality preserved under protection",
                  modules_exp.functionality_preserved()),
        modules_exp.render_residue(modules_exp.residue_table()),
    ]
    return "\n\n".join(parts)


def run_e10() -> str:
    return (fig4_exp.render_scenarios(fig4_exp.scenario_table())
            + "\n\n" + fig4_exp.render_brute_force())


def run_e11() -> str:
    parts = [
        render_kv("E11: attestation", attestation_exp.attestation_report()),
        render_kv("E11: sealing", attestation_exp.sealing_report()),
        attestation_exp.render_rollback(attestation_exp.rollback_table()),
        attestation_exp.render_crash_matrix(),
    ]
    return "\n\n".join(parts)


def run_e12() -> str:
    return (overhead.render_crossing(overhead.boundary_crossing_table())
            + "\n\n" + securecomp_exp.render_ablation(
                securecomp_exp.ablation_table()))


def run_cfi() -> str:
    return cfi_exp.render_cfi(cfi_exp.cfi_table())


def run_heap() -> str:
    return heap_exp.render_heap(heap_exp.heap_table())


def run_multimodule() -> str:
    return multimodule_exp.render_multimodule(
        multimodule_exp.multimodule_report())


def run_sfi() -> str:
    from repro.experiments.reporting import render_kv

    return (sfi_exp.render_sfi(sfi_exp.sfi_table())
            + "\n\n" + render_kv("SFI asymmetry (the paper's criticism)",
                                 sfi_exp.asymmetry_report()))


EXPERIMENTS = {
    "e1": ("Figure 1: source / machine code / run-time state", run_e1),
    "e4": ("attack x countermeasure matrix", run_e4),
    "cfi": ("extension: coarse vs typed CFI precision", run_cfi),
    "heap": ("extension: heap attacks vs defences", run_heap),
    "multi": ("extension: mutually distrustful modules", run_multimodule),
    "sfi": ("extension: software fault isolation", run_sfi),
    "e5": ("countermeasure overhead", run_e5),
    "e6": ("ASLR entropy sweep", run_e6),
    "e7": ("safe language / static analysis / fuzzing", run_e7),
    "e8": ("Figures 2-3: scraping vs the PMA", run_e8_e9),
    "e10": ("Figure 4: secure compilation", run_e10),
    "e11": ("attestation / sealing / continuity", run_e11),
    "e12": ("secure-compilation cost and ablation", run_e12),
}


def main(argv: list[str]) -> int:
    selected = [arg.lower() for arg in argv] or list(EXPERIMENTS)
    for key in selected:
        if key not in EXPERIMENTS:
            print(f"unknown experiment {key!r}; have {', '.join(EXPERIMENTS)}")
            return 1
        title, runner = EXPERIMENTS[key]
        banner = f"==== {key.upper()} :: {title} "
        print(banner + "=" * max(0, 78 - len(banner)))
        print(runner())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
