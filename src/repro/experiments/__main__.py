"""Run every experiment and print the paper-artefact reports.

Usage::

    python -m repro.experiments                 # everything
    python -m repro.experiments e4 e10          # selected experiment ids
    python -m repro.experiments --metrics cfi   # + aggregate metrics
    python -m repro.experiments --trace-out fig1.json fig1
                                                # + Chrome trace of the runs

``--trace-out`` / ``--jsonl-out`` / ``--metrics`` attach repro.observe
collectors to every machine the selected experiments build, then
export/print what was gathered.  ``fig1`` is an alias for ``e1``
(``fig4`` for ``e10``).
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import nullcontext

from repro.experiments import (
    analysis_exp,
    aslr,
    attestation_exp,
    campaign_exp,
    cfi_exp,
    fig1,
    fuzz_exp,
    heap_exp,
    fig4_exp,
    matrix,
    modules_exp,
    multimodule_exp,
    overhead,
    securecomp_exp,
    sfi_exp,
)
from repro.experiments.reporting import render_kv, render_metrics


def run_e1() -> str:
    return (fig1.generate_fig1().render()
            + "\n\n" + fig1.attack_provenance().render())


def run_e4(jobs: int | None = None, invariants: bool = False) -> str:
    return matrix.render_matrix(
        matrix.run_matrix(jobs=jobs, invariants=invariants),
        invariants=invariants,
    )


def run_e5() -> str:
    return "\n\n".join([
        overhead.render_overhead(overhead.overhead_table()),
        overhead.render_overhead(overhead.overhead_table(optimize=True),
                                 optimized=True),
        overhead.render_scaling(overhead.scaling_table()),
    ])


def run_campaign(jobs: int | None = None, seed: int | None = None) -> str:
    return campaign_exp.run_campaign(jobs=jobs, seed=seed)


def run_fuzz(jobs: int | None = None, seed: int | None = None) -> str:
    return fuzz_exp.run_fuzz(jobs=jobs, seed=seed)


def run_e6(seed: int | None = None) -> str:
    import random

    # Two independent streams so the sweep's draws don't shift the
    # comparison's when trial counts change.
    sweep_rng = random.Random(seed) if seed is not None else None
    cmp_rng = random.Random(seed + 1) if seed is not None else None
    comparison = aslr.partial_overwrite_comparison(trials=48, rng=cmp_rng)
    return (aslr.render_sweep(aslr.sweep(trials=16, rng=sweep_rng))
            + "\n\n" + render_kv(
                "E6b: eroding ASLR with a partial overwrite (16-bit ASLR)",
                {
                    "full-address guess": f"{comparison['full_rate']:.4f} "
                    f"(expected ~{comparison['expected_full_rate']:.5f})",
                    "2-byte partial overwrite": f"{comparison['partial_rate']:.4f} "
                    f"(expected ~{comparison['expected_partial_rate']:.4f})",
                }))


def run_e7() -> str:
    return "\n\n".join([
        analysis_exp.render_safe_language(analysis_exp.safe_language_report()),
        analysis_exp.static_analysis_report(),
        analysis_exp.fuzzing_report(),
    ])


def run_e8_e9() -> str:
    lockout = modules_exp.io_attacker_lockout()
    parts = [
        render_kv("E8a: I/O attacker vs the bug-free module", lockout),
        modules_exp.render_scrapers(modules_exp.scraper_table()),
        modules_exp.render_census(modules_exp.sweep_census()),
        render_kv("E9c: functionality preserved under protection",
                  modules_exp.functionality_preserved()),
        modules_exp.render_residue(modules_exp.residue_table()),
    ]
    return "\n\n".join(parts)


def run_e10() -> str:
    return (fig4_exp.render_scenarios(fig4_exp.scenario_table())
            + "\n\n" + fig4_exp.render_brute_force())


def run_e11() -> str:
    parts = [
        render_kv("E11: attestation", attestation_exp.attestation_report()),
        render_kv("E11: sealing", attestation_exp.sealing_report()),
        attestation_exp.render_rollback(attestation_exp.rollback_table()),
        attestation_exp.render_crash_matrix(),
    ]
    return "\n\n".join(parts)


def run_e12() -> str:
    return (overhead.render_crossing(overhead.boundary_crossing_table())
            + "\n\n" + securecomp_exp.render_ablation(
                securecomp_exp.ablation_table()))


def run_cfi() -> str:
    return (cfi_exp.render_cfi(cfi_exp.cfi_table())
            + "\n\n" + cfi_exp.render_indirect_transfers(
                cfi_exp.indirect_transfer_table()))


def run_heap() -> str:
    return heap_exp.render_heap(heap_exp.heap_table())


def run_multimodule() -> str:
    return multimodule_exp.render_multimodule(
        multimodule_exp.multimodule_report())


def run_sfi() -> str:
    from repro.experiments.reporting import render_kv

    return (sfi_exp.render_sfi(sfi_exp.sfi_table())
            + "\n\n" + render_kv("SFI asymmetry (the paper's criticism)",
                                 sfi_exp.asymmetry_report()))


EXPERIMENTS = {
    "e1": ("Figure 1: source / machine code / run-time state", run_e1),
    "e4": ("attack x countermeasure matrix", run_e4),
    "campaign": ("snapshot campaigns: ASLR guesses / PIN rollback / matrix",
                 run_campaign),
    "fuzz": ("greybox vs blind fuzzing on the snapshot fork-server",
             run_fuzz),
    "cfi": ("extension: coarse vs typed CFI precision", run_cfi),
    "heap": ("extension: heap attacks vs defences", run_heap),
    "multi": ("extension: mutually distrustful modules", run_multimodule),
    "sfi": ("extension: software fault isolation", run_sfi),
    "e5": ("countermeasure overhead", run_e5),
    "e6": ("ASLR entropy sweep", run_e6),
    "e7": ("safe language / static analysis / fuzzing", run_e7),
    "e8": ("Figures 2-3: scraping vs the PMA", run_e8_e9),
    "e10": ("Figure 4: secure compilation", run_e10),
    "e11": ("attestation / sealing / continuity", run_e11),
    "e12": ("secure-compilation cost and ablation", run_e12),
}


#: Friendly names for the experiments people know by figure number.
ALIASES = {"fig1": "e1", "fig4": "e10"}


# ---------------------------------------------------------------------------
# The fuzzing-service front end (submit / serve / status)
# ---------------------------------------------------------------------------


def _service_main(command: str, argv: list[str]) -> int:
    """``python -m repro.experiments submit|serve|status`` -- the
    durable campaign service (repro.campaign.service)."""
    from repro.campaign.service import CampaignCoordinator, CampaignSpec

    parser = argparse.ArgumentParser(
        prog=f"python -m repro.experiments {command}")
    parser.add_argument("--store", required=True, metavar="DIR",
                        help="service root (job spool + campaign stores)")
    if command == "submit":
        parser.add_argument("--victim", required=True,
                            help="victim program name (repro.programs)")
        parser.add_argument("--job-id", default=None,
                            help="job name (default: derived from victim)")
        parser.add_argument("--config", default="testing",
                            help="mitigation preset (default: testing)")
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument("--max-execs", type=int, default=2000,
                            metavar="N", help="per-job execution budget")
        parser.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="worker processes inside the campaign")
        parser.add_argument("--max-len", type=int, default=96)
        options = parser.parse_args(argv)
        coordinator = CampaignCoordinator(options.store)
        job_id = options.job_id or f"{options.victim}-{options.seed}"
        store_root = coordinator.submit(CampaignSpec(
            job_id=job_id, victim=options.victim, config=options.config,
            seed=options.seed, max_execs=options.max_execs,
            jobs=options.jobs, max_len=options.max_len,
        ))
        print(f"[service] queued {job_id!r} -> {store_root}")
        return 0
    if command == "serve":
        parser.add_argument("--concurrency", type=int, default=2, metavar="N",
                            help="campaigns drained at once (default: 2)")
        parser.add_argument("--max-batches", type=int, default=None,
                            metavar="N",
                            help="interrupt each campaign after N mutation "
                                 "batches, leaving a resumable checkpoint "
                                 "(default: drain to completion)")
        options = parser.parse_args(argv)
        coordinator = CampaignCoordinator(
            options.store, concurrency=options.concurrency,
            max_batches=options.max_batches)
        reports = coordinator.serve()
        for job_id in sorted(reports):
            digest = reports[job_id]
            state = "paused" if digest.get("interrupted") else "done"
            print(f"[service] {job_id}: {state} execs={digest.get('execs')} "
                  f"edges={digest.get('edges')} "
                  f"crashes={digest.get('unique_crashes')}")
        return 0
    # status
    options = parser.parse_args(argv)
    rows = CampaignCoordinator(options.store).status()
    if not rows:
        print("[service] no jobs spooled")
        return 0
    for row in rows:
        print(f"[service] {row.job_id}: {row.status} "
              f"execs={row.execs}/{row.max_execs} "
              f"corpus={row.corpus_size} crashes={row.unique_crashes}")
    return 0


def main(argv: list[str]) -> int:
    if argv and argv[0] in ("submit", "serve", "status"):
        return _service_main(argv[0], argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run paper-artefact experiments, optionally under "
                    "the repro.observe event bus.",
    )
    parser.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                        help="experiment ids (default: all); "
                             f"have {', '.join(EXPERIMENTS)}")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write a Chrome trace-event JSON of every "
                             "machine the experiments run")
    parser.add_argument("--jsonl-out", metavar="FILE",
                        help="write the raw event stream as JSON lines")
    parser.add_argument("--metrics", action="store_true",
                        help="print aggregate execution metrics at the end")
    parser.add_argument("--jobs", type=int, default=os.cpu_count(),
                        metavar="N",
                        help="worker processes for the attack matrix (e4); "
                             "1 forces the sequential in-process path "
                             "(default: cpu count; observed runs via "
                             "--trace-out/--jsonl-out/--metrics are always "
                             "sequential)")
    parser.add_argument("--invariants", action="store_true",
                        help="ride an InvariantMonitor on every machine "
                             "the attack matrix (e4) builds and print the "
                             "first-invariant-broken attribution table")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="base seed for the randomised experiments "
                             "(e6 sweep seeds, campaign trial streams); "
                             "default keeps each experiment's recorded "
                             "deterministic seeds")
    options = parser.parse_args(argv)

    selected = [ALIASES.get(arg.lower(), arg.lower())
                for arg in options.experiments] or list(EXPERIMENTS)
    for key in selected:
        if key not in EXPERIMENTS:
            print(f"unknown experiment {key!r}; have {', '.join(EXPERIMENTS)}")
            return 1

    from repro.observe import (
        EventTrace,
        MetricsCollector,
        export_chrome_trace,
        export_jsonl,
        observe_new_machines,
    )

    trace = metrics = None
    factories = []
    if options.trace_out or options.jsonl_out:
        trace = EventTrace()
        factories.append(lambda machine: trace)
    if options.metrics:
        metrics = MetricsCollector()
        factories.append(lambda machine: metrics)
    scope = observe_new_machines(*factories) if factories else nullcontext()

    with scope:
        for key in selected:
            title, runner = EXPERIMENTS[key]
            banner = f"==== {key.upper()} :: {title} "
            print(banner + "=" * max(0, 78 - len(banner)))
            if key == "e4":
                print(run_e4(jobs=options.jobs,
                             invariants=options.invariants))
            elif key == "campaign":
                print(run_campaign(jobs=options.jobs, seed=options.seed))
            elif key == "fuzz":
                # Sequential by default: the greybox loop's warm
                # in-process executor beats pool spin-up at these
                # budgets, and observed runs can't cross processes.
                print(run_fuzz(jobs=None, seed=options.seed))
            elif key == "e6":
                print(run_e6(seed=options.seed))
            else:
                print(runner())
            print()

    if trace is not None:
        if options.trace_out:
            export_chrome_trace(trace, options.trace_out)
            print(f"[observe] Chrome trace ({len(trace.events)} events, "
                  f"{trace.dropped} dropped) -> {options.trace_out}")
        if options.jsonl_out:
            lines = export_jsonl(trace, options.jsonl_out)
            print(f"[observe] {lines} JSONL events -> {options.jsonl_out}")
    if metrics is not None:
        print(render_metrics(metrics.snapshot(),
                             title="Aggregate metrics (all machines run)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
