"""Snapshot-campaign ports of the repeated-trial experiments.

Three experiment families re-run many trials against the same victim;
each previously rebuilt the whole toolchain pipeline per trial.  Here
they ride :class:`~repro.campaign.CampaignRunner` instead -- one
build, one copy-on-write snapshot, O(dirty-pages) restores:

* **ASLR guess sweep** -- the E6 statistics from a fixed victim.  The
  original sweep re-rolls the *victim's* layout every trial while the
  attacker guesses shift zero; a snapshot campaign necessarily fixes
  the victim, so the randomness moves to the *attacker*: each trial
  guesses a uniformly drawn text shift and rebases the return-to-libc
  payload by it.  Success still requires guess == actual shift, so the
  per-trial success probability is exactly ``2**-bits`` either way --
  the distributions are identical, only the cost per trial changes.
* **Figure 2 PIN brute force** -- the rollback attack made concrete.
  In a single run the module's ``tries_left`` counter locks the
  attacker out after three wrong guesses
  (:func:`repro.experiments.modules_exp.io_attacker_lockout`); with a
  snapshot restore between guesses the counter is rewound every time
  and the whole PIN space falls.  This is why Section IV-C needs
  counters *outside* the resettable state (hardware monotonic
  counters), which :mod:`repro.experiments.attestation_exp` covers.
* **Matrix repeated cells** -- the return-to-libc row of the E4 matrix
  replayed ``trials`` times per deployment posture from one warm
  snapshot each, confirming the verdicts are stable (and measuring the
  ASLR cell's success *rate* rather than a single sample).
"""

from __future__ import annotations

import random
import struct
from collections import Counter
from dataclasses import dataclass

from repro.attacks.base import Outcome, classify_failure
from repro.attacks.payloads import smash
from repro.attacks.study import locate_overflow
from repro.campaign import CampaignResult, CampaignRunner
from repro.experiments.reporting import render_kv, render_table
from repro.machine.memory import PAGE_SIZE
from repro.minic.codegen import SECURITY_ABORT_EXIT_CODE
from repro.mitigations.config import MATRIX_PRESETS, NONE, MitigationConfig
from repro.programs.builders import build_fig1, build_secret_program

# ---------------------------------------------------------------------------
# Picklable campaign pieces (module-level so the process pool can ship
# them to workers, exactly like matrix._run_cell).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig1Factory:
    """Builds the Figure 1 victim once per worker."""

    config: MitigationConfig
    seed: int

    def __call__(self):
        return build_fig1(self.config, seed=self.seed, wide_open=True)


@dataclass(frozen=True)
class SecretFactory:
    """Builds the Figure 2 secret-module program once per worker."""

    seed: int = 0

    def __call__(self):
        return build_secret_program(NONE, seed=self.seed)


@dataclass(frozen=True)
class Ret2LibcGuessTrial:
    """One return-to-libc attempt with a per-trial guessed ASLR shift.

    The offsets and symbols come from the attacker's *local* study (an
    unrandomised build of the same binary); only the text shift is
    unknown, and the trial rebases both libc targets by its guess.
    """

    offset_to_return: int
    spawn: int
    exit_fn: int
    bits: int
    base_seed: int
    max_instructions: int = 2_000_000

    def __call__(self, target, index: int) -> str:
        guess = 0
        if self.bits:
            rng = random.Random(f"{self.base_seed}:{index}")
            guess = rng.randrange(1 << self.bits) * PAGE_SIZE
        target.feed(smash(self.offset_to_return,
                          self.spawn + guess, self.exit_fn + guess))
        run = target.run(self.max_instructions)
        if run.shell_spawned:
            return Outcome.SUCCESS.value
        if run.exit_code == SECURITY_ABORT_EXIT_CODE:
            return Outcome.DETECTED.value
        return classify_failure(run).outcome.value


@dataclass(frozen=True)
class PinGuessTrial:
    """One PIN guess against a freshly rewound ``tries_left = 3``."""

    first_pin: int = 0
    max_instructions: int = 2_000_000

    def __call__(self, target, index: int) -> int | None:
        pin = self.first_pin + index
        target.feed(struct.pack("<II", 1, pin))
        run = target.run(self.max_instructions)
        return pin if b"666" in run.output.split() else None


# ---------------------------------------------------------------------------
# ASLR guess sweep
# ---------------------------------------------------------------------------


@dataclass
class GuessPoint:
    bits: int
    trials: int
    successes: int
    trials_per_second: float
    restored_pages: int

    @property
    def rate(self) -> float:
        return self.successes / self.trials

    @property
    def expected_rate(self) -> float:
        return 2.0 ** -self.bits


def aslr_guess_campaign(bits_list=(0, 1, 2, 3, 4, 6), trials: int = 64,
                        base_seed: int = 100,
                        jobs: int | None = None) -> list[GuessPoint]:
    """E6 over snapshots: fixed victim, per-trial guessed shift."""
    points = []
    for bits in bits_list:
        config = MitigationConfig(aslr_bits=bits) if bits else MitigationConfig()
        local = build_fig1(config.with_(aslr_bits=0), wide_open=True)
        site = locate_overflow(local, frames_up=1)
        trial = Ret2LibcGuessTrial(
            site.offset_to_return,
            local.symbol("libc_spawn_shell"),
            local.symbol("libc_exit"),
            bits,
            base_seed + bits,
        )
        runner = CampaignRunner(Fig1Factory(config, base_seed), trial=trial,
                                jobs=jobs)
        result = runner.run(trials)
        successes = sum(1 for verdict in result.verdicts
                        if verdict == "success")
        points.append(GuessPoint(bits, trials, successes,
                                 result.trials_per_second,
                                 result.restored_pages))
    return points


def render_guess_sweep(points: list[GuessPoint]) -> str:
    rows = [
        [p.bits, p.trials, f"{p.rate:.3f}", f"{p.expected_rate:.3f}",
         f"{p.trials_per_second:.0f}", p.restored_pages]
        for p in points
    ]
    return render_table(
        ["ASLR bits", "trials", "success rate", "~expected 2^-bits",
         "trials/s", "pages rewound"],
        rows,
        title="Campaign E6: blind guess success vs ASLR entropy "
              "(one victim, snapshot/restore per trial)",
    )


# ---------------------------------------------------------------------------
# Figure 2 PIN brute force (the rollback attack)
# ---------------------------------------------------------------------------


def pin_bruteforce_campaign(pin_space: int = 1500, first_pin: int = 0,
                            lockout_budget: int = 100,
                            jobs: int | None = None) -> dict:
    """Brute-force the Figure 2 PIN by rolling back ``tries_left``.

    Contrasts the in-run attacker (lockout after three wrong guesses)
    with the snapshot attacker, who rewinds the module's state between
    guesses and searches the whole space.
    """
    from repro.experiments.modules_exp import io_attacker_lockout

    lockout = io_attacker_lockout(guess_budget=lockout_budget)
    runner = CampaignRunner(SecretFactory(), trial=PinGuessTrial(first_pin),
                            jobs=jobs)
    result = runner.run(pin_space)
    found = [pin for pin in result.verdicts if pin is not None]
    return {
        "in_run_guesses": lockout["guesses_sent"],
        "in_run_locked_out": lockout["locked_out"],
        "rollback_guesses": pin_space,
        "rollback_found_pin": found[0] if found else None,
        "rollback_trials_per_second": result.trials_per_second,
        "rollback_pages_rewound": result.restored_pages,
    }


def render_pin_campaign(report: dict) -> str:
    found = report["rollback_found_pin"]
    return render_kv(
        "Campaign Fig.2: PIN brute force, in-run vs snapshot rollback",
        {
            "in-run attacker": (
                f"{report['in_run_guesses']} guesses, "
                + ("locked out by tries_left"
                   if report["in_run_locked_out"] else "NOT locked out")),
            "rollback attacker": (
                f"{report['rollback_guesses']} guesses, "
                + (f"PIN recovered: {found}" if found is not None
                   else "PIN not in searched range")),
            "rollback cost": (
                f"{report['rollback_trials_per_second']:.0f} trials/s, "
                f"{report['rollback_pages_rewound']} pages rewound"),
        })


# ---------------------------------------------------------------------------
# Matrix repeated cells
# ---------------------------------------------------------------------------

#: The deployment postures whose return-to-libc cell gets re-trialled.
CAMPAIGN_PRESETS = ("none", "dep", "aslr", "deployed")


def matrix_campaign(trials: int = 12, base_seed: int = 7,
                    jobs: int | None = None) -> list[dict]:
    """Replay the return-to-libc matrix row ``trials`` times per preset."""
    presets = dict(MATRIX_PRESETS)
    rows = []
    for name in CAMPAIGN_PRESETS:
        config = presets[name]
        local = build_fig1(config.with_(aslr_bits=0), wide_open=True)
        site = locate_overflow(local, frames_up=1)
        trial = Ret2LibcGuessTrial(
            site.offset_to_return,
            local.symbol("libc_spawn_shell"),
            local.symbol("libc_exit"),
            config.aslr_bits,
            base_seed,
        )
        result = CampaignRunner(Fig1Factory(config, base_seed), trial=trial,
                                jobs=jobs).run(trials)
        counts = Counter(result.verdicts)
        rows.append({
            "preset": name,
            "trials": trials,
            "success": counts.get(Outcome.SUCCESS.value, 0),
            "detected": counts.get(Outcome.DETECTED.value, 0),
            "crashed": counts.get(Outcome.CRASHED.value, 0),
            "no_effect": counts.get(Outcome.NO_EFFECT.value, 0),
            "trials_per_second": result.trials_per_second,
        })
    return rows


def render_matrix_campaign(rows: list[dict]) -> str:
    return render_table(
        ["preset", "trials", "success", "detected", "crashed", "no effect",
         "trials/s"],
        [[row["preset"], row["trials"], row["success"], row["detected"],
          row["crashed"], row["no_effect"],
          f"{row['trials_per_second']:.0f}"] for row in rows],
        title="Campaign E4: return-to-libc row, repeated from one "
              "snapshot per preset",
    )


# ---------------------------------------------------------------------------
# Headline throughput sample + CLI entry
# ---------------------------------------------------------------------------


def snapshot_vs_cold(trials: int = 64,
                     base_seed: int = 100) -> tuple[CampaignResult, CampaignResult]:
    """Run the same return-to-libc campaign warm and cold (sequential
    both ways, so the ratio is pure snapshot-vs-rebuild).  The warm
    timing still includes its single build, so enough trials are
    needed to show the steady-state gap."""
    config = MitigationConfig(aslr_bits=4)
    local = build_fig1(config.with_(aslr_bits=0), wide_open=True)
    site = locate_overflow(local, frames_up=1)
    trial = Ret2LibcGuessTrial(
        site.offset_to_return,
        local.symbol("libc_spawn_shell"),
        local.symbol("libc_exit"),
        config.aslr_bits,
        base_seed,
    )
    runner = CampaignRunner(Fig1Factory(config, base_seed), trial=trial)
    warm = runner.run(trials)
    cold = runner.run_cold(trials)
    return warm, cold


def run_campaign(jobs: int | None = None, seed: int | None = None) -> str:
    base_seed = 100 if seed is None else seed
    warm, cold = snapshot_vs_cold()
    speedup = (warm.trials_per_second / cold.trials_per_second
               if cold.trials_per_second else float("inf"))
    parts = [
        render_guess_sweep(aslr_guess_campaign(trials=32, base_seed=base_seed,
                                               jobs=jobs)),
        render_pin_campaign(pin_bruteforce_campaign(jobs=jobs)),
        render_matrix_campaign(matrix_campaign(base_seed=base_seed + 7,
                                               jobs=jobs)),
        render_kv("Snapshot restore vs cold rebuild (same trials, "
                  "sequential)", {
                      "snapshot": f"{warm.trials_per_second:.0f} trials/s "
                                  f"({warm.restored_pages} pages rewound)",
                      "cold rebuild": f"{cold.trials_per_second:.1f} trials/s",
                      "speedup": f"{speedup:.1f}x",
                  }),
    ]
    return "\n\n".join(parts)
