"""Extension experiment -- coarse vs typed CFI precision.

The paper presents CFI-style enforcement implicitly through its
countermeasure survey; the memory-war literature it cites ([7])
distinguishes *coarse* CFI (any function entry is a valid indirect
target) from *fine-grained/typed* CFI (targets must match the call
site's function type).  This experiment measures the precision ladder
on the function-pointer victim:

* no CFI        -- every hijack works;
* coarse CFI    -- blocks pointers into data/mid-function, but any
                   *function* remains a valid target;
* typed CFI     -- additionally blocks functions of the wrong type,
                   leaving only same-type functions reachable (the
                   irreducible residue of type-based policies).
"""

from __future__ import annotations

from repro.attacks.io_attacks import (
    attack_funcptr_same_type,
    attack_funcptr_to_injected,
    attack_funcptr_to_libc,
)
from repro.experiments.reporting import render_table
from repro.mitigations.config import MitigationConfig, NONE

POSTURES = (
    ("no cfi", NONE),
    ("coarse cfi", MitigationConfig(cfi=True)),
    ("typed cfi", MitigationConfig(cfi_typed=True)),
)

ATTACKS = (
    ("hijack -> injected bytes", attack_funcptr_to_injected),
    ("hijack -> libc function (wrong type)", attack_funcptr_to_libc),
    ("hijack -> same-type function", attack_funcptr_same_type),
)


def cfi_table(seed: int = 0) -> list[dict]:
    rows = []
    for attack_name, attack_fn in ATTACKS:
        row = {"attack": attack_name}
        for posture_name, config in POSTURES:
            result = attack_fn(config, seed=seed)
            row[posture_name] = result.outcome.value
        rows.append(row)
    return rows


def render_cfi(rows: list[dict]) -> str:
    return render_table(
        ["attack", "no cfi", "coarse cfi", "typed cfi"],
        [[r["attack"], r["no cfi"], r["coarse cfi"], r["typed cfi"]]
         for r in rows],
        title="CFI precision ladder on the function-pointer victim",
    )


def indirect_transfer_table(seed: int = 0) -> list[dict]:
    """Count the control transfers each posture actually polices.

    Runs the same-type hijack (the residue attack every CFI flavour
    must let through) under a :class:`MetricsCollector` per posture.
    Indirect calls/jumps are the population a CFI check intercepts;
    the direct ones ride for free -- the table makes that asymmetry,
    and thus CFI's enforcement surface, concrete.
    """
    from repro.observe import MetricsCollector, observe_new_machines

    rows = []
    for posture_name, config in POSTURES:
        metrics = MetricsCollector()
        with observe_new_machines(lambda machine: metrics):
            result = attack_funcptr_same_type(config, seed=seed)
        rows.append({
            "posture": posture_name,
            "indirect_calls": metrics.control["call_indirect"],
            "indirect_jumps": metrics.control["jump_indirect"],
            "direct_calls": metrics.control["call"],
            "rets": metrics.control["ret"],
            "instructions": metrics.instructions,
            "outcome": result.outcome.value,
        })
    return rows


def render_indirect_transfers(rows: list[dict]) -> str:
    return render_table(
        ["posture", "indirect calls", "indirect jumps", "direct calls",
         "rets", "instructions", "outcome"],
        [[r["posture"], r["indirect_calls"], r["indirect_jumps"],
          r["direct_calls"], r["rets"], r["instructions"], r["outcome"]]
         for r in rows],
        title="Indirect-transfer census during the same-type hijack "
              "(what CFI polices)",
    )
