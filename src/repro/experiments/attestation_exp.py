"""E11 -- remote attestation, sealing, and state continuity (IV-C).

* attestation: the unmodified module produces verifiable reports; a
  module tampered with by the OS at load time measures differently,
  receives a different key, and every report it produces fails;
* sealing: blobs are unreadable and unforgeable without the module
  key, and another module cannot unseal them;
* rollback: plain sealing falls to state replay; the monotonic-counter
  module refuses stale state;
* liveness: strict freshness (Memoir-style) deadlocks on an unlucky
  crash; the write-then-increment scheme (Ice-style) recovers from
  every crash point -- the crash matrix enumerates them all.
"""

from __future__ import annotations

from repro.attacks.rollback import attack_rollback, liveness_report
from repro.errors import SealingError
from repro.experiments.reporting import render_table
from repro.mitigations.config import NONE
from repro.pma import crypto
from repro.pma.attestation import ProvisioningAuthority, RemoteVerifier
from repro.pma.continuity import IceStyleScheme, MemoirStyleScheme, crash_matrix
from repro.pma.sealing import SealedStorage
from repro.programs.builders import build_secret_program


def attestation_report(seed: int = 0) -> dict:
    """Attest a genuine module, then a load-time-tampered one."""
    program = build_secret_program(NONE, protected=True, secure=True, seed=seed)
    controller = program.machine.pma
    module = controller.modules[0]
    genuine_code = program.image.protected_modules[0].text_bytes
    authority = ProvisioningAuthority(b"\x00" * 32)

    verifier = RemoteVerifier(authority.expected_module_key(genuine_code))
    nonce = verifier.challenge()
    report = controller.attest(module, nonce)
    genuine_ok = verifier.verify(nonce, report)

    # The malicious OS flips one byte of the module before loading.
    # The hardware measures the *tampered* code, so the key differs.
    tampered_code = bytearray(genuine_code)
    tampered_code[8] ^= 0x01
    tampered_key = crypto.derive_module_key(
        b"\x00" * 32, crypto.measure(bytes(tampered_code))
    )
    verifier = RemoteVerifier(authority.expected_module_key(genuine_code))
    nonce = verifier.challenge()
    forged_report = crypto.mac(tampered_key, b"attest" + nonce)
    tampered_ok = verifier.verify(nonce, forged_report)

    # Replay protection: a verified nonce cannot be replayed.
    nonce = verifier.challenge()
    report = controller.attest(module, nonce)
    first = verifier.verify(nonce, report)
    replayed = verifier.verify(nonce, report)

    return {
        "genuine_module_verifies": genuine_ok,
        "tampered_module_verifies": tampered_ok,
        "nonce_replay_accepted": replayed and first,
    }


def sealing_report() -> dict:
    """Confidentiality, integrity, and isolation of sealed blobs."""
    storage_a = SealedStorage(b"\xaa" * 32)
    storage_b = SealedStorage(b"\xbb" * 32)
    blob = storage_a.seal(b"tries_left=2")
    plaintext_hidden = b"tries_left" not in blob
    roundtrip = storage_a.unseal(blob) == b"tries_left=2"
    tampered = bytearray(blob)
    tampered[-1] ^= 1
    try:
        storage_a.unseal(bytes(tampered))
        tamper_detected = False
    except SealingError:
        tamper_detected = True
    try:
        storage_b.unseal(blob)
        cross_module_blocked = False
    except SealingError:
        cross_module_blocked = True
    return {
        "plaintext_hidden": plaintext_hidden,
        "roundtrip_ok": roundtrip,
        "tamper_detected": tamper_detected,
        "cross_module_blocked": cross_module_blocked,
    }


def rollback_table(seed: int = 0) -> list[dict]:
    """Machine-level rollback attack against all three module variants."""
    from repro.attacks.rollback import ice_report

    rows = []
    for monotonic in (False, True):
        result = attack_rollback(monotonic=monotonic, seed=seed)
        live = liveness_report(monotonic=monotonic, seed=seed + 50)
        rows.append({
            "module": "monotonic counter" if monotonic else "plain sealing",
            "rollback": result.outcome.value,
            "detail": result.detail[:46],
            "crash_liveness": "recovers" if live["liveness_preserved"]
            else f"BRICKED ({live['restore_status']})",
        })
    ice = ice_report(seed=seed + 100)
    rows.append({
        "module": "ice-style (write-then-commit)",
        "rollback": "detected" if ice["replay_of_committed_old_state_refused"]
        else "success",
        "detail": "stale committed state refused",
        "crash_liveness": "recovers"
        if ice["recovers_after_crash_before_commit"] else "BRICKED",
    })
    return rows


def render_rollback(rows: list[dict]) -> str:
    return render_table(
        ["module variant", "state-replay attack", "detail", "crash recovery"],
        [[r["module"], r["rollback"], r["detail"], r["crash_liveness"]]
         for r in rows],
        title="E11a: rollback protection vs liveness (on-machine)",
    )


def render_crash_matrix() -> str:
    rows = []
    for scheme in (MemoirStyleScheme, IceStyleScheme):
        for row in crash_matrix(scheme):
            rows.append([
                row["scheme"], row["scenario"],
                "alive" if row["liveness"] else "DEADLOCK",
                row["recovered_state"] if row["recovered_state"] is not None else "-",
                row["error"] or "-",
            ])
    return render_table(
        ["scheme", "scenario", "liveness", "recovered", "error"],
        rows,
        title="E11b: continuity schemes under exhaustive crash injection",
    )
