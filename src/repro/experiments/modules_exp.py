"""E8/E9 -- Figures 2 and 3: the machine-code attacker vs the PMA.

E8 establishes the paper's pivot point: the secret module is
*bug-free* -- the I/O attacker is locked out after three tries -- yet
scraping malware in the same address space (or the kernel) reads the
PIN and the secret directly.

E9 loads the same module into a protected module (Figure 3) and shows
the hardware access-control rules deny the scraper and kernel malware,
deny mid-code entry, deny outside writes -- while the legitimate entry
point keeps working.
"""

from __future__ import annotations

import struct

from repro.attacks.machinecode import (
    attack_memory_scraper,
    attack_register_residue,
    attack_stack_residue,
    sweep_memory,
)
from repro.attacks.payloads import p32
from repro.experiments.reporting import render_table
from repro.mitigations.config import NONE
from repro.programs.builders import build_secret_program


def io_attacker_lockout(guess_budget: int = 100) -> dict:
    """E8a: the I/O attacker's brute force against the bug-free module
    is capped by the three-strikes counter."""
    program = build_secret_program(NONE)
    payload = struct.pack("<I", guess_budget)
    for guess in range(1000, 1000 + guess_budget):  # never hits 1234
        payload += p32(guess)
    program.feed(payload)
    result = program.run(20_000_000)
    answers = [int(line) for line in result.output.split()]
    return {
        "guesses_sent": guess_budget,
        "nonzero_answers": sum(1 for a in answers if a != 0),
        "locked_out": all(a == 0 for a in answers),
        "status": result.status.value,
    }


def scraper_table(seed: int = 0) -> list[dict]:
    """E8b/E9a: the scraper outcome across protection levels."""
    rows = []
    for label, protected, secure, kernel in (
        ("plain program, module malware", False, False, False),
        ("plain program, kernel malware", False, False, True),
        ("protected module, module malware", True, False, False),
        ("protected module, kernel malware", True, False, True),
        ("secure-compiled module, module malware", True, True, False),
        ("secure-compiled module, kernel malware", True, True, True),
    ):
        result = attack_memory_scraper(
            protected=protected, secure=secure, kernel=kernel, seed=seed,
        )
        rows.append({
            "scenario": label,
            "outcome": result.outcome.value,
            "detail": result.detail,
        })
    return rows


def render_scrapers(rows: list[dict]) -> str:
    return render_table(
        ["scenario", "outcome", "detail"],
        [[r["scenario"], r["outcome"], r["detail"][:58]] for r in rows],
        title="E8/E9: memory-scraping malware vs the protected module",
    )


def sweep_census(seed: int = 0) -> list[dict]:
    """E9b: full address-space sweep census -- how much is readable,
    and do the secrets surface?"""
    needles = {"PIN": p32(1234), "secret": p32(666)}
    rows = []
    for label, protected in (("plain", False), ("protected", True)):
        program = build_secret_program(NONE, protected=protected,
                                       secure=protected, seed=seed)
        program.feed(p32(1) + p32(1111))
        program.run()
        for privilege in ("module", "kernel"):
            report = sweep_memory(program.machine, kernel=privilege == "kernel",
                                  needles=needles)
            rows.append({
                "program": label,
                "scanner": privilege,
                "readable_kib": report.bytes_readable // 1024,
                "denied_kib": report.bytes_denied // 1024,
                "secrets_found": ",".join(report.secrets_found) or "-",
            })
    return rows


def render_census(rows: list[dict]) -> str:
    return render_table(
        ["program", "scanner", "readable KiB", "denied KiB", "secrets found"],
        [[r["program"], r["scanner"], r["readable_kib"], r["denied_kib"],
          r["secrets_found"]] for r in rows],
        title="E9b: address-space sweep census",
    )


def functionality_preserved(seed: int = 0) -> dict:
    """E9c: the protected module still serves honest clients."""
    program = build_secret_program(NONE, protected=True, secure=True, seed=seed)
    program.feed(p32(4) + p32(1111) + p32(2222) + p32(1234) + p32(3333))
    result = program.run()
    answers = [int(line) for line in result.output.split()]
    return {
        "answers": answers,
        "correct_pin_served": 666 in answers,
        "wrong_pins_refused": answers.count(0) == 3,
        "status": result.status.value,
    }


def residue_table(seed: int = 0) -> list[dict]:
    """E9d: what the secure compilation's private stack and register
    scrubbing buy (the ablation rows of DESIGN.md)."""
    rows = []
    for label, protected, secure in (
        ("plain program", False, False),
        ("protected, insecure compile", True, False),
        ("protected, secure compile", True, True),
    ):
        stack = attack_stack_residue(protected=protected, secure=secure, seed=seed)
        regs = attack_register_residue(protected=protected, secure=secure, seed=seed)
        rows.append({
            "build": label,
            "stack_residue": stack.outcome.value,
            "register_residue": regs.outcome.value,
        })
    return rows


def render_residue(rows: list[dict]) -> str:
    return render_table(
        ["build", "stack residue", "register residue"],
        [[r["build"], r["stack_residue"], r["register_residue"]] for r in rows],
        title="E9d: information left behind after a module call",
    )
