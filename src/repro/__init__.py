"""repro -- an executable reproduction of Piessens & Verbauwhede,
"Software Security: Vulnerabilities and Countermeasures for Two
Attacker Models" (DATE 2016).

The package builds the entire execution platform the paper reasons
about and makes every vulnerability, attack, and countermeasure it
surveys runnable and measurable:

* :mod:`repro.isa`, :mod:`repro.machine` -- the VN32 simulator (32-bit
  von-Neumann machine with variable-length instructions, paged memory
  with R/W/X permissions, I/O channels, syscalls);
* :mod:`repro.asm`, :mod:`repro.minic`, :mod:`repro.link` -- the
  toolchain: assembler/disassembler, the MinC C-subset compiler with
  mitigation passes, linker and loader (DEP, ASLR, canaries);
* :mod:`repro.mitigations` -- deployment postures (Section III-C);
* :mod:`repro.pma` -- the Protected Module Architecture, attestation,
  sealing, state continuity, plus the secure-compilation passes that
  live in the compiler (Section IV);
* :mod:`repro.attacks` -- both attacker models' full suites
  (Sections III-B and IV);
* :mod:`repro.analysis` -- static analysis and checked fuzzing
  (Section III-C2);
* :mod:`repro.programs` -- the paper's figures as compilable programs;
* :mod:`repro.experiments` -- harnesses that regenerate each figure
  and claim (``python -m repro.experiments``).
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "asm",
    "attacks",
    "errors",
    "experiments",
    "isa",
    "link",
    "machine",
    "minic",
    "mitigations",
    "pma",
    "programs",
    "sfi",
]
