"""Mitigation configuration shared by the compiler and the loader.

One :class:`MitigationConfig` value describes a complete deployment
posture.  The MinC compiler consumes the compile-time flags (canaries,
bounds checks, ASan instrumentation); the loader consumes the
load-time flags (DEP page permissions, ASLR entropy, shadow stack,
CFI).  The attack-vs-countermeasure matrix of experiment E4 sweeps
over the named presets below.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MitigationConfig:
    """Which countermeasures from Section III-C are active."""

    #: Stack canaries between locals and saved registers (compiler).
    stack_canaries: bool = False
    #: Data Execution Prevention: W^X page permissions (loader).
    dep: bool = False
    #: ASLR entropy in pages; 0 disables.  ``n`` bits means the text,
    #: data and stack segments are independently shifted by a random
    #: multiple of the page size in ``[0, 2**n)``.
    aslr_bits: int = 0
    #: Hardware shadow stack cross-checking every ``ret`` (machine).
    shadow_stack: bool = False
    #: Coarse-grained CFI on indirect calls/jumps (machine).
    cfi: bool = False
    #: Typed (fine-grained) CFI: the compiler emits ``land`` landing
    #: pads tagged with the function's type; indirect calls must hit a
    #: pad with the call site's expected tag.  Implies enforcement.
    cfi_typed: bool = False
    #: Safe-language mode: compiler-enforced bounds checks plus the
    #: stricter MinC-safe type rules (Section III-C2's Java/Rust
    #: stand-in).
    bounds_checks: bool = False
    #: ASan-style testing instrumentation: red zones around stack
    #: arrays, enforced by the machine (Section III-C2's run-time
    #: checks during testing).
    asan: bool = False

    def with_(self, **changes) -> "MitigationConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Short human-readable summary, e.g. ``canary+dep+aslr16``."""
        parts = []
        if self.stack_canaries:
            parts.append("canary")
        if self.dep:
            parts.append("dep")
        if self.aslr_bits:
            parts.append(f"aslr{self.aslr_bits}")
        if self.shadow_stack:
            parts.append("shadowstack")
        if self.cfi_typed:
            parts.append("cfi-typed")
        elif self.cfi:
            parts.append("cfi")
        if self.bounds_checks:
            parts.append("safe")
        if self.asan:
            parts.append("asan")
        return "+".join(parts) if parts else "none"


#: No protection at all: the historical baseline every Section III
#: attack assumes.
NONE = MitigationConfig()

#: Stack canaries only.
CANARY = MitigationConfig(stack_canaries=True)

#: DEP only.
DEP = MitigationConfig(dep=True)

#: ASLR only, with 16 pages-worth of entropy per segment.
ASLR = MitigationConfig(aslr_bits=16)

#: Canaries + DEP (a common mid-2000s server posture).
CANARY_DEP = MitigationConfig(stack_canaries=True, dep=True)

#: The widely deployed triple of Section III-C1.
DEPLOYED = MitigationConfig(stack_canaries=True, dep=True, aslr_bits=16)

#: The deployed triple plus shadow stack and coarse CFI.
HARDENED = MitigationConfig(
    stack_canaries=True, dep=True, aslr_bits=16, shadow_stack=True, cfi=True
)

#: Safe-language mode (bounds checks) on top of the deployed triple.
SAFE_LANGUAGE = MitigationConfig(bounds_checks=True, dep=True)

#: Testing posture: ASan red zones (typically too slow for production).
TESTING = MitigationConfig(asan=True)

#: The preset sweep used by the attack-vs-countermeasure matrix.
MATRIX_PRESETS: tuple[tuple[str, MitigationConfig], ...] = (
    ("none", NONE),
    ("canary", CANARY),
    ("dep", DEP),
    ("aslr", ASLR),
    ("canary+dep", CANARY_DEP),
    ("deployed", DEPLOYED),
    ("hardened", HARDENED),
)
