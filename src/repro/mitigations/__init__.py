"""Countermeasure configuration and policy (Section III-C)."""

from repro.mitigations.config import (
    ASLR,
    CANARY,
    CANARY_DEP,
    DEP,
    DEPLOYED,
    HARDENED,
    MATRIX_PRESETS,
    MitigationConfig,
    NONE,
    SAFE_LANGUAGE,
    TESTING,
)

__all__ = [
    "ASLR",
    "CANARY",
    "CANARY_DEP",
    "DEP",
    "DEPLOYED",
    "HARDENED",
    "MATRIX_PRESETS",
    "MitigationConfig",
    "NONE",
    "SAFE_LANGUAGE",
    "TESTING",
]
