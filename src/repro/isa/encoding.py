"""Binary encoding and decoding of VN32 instructions.

The encoding is byte-oriented and little-endian, mirroring the x86
example of Figure 1 in the paper:

* byte 0: opcode;
* register operands: one byte each, or packed two-per-byte (high
  nibble first operand, low nibble second) for two-register and
  register+memory forms;
* immediates and displacements: 32-bit little-endian words (or a
  single byte for 8-bit forms).

Because instructions are 1-6 bytes long and any byte stream can be
decoded starting at any offset, code and data are interchangeable at
this level -- the property that makes direct code injection and
unintended ROP gadgets possible.
"""

from __future__ import annotations

import struct

from repro.errors import DecodeError, EncodingError
from repro.isa.instructions import Instruction, Mem, to_signed, to_unsigned
from repro.isa.opcodes import (
    BY_OPCODE,
    FORMAT_LENGTHS,
    OPCODE_LENGTHS,
    OPCODE_SPECS,
    OperandFormat,
)
from repro.isa.registers import NUM_REGISTERS

_U32 = struct.Struct("<I")


def encode(insn: Instruction) -> bytes:
    """Encode ``insn`` to its binary form.

    >>> from repro.isa import build
    >>> encode(build.ret()).hex()
    '25'
    >>> encode(build.mov_ri(0, 0x11)).hex()
    '030011000000'
    """
    spec = BY_OPCODE.get(insn.opcode)
    if spec is None:
        raise EncodingError(f"unknown opcode 0x{insn.opcode:02x}")
    fmt = spec.fmt
    ops = insn.operands
    out = bytearray([insn.opcode])
    if fmt is OperandFormat.NONE:
        pass
    elif fmt is OperandFormat.REG:
        out.append(ops[0])
    elif fmt is OperandFormat.REGREG:
        out.append((ops[0] << 4) | ops[1])
    elif fmt is OperandFormat.REGIMM32:
        out.append(ops[0])
        out += _U32.pack(to_unsigned(ops[1]))
    elif fmt is OperandFormat.REGIMM8:
        out.append(ops[0])
        out.append(ops[1] & 0xFF)
    elif fmt is OperandFormat.REGMEM:
        mem: Mem = ops[1]
        out.append((ops[0] << 4) | mem.base)
        out += _U32.pack(to_unsigned(mem.disp))
    elif fmt is OperandFormat.IMM32:
        out += _U32.pack(to_unsigned(ops[0]))
    elif fmt is OperandFormat.IMM8:
        out.append(ops[0] & 0xFF)
    else:  # pragma: no cover - exhaustive over OperandFormat
        raise AssertionError(f"unhandled format {fmt}")
    assert len(out) == FORMAT_LENGTHS[fmt]
    return bytes(out)


def encode_many(instructions) -> bytes:
    """Encode a sequence of instructions to a contiguous byte string."""
    return b"".join(encode(insn) for insn in instructions)


def _check_decoded_reg(value: int, offset: int) -> int:
    if value >= NUM_REGISTERS:
        raise DecodeError(f"invalid register number {value}", offset)
    return value


def decode(data: bytes, offset: int = 0) -> tuple[Instruction, int]:
    """Decode one instruction from ``data`` at ``offset``.

    Returns ``(instruction, length)``.  Raises
    :class:`~repro.errors.DecodeError` if the bytes do not form a valid
    instruction (unknown opcode, bad register nibble, or truncation).

    >>> insn, length = decode(bytes.fromhex('030011000000'))
    >>> str(insn), length
    ('mov r0, 0x11', 6)
    """
    if offset >= len(data):
        raise DecodeError("offset beyond end of data", offset)
    opcode = data[offset]
    spec = OPCODE_SPECS[opcode]
    if spec is None:
        raise DecodeError(f"invalid opcode 0x{opcode:02x}", offset)
    fmt = spec.fmt
    length = OPCODE_LENGTHS[opcode]
    if offset + length > len(data):
        raise DecodeError(
            f"truncated {spec.mnemonic} instruction at offset {offset}", offset
        )
    body = offset + 1
    if fmt is OperandFormat.NONE:
        operands: tuple = ()
    elif fmt is OperandFormat.REG:
        operands = (_check_decoded_reg(data[body], offset),)
    elif fmt is OperandFormat.REGREG:
        packed = data[body]
        operands = (
            _check_decoded_reg(packed >> 4, offset),
            _check_decoded_reg(packed & 0x0F, offset),
        )
    elif fmt is OperandFormat.REGIMM32:
        operands = (
            _check_decoded_reg(data[body], offset),
            _U32.unpack_from(data, body + 1)[0],
        )
    elif fmt is OperandFormat.REGIMM8:
        operands = (_check_decoded_reg(data[body], offset), data[body + 1])
    elif fmt is OperandFormat.REGMEM:
        packed = data[body]
        reg = _check_decoded_reg(packed >> 4, offset)
        base = _check_decoded_reg(packed & 0x0F, offset)
        disp = to_signed(_U32.unpack_from(data, body + 1)[0])
        operands = (reg, Mem(base, disp))
    elif fmt is OperandFormat.IMM32:
        operands = (_U32.unpack_from(data, body)[0],)
    elif fmt is OperandFormat.IMM8:
        operands = (data[body],)
    else:  # pragma: no cover - exhaustive over OperandFormat
        raise AssertionError(f"unhandled format {fmt}")
    return Instruction(opcode, operands), length


def decode_all(data: bytes, base_address: int = 0) -> list[tuple[int, Instruction]]:
    """Linear-sweep decode of an entire byte string.

    Returns ``[(address, instruction), ...]``.  Raises
    :class:`~repro.errors.DecodeError` on the first invalid byte; use
    :func:`decode` directly for tolerant sweeps (as the gadget finder
    does).
    """
    result = []
    offset = 0
    while offset < len(data):
        insn, length = decode(data, offset)
        result.append((base_address + offset, insn))
        offset += length
    return result
