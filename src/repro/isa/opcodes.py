"""Opcode table and operand formats for the VN32 instruction set.

Like the x86 code shown in Figure 1 of the paper, VN32 instructions are
*variable length* (1 to 6 bytes).  This is a deliberate design choice:
variable-length encodings mean the same bytes decode differently at
different offsets, which is what gives Return-Oriented Programming its
supply of *unintended* gadgets (Section III-B).  The gadget-census
ablation in the benchmarks quantifies this.

Each mnemonic maps to one or more encodings, distinguished by operand
format (e.g. ``mov r0, r1`` and ``mov r0, 42`` use different opcodes,
exactly like x86 ModRM vs immediate forms).
"""

from __future__ import annotations

import enum
from typing import Final, NamedTuple


class OperandFormat(enum.Enum):
    """How an instruction's operands are laid out after the opcode byte."""

    #: No operands.  Total length 1.
    NONE = "none"
    #: One register byte.  Total length 2.
    REG = "reg"
    #: One packed register byte: high nibble = first operand, low
    #: nibble = second operand.  Total length 2.
    REGREG = "regreg"
    #: Register byte followed by a 32-bit little-endian immediate.
    #: Total length 6.
    REGIMM32 = "regimm32"
    #: Register byte followed by an 8-bit immediate.  Total length 3.
    REGIMM8 = "regimm8"
    #: Packed register byte (value register, base register) followed by
    #: a 32-bit displacement.  Total length 6.
    REGMEM = "regmem"
    #: A 32-bit little-endian immediate.  Total length 5.
    IMM32 = "imm32"
    #: An 8-bit immediate.  Total length 2.
    IMM8 = "imm8"


#: Encoded length in bytes for each operand format (including opcode).
FORMAT_LENGTHS: Final[dict[OperandFormat, int]] = {
    OperandFormat.NONE: 1,
    OperandFormat.REG: 2,
    OperandFormat.REGREG: 2,
    OperandFormat.REGIMM32: 6,
    OperandFormat.REGIMM8: 3,
    OperandFormat.REGMEM: 6,
    OperandFormat.IMM32: 5,
    OperandFormat.IMM8: 2,
}

#: Longest encoded instruction, used by linear-sweep decoders.
MAX_INSTRUCTION_LENGTH: Final[int] = max(FORMAT_LENGTHS.values())


class OpcodeSpec(NamedTuple):
    """One encoding of one mnemonic."""

    opcode: int
    mnemonic: str
    fmt: OperandFormat


#: The full opcode table.  Opcode bytes not listed here are invalid and
#: raise :class:`~repro.errors.DecodeError` /
#: :class:`~repro.errors.InvalidInstructionFault`.
OPCODE_TABLE: Final[tuple[OpcodeSpec, ...]] = (
    OpcodeSpec(0x00, "nop", OperandFormat.NONE),
    OpcodeSpec(0x01, "halt", OperandFormat.NONE),
    OpcodeSpec(0x02, "mov", OperandFormat.REGREG),
    OpcodeSpec(0x03, "mov", OperandFormat.REGIMM32),
    OpcodeSpec(0x04, "load", OperandFormat.REGMEM),
    OpcodeSpec(0x05, "store", OperandFormat.REGMEM),
    OpcodeSpec(0x06, "loadb", OperandFormat.REGMEM),
    OpcodeSpec(0x07, "storeb", OperandFormat.REGMEM),
    OpcodeSpec(0x08, "push", OperandFormat.REG),
    OpcodeSpec(0x09, "pop", OperandFormat.REG),
    OpcodeSpec(0x0A, "add", OperandFormat.REGREG),
    OpcodeSpec(0x0B, "add", OperandFormat.REGIMM32),
    OpcodeSpec(0x0C, "sub", OperandFormat.REGREG),
    OpcodeSpec(0x0D, "sub", OperandFormat.REGIMM32),
    OpcodeSpec(0x0E, "mul", OperandFormat.REGREG),
    OpcodeSpec(0x0F, "div", OperandFormat.REGREG),
    OpcodeSpec(0x10, "mod", OperandFormat.REGREG),
    OpcodeSpec(0x11, "and", OperandFormat.REGREG),
    OpcodeSpec(0x12, "or", OperandFormat.REGREG),
    OpcodeSpec(0x13, "xor", OperandFormat.REGREG),
    OpcodeSpec(0x14, "not", OperandFormat.REG),
    OpcodeSpec(0x15, "shl", OperandFormat.REGIMM8),
    OpcodeSpec(0x16, "shr", OperandFormat.REGIMM8),
    OpcodeSpec(0x17, "cmp", OperandFormat.REGREG),
    OpcodeSpec(0x18, "cmp", OperandFormat.REGIMM32),
    OpcodeSpec(0x19, "jmp", OperandFormat.IMM32),
    OpcodeSpec(0x1A, "jmp", OperandFormat.REG),
    OpcodeSpec(0x1B, "jz", OperandFormat.IMM32),
    OpcodeSpec(0x1C, "jnz", OperandFormat.IMM32),
    OpcodeSpec(0x1D, "jl", OperandFormat.IMM32),
    OpcodeSpec(0x1E, "jg", OperandFormat.IMM32),
    OpcodeSpec(0x1F, "jle", OperandFormat.IMM32),
    OpcodeSpec(0x20, "jge", OperandFormat.IMM32),
    OpcodeSpec(0x21, "jb", OperandFormat.IMM32),
    OpcodeSpec(0x22, "jae", OperandFormat.IMM32),
    OpcodeSpec(0x23, "call", OperandFormat.IMM32),
    OpcodeSpec(0x24, "call", OperandFormat.REG),
    OpcodeSpec(0x25, "ret", OperandFormat.NONE),
    OpcodeSpec(0x26, "sys", OperandFormat.IMM8),
    OpcodeSpec(0x27, "lea", OperandFormat.REGMEM),
    OpcodeSpec(0x28, "chk", OperandFormat.REGIMM32),
    OpcodeSpec(0x29, "land", OperandFormat.IMM8),
)

#: The landing-pad opcode used by typed CFI (executes as a no-op).
LAND_OPCODE: Final[int] = 0x29

#: Opcode byte -> spec.
BY_OPCODE: Final[dict[int, OpcodeSpec]] = {spec.opcode: spec for spec in OPCODE_TABLE}

#: Flat 256-entry opcode byte -> spec (or None for invalid bytes).
#: The decoder and the interpreter fast path index this directly,
#: avoiding a dict hash per decoded byte.
OPCODE_SPECS: Final[tuple[OpcodeSpec | None, ...]] = tuple(
    BY_OPCODE.get(opcode) for opcode in range(256)
)

#: Flat 256-entry opcode byte -> encoded length (0 for invalid bytes).
OPCODE_LENGTHS: Final[tuple[int, ...]] = tuple(
    FORMAT_LENGTHS[spec.fmt] if spec is not None else 0 for spec in OPCODE_SPECS
)

#: Mnemonic -> list of encodings (in table order).
BY_MNEMONIC: Final[dict[str, list[OpcodeSpec]]] = {}
for _spec in OPCODE_TABLE:
    BY_MNEMONIC.setdefault(_spec.mnemonic, []).append(_spec)

#: The single-byte ``ret`` opcode, of special interest to the ROP
#: gadget finder (it plays the role of x86's ``0xC3``).
RET_OPCODE: Final[int] = 0x25

#: Mnemonics that unconditionally transfer control.
UNCONDITIONAL_FLOW: Final[frozenset[str]] = frozenset({"jmp", "call", "ret", "halt"})

#: Conditional branch mnemonics and the flag predicate they test.
CONDITIONAL_BRANCHES: Final[frozenset[str]] = frozenset(
    {"jz", "jnz", "jl", "jg", "jle", "jge", "jb", "jae"}
)

#: Opcode bytes that (may) transfer control: jumps, conditional
#: branches, calls and returns.  Derived from the mnemonic sets above
#: so the table stays the single source of truth.
TRANSFER_OPCODES: Final[frozenset[int]] = frozenset(
    spec.opcode
    for spec in OPCODE_TABLE
    if spec.mnemonic in CONDITIONAL_BRANCHES
    or spec.mnemonic in ("jmp", "call", "ret")
)

#: Opcode bytes that end a basic block for the block translator:
#: every control transfer, plus ``halt`` (stops the run loop) and
#: ``sys`` (syscall handlers may halt/exit the machine, attach
#: observers, or rewrite memory -- the translator re-dispatches after
#: each one rather than speculating through it).
BLOCK_END_OPCODES: Final[frozenset[int]] = TRANSFER_OPCODES | frozenset(
    spec.opcode for spec in OPCODE_TABLE if spec.mnemonic in ("halt", "sys")
)
