"""Constructors for VN32 instructions.

Each function builds an :class:`~repro.isa.instructions.Instruction`
with its opcode pinned, validating operand ranges.  The code generator
and hand-written payload builders use these instead of raw tuples.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instructions import Instruction, Mem, to_unsigned
from repro.isa.registers import NUM_REGISTERS


def _check_reg(reg: int) -> int:
    if not 0 <= reg < NUM_REGISTERS:
        raise EncodingError(f"register number {reg} out of range")
    return reg


def _check_imm8(value: int) -> int:
    if not 0 <= value <= 0xFF:
        raise EncodingError(f"8-bit immediate {value} out of range")
    return value


def _check_imm32(value: int) -> int:
    wrapped = to_unsigned(value)
    if not -0x80000000 <= value <= 0xFFFFFFFF:
        raise EncodingError(f"32-bit immediate {value} out of range")
    return wrapped


def _check_mem(mem: Mem) -> Mem:
    _check_reg(mem.base)
    if not -0x80000000 <= mem.disp <= 0x7FFFFFFF:
        raise EncodingError(f"displacement {mem.disp} out of range")
    return mem


def nop() -> Instruction:
    return Instruction(0x00)


def halt() -> Instruction:
    return Instruction(0x01)


def mov_rr(dst: int, src: int) -> Instruction:
    """``mov dst, src`` -- copy register to register."""
    return Instruction(0x02, (_check_reg(dst), _check_reg(src)))


def mov_ri(dst: int, imm: int) -> Instruction:
    """``mov dst, imm32`` -- load an immediate."""
    return Instruction(0x03, (_check_reg(dst), _check_imm32(imm)))


def load(dst: int, mem: Mem) -> Instruction:
    """``load dst, [base+disp]`` -- load a 32-bit word."""
    return Instruction(0x04, (_check_reg(dst), _check_mem(mem)))


def store(src: int, mem: Mem) -> Instruction:
    """``store [base+disp], src`` -- store a 32-bit word."""
    return Instruction(0x05, (_check_reg(src), _check_mem(mem)))


def loadb(dst: int, mem: Mem) -> Instruction:
    """``loadb dst, [base+disp]`` -- load a byte, zero-extended."""
    return Instruction(0x06, (_check_reg(dst), _check_mem(mem)))


def storeb(src: int, mem: Mem) -> Instruction:
    """``storeb [base+disp], src`` -- store the low byte of ``src``."""
    return Instruction(0x07, (_check_reg(src), _check_mem(mem)))


def push(reg: int) -> Instruction:
    return Instruction(0x08, (_check_reg(reg),))


def pop(reg: int) -> Instruction:
    return Instruction(0x09, (_check_reg(reg),))


def add_rr(dst: int, src: int) -> Instruction:
    return Instruction(0x0A, (_check_reg(dst), _check_reg(src)))


def add_ri(dst: int, imm: int) -> Instruction:
    return Instruction(0x0B, (_check_reg(dst), _check_imm32(imm)))


def sub_rr(dst: int, src: int) -> Instruction:
    return Instruction(0x0C, (_check_reg(dst), _check_reg(src)))


def sub_ri(dst: int, imm: int) -> Instruction:
    return Instruction(0x0D, (_check_reg(dst), _check_imm32(imm)))


def mul_rr(dst: int, src: int) -> Instruction:
    return Instruction(0x0E, (_check_reg(dst), _check_reg(src)))


def div_rr(dst: int, src: int) -> Instruction:
    """Signed division; faults on divide-by-zero."""
    return Instruction(0x0F, (_check_reg(dst), _check_reg(src)))


def mod_rr(dst: int, src: int) -> Instruction:
    """Signed remainder; faults on divide-by-zero."""
    return Instruction(0x10, (_check_reg(dst), _check_reg(src)))


def and_rr(dst: int, src: int) -> Instruction:
    return Instruction(0x11, (_check_reg(dst), _check_reg(src)))


def or_rr(dst: int, src: int) -> Instruction:
    return Instruction(0x12, (_check_reg(dst), _check_reg(src)))


def xor_rr(dst: int, src: int) -> Instruction:
    return Instruction(0x13, (_check_reg(dst), _check_reg(src)))


def not_r(reg: int) -> Instruction:
    return Instruction(0x14, (_check_reg(reg),))


def shl(reg: int, amount: int) -> Instruction:
    return Instruction(0x15, (_check_reg(reg), _check_imm8(amount)))


def shr(reg: int, amount: int) -> Instruction:
    """Logical (unsigned) right shift."""
    return Instruction(0x16, (_check_reg(reg), _check_imm8(amount)))


def cmp_rr(a: int, b: int) -> Instruction:
    return Instruction(0x17, (_check_reg(a), _check_reg(b)))


def cmp_ri(a: int, imm: int) -> Instruction:
    return Instruction(0x18, (_check_reg(a), _check_imm32(imm)))


def jmp_abs(addr: int) -> Instruction:
    """``jmp addr`` -- unconditional absolute jump."""
    return Instruction(0x19, (_check_imm32(addr),))


def jmp_reg(reg: int) -> Instruction:
    """``jmp reg`` -- indirect jump through a register."""
    return Instruction(0x1A, (_check_reg(reg),))


def jz(addr: int) -> Instruction:
    return Instruction(0x1B, (_check_imm32(addr),))


def jnz(addr: int) -> Instruction:
    return Instruction(0x1C, (_check_imm32(addr),))


def jl(addr: int) -> Instruction:
    """Jump if less (signed)."""
    return Instruction(0x1D, (_check_imm32(addr),))


def jg(addr: int) -> Instruction:
    """Jump if greater (signed)."""
    return Instruction(0x1E, (_check_imm32(addr),))


def jle(addr: int) -> Instruction:
    return Instruction(0x1F, (_check_imm32(addr),))


def jge(addr: int) -> Instruction:
    return Instruction(0x20, (_check_imm32(addr),))


def jb(addr: int) -> Instruction:
    """Jump if below (unsigned)."""
    return Instruction(0x21, (_check_imm32(addr),))


def jae(addr: int) -> Instruction:
    """Jump if above or equal (unsigned)."""
    return Instruction(0x22, (_check_imm32(addr),))


def call_abs(addr: int) -> Instruction:
    """``call addr`` -- push return address, jump to ``addr``."""
    return Instruction(0x23, (_check_imm32(addr),))


def call_reg(reg: int) -> Instruction:
    """``call reg`` -- indirect call; the control transfer exploited by
    code-pointer-overwrite attacks and policed by CFI."""
    return Instruction(0x24, (_check_reg(reg),))


def ret() -> Instruction:
    """``ret`` -- pop the return address into IP.

    Single-byte encoding (0x25), so it occurs as a substring of
    immediates and gives rise to unintended ROP gadgets.
    """
    return Instruction(0x25)


def sys(number: int) -> Instruction:
    """``sys n`` -- invoke platform service ``n`` (see
    :mod:`repro.machine.syscalls`)."""
    return Instruction(0x26, (_check_imm8(number),))


def lea(dst: int, mem: Mem) -> Instruction:
    """``lea dst, [base+disp]`` -- compute an address without access."""
    return Instruction(0x27, (_check_reg(dst), _check_mem(mem)))


def chk(reg: int, limit: int) -> Instruction:
    """``chk reg, limit`` -- bounds check: fault if ``reg >= limit``
    (unsigned).  Emitted by the safe-language compilation mode."""
    return Instruction(0x28, (_check_reg(reg), _check_imm32(limit)))


def land(tag: int) -> Instruction:
    """``land tag`` -- a typed-CFI landing pad (no-op when executed).

    Under typed CFI, indirect transfers must target a ``land`` whose
    tag matches the call site's expected function-type tag (carried in
    r7 by convention) -- the FineIBT/BTI-style refinement of coarse
    CFI."""
    return Instruction(0x29, (_check_imm8(tag),))
