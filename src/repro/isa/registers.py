"""Register file definition for the VN32 architecture.

VN32 is the 32-bit von-Neumann toy architecture used throughout this
reproduction.  It mirrors the structural properties of the 32-bit x86
machine used in Figure 1 of the paper:

* eight general-purpose registers ``R0`` .. ``R7``;
* a stack pointer ``SP`` and base (frame) pointer ``BP`` that are
  addressable like general registers (so ``POP SP`` -- a stack pivot --
  is encodable, exactly the property ROP trampolines exploit);
* an instruction pointer ``IP`` and a flags register that are *not*
  directly addressable and can only be changed by control flow and
  comparison instructions.
"""

from __future__ import annotations

from typing import Final

#: Number of directly addressable registers (R0..R7, SP, BP).
NUM_REGISTERS: Final[int] = 10

#: Register indices.
R0: Final[int] = 0
R1: Final[int] = 1
R2: Final[int] = 2
R3: Final[int] = 3
R4: Final[int] = 4
R5: Final[int] = 5
R6: Final[int] = 6
R7: Final[int] = 7
SP: Final[int] = 8
BP: Final[int] = 9

#: Canonical register names, indexed by register number.
REGISTER_NAMES: Final[tuple[str, ...]] = (
    "r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7", "sp", "bp",
)

#: Map from lower-case register name to register number.
REGISTER_NUMBERS: Final[dict[str, int]] = {
    name: number for number, name in enumerate(REGISTER_NAMES)
}


def register_name(number: int) -> str:
    """Return the canonical name of register ``number``.

    >>> register_name(0)
    'r0'
    >>> register_name(8)
    'sp'
    """
    if not 0 <= number < NUM_REGISTERS:
        raise ValueError(f"invalid register number {number}")
    return REGISTER_NAMES[number]


def register_number(name: str) -> int:
    """Return the register number for ``name`` (case-insensitive).

    >>> register_number('R3')
    3
    >>> register_number('bp')
    9
    """
    try:
        return REGISTER_NUMBERS[name.lower()]
    except KeyError:
        raise ValueError(f"unknown register {name!r}") from None


def is_register_name(name: str) -> bool:
    """Return True if ``name`` names a VN32 register."""
    return name.lower() in REGISTER_NUMBERS
