"""VN32: the 32-bit instruction-set architecture used by this reproduction.

Public surface:

* :mod:`repro.isa.registers` -- register numbers and names;
* :mod:`repro.isa.build` -- instruction constructors;
* :mod:`repro.isa.encoding` -- binary encode/decode;
* :class:`repro.isa.instructions.Instruction` and
  :class:`repro.isa.instructions.Mem` -- value objects.
"""

from repro.isa.instructions import (
    Instruction,
    Mem,
    WORD_MASK,
    WORD_SIZE,
    format_instruction,
    to_signed,
    to_unsigned,
)
from repro.isa.encoding import decode, decode_all, encode, encode_many
from repro.isa.opcodes import (
    MAX_INSTRUCTION_LENGTH,
    OPCODE_TABLE,
    OperandFormat,
    RET_OPCODE,
)
from repro.isa.registers import (
    BP,
    NUM_REGISTERS,
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    SP,
    register_name,
    register_number,
)

__all__ = [
    "Instruction",
    "Mem",
    "WORD_MASK",
    "WORD_SIZE",
    "format_instruction",
    "to_signed",
    "to_unsigned",
    "decode",
    "decode_all",
    "encode",
    "encode_many",
    "MAX_INSTRUCTION_LENGTH",
    "OPCODE_TABLE",
    "OperandFormat",
    "RET_OPCODE",
    "BP",
    "NUM_REGISTERS",
    "R0",
    "R1",
    "R2",
    "R3",
    "R4",
    "R5",
    "R6",
    "R7",
    "SP",
    "register_name",
    "register_number",
]
