"""Instruction and operand value objects for VN32.

An :class:`Instruction` is the decoded, symbolic form of one machine
instruction: an explicit opcode (which pins down the encoding -- VN32
mnemonics like ``mov`` or ``jmp`` have several encodings, just as on
x86), the canonical mnemonic, and a tuple of operands.  Operands are
plain integers (register numbers or immediates) or :class:`Mem` (a
base-register + displacement memory reference).

The same objects flow through the whole toolchain: the assembler
produces them, the encoder serialises them, the CPU executes them, and
the disassembler / ROP gadget finder reconstruct them from raw bytes.
Use the constructors in :mod:`repro.isa.build` rather than creating
instances by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import BY_OPCODE, OPCODE_LENGTHS, OPCODE_SPECS, OperandFormat
from repro.isa.registers import register_name

#: Modulus of the 32-bit machine word.
WORD_MASK = 0xFFFFFFFF
#: Size of a machine word in bytes.
WORD_SIZE = 4


def to_signed(value: int) -> int:
    """Interpret a 32-bit unsigned value as signed two's complement.

    >>> to_signed(0xFFFFFFFF)
    -1
    >>> to_signed(5)
    5
    """
    value &= WORD_MASK
    if value >= 0x80000000:
        return value - 0x100000000
    return value


def to_unsigned(value: int) -> int:
    """Wrap a Python integer into a 32-bit unsigned value.

    >>> to_unsigned(-1)
    4294967295
    """
    return value & WORD_MASK


@dataclass(frozen=True)
class Mem:
    """A memory operand: ``[base + disp]``.

    ``base`` is a register number, ``disp`` a signed displacement.
    Used by ``load``, ``store``, ``loadb``, ``storeb`` and ``lea``.
    """

    base: int
    disp: int = 0

    def __str__(self) -> str:
        if self.disp == 0:
            return f"[{register_name(self.base)}]"
        sign = "+" if self.disp >= 0 else "-"
        return f"[{register_name(self.base)}{sign}0x{abs(self.disp):x}]"


@dataclass(frozen=True)
class Instruction:
    """One VN32 instruction with a fixed encoding.

    ``operands`` layout per operand format:

    * ``NONE``     -- ``()``
    * ``REG``      -- ``(reg,)``
    * ``REGREG``   -- ``(reg_dst, reg_src)``
    * ``REGIMM32`` -- ``(reg, imm)``
    * ``REGIMM8``  -- ``(reg, imm8)``
    * ``REGMEM``   -- ``(reg, Mem)``; for ``store``/``storeb`` the
      value register is still the first operand even though assembly
      syntax writes the memory operand first
    * ``IMM32`` / ``IMM8`` -- ``(imm,)``
    """

    opcode: int
    operands: tuple = ()

    @property
    def mnemonic(self) -> str:
        return BY_OPCODE[self.opcode].mnemonic

    @property
    def fmt(self) -> OperandFormat:
        return OPCODE_SPECS[self.opcode].fmt

    @property
    def length(self) -> int:
        """Encoded length in bytes."""
        return OPCODE_LENGTHS[self.opcode]

    def __str__(self) -> str:
        return format_instruction(self)


def format_instruction(insn: Instruction) -> str:
    """Render an instruction as canonical assembly text.

    >>> from repro.isa import build
    >>> format_instruction(build.add_rr(0, 1))
    'add r0, r1'
    >>> format_instruction(build.store(2, Mem(9, -4)))
    'store [bp-0x4], r2'
    """
    mnemonic = insn.mnemonic
    fmt = insn.fmt
    ops = insn.operands
    if fmt is OperandFormat.NONE:
        return mnemonic
    if fmt is OperandFormat.REG:
        return f"{mnemonic} {register_name(ops[0])}"
    if fmt is OperandFormat.REGREG:
        return f"{mnemonic} {register_name(ops[0])}, {register_name(ops[1])}"
    if fmt is OperandFormat.REGIMM32:
        return f"{mnemonic} {register_name(ops[0])}, 0x{to_unsigned(ops[1]):x}"
    if fmt is OperandFormat.REGIMM8:
        return f"{mnemonic} {register_name(ops[0])}, {ops[1]}"
    if fmt is OperandFormat.REGMEM:
        if mnemonic in ("store", "storeb"):
            return f"{mnemonic} {ops[1]}, {register_name(ops[0])}"
        return f"{mnemonic} {register_name(ops[0])}, {ops[1]}"
    if fmt is OperandFormat.IMM32:
        return f"{mnemonic} 0x{to_unsigned(ops[0]):x}"
    if fmt is OperandFormat.IMM8:
        return f"{mnemonic} {ops[0]}"
    raise AssertionError(f"unhandled format {fmt}")
