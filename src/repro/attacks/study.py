"""The attacker's reconnaissance tools.

Real attackers study their own copy of a victim binary under a
debugger before attacking the live target.  These helpers model that:
they run a *local* instance (same binary, attacker-chosen machine, so
no load-time secrets) and observe it.  Load-time secrets -- the canary
value and the ASLR shifts of the *victim's* instance -- are exactly
what the local study cannot reveal, which is why those countermeasures
have bite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.link.loader import LoadedProgram
from repro.machine.machine import Machine


class StudyComplete(Exception):
    """Raised by observation hooks to stop a local study run."""


def run_until_syscall(
    program: LoadedProgram,
    number: int,
    occurrence: int = 1,
    max_instructions: int = 2_000_000,
) -> Machine:
    """Run a local instance until the n-th occurrence of a syscall.

    Returns the live machine, frozen at the moment the syscall is
    about to execute (registers and memory inspectable).  This is the
    moral equivalent of a debugger breakpoint on ``read``.
    """
    seen = 0

    def hook(machine: Machine, sys_number: int) -> None:
        nonlocal seen
        if sys_number == number:
            seen += 1
            if seen >= occurrence:
                raise StudyComplete

    program.machine.syscall_hooks.append(hook)
    try:
        result = program.run(max_instructions)
    except StudyComplete:
        program.machine.syscall_hooks.remove(hook)
        # Rewind to the ``sys`` instruction itself so a later resume
        # re-executes the syscall (the hook fired before the handler).
        program.machine.cpu.ip = program.machine.current_ip
        return program.machine
    program.machine.syscall_hooks.remove(hook)
    raise RuntimeError(
        f"study run never reached syscall {number} x{occurrence} "
        f"(ended {result.status}, fault={result.fault_name()})"
    )


@dataclass
class OverflowSite:
    """What the attacker learns about one vulnerable ``read``:

    where the buffer lives and where the interesting slots sit
    relative to it (all in the *unrandomised* layout -- under ASLR the
    victim's actual addresses differ by the unknown shifts).
    """

    #: Address the vulnerable read writes to.
    buffer_addr: int
    #: Address of the frame's saved base pointer slot (the frame whose
    #: return address the overflow can reach).
    saved_bp_addr: int
    #: Address of the saved return address slot.
    return_addr_slot: int
    #: Value currently in the return slot (where the victim would
    #: normally return to).
    original_return: int

    @property
    def offset_to_return(self) -> int:
        """Bytes of padding from the buffer to the return-address slot."""
        return self.return_addr_slot - self.buffer_addr


def locate_overflow(
    program: LoadedProgram,
    *,
    read_occurrence: int = 1,
    frames_up: int = 0,
    feed: bytes = b"",
) -> OverflowSite:
    """Breakpoint on the vulnerable ``read`` and map the frame.

    ``frames_up`` selects whose return address the attacker targets:
    0 is the function executing the read; 1 its caller (e.g. Figure
    1's ``process()`` owns the buffer its callee overflows), etc.
    The frame walk follows the saved-BP chain, exactly as a debugger's
    backtrace does.
    """
    from repro.isa.registers import BP
    from repro.machine import syscalls

    if feed:
        program.feed(feed)
    machine = run_until_syscall(program, syscalls.SYS_READ, read_occurrence)
    buffer_addr = machine.cpu.regs[1]  # r1 = buf argument of sys read
    frame_bp = machine.cpu.regs[BP]
    for _ in range(frames_up):
        frame_bp = machine.memory.read_word(frame_bp)
    return OverflowSite(
        buffer_addr=buffer_addr,
        saved_bp_addr=frame_bp,
        return_addr_slot=frame_bp + 4,
        original_return=machine.memory.read_word(frame_bp + 4),
    )
