"""ROP gadget discovery and chain construction (Section III-B).

A *gadget* is a short instruction sequence ending in ``ret``.  Because
VN32 (like x86) has variable-length instructions, decoding the same
bytes at different offsets yields different instructions, so gadgets
exist that the compiler never emitted -- the gadget census in the
benchmarks counts intended vs unintended ones.

The :class:`GadgetCatalog` searches executable bytes; the chain
builders compose found gadgets into payloads that achieve the
attacker's goal using only pre-existing code, which is what defeats
DEP (W^X): nothing the attacker supplies is ever executed as code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecodeError
from repro.isa.encoding import decode
from repro.isa.instructions import Instruction
from repro.isa.opcodes import CONDITIONAL_BRANCHES, RET_OPCODE
from repro.machine import syscalls


@dataclass(frozen=True)
class Gadget:
    """One usable sequence: ``instructions`` ends with ``ret``."""

    address: int
    instructions: tuple[Instruction, ...]
    #: True if the gadget starts at an instruction boundary the
    #: compiler emitted (approximated by the linear-sweep decode).
    intended: bool = False

    @property
    def text(self) -> str:
        return "; ".join(str(insn) for insn in self.instructions)

    def __str__(self) -> str:
        return f"0x{self.address:08x}: {self.text}"


#: Mnemonics that end or divert a gadget (not usable mid-gadget).
_FLOW_BREAKERS = frozenset({"jmp", "call", "halt"}) | CONDITIONAL_BRANCHES


def find_gadgets(data: bytes, base_address: int,
                 max_instructions: int = 4) -> list[Gadget]:
    """Find all gadgets in ``data``: decode from every offset, keep
    sequences of straight-line instructions that reach a ``ret``."""
    # Mark intended instruction starts via linear sweep (tolerant).
    intended_starts: set[int] = set()
    offset = 0
    while offset < len(data):
        try:
            _, length = decode(data, offset)
        except DecodeError:
            offset += 1
            continue
        intended_starts.add(offset)
        offset += length

    gadgets: list[Gadget] = []
    ret_positions = [i for i, byte in enumerate(data) if byte == RET_OPCODE]
    seen: set[int] = set()
    for ret_position in ret_positions:
        # Walk back: try every candidate start within range.
        earliest = max(0, ret_position - 6 * max_instructions)
        for start in range(ret_position, earliest - 1, -1):
            if start in seen:
                continue
            instructions: list[Instruction] = []
            cursor = start
            ok = False
            while cursor <= ret_position and len(instructions) <= max_instructions:
                try:
                    insn, length = decode(data, cursor)
                except DecodeError:
                    break
                if insn.mnemonic in _FLOW_BREAKERS:
                    break
                instructions.append(insn)
                cursor += length
                if insn.mnemonic == "ret":
                    ok = cursor == ret_position + 1
                    break
            if ok and instructions:
                seen.add(start)
                gadgets.append(Gadget(
                    base_address + start,
                    tuple(instructions),
                    intended=start in intended_starts,
                ))
    gadgets.sort(key=lambda g: g.address)
    return gadgets


class GadgetCatalog:
    """Searchable gadget collection for chain building."""

    def __init__(self, gadgets: list[Gadget]):
        self.gadgets = gadgets

    @classmethod
    def from_image_segments(cls, segments) -> "GadgetCatalog":
        """Collect gadgets from all executable segments of an image."""
        collected: list[Gadget] = []
        for segment in segments:
            if segment.kind == "text":
                collected.extend(find_gadgets(segment.data, segment.addr))
        return cls(collected)

    def find(self, *mnemonics: str) -> Gadget | None:
        """First gadget whose instruction mnemonics match exactly
        (including the final ``ret``)."""
        wanted = tuple(mnemonics)
        for gadget in self.gadgets:
            if tuple(i.mnemonic for i in gadget.instructions) == wanted:
                return gadget
        return None

    def pop_register(self, reg: int) -> Gadget | None:
        """A ``pop rN; ret`` gadget for loading a register from the stack."""
        for gadget in self.gadgets:
            if (
                len(gadget.instructions) == 2
                and gadget.instructions[0].mnemonic == "pop"
                and gadget.instructions[0].operands == (reg,)
            ):
                return gadget
        return None

    def syscall_gadget(self, number: int) -> Gadget | None:
        """A ``sys n; ret`` gadget."""
        for gadget in self.gadgets:
            if (
                len(gadget.instructions) == 2
                and gadget.instructions[0].mnemonic == "sys"
                and gadget.instructions[0].operands == (number,)
            ):
                return gadget
        return None

    def stack_pivot(self) -> Gadget | None:
        """A ``pop sp; ret`` trampoline (the paper's ROP description)."""
        from repro.isa.registers import SP

        return self.pop_register(SP)

    def census(self) -> dict[str, int]:
        """Counts for the gadget-census benchmark."""
        intended = sum(1 for g in self.gadgets if g.intended)
        return {
            "total": len(self.gadgets),
            "intended": intended,
            "unintended": len(self.gadgets) - intended,
        }


def build_exfiltration_chain(
    catalog: GadgetCatalog, secret_addr: int, length: int
) -> list[int] | None:
    """A ROP chain that writes ``length`` bytes at ``secret_addr`` to
    the output channel and exits: pop fd/buf/len, sys write, sys exit.

    Returns the chain as a list of stack words, or None if the catalog
    lacks the required gadgets.
    """
    from repro.isa.registers import R0, R1, R2

    pop_r0 = catalog.pop_register(R0)
    pop_r1 = catalog.pop_register(R1)
    pop_r2 = catalog.pop_register(R2)
    sys_write = catalog.syscall_gadget(syscalls.SYS_WRITE)
    sys_exit = catalog.syscall_gadget(syscalls.SYS_EXIT)
    if not all((pop_r0, pop_r1, pop_r2, sys_write, sys_exit)):
        return None
    return [
        pop_r0.address, 1,            # fd = 1
        pop_r1.address, secret_addr,  # buf = secret
        pop_r2.address, length,       # n
        sys_write.address,
        sys_exit.address,
    ]


def build_shell_chain(catalog: GadgetCatalog) -> list[int] | None:
    """A minimal chain that spawns a shell and exits."""
    sys_shell = catalog.syscall_gadget(syscalls.SYS_SPAWN_SHELL)
    sys_exit = catalog.syscall_gadget(syscalls.SYS_EXIT)
    if not (sys_shell and sys_exit):
        return None
    return [sys_shell.address, sys_exit.address]
