"""Payload construction helpers shared by the attack implementations."""

from __future__ import annotations

import itertools
import string
import struct


def p32(value: int) -> bytes:
    """Pack a 32-bit little-endian word (wraps negatives)."""
    return struct.pack("<I", value & 0xFFFFFFFF)


def u32(data: bytes, offset: int = 0) -> int:
    """Unpack a 32-bit little-endian word."""
    return struct.unpack_from("<I", data, offset)[0]


def smash(
    offset_to_return: int,
    new_return: int,
    *after: int,
    prefix: bytes = b"",
    saved_bp: int | None = None,
    canary: int | None = None,
    canary_offset: int | None = None,
    fill: bytes = b"A",
) -> bytes:
    """Build a classic stack-smashing payload.

    Layout written into the buffer::

        [prefix][fill ...][canary?][saved-bp][new-return][after ...]

    ``offset_to_return`` is the distance from the buffer start to the
    return-address slot (from :class:`~repro.attacks.study.OverflowSite`).
    If a ``canary`` value is supplied (e.g. from an info leak), it is
    placed at ``canary_offset`` so the epilogue check passes; likewise
    ``saved_bp`` preserves the saved base pointer when the victim still
    needs a sane frame after the overwrite.
    """
    body = bytearray(prefix)
    if canary is not None:
        if canary_offset is None:
            canary_offset = offset_to_return - 8
        while len(body) < canary_offset:
            body += fill
        del body[canary_offset:]
        body += p32(canary)
    while len(body) < offset_to_return - 4:
        body += fill
    del body[offset_to_return - 4:]
    body += p32(saved_bp) if saved_bp is not None else fill * 4
    body += p32(new_return)
    for word in after:
        body += p32(word)
    return bytes(body)


def cyclic(length: int) -> bytes:
    """A pattern of unique 4-byte tags for crash-offset discovery."""
    letters = string.ascii_lowercase
    out = bytearray()
    for combo in itertools.product(letters, repeat=4):
        out += "".join(combo).encode()
        if len(out) >= length:
            break
    return bytes(out[:length])


def cyclic_find(value: int) -> int:
    """Offset of a crash value (from IP) within :func:`cyclic` output."""
    needle = p32(value)
    haystack = cyclic(4 * 26 ** 2)
    position = haystack.find(needle)
    if position < 0:
        raise ValueError(f"value 0x{value:08x} not from a cyclic pattern")
    return position
