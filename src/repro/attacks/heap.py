"""Heap attacks: the explicit-deallocation temporal vulnerabilities.

Section III-A's temporal class covers explicit ``free`` too; these
attacks exercise it against the MinC heap substrate:

* **use-after-free** -- a freed object holding a code pointer is
  recycled into an attacker-controlled buffer; the dangling call is a
  control-flow hijack that no stack defence sees;
* **heap overflow** -- adjacent-chunk corruption, the heap twin of the
  data-only stack attack;
* **double free** -- allocator-state corruption.

Defences measured: the instrumented (red-zone) allocator, DEP (for
the injected-code variant), and typed CFI (the dangling call is an
indirect call like any other).
"""

from __future__ import annotations

from repro.attacks.base import AttackResult, Outcome, classify_failure, finish
from repro.attacks.payloads import p32
from repro.link import LoadedProgram, load
from repro.minic import compile_source
from repro.minic.compiler import options_from_mitigations
from repro.mitigations.config import MitigationConfig, NONE
from repro.programs import heap as heap_sources
from repro.programs.builders import libc_object


def build_heap_program(
    victim_source: str,
    config: MitigationConfig = NONE,
    *,
    checked_allocator: bool = False,
    seed: int = 0,
) -> LoadedProgram:
    """Link a heap victim against the chosen allocator build.

    The checked allocator needs red-zone enforcement switched on in
    the machine (``config.asan`` drives that), so it is implied here.
    """
    if checked_allocator:
        config = config.with_(asan=True)
    allocator_source = (
        heap_sources.HEAP_ALLOCATOR_CHECKED
        if checked_allocator
        else heap_sources.HEAP_ALLOCATOR
    )
    options = options_from_mitigations(config)
    victim_obj = compile_source(victim_source, "victim", options)
    heap_obj = compile_source(allocator_source, "heap", options)
    return load([victim_obj, heap_obj, libc_object()], config, seed=seed)


def attack_heap_uaf(
    config: MitigationConfig = NONE,
    *,
    checked_allocator: bool = False,
    seed: int = 0,
) -> AttackResult:
    """Hijack the dangling handler call by refilling its freed chunk."""
    name = "heap-use-after-free"
    study = build_heap_program(heap_sources.HEAP_UAF_VICTIM,
                               config.with_(aslr_bits=0),
                               checked_allocator=checked_allocator)
    spawn = study.symbol("libc_spawn_shell")
    victim = build_heap_program(
        heap_sources.HEAP_UAF_VICTIM, config,
        checked_allocator=checked_allocator, seed=seed,
    )
    victim.feed(p32(spawn) + p32(0))
    run = victim.run()
    if run.shell_spawned:
        return AttackResult(name, Outcome.SUCCESS,
                            "shell via dangling heap function pointer", run)
    return finish(name, classify_failure(run))


def attack_heap_overflow(
    config: MitigationConfig = NONE,
    *,
    checked_allocator: bool = False,
    seed: int = 0,
) -> AttackResult:
    """Overflow the note chunk into the adjacent account object."""
    name = "heap-overflow"
    victim = build_heap_program(
        heap_sources.HEAP_OVERFLOW_VICTIM, config,
        checked_allocator=checked_allocator, seed=seed,
    )
    # note payload is 16 bytes; then the next chunk's 8-byte header
    # (plus the checked build's guard word, harmlessly included in the
    # written range); account[0] sits right after.  Send 28 bytes with
    # a nonzero final word.  The header words we overwrite are
    # restored-by-value (size=2, free=0) to keep the allocator sane.
    payload = b"A" * 16 + p32(2) + p32(0) + p32(1)
    if checked_allocator:
        # One extra word to cross the guard: header then flag.
        payload = b"A" * 16 + p32(0xDEAD) + p32(3) + p32(0) + p32(1)
    victim.feed(p32(len(payload)) + payload)
    run = victim.run()
    if b"31337" in run.output:
        return AttackResult(name, Outcome.SUCCESS,
                            "admin flag set via adjacent-chunk overflow", run)
    return finish(name, classify_failure(run))


def attack_heap_double_free(
    config: MitigationConfig = NONE,
    *,
    checked_allocator: bool = False,
    seed: int = 0,
) -> AttackResult:
    """Double free: silent allocator corruption vs detected abort."""
    name = "heap-double-free"
    victim = build_heap_program(
        heap_sources.HEAP_DOUBLE_FREE_VICTIM, config,
        checked_allocator=checked_allocator, seed=seed,
    )
    run = victim.run()
    if run.exit_code == 13:
        return AttackResult(name, Outcome.DETECTED,
                            "checked allocator aborted on double free", run)
    if run.fault is not None:
        return finish(name, classify_failure(run))
    return AttackResult(
        name, Outcome.SUCCESS,
        f"double free silently accepted (free words now "
        f"{run.output.strip().decode()})",
        run,
    )
