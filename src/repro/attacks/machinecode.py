"""The machine-code attacker (Section IV).

This attacker supplies machine code that runs *inside the victim's
address space* -- a malicious linked module -- or *inside the kernel*.
Note the paper's key observation: the I/O attacker needs a bug in the
program, but even a bug-free program falls to this attacker unless an
isolation mechanism (Section IV-A) protects it.

Implemented attacks:

* **memory scraping** -- malicious code reads the secret module's
  variables straight out of memory (the POS-RAM-scraper malware of
  reference [3]); as kernel code it also bypasses page permissions;
* **stack residue harvesting** -- after the secret module returns,
  its spilled temporaries (the PIN!) are still on the shared stack;
* **register harvesting** -- values left in registers when the module
  returns.

Each has a builder that emits the attacker's module as real VN32
assembly, so everything executes on the simulated machine under the
machine's access-control rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm import assemble
from repro.attacks.base import AttackResult, Outcome, classify_failure, finish
from repro.attacks.payloads import p32, u32
from repro.errors import MachineFault
from repro.link.objfile import ObjectFile
from repro.machine.machine import Machine
from repro.mitigations.config import MitigationConfig, NONE
from repro.programs.builders import build_secret_program


def make_scraper_object(
    targets: list[tuple[int, int]],
    *,
    kernel: bool = False,
    name: str = "scraper",
    entry: str = "scraper_main",
) -> ObjectFile:
    """An assembly module that exfiltrates memory ranges to the output
    channel, then exits.  ``targets`` is a list of ``(addr, length)``.
    """
    lines = [".text", f".global {entry}", f"{entry}:"]
    for addr, length in targets:
        lines += [
            "    mov r0, 1",
            f"    mov r1, 0x{addr:x}",
            f"    mov r2, {length}",
            "    sys 2                ; write(1, addr, length)",
        ]
    lines += ["    mov r0, 0", "    sys 3"]
    if kernel:
        lines.append(".kernel")
    return assemble("\n".join(lines), name)


def run_installed_code(machine: Machine, entry: int, stack_top: int,
                       max_instructions: int = 500_000):
    """Transfer control to attacker code already present in memory.

    Models the attacker's module being scheduled (e.g. a later callback
    or the malware's own thread) after the program has run.
    """
    machine.cpu.ip = entry
    machine.cpu.sp = stack_top
    return machine.run(max_instructions)


@dataclass
class SweepReport:
    """Result of a full address-space sweep (fault-tolerant scan)."""

    bytes_readable: int
    bytes_denied: int
    secrets_found: list[str]


def sweep_memory(machine: Machine, *, kernel: bool,
                 needles: dict[str, bytes]) -> SweepReport:
    """A fault-tolerant scanning loop over every mapped page.

    Models scraper malware that installs a fault handler and probes
    the whole address space (read instruction + resume on fault).  We
    iterate page-sized probes through the machine's *checked* access
    path with the scanner's privilege, so PMA and page permissions
    apply exactly as they would to the probing instructions.
    """
    from repro.machine.memory import PAGE_SIZE

    # Scanner context: executing from attacker code, outside any module.
    machine.current_module = None
    if kernel:
        if not machine.kernel_regions:
            machine.add_kernel_region(0xC0900000, 0xC0901000)
        machine.current_ip = machine.kernel_regions[0][0]
    else:
        machine.current_ip = 0xDEAD0000  # arbitrary non-kernel, non-module IP

    readable = bytearray()
    denied = 0
    for start, end in machine.memory.mapped_regions():
        addr = start
        while addr < end:
            chunk = min(PAGE_SIZE, end - addr)
            try:
                readable += machine.read_bytes(addr, chunk)
            except MachineFault:
                denied += chunk
            addr += chunk
    found = [label for label, needle in needles.items() if needle in readable]
    return SweepReport(len(readable), denied, found)


def attack_memory_scraper(
    *,
    protected: bool,
    secure: bool = True,
    kernel: bool = False,
    config: MitigationConfig = NONE,
    seed: int = 0,
) -> AttackResult:
    """Fig. 2 vs Fig. 3: a scraper module targets the secret module's
    variables.  Against the plain program it exfiltrates PIN, secret
    and tries_left; against the protected module the hardware denies
    the reads -- even for kernel-privileged malware."""
    name = f"memory-scraper({'kernel' if kernel else 'module'})"
    # The attacker knows the binary layout: link the program once to
    # learn where the module's data lands (appending the scraper later
    # does not move it), then aim the scraper at PIN and secret.
    study = build_secret_program(config, protected=protected, secure=secure,
                                 seed=seed)
    pin_addr = study.image.symbol("secret:PIN")
    secret_addr = study.image.symbol("secret:secret")
    scraper = make_scraper_object(
        [(pin_addr, 4), (secret_addr, 4)], kernel=kernel
    )
    program = _with_extra_module(None, config, protected, secure, seed, scraper)
    # Run the honest program first (exercises the module), then the
    # malware gets scheduled.
    program.feed(p32(1) + p32(1111))
    program.run()
    machine = program.machine
    machine.output.clear()
    run = run_installed_code(
        machine, program.symbol("scraper_main"), program.image.initial_sp
    )
    leaked = run.output
    if p32(1234) in leaked and p32(666) in leaked:
        return AttackResult(name, Outcome.SUCCESS,
                            "PIN and secret scraped from memory", run,
                            {"leak": leaked})
    return finish(name, classify_failure(run, "module memory inaccessible"))


def _with_extra_module(program, config, protected, secure, seed, extra):
    """Rebuild the secret program with an extra attacker module linked in."""
    from repro.minic.compiler import options_from_mitigations
    from repro.minic import compile_source
    from repro.programs import sources
    from repro.programs.builders import libc_object
    from repro.link import load

    module_options = options_from_mitigations(config, protected=protected,
                                              secure=secure)
    secret_obj = compile_source(sources.SECRET_MODULE_FIG2, "secret", module_options)
    main_obj = compile_source(sources.SECRET_MAIN_FIG2, "main",
                              options_from_mitigations(config))
    return load([main_obj, secret_obj, libc_object(), extra], config, seed=seed)


#: Attacker main that calls get_secret once with a wrong PIN, then
#: halts with all state intact so residue can be inspected/harvested.
_RESIDUE_PROBE_ASM = """
.text
.global main
main:
    push bp
    mov bp, sp
    mov r0, 1111            ; a wrong guess
    push r0
    call get_secret
    add sp, 4
    ; Harvest the stack residue below SP: the module's spilled
    ; temporaries live there if it ran on the shared stack.
    mov r1, sp
    sub r1, 64
    mov r0, 1
    mov r2, 64
    sys 2                   ; write(1, sp-64, 64)
    mov r0, 0
    sys 3
"""


def attack_stack_residue(
    *,
    protected: bool,
    secure: bool,
    config: MitigationConfig = NONE,
    seed: int = 0,
) -> AttackResult:
    """After a failed get_secret() call, read the dead stack below SP.

    With the module on the shared stack (plain or insecurely compiled
    PMA), the comparison `PIN == provided_pin` spilled the PIN there.
    The secure compilation's module-private stack keeps the spill
    inside the protected data section."""
    name = "stack-residue"
    probe = assemble(_RESIDUE_PROBE_ASM, "main")
    program = build_secret_program(
        config, protected=protected, secure=secure, seed=seed, main_object=probe,
    )
    run = program.run()
    if run.fault is not None:
        return finish(name, classify_failure(run))
    # The module spills internal values onto whatever stack it runs on:
    # the PIN itself (pushed while evaluating `PIN == provided_pin`)
    # and pointers into its static data area.  Scan the harvest.
    data_lo, data_hi = program.image.object_layout["secret"][".data"]
    residue = run.output
    pin_leaked = p32(1234) in residue
    leaked_words = [
        hex(u32(residue, position))
        for position in range(0, len(residue) - 3, 4)
        if data_lo <= u32(residue, position) < data_hi
    ]
    if pin_leaked or leaked_words:
        what = []
        if pin_leaked:
            what.append("the PIN (1234)")
        if leaked_words:
            what.append("module data pointers " + ", ".join(leaked_words))
        return AttackResult(
            name, Outcome.SUCCESS,
            "module internals left on the shared stack: " + "; ".join(what),
            run, {"leak": residue},
        )
    return AttackResult(name, Outcome.NO_EFFECT,
                        "no module residue on the attacker-visible stack", run)


#: Attacker main that halts immediately after the module returns, so
#: the harness can inspect the register file the attacker's code sees.
_REGISTER_PROBE_ASM = """
.text
.global main
main:
    push bp
    mov bp, sp
    mov r0, 1111
    push r0
    call get_secret
    add sp, 4
    halt                    ; attacker code now owns these registers
"""


def attack_register_residue(
    *,
    protected: bool,
    secure: bool,
    config: MitigationConfig = NONE,
    seed: int = 0,
) -> AttackResult:
    """Inspect registers right after the module returns.

    Without scrubbing, scratch registers may hold module-internal
    values (here: a pointer into the protected data section, leaking
    the module's layout); the secure compilation zeroes r1-r7."""
    name = "register-residue"
    probe = assemble(_REGISTER_PROBE_ASM, "main")
    program = build_secret_program(
        config, protected=protected, secure=secure, seed=seed, main_object=probe,
    )
    run = program.run()
    if run.fault is not None:
        return finish(name, classify_failure(run))
    machine = program.machine
    module_values = []
    if machine.pma.modules:
        module = machine.pma.modules[0]
        module_values = [
            f"r{n}=0x{value:08x}"
            for n, value in enumerate(machine.cpu.regs[:8])
            if n != 0 and (module.in_data(value) or module.in_text(value))
        ]
    else:
        # Unprotected baseline: any non-zero scratch register counts as
        # residue the attacker can mine.
        module_values = [
            f"r{n}=0x{value:08x}"
            for n, value in enumerate(machine.cpu.regs[:8])
            if n != 0 and value != 0
        ]
    if module_values:
        return AttackResult(
            name, Outcome.SUCCESS,
            f"module-internal values left in registers: {', '.join(module_values)}",
            run, {"registers": machine.cpu.snapshot()},
        )
    return AttackResult(name, Outcome.NO_EFFECT, "registers scrubbed", run)
