"""Shellcode: attacker-chosen machine code delivered as data.

Direct code injection (Section III-B) works by writing these byte
strings into a buffer and redirecting control flow onto them.  On VN32
a shell spawn is tiny -- ``sys spawn_shell; sys exit`` -- just as real
shellcode is a short ``execve("/bin/sh")`` sequence.
"""

from __future__ import annotations

from repro.isa import R0, R1, R2, build, encode_many
from repro.machine import syscalls


def spawn_shell() -> bytes:
    """Spawn a shell, then exit cleanly (4 bytes)."""
    return encode_many([
        build.sys(syscalls.SYS_SPAWN_SHELL),
        build.sys(syscalls.SYS_EXIT),
    ])


def exfiltrate(addr: int, length: int) -> bytes:
    """Write ``length`` bytes at ``addr`` to the output channel, then exit."""
    return encode_many([
        build.mov_ri(R0, 1),
        build.mov_ri(R1, addr),
        build.mov_ri(R2, length),
        build.sys(syscalls.SYS_WRITE),
        build.sys(syscalls.SYS_EXIT),
    ])


def overwrite_word(addr: int, value: int) -> bytes:
    """Store ``value`` at ``addr`` (e.g. flip a privilege flag), then exit."""
    from repro.isa import Mem

    return encode_many([
        build.mov_ri(R0, value),
        build.mov_ri(R1, addr),
        build.store(R0, Mem(R1, 0)),
        build.sys(syscalls.SYS_EXIT),
    ])


def infinite_loop() -> bytes:
    """A spin loop -- useful to prove execution reached a location."""
    # jmp to self needs an absolute address; use two-instruction loop
    # via a relative trick: HALT is simpler proof of reach.
    return encode_many([build.halt()])
