"""Attack framework: attacker models, goals, and results.

The paper's two attacker models (Section I):

* the **I/O attacker** may only feed bytes to the program's input
  channel and observe its output channel;
* the **machine-code attacker** may additionally supply the machine
  code of some linked modules, or install kernel-privileged code.

Every attack in this package is expressed against one of these
interfaces and produces an :class:`AttackResult`, which records both
*whether the security objective was violated* (the program behaved in
a way its source code does not specify) and *how the attempt ended*
(clean exploit, detected-and-killed, crash, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.machine.machine import RunResult


class Outcome(enum.Enum):
    """How an attack attempt ended."""

    #: The attacker reached their goal (shell, secret, privilege...).
    SUCCESS = "success"
    #: A countermeasure detected the attempt and terminated the program
    #: (canary fault, CFI fault, bounds fault, PMA violation...).
    DETECTED = "detected"
    #: The attempt crashed the program without reaching the goal
    #: (wild jump into unmapped memory under ASLR, DEP fault...).
    CRASHED = "crashed"
    #: The program survived and behaved as specified -- the attack
    #: simply did not work.
    NO_EFFECT = "no_effect"


@dataclass
class AttackResult:
    """Outcome of one attack attempt."""

    attack: str
    outcome: Outcome
    #: Short human-readable explanation of what happened.
    detail: str = ""
    #: The victim's run result, if the attack ran the victim.
    run: RunResult | None = None
    #: Free-form evidence (leaked bytes, overwritten values, ...).
    evidence: dict = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.outcome is Outcome.SUCCESS

    def describe(self) -> str:
        fault = f" [{self.run.fault_name()}]" if self.run and self.run.fault else ""
        return f"{self.attack}: {self.outcome.value}{fault} -- {self.detail}"


def classify_failure(run: RunResult, detail: str = "") -> AttackResult:
    """Classify a non-successful victim run into DETECTED vs CRASHED
    vs NO_EFFECT, based on which fault (if any) ended it."""
    from repro.errors import (
        BoundsFault,
        CanaryFault,
        CFIFault,
        PermissionFault,
        ProtectionFault,
        RedZoneFault,
        ShadowStackFault,
    )

    if run.fault is None:
        return AttackResult("", Outcome.NO_EFFECT, detail or "program unaffected", run)
    # PermissionFault counts as detection: it is DEP (or W^X) actively
    # refusing the access/execution, not a wild crash.
    detected_types = (
        CanaryFault, CFIFault, BoundsFault, RedZoneFault,
        ShadowStackFault, ProtectionFault, PermissionFault,
    )
    if isinstance(run.fault, detected_types):
        return AttackResult(
            "", Outcome.DETECTED,
            detail or f"stopped by {type(run.fault).__name__}", run,
        )
    return AttackResult("", Outcome.CRASHED, detail or str(run.fault), run)


def finish(name: str, result: AttackResult) -> AttackResult:
    """Stamp the attack name onto a result from :func:`classify_failure`."""
    result.attack = name
    return result
