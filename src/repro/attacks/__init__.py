"""Attacks: the I/O attacker and machine-code attacker suites."""

from repro.attacks.base import AttackResult, Outcome, classify_failure
from repro.attacks.gadgets import (
    Gadget,
    GadgetCatalog,
    build_exfiltration_chain,
    build_shell_chain,
    find_gadgets,
)
from repro.attacks.heap import (
    attack_heap_double_free,
    attack_heap_overflow,
    attack_heap_uaf,
    build_heap_program,
)
from repro.attacks.io_attacks import (
    attack_code_corruption,
    attack_data_only,
    attack_funcptr_same_type,
    attack_funcptr_to_injected,
    attack_funcptr_to_libc,
    attack_heartbleed,
    attack_leak_then_smash,
    attack_ret2libc,
    attack_rop_exfiltrate,
    attack_rop_shell,
    attack_stack_smash_injection,
)
from repro.attacks.machinecode import (
    attack_memory_scraper,
    attack_register_residue,
    attack_stack_residue,
    make_scraper_object,
    sweep_memory,
)
from repro.attacks.payloads import cyclic, cyclic_find, p32, smash, u32
from repro.attacks.pma_exploit import (
    attack_direct_midmodule_call,
    attack_fig4_function_pointer,
    brute_force_report,
    find_reset_instruction,
)
from repro.attacks.rollback import (
    Platform,
    attack_rollback,
    boot,
    liveness_report,
)
from repro.attacks.study import OverflowSite, locate_overflow, run_until_syscall

__all__ = [
    "AttackResult",
    "Outcome",
    "classify_failure",
    "Gadget",
    "GadgetCatalog",
    "build_exfiltration_chain",
    "build_shell_chain",
    "find_gadgets",
    "attack_code_corruption",
    "attack_data_only",
    "attack_funcptr_same_type",
    "attack_funcptr_to_injected",
    "attack_heap_double_free",
    "attack_heap_overflow",
    "attack_heap_uaf",
    "build_heap_program",
    "attack_funcptr_to_libc",
    "attack_heartbleed",
    "attack_leak_then_smash",
    "attack_ret2libc",
    "attack_rop_exfiltrate",
    "attack_rop_shell",
    "attack_stack_smash_injection",
    "attack_memory_scraper",
    "attack_register_residue",
    "attack_stack_residue",
    "make_scraper_object",
    "sweep_memory",
    "cyclic",
    "cyclic_find",
    "p32",
    "smash",
    "u32",
    "attack_direct_midmodule_call",
    "attack_fig4_function_pointer",
    "brute_force_report",
    "find_reset_instruction",
    "Platform",
    "attack_rollback",
    "boot",
    "liveness_report",
    "OverflowSite",
    "locate_overflow",
    "run_until_syscall",
]
