"""Rollback attacks on sealed module state (Section IV-C).

The protected module seals ``tries_left`` between invocations; the
*operating system* (attacker-controlled) stores the blobs.  Sealing
alone authenticates blobs but cannot distinguish a *stale* genuine
blob from the latest one -- so the attacker replays the pre-lockout
state and brute-forces the PIN, exactly the scenario the paper
describes.  The hardware monotonic counter (Memoir-style [36]) closes
the hole, at the price of a liveness hazard that
:mod:`repro.pma.continuity` analyses in depth.

Everything here executes on the machine: the module is MinC compiled
with the secure-PMA scheme; the host that shuttles blobs is MinC too;
"reboots" are fresh machines sharing one platform (same platform key,
same non-volatile counters).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.attacks.base import AttackResult, Outcome
from repro.attacks.payloads import p32
from repro.machine.machine import RunResult
from repro.minic import compile_source
from repro.minic.compiler import options_from_mitigations
from repro.mitigations.config import MitigationConfig, NONE
from repro.pma.module import PMAController
from repro.programs import sources
from repro.programs.builders import libc_object

#: Host driver (plays the OS): restores a blob, runs guesses, ships
#: each new sealed blob out on the output channel.
HOST_MAIN = """
int secret_restore(char *stored, int n);
int secret_try(int pin, char *out);

static char inblob[200];
static char outblob[200];

int read_int() {
    int v = 0;
    read(0, &v, 4);
    return v;
}

void main() {
    int n = read_int();
    read(0, inblob, n);
    int ok = secret_restore(inblob, n);
    print_int(ok);
    if (ok != 0) { exit(1); }
    int guesses = read_int();
    int i;
    for (i = 0; i < guesses; i = i + 1) {
        int packed = secret_try(read_int(), outblob);
        int blob_n = packed % 1000;
        print_int(packed / 1000);
        print_int(blob_n);
        write(1, outblob, blob_n);
    }
}
"""


@dataclass
class Platform:
    """The durable hardware state that survives reboots: the platform
    master key and the non-volatile monotonic counters."""

    platform_key: bytes = b"\x13" * 32
    counters: dict = field(default_factory=dict)

    def controller(self) -> PMAController:
        return PMAController(self.platform_key, self.counters)


@dataclass
class TryOutcome:
    """One secret_try() call as seen by the host."""

    result: int
    blob: bytes


@dataclass
class BootReport:
    """One boot of the module."""

    restore_status: int
    tries: list[TryOutcome]
    run: RunResult


def _read_int_line(data: bytes, pos: int) -> tuple[int, int]:
    newline = data.index(b"\n", pos)
    return int(data[pos:newline]), newline + 1


def boot(
    platform: Platform,
    blob: bytes,
    pins: list[int],
    *,
    monotonic: bool,
    config: MitigationConfig = NONE,
    seed: int = 0,
) -> BootReport:
    """Boot a fresh machine on the shared platform, restore ``blob``,
    and attempt the given PIN guesses."""
    from repro.link import load

    module_source = (
        sources.STATEFUL_SECRET_MODULE_MONOTONIC
        if monotonic
        else sources.STATEFUL_SECRET_MODULE
    )
    module_obj = compile_source(
        module_source, "secret",
        options_from_mitigations(config, protected=True, secure=True),
    )
    host_obj = compile_source(HOST_MAIN, "main", options_from_mitigations(config))
    program = load(
        [host_obj, module_obj, libc_object()], config,
        seed=seed, pma=platform.controller(),
    )
    program.feed(p32(len(blob)) + blob)
    program.feed(p32(len(pins)))
    for pin in pins:
        program.feed(p32(pin))
    run = program.run(10_000_000)
    output = run.output
    restore_status, pos = _read_int_line(output, 0)
    tries: list[TryOutcome] = []
    if restore_status == 0:
        for _ in pins:
            result, pos = _read_int_line(output, pos)
            blob_len, pos = _read_int_line(output, pos)
            new_blob = output[pos : pos + blob_len]
            pos += blob_len
            tries.append(TryOutcome(result, new_blob))
    return BootReport(restore_status, tries, run)


def attack_rollback(
    *,
    monotonic: bool,
    config: MitigationConfig = NONE,
    seed: int = 0,
) -> AttackResult:
    """Replay a stale sealed state to defeat the three-strikes lockout.

    Timeline (the attacker controls storage, never the module):

    1. boot A: fresh start, burn two wrong guesses; *keep* the blob
       from the first one (tries_left = 2);
    2. boot B: feed the stale blob back, burn two more wrong guesses
       (now 4 wrong in total -- more than the lockout allows);
    3. boot C: feed the stale blob again and guess the true PIN.

    Plain sealing accepts every replay; the monotonic-counter module
    rejects boots B and C as stale.
    """
    name = f"rollback({'monotonic' if monotonic else 'plain-sealing'})"
    platform = Platform()
    boot_a = boot(platform, b"", [1111, 1112], monotonic=monotonic,
                  config=config, seed=seed)
    if boot_a.restore_status != 0 or len(boot_a.tries) != 2:
        return AttackResult(name, Outcome.CRASHED,
                            f"setup boot misbehaved: {boot_a.restore_status}",
                            boot_a.run)
    stale = boot_a.tries[0].blob  # state with tries_left = 2

    boot_b = boot(platform, stale, [1113, 1114], monotonic=monotonic,
                  config=config, seed=seed + 1)
    if boot_b.restore_status != 0:
        return AttackResult(
            name, Outcome.DETECTED,
            f"stale state refused at restore (status {boot_b.restore_status})",
            boot_b.run,
            {"wrong_guesses_before_detection": 2},
        )

    boot_c = boot(platform, stale, [1234], monotonic=monotonic,
                  config=config, seed=seed + 2)
    got_secret = (
        boot_c.restore_status == 0
        and boot_c.tries
        and boot_c.tries[0].result == 666
    )
    total_wrong = 4
    if got_secret:
        return AttackResult(
            name, Outcome.SUCCESS,
            f"secret recovered after {total_wrong} wrong guesses -- "
            "lockout defeated by state replay",
            boot_c.run,
            {"wrong_guesses": total_wrong},
        )
    return AttackResult(name, Outcome.NO_EFFECT,
                        "replayed state did not yield the secret", boot_c.run)


#: Host driver for the Ice-style module: after each try it ships the
#: blob out and then reads a commit flag (1 = call secret_commit) --
#: which is how the harness injects crashes between persist and commit.
ICE_HOST_MAIN = """
int secret_restore(char *stored, int n);
int secret_try(int pin, char *out);
int secret_commit();

static char inblob[200];
static char outblob[200];

int read_int() {
    int v = 0;
    read(0, &v, 4);
    return v;
}

void main() {
    int n = read_int();
    read(0, inblob, n);
    int ok = secret_restore(inblob, n);
    print_int(ok);
    if (ok != 0) { exit(1); }
    int guesses = read_int();
    int i;
    for (i = 0; i < guesses; i++) {
        int packed = secret_try(read_int(), outblob);
        int blob_n = packed % 1000;
        print_int(packed / 1000);
        print_int(blob_n);
        write(1, outblob, blob_n);
        if (read_int() == 1) { secret_commit(); }
    }
}
"""


def boot_ice(
    platform: Platform,
    blob: bytes,
    tries: list[tuple[int, bool]],
    *,
    config: MitigationConfig = NONE,
    seed: int = 0,
) -> BootReport:
    """One boot of the Ice-style module.

    ``tries`` is ``[(pin, commit), ...]``; ``commit=False`` models a
    crash between the host persisting the blob and calling
    ``secret_commit()`` -- the window that bricks the strict scheme.
    """
    from repro.link import load

    module_obj = compile_source(
        sources.STATEFUL_SECRET_MODULE_ICE, "secret",
        options_from_mitigations(config, protected=True, secure=True),
    )
    host_obj = compile_source(ICE_HOST_MAIN, "main",
                              options_from_mitigations(config))
    program = load(
        [host_obj, module_obj, libc_object()], config,
        seed=seed, pma=platform.controller(),
    )
    program.feed(p32(len(blob)) + blob)
    program.feed(p32(len(tries)))
    for pin, commit in tries:
        program.feed(p32(pin) + p32(1 if commit else 0))
    run = program.run(10_000_000)
    output = run.output
    restore_status, pos = _read_int_line(output, 0)
    outcomes: list[TryOutcome] = []
    if restore_status == 0:
        for _ in tries:
            result, pos = _read_int_line(output, pos)
            blob_len, pos = _read_int_line(output, pos)
            new_blob = output[pos : pos + blob_len]
            pos += blob_len
            outcomes.append(TryOutcome(result, new_blob))
    return BootReport(restore_status, outcomes, run)


def ice_report(*, config: MitigationConfig = NONE, seed: int = 0) -> dict:
    """Machine-level Ice-style continuity: rollback-safe *and* live.

    Exercises exactly the scenarios where the strict monotonic module
    bricks, plus the replay attack, all across real reboots.
    """
    # Clean lifecycle.
    platform = Platform(platform_key=b"\x2f" * 32)
    boot_a = boot_ice(platform, b"", [(1111, True)], config=config, seed=seed)
    persisted = boot_a.tries[0].blob

    # Crash window 1: persisted but not committed.
    boot_b = boot_ice(platform, persisted, [(1112, False)],
                      config=config, seed=seed + 1)
    uncommitted = boot_b.tries[0].blob
    boot_c = boot_ice(platform, uncommitted, [(1113, True)],
                      config=config, seed=seed + 2)
    recovers_uncommitted = boot_c.restore_status == 0

    # Crash window 2: blob lost before persisting (disk keeps the old
    # committed one).
    platform2 = Platform(platform_key=b"\x30" * 32)
    first = boot_ice(platform2, b"", [(1111, True)], config=config, seed=seed)
    kept = first.tries[0].blob
    boot_ice(platform2, kept, [(1112, True)], config=config, seed=seed + 1)
    # The new blob was committed but "lost"; next boot feeds the stale
    # one -- this IS a rollback and must be refused.
    replay = boot_ice(platform2, kept, [(1234, True)], config=config,
                      seed=seed + 2)

    return {
        "clean_boot_ok": boot_a.restore_status == 0,
        "recovers_after_crash_before_commit": recovers_uncommitted,
        "tries_preserved_across_crash": (
            boot_c.tries[0].result == 0 if boot_c.tries else None
        ),
        "replay_of_committed_old_state_refused": replay.restore_status == -2,
    }


def liveness_report(*, monotonic: bool, config: MitigationConfig = NONE,
                    seed: int = 0) -> dict:
    """The flip side of strict freshness (Section IV-C): if the host
    crashes *after* the module increments the counter but *before* the
    new blob reaches disk, is the module recoverable?

    Returns which stored blob (if any) the next boot will accept.
    """
    platform = Platform()
    boot_a = boot(platform, b"", [1111], monotonic=monotonic,
                  config=config, seed=seed)
    persisted = boot_a.tries[0].blob                     # reached disk
    boot_b = boot(platform, persisted, [1112], monotonic=monotonic,
                  config=config, seed=seed + 1)
    # Crash: boot_b's new blob is LOST; disk still holds `persisted`.
    boot_c = boot(platform, persisted, [1113], monotonic=monotonic,
                  config=config, seed=seed + 2)
    return {
        "scheme": "monotonic" if monotonic else "plain-sealing",
        "recovered_after_crash": boot_c.restore_status == 0,
        "restore_status": boot_c.restore_status,
        "liveness_preserved": boot_c.restore_status == 0,
        "rollback_protected": monotonic,
    }
