"""The I/O-attacker suite: every attack technique of Section III-B.

Each attack takes the victim's deployment posture (a
:class:`MitigationConfig`) and the victim's load seed, and returns an
:class:`AttackResult`.  The attacker:

1. *studies* a local copy of the same binary (same compile flags, own
   machine, no ASLR, irrelevant canary) to learn the layout; then
2. sends one crafted byte string to the victim's input channel and
   observes the output channel.

Nothing else crosses the interface -- this is exactly the paper's I/O
attacker model.
"""

from __future__ import annotations

from repro.attacks import shellcode
from repro.attacks.base import AttackResult, Outcome, classify_failure, finish
from repro.attacks.gadgets import (
    GadgetCatalog,
    build_exfiltration_chain,
    build_shell_chain,
)
from repro.attacks.payloads import p32, smash, u32
from repro.attacks.study import locate_overflow
from repro.machine.machine import RunResult
from repro.minic.codegen import SECURITY_ABORT_EXIT_CODE
from repro.mitigations.config import MitigationConfig, NONE
from repro.programs.builders import build_fig1, build_victim


def _study_config(config: MitigationConfig) -> MitigationConfig:
    """The attacker's local build: same binary, no load-time secrets."""
    return config.with_(aslr_bits=0)


def _shell_result(name: str, run: RunResult, detail_success: str) -> AttackResult:
    if run.shell_spawned:
        return AttackResult(name, Outcome.SUCCESS, detail_success, run)
    if run.exit_code == SECURITY_ABORT_EXIT_CODE:
        return AttackResult(
            name, Outcome.DETECTED, "compiler-inserted check aborted", run
        )
    return finish(name, classify_failure(run))


# ---------------------------------------------------------------------------
# 1. Stack smashing with direct code injection [1]
# ---------------------------------------------------------------------------


def attack_stack_smash_injection(config: MitigationConfig = NONE,
                                 seed: int = 0) -> AttackResult:
    """Overflow Figure 1's buffer with shellcode and point the saved
    return address back at the buffer (Aleph One's classic)."""
    name = "stack-smash+code-injection"
    local = build_fig1(_study_config(config), wide_open=True)
    site = locate_overflow(local, frames_up=1)
    payload = smash(
        site.offset_to_return,
        site.buffer_addr,               # return into the injected code
        prefix=shellcode.spawn_shell(),
    )
    victim = build_fig1(config, seed=seed, wide_open=True)
    victim.feed(payload)
    run = victim.run()
    return _shell_result(name, run, "shell via injected shellcode")


# ---------------------------------------------------------------------------
# 2. Code reuse: return-to-libc
# ---------------------------------------------------------------------------


def attack_ret2libc(config: MitigationConfig = NONE, seed: int = 0) -> AttackResult:
    """Point the saved return address at libc's shell-spawning routine.

    No injected code executes, so DEP does not help; the canary and
    ASLR still do."""
    name = "return-to-libc"
    local = build_fig1(_study_config(config), wide_open=True)
    site = locate_overflow(local, frames_up=1)
    spawn = local.symbol("libc_spawn_shell")
    exit_fn = local.symbol("libc_exit")
    payload = smash(site.offset_to_return, spawn, exit_fn)
    victim = build_fig1(config, seed=seed, wide_open=True)
    victim.feed(payload)
    run = victim.run()
    return _shell_result(name, run, "shell via existing libc code")


# ---------------------------------------------------------------------------
# 3. Code reuse: return-oriented programming [2]
# ---------------------------------------------------------------------------


def attack_rop_shell(config: MitigationConfig = NONE, seed: int = 0) -> AttackResult:
    """Chain ``ret``-terminated gadgets to spawn a shell under DEP."""
    name = "rop-shell"
    local = build_fig1(_study_config(config), wide_open=True)
    site = locate_overflow(local, frames_up=1)
    catalog = GadgetCatalog.from_image_segments(local.image.segments)
    chain = build_shell_chain(catalog)
    if chain is None:
        return AttackResult(name, Outcome.NO_EFFECT, "no usable gadgets found")
    payload = smash(site.offset_to_return, chain[0], *chain[1:])
    victim = build_fig1(config, seed=seed, wide_open=True)
    victim.feed(payload)
    run = victim.run()
    return _shell_result(name, run, f"shell via {len(chain)}-word gadget chain")


def attack_rop_pivot(config: MitigationConfig = NONE,
                     seed: int = 0) -> AttackResult:
    """The paper's trampoline, verbatim: "(1) resets the Stack Pointer
    to a memory address whose contents is controlled by the attacker,
    and (2) returns".

    The stack overflow here is too tight for a chain, but the attacker
    also controls a large global buffer: park the chain there, and
    spend the two overflow words on ``pop sp; ret`` plus the buffer's
    address."""
    name = "rop-pivot"
    local = build_victim("rop_pivot", _study_config(config))
    site = locate_overflow(local, read_occurrence=2)
    inbox = local.symbol("rop_pivot:inbox")
    catalog = GadgetCatalog.from_image_segments(local.image.segments)
    pivot = catalog.stack_pivot()
    chain = build_shell_chain(catalog)
    if pivot is None or chain is None:
        return AttackResult(name, Outcome.NO_EFFECT, "no pivot/chain gadgets")
    victim = build_victim("rop_pivot", config, seed=seed)
    victim.feed(b"".join(p32(word) for word in chain).ljust(128, b"\x00"))
    victim.feed(smash(site.offset_to_return, pivot.address, inbox))
    run = victim.run()
    return _shell_result(name, run, "shell via stack pivot into the inbox")


def attack_rop_exfiltrate(config: MitigationConfig = NONE,
                          seed: int = 0) -> AttackResult:
    """A longer chain: load registers from the stack via ``pop``
    gadgets, then invoke write() to exfiltrate a static key."""
    name = "rop-exfiltrate"
    local = build_victim("rop_exfil", _study_config(config))
    site = locate_overflow(local)
    key_addr = local.symbol("rop_exfil:master_key")
    catalog = GadgetCatalog.from_image_segments(local.image.segments)
    chain = build_exfiltration_chain(catalog, key_addr, 16)
    if chain is None:
        return AttackResult(name, Outcome.NO_EFFECT, "no usable gadgets found")
    payload = smash(site.offset_to_return, chain[0], *chain[1:])
    victim = build_victim("rop_exfil", config, seed=seed)
    victim.feed(payload)
    run = victim.run()
    if b"MK-7F3A55E90C2" in run.output:
        return AttackResult(name, Outcome.SUCCESS, "key exfiltrated via ROP",
                            run, {"leak": run.output})
    return finish(name, classify_failure(run))


# ---------------------------------------------------------------------------
# 4. Code-pointer overwrite (function pointers)
# ---------------------------------------------------------------------------


def attack_funcptr_to_libc(config: MitigationConfig = NONE,
                           seed: int = 0) -> AttackResult:
    """Overwrite a function pointer that sits between the buffer and
    the canary, pointing it at libc's shell routine.  Evades canaries
    entirely; coarse CFI does *not* stop it because the target is a
    legitimate function entry."""
    name = "funcptr-overwrite(libc)"
    local = build_victim("funcptr", _study_config(config))
    spawn = local.symbol("libc_spawn_shell")
    payload = b"A" * 16 + p32(spawn)
    victim = build_victim("funcptr", config, seed=seed)
    victim.feed(payload)
    run = victim.run()
    return _shell_result(name, run, "shell via hijacked function pointer")


def attack_funcptr_to_injected(config: MitigationConfig = NONE,
                               seed: int = 0) -> AttackResult:
    """Function-pointer overwrite aimed at shellcode *in the buffer*:
    blocked by DEP (buffer not executable) and by CFI (target is not a
    function entry), but evades canaries."""
    name = "funcptr-overwrite(inject)"
    local = build_victim("funcptr", _study_config(config))
    site = locate_overflow(local)
    code = shellcode.spawn_shell()
    payload = code + b"A" * (16 - len(code)) + p32(site.buffer_addr)
    victim = build_victim("funcptr", config, seed=seed)
    victim.feed(payload)
    run = victim.run()
    return _shell_result(name, run, "shell via pointer into injected code")


def attack_funcptr_same_type(config: MitigationConfig = NONE,
                             seed: int = 0) -> AttackResult:
    """Function-pointer overwrite aimed at a *different function of the
    same type* (``waive_payment`` instead of ``apply_discount``).

    This is the residual attack surface of typed CFI: the target
    carries a landing pad with the correct type tag, so even the
    fine-grained policy admits it -- yet the program's behaviour is
    subverted (payment waived)."""
    name = "funcptr-overwrite(same-type)"
    local = build_victim("funcptr", _study_config(config))
    target = local.symbol("funcptr:waive_payment")
    payload = b"A" * 16 + p32(target)
    victim = build_victim("funcptr", config, seed=seed)
    victim.feed(payload)
    run = victim.run()
    if run.output == b"0\n":
        return AttackResult(name, Outcome.SUCCESS,
                            "payment waived via same-type hijack", run)
    return finish(name, classify_failure(run))


def attack_partial_overwrite(config: MitigationConfig = NONE,
                             seed: int = 0) -> AttackResult:
    """Partial pointer overwrite: clobber only the *low two bytes* of
    the saved return address.

    Because ASLR shifts are page-aligned, the low 12 bits of every
    code address are randomisation-invariant; overwriting just 16 bits
    leaves the unknown high bits of the victim's real (shifted) return
    address in place.  The attack lands whenever the shift's bits
    12-15 happen to be zero -- ~1/16 under page-level ASLR, versus
    ~2^-16 for guessing the whole address.  A classic entropy-eroding
    technique the E6 sweep quantifies.
    """
    name = "partial-overwrite"
    local = build_fig1(_study_config(config), wide_open=True)
    site = locate_overflow(local, frames_up=1)
    spawn = local.symbol("libc_spawn_shell")
    # Fill up to the return slot, then exactly two bytes of target.
    payload = b"A" * site.offset_to_return + p32(spawn)[:2]
    victim = build_fig1(config, seed=seed, wide_open=True)
    victim.feed(payload)
    run = victim.run()
    return _shell_result(name, run, "shell via 2-byte return overwrite")


# ---------------------------------------------------------------------------
# 5. Code corruption via an arbitrary write
# ---------------------------------------------------------------------------


def attack_code_corruption(config: MitigationConfig = NONE,
                           seed: int = 0) -> AttackResult:
    """Use the ``arr[i] = v`` primitive to patch shellcode over a
    function that will run later.  The write reaches any address
    (Section III-A), but DEP makes the text segment non-writable."""
    name = "code-corruption"
    local = build_victim("arbitrary_write", _study_config(config))
    target = local.symbol("arbitrary_write:check_credentials")
    # Where is arr?  Breakpoint on the first read (inside read_int
    # called from main) and walk one frame up to main.
    from repro.isa.registers import BP
    from repro.machine import syscalls as sys_numbers
    from repro.attacks.study import run_until_syscall

    machine = run_until_syscall(local, sys_numbers.SYS_READ)
    main_bp = machine.memory.read_word(machine.cpu.regs[BP])
    # main's first local is arr[4]: 16 bytes just below the (optional)
    # canary slot.
    arr_addr = main_bp - (4 if config.stack_canaries else 0) - 16

    code = shellcode.spawn_shell()
    code += b"\x00" * (-len(code) % 4)
    words = [u32(code, i) for i in range(0, len(code), 4)]
    payload = p32(len(words))
    for position, word in enumerate(words):
        index = (target + 4 * position - arr_addr) // 4
        payload += p32(index) + p32(word)
    victim = build_victim("arbitrary_write", config, seed=seed)
    victim.feed(payload)
    run = victim.run()
    return _shell_result(name, run, "shell via patched program text")


# ---------------------------------------------------------------------------
# 6. Data-only attack
# ---------------------------------------------------------------------------


def attack_data_only(config: MitigationConfig = NONE, seed: int = 0) -> AttackResult:
    """Overflow only as far as the adjacent ``is_admin`` flag: no code
    pointer is touched, so canaries, DEP, ASLR, shadow stacks and CFI
    are all blind to it (the paper's point that data-only attacks
    survive the deployed countermeasures)."""
    name = "data-only"
    payload = b"A" * 16 + p32(1)
    victim = build_victim("data_only", config, seed=seed)
    victim.feed(payload)
    run = victim.run()
    if b"31337" in run.output:
        return AttackResult(name, Outcome.SUCCESS,
                            "admin action performed without credentials", run)
    return finish(name, classify_failure(run))


# ---------------------------------------------------------------------------
# 7. Information leaks
# ---------------------------------------------------------------------------


def attack_heartbleed(config: MitigationConfig = NONE, seed: int = 0) -> AttackResult:
    """Over-read past a reply buffer, leaking the adjacent key
    (the Heartbleed pattern).  A pure confidentiality violation: no
    integrity countermeasure triggers."""
    name = "info-leak(heartbleed)"
    payload = p32(48) + b"x" * 16
    victim = build_victim("heartbleed", config, seed=seed)
    victim.feed(payload)
    run = victim.run()
    if b"KEY-19A7F3C055E" in run.output:
        return AttackResult(name, Outcome.SUCCESS, "secret key leaked",
                            run, {"leak": run.output})
    return finish(name, classify_failure(run))


def attack_leak_then_smash(config: MitigationConfig = NONE,
                           seed: int = 0) -> AttackResult:
    """Two-stage bypass of canary + DEP + ASLR via an information leak
    (Strackx et al., "Breaking the memory secrecy assumption" [5]):

    1. over-read the stack, learning the canary value and a return
       address (which reveals the victim's text-segment ASLR shift);
    2. overflow with the leaked canary and a return-to-libc target
       rebased by the recovered shift.
    """
    name = "leak-then-smash"
    study_feed = p32(1) + p32(16) + p32(28) + b"y" * 16
    local = build_victim("leak_then_smash", _study_config(config))
    site = locate_overflow(local, read_occurrence=4, feed=study_feed)
    offset = site.offset_to_return
    spawn_unshifted = local.symbol("libc_spawn_shell")
    exit_unshifted = local.symbol("libc_exit")

    # Round 1 against the real victim: leak through the return slot.
    victim = build_victim("leak_then_smash", config, seed=seed)
    leak_len = offset + 4
    victim.feed(p32(2))                      # two request rounds
    victim.feed(p32(0) + p32(leak_len))      # fill=0, echo=offset+4
    from repro.attacks.study import run_until_syscall
    from repro.errors import MachineFault
    from repro.machine import syscalls as sys_numbers

    # Pause the victim just before it reads the round-2 header (read
    # occurrence 5: rounds, fill1, echo1, buf1, -> fill2) so we can
    # parse the leaked bytes and answer with the smash payload.  The
    # pause is pure scheduling; only input/output bytes cross the
    # attacker interface.
    try:
        run_until_syscall(victim, sys_numbers.SYS_READ, 5)
    except (RuntimeError, MachineFault):
        run = victim.run()
        return finish(name, classify_failure(run, "victim died before leaking"))
    leaked = victim.machine.output.getvalue()[-leak_len:]
    if len(leaked) < leak_len:
        run = victim.run()
        return finish(name, classify_failure(run, "leak too short"))
    canary = u32(leaked, offset - 8) if config.stack_canaries else None
    saved_bp = u32(leaked, offset - 4)
    leaked_return = u32(leaked, offset)
    shift = leaked_return - site.original_return
    payload = smash(
        offset,
        spawn_unshifted + shift,
        exit_unshifted + shift,
        saved_bp=saved_bp,
        canary=canary,
    )
    victim.feed(p32(len(payload)) + p32(0))  # round 2: fill=payload, echo=0
    victim.feed(payload)
    run = victim.run()
    return _shell_result(name, run, "canary+DEP+ASLR bypassed via leak")
