"""E7 -- safe language, static analysis, and checked testing."""

from repro.experiments import analysis_exp
from repro.analysis import compare_detection, evaluate_on_corpus


def test_bench_safe_language(benchmark):
    rows = benchmark.pedantic(analysis_exp.safe_language_report,
                              rounds=1, iterations=1)
    print("\n" + analysis_exp.render_safe_language(rows))
    # Every vulnerable vehicle is either rejected at compile time or
    # its unsafe operation is trapped at run time.
    for row in rows:
        assert ("rejected" in row["safe_mode"]
                or "bounds" in row["safe_mode"].lower()
                or "BoundsFault" in row["safe_mode"]), row


def test_bench_static_analysis(benchmark):
    evaluation = benchmark.pedantic(evaluate_on_corpus, rounds=3, iterations=1)
    print("\n" + analysis_exp.static_analysis_report())
    all_findings = evaluation["all_findings"]
    definite = evaluation["definite_only"]
    # The Section III-C2 tradeoff: useful but imperfect (FPs and FNs
    # at the permissive setting; perfect precision, halved recall at
    # the strict setting).
    assert 0.8 <= all_findings["precision"] < 1.0
    assert 0.8 <= all_findings["recall"] < 1.0
    assert definite["precision"] == 1.0
    assert definite["recall"] < all_findings["recall"]
    # The effort ladder: the interprocedural setting recovers the
    # aliased-overflow false negative (recall -> 1.0).
    deep = evaluate_on_corpus(interprocedural=True)["all_findings"]
    assert deep["recall"] > all_findings["recall"]
    assert deep["recall"] == 1.0


def test_bench_fuzzing_detection(benchmark):
    comparison = benchmark.pedantic(
        lambda: compare_detection(runs=120), rounds=1, iterations=1,
    )
    print("\n" + analysis_exp.fuzzing_report(runs=120))
    assert comparison["plain_silent_rate"] == 0.0
    assert comparison["asan_silent_rate"] == 1.0
    assert comparison["asan_rate"] == 1.0
