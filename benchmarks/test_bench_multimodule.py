"""Extension bench -- mutually distrustful protected modules
(the paper's Section IV-B open problem, implemented)."""

from repro.experiments import multimodule_exp


def test_bench_multimodule(benchmark):
    report = benchmark.pedantic(multimodule_exp.multimodule_report,
                                rounds=1, iterations=1)
    print("\n" + multimodule_exp.render_multimodule(report))
    for key, value in report.items():
        if key == "a_probe_output_before_fault":
            continue
        assert value, key
