"""Extension bench -- Software Fault Isolation (Section IV-A).

Regenerates the containment table and measures the rewriting tax: the
sandboxed module runs more instructions per call (every memory access
pays a guard), which is SFI's price relative to hardware schemes.
"""

from repro.experiments import sfi_exp
from repro.minic import CompileOptions, compile_source


def test_bench_sfi_containment(benchmark):
    rows = benchmark.pedantic(sfi_exp.sfi_table, rounds=1, iterations=1)
    print("\n" + sfi_exp.render_sfi(rows))
    report = sfi_exp.asymmetry_report()
    print(f"asymmetry: host reads sandbox data = "
          f"{report['host_reads_sandbox_data']} -- {report['note']}")
    by_key = {(r["module"], r["mode"]): r["outcome"] for r in rows}
    assert by_key[("benign computation", "raw")] == "correct result"
    assert by_key[("benign computation", "sandboxed")] == "correct result"
    for module, mode in by_key:
        if module.startswith("hostile"):
            if mode == "raw":
                assert by_key[(module, mode)] == "HOST COMPROMISED"
            else:
                assert by_key[(module, mode)].startswith("contained")
    assert report["host_reads_sandbox_data"]


def test_bench_sfi_overhead(benchmark):
    def measure():
        results = {}
        for rewrite in (False, True):
            sandbox = compile_source(sfi_exp.BENIGN_SANDBOX, "sandbox",
                                     CompileOptions())
            program = sfi_exp.build_sfi_program(sandbox, rewrite=rewrite)
            result = program.run()
            assert result.output.split()[0] == b"232"
            results["sandboxed" if rewrite else "raw"] = result.instructions
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    overhead = results["sandboxed"] / results["raw"] - 1
    print(f"\nSFI guard overhead on the benign workload: "
          f"raw {results['raw']} -> sandboxed {results['sandboxed']} "
          f"instructions ({overhead:+.0%})")
    # Guards cost real instructions (unlike the PMA's free hardware
    # checks, E12) but stay within a small multiple.
    assert 0.2 < overhead < 5.0
