"""E4 -- the attack x countermeasure matrix (the paper's Section III-C
claims as one table)."""

from repro.experiments import matrix


def test_bench_matrix(benchmark):
    cells = benchmark.pedantic(matrix.run_matrix, rounds=1, iterations=1)
    print("\n" + matrix.render_matrix(cells))
    summary = matrix.matrix_summary(cells)
    print("claims: " + ", ".join(f"{k}={v}" for k, v in summary.items()))
    for claim, holds in summary.items():
        assert holds, claim

    # ASLR rows: with a fixed seed the blind attacks *usually* crash;
    # the precise probability is E6's business.  Here assert only that
    # ASLR never makes an attack easier than no mitigation.
    by_key = {(c.attack, c.preset): c.result for c in cells}
    for (attack, preset), result in by_key.items():
        if preset == "none":
            assert result.succeeded or "leak" in attack, (attack, preset)
