"""Ablation bench -- the gadget census (DESIGN.md design-choice row).

Variable-length encodings give attackers gadgets the compiler never
emitted; an aligned-only ISA would offer only the intended ones.  The
census quantifies the gap on a real linked image.
"""

from repro.attacks.gadgets import GadgetCatalog
from repro.experiments.reporting import render_table
from repro.programs import build_victim


def test_bench_gadget_census(benchmark):
    def census():
        program = build_victim("fig1_wide_open")
        catalog = GadgetCatalog.from_image_segments(program.image.segments)
        return catalog, catalog.census()

    catalog, counts = benchmark.pedantic(census, rounds=3, iterations=1)
    examples = [g for g in catalog.gadgets if not g.intended][:5]
    print("\n" + render_table(
        ["metric", "count"],
        [["total gadgets", counts["total"]],
         ["intended (compiler-emitted starts)", counts["intended"]],
         ["unintended (misaligned decodes)", counts["unintended"]]],
        title="gadget census: variable-length encoding vs aligned-only",
    ))
    print("sample unintended gadgets:")
    for gadget in examples:
        print(f"  {gadget}")
    assert counts["unintended"] > 0
    assert counts["total"] == counts["intended"] + counts["unintended"]
    # The paper's premise for ROP: enough material to build chains.
    assert catalog.pop_register(0) is not None
    assert counts["total"] >= 20
