"""E3 -- every Section III-B attack technique against the unmitigated
platform (the paper's historical baseline: all of them work)."""

from repro.attacks import io_attacks
from repro.experiments.reporting import render_table
from repro.mitigations import NONE

BATTERY = (
    io_attacks.attack_stack_smash_injection,
    io_attacks.attack_ret2libc,
    io_attacks.attack_rop_shell,
    io_attacks.attack_rop_exfiltrate,
    io_attacks.attack_rop_pivot,
    io_attacks.attack_funcptr_to_libc,
    io_attacks.attack_funcptr_to_injected,
    io_attacks.attack_code_corruption,
    io_attacks.attack_data_only,
    io_attacks.attack_heartbleed,
    io_attacks.attack_leak_then_smash,
)


def test_bench_attack_battery(benchmark):
    results = benchmark.pedantic(
        lambda: [attack(NONE) for attack in BATTERY], rounds=1, iterations=1,
    )
    print("\n" + render_table(
        ["attack", "outcome", "detail"],
        [[r.attack, r.outcome.value, r.detail[:60]] for r in results],
        title="E3: the full attack battery vs the unprotected platform",
    ))
    for result in results:
        assert result.succeeded, result.describe()
