"""E12 -- secure-compilation cost and component ablation."""

from repro.experiments import overhead, securecomp_exp


def test_bench_boundary_crossing_cost(benchmark):
    rows = benchmark.pedantic(overhead.boundary_crossing_table,
                              rounds=1, iterations=1)
    print("\n" + overhead.render_crossing(rows))
    plain, insecure, secure = (row["instructions_per_call"] for row in rows)
    # Hardware-only protection is free per call; the secure-compilation
    # stubs add a bounded constant per boundary crossing.
    assert insecure == plain
    assert 0 < secure - plain < 200


def test_bench_securecomp_ablation(benchmark):
    rows = benchmark.pedantic(securecomp_exp.ablation_table,
                              rounds=1, iterations=1)
    print("\n" + securecomp_exp.render_ablation(rows))
    by_build = {row["build"]: row for row in rows}
    full = by_build["full secure compilation"]
    assert full["fig4_attack"].startswith("detected")
    assert full["stack_residue"] == "clean"
    assert full["register_residue"] == "clean"
    assert full["reentrancy"] == "detected"
    assert by_build["without pointer checks"]["fig4_attack"].startswith("EXPLOITED")
    assert by_build["without private stack"]["stack_residue"] == "LEAKED"
    assert by_build["without register scrubbing"]["register_residue"] == "LEAKED"
    assert by_build["without reentrancy guard"]["reentrancy"] != "detected"
