"""E5 -- runtime overhead of the countermeasures."""

from repro.experiments import overhead


def test_bench_overhead_by_posture(benchmark):
    rows = benchmark.pedantic(overhead.overhead_table, rounds=1, iterations=1)
    print("\n" + overhead.render_overhead(rows))
    by_name = {row.posture: row for row in rows}
    # Shape: canaries are cheap; per-access checks cost more.
    assert by_name["canaries"].overhead_pct < 2.0
    assert (by_name["safe-language (bounds checks)"].overhead_pct
            > by_name["canaries"].overhead_pct)


def test_bench_overhead_scaling(benchmark):
    rows = benchmark.pedantic(overhead.scaling_table, rounds=1, iterations=1)
    print("\n" + overhead.render_scaling(rows))
    # Canary cost is flat in the number of accesses...
    canary_costs = {row["canary_extra"] for row in rows}
    assert len(canary_costs) == 1
    # ...bounds-check cost is exactly one instruction per access.
    for row in rows:
        assert row["bounds_extra"] == row["accesses"]
