"""E8 -- Figure 2: the bug-free module vs the machine-code attacker."""

from repro.experiments import modules_exp
from repro.experiments.reporting import render_kv


def test_bench_io_attacker_locked_out(benchmark):
    report = benchmark.pedantic(
        lambda: modules_exp.io_attacker_lockout(guess_budget=50),
        rounds=1, iterations=1,
    )
    print("\n" + render_kv("E8a: I/O brute force vs the bug-free module", report))
    # The paper: without bugs, the I/O attacker is held to the
    # source-level policy -- three wrong tries, then nothing.
    assert report["locked_out"]
    assert report["status"] == "exited"


def test_bench_scrapers_on_plain_program(benchmark):
    rows = benchmark.pedantic(modules_exp.scraper_table, rounds=1, iterations=1)
    print("\n" + modules_exp.render_scrapers(rows))
    outcomes = {row["scenario"]: row["outcome"] for row in rows}
    # E8b: the same module falls instantly to in-address-space malware,
    # with or without kernel privilege -- no bug required.
    assert outcomes["plain program, module malware"] == "success"
    assert outcomes["plain program, kernel malware"] == "success"
    # E9a is asserted in test_bench_fig3; keep the rows printed once.
