"""Extension bench -- the CFI precision ladder (coarse vs typed)."""

from repro.experiments import cfi_exp


def test_bench_cfi_precision_ladder(benchmark):
    rows = benchmark.pedantic(cfi_exp.cfi_table, rounds=1, iterations=1)
    print("\n" + cfi_exp.render_cfi(rows))
    by_attack = {row["attack"]: row for row in rows}
    inject = by_attack["hijack -> injected bytes"]
    wrong = by_attack["hijack -> libc function (wrong type)"]
    same = by_attack["hijack -> same-type function"]
    # Strictly increasing precision, with typed CFI's residue visible.
    assert inject["no cfi"] == "success"
    assert inject["coarse cfi"] == "detected"
    assert inject["typed cfi"] == "detected"
    assert wrong["coarse cfi"] == "success"
    assert wrong["typed cfi"] == "detected"
    assert same["typed cfi"] == "success"
