"""E9 -- Figure 3: the protected module defeats the machine-code attacker."""

from repro.experiments import modules_exp
from repro.experiments.reporting import render_kv


def test_bench_pma_denies_scrapers(benchmark):
    rows = benchmark.pedantic(modules_exp.scraper_table, rounds=1, iterations=1)
    print("\n" + modules_exp.render_scrapers(rows))
    outcomes = {row["scenario"]: row["outcome"] for row in rows}
    assert outcomes["protected module, module malware"] == "detected"
    assert outcomes["protected module, kernel malware"] == "detected"
    assert outcomes["secure-compiled module, kernel malware"] == "detected"


def test_bench_sweep_census(benchmark):
    rows = benchmark.pedantic(modules_exp.sweep_census, rounds=1, iterations=1)
    print("\n" + modules_exp.render_census(rows))
    for row in rows:
        if row["program"] == "plain":
            assert "PIN" in row["secrets_found"]
            assert row["denied_kib"] == 0
        else:
            assert row["secrets_found"] == "-"
            assert row["denied_kib"] > 0


def test_bench_functionality_preserved(benchmark):
    report = benchmark.pedantic(modules_exp.functionality_preserved,
                                rounds=1, iterations=1)
    print("\n" + render_kv("E9c: protected module still serves honest "
                           "clients", report))
    assert report["correct_pin_served"]
    assert report["wrong_pins_refused"]


def test_bench_residue(benchmark):
    rows = benchmark.pedantic(modules_exp.residue_table, rounds=1, iterations=1)
    print("\n" + modules_exp.render_residue(rows))
    by_build = {row["build"]: row for row in rows}
    assert by_build["plain program"]["stack_residue"] == "success"
    assert by_build["protected, insecure compile"]["stack_residue"] == "success"
    assert by_build["protected, secure compile"]["stack_residue"] == "no_effect"
    assert by_build["protected, secure compile"]["register_residue"] == "no_effect"
