"""E11 -- attestation, sealed storage, and state continuity."""

from repro.experiments import attestation_exp
from repro.experiments.reporting import render_kv
from repro.pma.continuity import IceStyleScheme, MemoirStyleScheme, crash_matrix


def test_bench_attestation(benchmark):
    report = benchmark.pedantic(attestation_exp.attestation_report,
                                rounds=3, iterations=1)
    print("\n" + render_kv("E11: remote attestation", report))
    assert report["genuine_module_verifies"]
    assert not report["tampered_module_verifies"]
    assert not report["nonce_replay_accepted"]


def test_bench_sealing(benchmark):
    report = benchmark.pedantic(attestation_exp.sealing_report,
                                rounds=5, iterations=1)
    print("\n" + render_kv("E11: sealed storage", report))
    assert all(report.values())


def test_bench_rollback(benchmark):
    rows = benchmark.pedantic(attestation_exp.rollback_table,
                              rounds=1, iterations=1)
    print("\n" + attestation_exp.render_rollback(rows))
    by_module = {row["module"]: row for row in rows}
    assert by_module["plain sealing"]["rollback"] == "success"
    assert by_module["monotonic counter"]["rollback"] == "detected"
    # The tension the paper describes: strict freshness costs liveness.
    assert by_module["plain sealing"]["crash_liveness"] == "recovers"
    assert "BRICKED" in by_module["monotonic counter"]["crash_liveness"]


def test_bench_continuity_crash_matrix(benchmark):
    def run():
        return (crash_matrix(MemoirStyleScheme), crash_matrix(IceStyleScheme))

    memoir_rows, ice_rows = benchmark.pedantic(run, rounds=3, iterations=1)
    print("\n" + attestation_exp.render_crash_matrix())
    # Memoir-style: exactly one deadlocking crash window.
    deadlocks = [row for row in memoir_rows if not row["liveness"]]
    assert len(deadlocks) == 1
    assert deadlocks[0]["scenario"] == "crash_after=increment"
    # Ice-style: live everywhere, and never accepts the replay.
    assert all(row["liveness"] for row in ice_rows)
    for rows in (memoir_rows, ice_rows):
        replay = [row for row in rows if row["scenario"] == "replay-attack"][0]
        assert replay["recovered_state"] is None
