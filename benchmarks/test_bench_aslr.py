"""E6 -- ASLR entropy sweep, with and without an information leak."""

from repro.experiments import aslr


def test_bench_aslr_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: aslr.sweep(bits_list=(0, 1, 2, 3, 4, 6), trials=24),
        rounds=1, iterations=1,
    )
    print("\n" + aslr.render_sweep(points))

    # Shape: monotone-ish decay of the blind success rate with
    # entropy, ~2^-bits; the leak restores ~certain success.
    assert points[0].blind_rate == 1.0
    assert points[-1].blind_rate <= 0.25
    for point in points:
        assert point.leak_rate == 1.0
        # Within generous binomial noise of the analytic rate.
        assert abs(point.blind_rate - point.expected_blind_rate) <= 0.25
    rates = [p.blind_rate for p in points]
    assert rates[0] >= rates[2] >= rates[-1]


def test_bench_partial_overwrite(benchmark):
    """Partial pointer overwrites erode ASLR's effective entropy: only
    the overwritten-yet-randomised bits (12..15) must be guessed."""
    comparison = benchmark.pedantic(
        lambda: aslr.partial_overwrite_comparison(trials=48),
        rounds=1, iterations=1,
    )
    print(f"\nfull-address guess: {comparison['full_overwrite_successes']}"
          f"/{comparison['trials']}  |  2-byte partial: "
          f"{comparison['partial_overwrite_successes']}/{comparison['trials']}"
          f" (expected ~1/16)")
    assert comparison["partial_overwrite_successes"] > 0
    assert (comparison["partial_overwrite_successes"]
            > comparison["full_overwrite_successes"])
    assert comparison["partial_rate"] <= 0.25  # still probabilistic
