#!/usr/bin/env python
"""Run the simulator performance suite and record machine-readable numbers.

Entry point for tracking the interpreter's performance trajectory
across PRs::

    PYTHONPATH=src python benchmarks/run_benchmarks.py

Runs the pytest-benchmark simulator suite
(``benchmarks/test_bench_simulator.py``) and writes
``BENCH_simulator.json`` at the repository root with the headline
numbers (instructions/second, compile-pipeline latency).  Each run
appends to the file's ``history`` list so regressions are visible over
time; the ``current`` entry always holds the latest run.

Options::

    --output PATH    where to write the JSON (default: BENCH_simulator.json)
    --quick          fewer benchmark rounds, for a fast smoke reading
    --check          exit non-zero if any tracked throughput section
                     regressed more than 10% against the median of the
                     last few recorded runs, if the trace-JIT leg
                     fails to beat the block leg by MIN_TRACE_SPEEDUP,
                     if invariant-monitored dispatch costs more than
                     MAX_MONITOR_OVERHEAD x the detached block leg,
                     if transparent fuzz dispatch fails to beat stepped
                     dispatch by MIN_FUZZ_DISPATCH_SPEEDUP, (on
                     machines with >= 4 cores) if the parallel fuzz
                     campaign scales below MIN_PARALLEL_SCALING, or if
                     the service-coordinated campaign sustains less
                     than MIN_SERVICE_EFFICIENCY of the direct
                     CampaignRunner throughput at the same jobs count
    --trajectory     print each tracked section's throughput trend
                     from the recorded history (no benchmark run)
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
from datetime import datetime, timezone

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BENCH_FILE = os.path.join(REPO_ROOT, "benchmarks", "test_bench_simulator.py")


def run_suite(quick: bool) -> dict:
    """Run the simulator benchmarks, returning pytest-benchmark's JSON."""
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        raw_path = handle.name
    try:
        cmd = [
            sys.executable, "-m", "pytest", BENCH_FILE,
            "--benchmark-only", "-q",
            f"--benchmark-json={raw_path}",
        ]
        if quick:
            cmd += ["--benchmark-min-rounds=2", "--benchmark-warmup=off"]
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        completed = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {completed.returncode})")
        with open(raw_path) as fh:
            return json.load(fh)
    finally:
        os.unlink(raw_path)


#: Throughput benchmarks and the tracking-file section each lands in.
THROUGHPUT_SECTIONS = {
    "test_bench_interpreter_throughput": "interpreter",
    "test_bench_block_throughput": "block",
    "test_bench_trace_throughput": "trace",
    "test_bench_monitored_throughput": "monitored",
}

#: Campaign trial benchmarks (measured in trials/second, not insns/s).
TRIAL_SECTIONS = {
    "test_bench_snapshot_restore_trials": "snapshot",
    "test_bench_cold_rebuild_trials": "snapshot_cold",
}

#: Fuzzing benchmarks (measured in coverage-instrumented executions
#: per second through the warm snapshot fork-server).
FUZZ_SECTIONS = {
    "test_bench_greybox_execs": "fuzz",
    "test_bench_greybox_parsing": "fuzz_parsing",
    "test_bench_greybox_execs_stepped": "fuzz_stepped",
    "test_bench_fuzz_campaign": "fuzz_campaign",
    "test_bench_fuzz_parallel": "fuzz_parallel",
    "test_bench_fuzz_service": "fuzz_service",
}

#: Snapshot-restore trials must beat cold rebuilds by at least this
#: factor for ``--check`` to pass (the layer's reason to exist).
MIN_SNAPSHOT_SPEEDUP = 20.0

#: The trace-JIT leg must beat the block leg by at least this factor
#: for ``--check`` to pass (the tier's reason to exist).
MIN_TRACE_SPEEDUP = 2.5

#: Invariant-monitored block dispatch may cost at most this factor
#: vs the detached block leg for ``--check`` to pass -- the monitors
#: are only "always-on" if riding along stays cheap.
MAX_MONITOR_OVERHEAD = 3.0

#: Transparent (block-speed) fuzz dispatch must beat the stepped
#: per-instruction leg by at least this factor for ``--check`` to
#: pass.  Measured on the same machine in the same run, so the
#: "observed execs/s doubled" claim is hardware-independent.
MIN_FUZZ_DISPATCH_SPEEDUP = 2.0

#: The parallel greybox campaign must scale at least this much over
#: the sequential campaign -- but only on machines with enough cores
#: to express it (the gate is skipped below ``MIN_SCALING_CORES``,
#: with the recorded core count printed so the skip is auditable).
MIN_PARALLEL_SCALING = 3.0
MIN_SCALING_CORES = 4

#: The coordinator-managed campaign must sustain at least this share
#: of the direct CampaignRunner throughput at the same jobs count --
#: per-batch checkpointing and the persistent store are only "live
#: telemetry" if they stay out of the hot path.  Both legs run in the
#: same process on the same hardware, so the ratio binds everywhere.
MIN_SERVICE_EFFICIENCY = 0.8

#: How many recent runs feed the regression baseline.  Gating against
#: the *median* of a window -- not the all-time best -- keeps one
#: lucky fast run from ratcheting the floor up forever and failing
#: every later run on scheduler noise.
BASELINE_WINDOW = 5


def summarize(raw: dict) -> dict:
    """Extract the headline numbers from pytest-benchmark output."""
    summary: dict = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": raw.get("machine_info", {}).get("node", "unknown"),
        "python": raw.get("machine_info", {}).get("python_version", "unknown"),
    }
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        name = bench["name"]
        if name in THROUGHPUT_SECTIONS:
            extra = bench.get("extra_info", {})
            instructions = extra.get("instructions_per_run")
            summary[THROUGHPUT_SECTIONS[name]] = {
                "mean_seconds": stats["mean"],
                "stddev_seconds": stats["stddev"],
                "rounds": stats["rounds"],
                "instructions_per_run": instructions,
                "instructions_per_second": (
                    instructions / stats["mean"] if instructions else None
                ),
            }
        elif name in TRIAL_SECTIONS:
            extra = bench.get("extra_info", {})
            trials = extra.get("trials_per_run")
            summary[TRIAL_SECTIONS[name]] = {
                "mean_seconds": stats["mean"],
                "stddev_seconds": stats["stddev"],
                "rounds": stats["rounds"],
                "trials_per_run": trials,
                "trials_per_second": (
                    trials / stats["mean"] if trials else None
                ),
            }
        elif name in FUZZ_SECTIONS:
            extra = bench.get("extra_info", {})
            execs = extra.get("execs_per_run")
            section = {
                "mean_seconds": stats["mean"],
                "stddev_seconds": stats["stddev"],
                "rounds": stats["rounds"],
                "execs_per_run": execs,
                "execs_per_second": (
                    execs / stats["mean"] if execs else None
                ),
            }
            # The campaign legs record their fan-out so a history
            # entry says what hardware its scaling number means on.
            for key in ("jobs", "cores"):
                if key in extra:
                    section[key] = extra[key]
            summary[FUZZ_SECTIONS[name]] = section
        elif name == "test_bench_compile_pipeline":
            summary["compile_pipeline"] = {
                "mean_seconds": stats["mean"],
                "stddev_seconds": stats["stddev"],
                "rounds": stats["rounds"],
            }
    warm = summary.get("snapshot", {}).get("trials_per_second")
    cold = summary.get("snapshot_cold", {}).get("trials_per_second")
    if warm and cold:
        summary["snapshot"]["speedup_vs_cold"] = warm / cold
    traced = summary.get("trace", {}).get("instructions_per_second")
    blocked = summary.get("block", {}).get("instructions_per_second")
    if traced and blocked:
        summary["trace"]["speedup_vs_block"] = traced / blocked
    watched = summary.get("monitored", {}).get("instructions_per_second")
    if watched and blocked:
        summary["monitored"]["overhead_vs_block"] = blocked / watched
    transparent = summary.get("fuzz_parsing", {}).get("execs_per_second")
    stepped = summary.get("fuzz_stepped", {}).get("execs_per_second")
    if transparent and stepped:
        summary["fuzz_parsing"]["speedup_vs_stepped"] = transparent / stepped
    fanned = summary.get("fuzz_parallel", {}).get("execs_per_second")
    solo = summary.get("fuzz_campaign", {}).get("execs_per_second")
    if fanned and solo:
        summary["fuzz_parallel"]["scaling_vs_sequential"] = fanned / solo
    served = summary.get("fuzz_service", {}).get("execs_per_second")
    if served and fanned:
        summary["fuzz_service"]["efficiency_vs_direct"] = served / fanned
    # Echo the dispatch configuration the throughput legs ran with.
    for bench in raw.get("benchmarks", []):
        config = bench.get("extra_info", {}).get("config")
        if bench["name"] == "test_bench_trace_throughput" and config:
            summary["config"] = config
    return summary


def load_previous(path: str) -> dict | None:
    """The tracking file's prior contents, or None."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            return json.load(fh)
    except (json.JSONDecodeError, OSError):
        return None


def write_tracking_file(path: str, summary: dict,
                        previous: dict | None = None) -> None:
    """Append to the tracking file, keeping the latest run as ``current``."""
    history: list = []
    if previous is None:
        previous = load_previous(path)
    if previous:
        history = previous.get("history", [])
        if previous.get("current"):
            history.append(previous["current"])
    with open(path, "w") as fh:
        json.dump({"current": summary, "history": history}, fh, indent=2)
        fh.write("\n")


def _rate(entry: dict, section: str = "interpreter") -> float | None:
    data = entry.get(section, {})
    return (data.get("instructions_per_second")
            or data.get("trials_per_second")
            or data.get("execs_per_second"))


def _unit(section: str) -> str:
    if section in ("snapshot", "snapshot_cold"):
        return "trials/s"
    if section.startswith("fuzz"):
        return "execs/s"
    return "insns/s"


def baseline_rate(previous: dict | None, section: str = "interpreter",
                  window: int = BASELINE_WINDOW,
                  ) -> tuple[float | None, list[dict]]:
    """(baseline, entries) for ``section`` from the prior file's runs.

    The baseline is the *median* of the last ``window`` recorded runs
    that carry the section, and ``entries`` reports which runs fed it
    (timestamp + rate) so a failing gate is auditable.  Median-of-
    recent beats all-time-best for flakiness: a single lucky run no
    longer sets a floor that every honest later run trips over.
    """
    if not previous:
        return None, []
    entries = list(previous.get("history", []))
    if previous.get("current"):
        entries.append(previous["current"])
    rated = [
        {"timestamp": entry.get("timestamp", "?"), "rate": rate}
        for entry in entries
        if (rate := _rate(entry, section))
    ]
    used = rated[-window:]
    if not used:
        return None, []
    return statistics.median(item["rate"] for item in used), used


def check_regression(rate: float | None, baseline: float | None,
                     threshold: float = 0.10,
                     section: str = "interpreter") -> str | None:
    """Error message if ``rate`` regressed > ``threshold`` vs ``baseline``.

    Returns None when there is nothing to compare or no regression --
    the first run of a fresh tracking file (or the first run after a
    new section appears) always passes.
    """
    if not rate or not baseline:
        return None
    unit = _unit(section)
    floor = baseline * (1.0 - threshold)
    if rate < floor:
        drop = 100.0 * (1.0 - rate / baseline)
        return (
            f"REGRESSION: {section} throughput {rate:,.0f} {unit} is "
            f"{drop:.1f}% below the baseline median {baseline:,.0f} {unit} "
            f"(allowed: {threshold:.0%})"
        )
    return None


#: Sections --trajectory walks, in report order.
TRAJECTORY_SECTIONS = (
    "interpreter", "block", "trace", "monitored",
    "snapshot", "snapshot_cold",
    "fuzz", "fuzz_parsing", "fuzz_stepped", "fuzz_campaign",
    "fuzz_parallel", "fuzz_service",
)


def render_trajectory(previous: dict | None,
                      sections=TRAJECTORY_SECTIONS) -> list[str]:
    """Per-section throughput trend lines from the tracking file.

    Every recorded run that carries the section contributes one row
    (timestamp -> rate); the section header summarises the move from
    the first recorded rate to the latest as a percentage, so "did
    this PR actually make fuzzing faster" is one flag away instead of
    a JSON spelunking session.
    """
    if not previous:
        return ["no tracking file recorded yet"]
    entries = list(previous.get("history", []))
    if previous.get("current"):
        entries.append(previous["current"])
    lines: list[str] = []
    for section in sections:
        rated = [
            (entry.get("timestamp", "?"), rate)
            for entry in entries
            if (rate := _rate(entry, section))
        ]
        if not rated:
            continue
        unit = _unit(section)
        first, last = rated[0][1], rated[-1][1]
        if len(rated) > 1 and first:
            move = 100.0 * (last / first - 1.0)
            trend = f"{move:+.1f}% over {len(rated)} runs"
        else:
            trend = "1 run recorded"
        lines.append(f"{section}: {last:,.0f} {unit} ({trend})")
        for timestamp, rate in rated:
            lines.append(f"  {timestamp}  {rate:>14,.0f} {unit}")
    return lines or ["no tracked sections recorded yet"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_simulator.json"),
        help="tracking file to write (default: BENCH_simulator.json)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer rounds for a fast smoke reading",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on a >10%% throughput regression vs the "
             "best run recorded in the tracking file",
    )
    parser.add_argument(
        "--trajectory", action="store_true",
        help="print per-section throughput trends from the tracking "
             "file's history and exit (runs no benchmarks)",
    )
    args = parser.parse_args()

    previous = load_previous(args.output)
    if args.trajectory:
        for line in render_trajectory(previous):
            print(line)
        return
    raw = run_suite(args.quick)
    summary = summarize(raw)
    write_tracking_file(args.output, summary, previous)

    compile_mean = summary.get("compile_pipeline", {}).get("mean_seconds")
    print(f"wrote {args.output}")
    for section in ("interpreter", "block", "trace", "monitored"):
        rate = summary.get(section, {}).get("instructions_per_second")
        if rate:
            print(f"{section} throughput: ~{rate:,.0f} instructions/second")
    trace_speedup = summary.get("trace", {}).get("speedup_vs_block")
    if trace_speedup:
        print(f"trace JIT vs block translation: {trace_speedup:.2f}x")
    monitor_overhead = summary.get("monitored", {}).get("overhead_vs_block")
    if monitor_overhead:
        print(f"invariant monitor vs detached block leg: "
              f"{monitor_overhead:.2f}x overhead")
    if compile_mean:
        print(f"compile pipeline latency: {compile_mean * 1000:.2f} ms")
    speedup = summary.get("snapshot", {}).get("speedup_vs_cold")
    for section in ("snapshot", "snapshot_cold"):
        rate = summary.get(section, {}).get("trials_per_second")
        if rate:
            print(f"{section} campaign: ~{rate:,.0f} trials/second")
    if speedup:
        print(f"snapshot restore vs cold rebuild: {speedup:.1f}x")
    fuzz_rate = summary.get("fuzz", {}).get("execs_per_second")
    if fuzz_rate:
        print(f"greybox fork-server: ~{fuzz_rate:,.0f} execs/second")
    fuzz_speedup = summary.get("fuzz_parsing", {}).get("speedup_vs_stepped")
    if fuzz_speedup:
        print(f"transparent vs stepped fuzz dispatch: {fuzz_speedup:.2f}x")
    parallel = summary.get("fuzz_parallel", {})
    scaling = parallel.get("scaling_vs_sequential")
    if scaling:
        print(f"parallel fuzz campaign: {scaling:.2f}x sequential "
              f"(jobs={parallel.get('jobs')}, cores={parallel.get('cores')})")
    service = summary.get("fuzz_service", {})
    efficiency = service.get("efficiency_vs_direct")
    if efficiency:
        print(f"service-coordinated campaign: {efficiency:.0%} of direct "
              f"runner throughput (jobs={service.get('jobs')})")

    if args.check:
        failed = False
        for section in ("interpreter", "block", "trace", "monitored",
                        "snapshot", "fuzz", "fuzz_parsing",
                        "fuzz_parallel", "fuzz_service"):
            rate = _rate(summary, section)
            baseline, used = baseline_rate(previous, section)
            message = check_regression(rate, baseline, section=section)
            unit = _unit(section)
            if message is not None:
                print(message, file=sys.stderr)
                failed = True
            elif baseline:
                print(f"check: {section} OK ({rate:,.0f} {unit} vs median "
                      f"{baseline:,.0f} of last {len(used)} runs, "
                      "threshold 10%)")
            else:
                print(f"check: {section} has no baseline recorded yet, "
                      "passing")
            if used and (message is not None or baseline):
                # Name the runs behind the baseline so a trip of the
                # gate is auditable without opening the JSON.
                for item in used:
                    print(f"  baseline[{section}]: {item['timestamp']} "
                          f"-> {item['rate']:,.0f} {unit}")
        if speedup is not None:
            if speedup < MIN_SNAPSHOT_SPEEDUP:
                print(f"REGRESSION: snapshot trials only {speedup:.1f}x "
                      f"faster than cold rebuilds (floor: "
                      f"{MIN_SNAPSHOT_SPEEDUP:.0f}x)", file=sys.stderr)
                failed = True
            else:
                print(f"check: snapshot speedup OK ({speedup:.1f}x >= "
                      f"{MIN_SNAPSHOT_SPEEDUP:.0f}x vs cold rebuild)")
        if trace_speedup is not None:
            if trace_speedup < MIN_TRACE_SPEEDUP:
                print(f"REGRESSION: trace JIT only {trace_speedup:.2f}x "
                      f"faster than block translation (floor: "
                      f"{MIN_TRACE_SPEEDUP:.1f}x)", file=sys.stderr)
                failed = True
            else:
                print(f"check: trace speedup OK ({trace_speedup:.2f}x >= "
                      f"{MIN_TRACE_SPEEDUP:.1f}x vs block translation)")
        if monitor_overhead is not None:
            if monitor_overhead > MAX_MONITOR_OVERHEAD:
                print(f"REGRESSION: invariant monitoring costs "
                      f"{monitor_overhead:.2f}x the detached block leg "
                      f"(ceiling: {MAX_MONITOR_OVERHEAD:.1f}x)",
                      file=sys.stderr)
                failed = True
            else:
                print(f"check: monitor overhead OK "
                      f"({monitor_overhead:.2f}x <= "
                      f"{MAX_MONITOR_OVERHEAD:.1f}x vs detached block leg)")
        if fuzz_speedup is not None:
            if fuzz_speedup < MIN_FUZZ_DISPATCH_SPEEDUP:
                print(f"REGRESSION: transparent fuzz dispatch only "
                      f"{fuzz_speedup:.2f}x faster than stepped dispatch "
                      f"(floor: {MIN_FUZZ_DISPATCH_SPEEDUP:.1f}x)",
                      file=sys.stderr)
                failed = True
            else:
                print(f"check: fuzz dispatch speedup OK "
                      f"({fuzz_speedup:.2f}x >= "
                      f"{MIN_FUZZ_DISPATCH_SPEEDUP:.1f}x vs stepped)")
        if scaling is not None:
            cores = parallel.get("cores") or 0
            if cores < MIN_SCALING_CORES:
                print(f"check: parallel scaling gate skipped "
                      f"({cores} cores < {MIN_SCALING_CORES}; "
                      f"measured {scaling:.2f}x)")
            elif scaling < MIN_PARALLEL_SCALING:
                print(f"REGRESSION: parallel fuzz campaign only "
                      f"{scaling:.2f}x the sequential campaign at "
                      f"jobs={parallel.get('jobs')} on {cores} cores "
                      f"(floor: {MIN_PARALLEL_SCALING:.1f}x)",
                      file=sys.stderr)
                failed = True
            else:
                print(f"check: parallel scaling OK ({scaling:.2f}x >= "
                      f"{MIN_PARALLEL_SCALING:.1f}x at "
                      f"jobs={parallel.get('jobs')}, cores={cores})")
        if efficiency is not None:
            if efficiency < MIN_SERVICE_EFFICIENCY:
                print(f"REGRESSION: service-coordinated campaign sustains "
                      f"only {efficiency:.0%} of direct CampaignRunner "
                      f"throughput at jobs={service.get('jobs')} "
                      f"(floor: {MIN_SERVICE_EFFICIENCY:.0%})",
                      file=sys.stderr)
                failed = True
            else:
                print(f"check: service efficiency OK ({efficiency:.0%} >= "
                      f"{MIN_SERVICE_EFFICIENCY:.0%} of direct runner at "
                      f"jobs={service.get('jobs')})")
        if failed:
            raise SystemExit(1)


if __name__ == "__main__":
    main()
