"""Benchmark harness configuration.

Every benchmark regenerates one paper artefact (table or figure; see
DESIGN.md's experiment index), prints it, and asserts the *shape*
claims the paper makes.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""
