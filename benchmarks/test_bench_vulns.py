"""E2 -- the vulnerability classes of Section III-A, made concrete.

Demonstrates (and times) the raw vulnerability mechanics before any
attack logic: how far a spatial overflow reaches, that an indexed
write reaches the whole address space, and that a temporal bug reads
another invocation's data.
"""

from repro.attacks.payloads import p32
from repro.attacks.study import locate_overflow
from repro.experiments.reporting import render_table
from repro.machine import RunStatus
from repro.programs import build_fig1, build_victim


def _spatial_reach():
    """The paper: the 32-byte read overwrites 16 bytes beyond buf,
    covering the saved base pointer and the saved return address."""
    site = locate_overflow(build_fig1(), frames_up=1)
    victim = build_fig1()
    marker = bytes(range(16, 32))
    victim.feed(b"\x00" * 16 + marker)
    victim.run()
    memory = victim.machine.memory
    overwritten = memory.read_bytes(site.buffer_addr + 16, 16)
    return {
        "buffer": site.buffer_addr,
        "saved_bp_slot": site.saved_bp_addr,
        "return_slot": site.return_addr_slot,
        "reach_bytes": 16,
        "saved_bp_overwritten": overwritten[:4] == marker[:4],
        "return_overwritten": overwritten[8:12] == marker[8:12],
    }


def _arbitrary_write_reach():
    """arr[i]=v with attacker i: one write, anywhere (wrapping)."""
    victim = build_victim("arbitrary_write")
    target = victim.symbol("libc_spawn_shell")  # far from the stack
    from repro.attacks.study import run_until_syscall
    from repro.machine import syscalls
    from repro.isa.registers import BP

    study = build_victim("arbitrary_write")
    machine = run_until_syscall(study, syscalls.SYS_READ)
    main_bp = machine.memory.read_word(machine.cpu.regs[BP])
    arr = main_bp - 16
    # Distance from a stack array to a text address, in words -- the
    # write still lands (no DEP in this posture).
    index = (target - arr) // 4
    victim.feed(p32(1) + p32(index) + p32(0xFEEDFACE))
    victim.run()
    landed = victim.machine.memory.read_word(target)
    return {"distance_words": index, "landed": landed == 0xFEEDFACE}


def _temporal_misbehaviour():
    victim = build_victim("temporal")
    result = victim.run()
    return {
        "status": result.status,
        "printed": result.output.strip(),
        "expected_if_memory_were_safe": b"41",
    }


def test_bench_vulnerabilities(benchmark):
    def run_all():
        return _spatial_reach(), _arbitrary_write_reach(), _temporal_misbehaviour()

    spatial, arbitrary, temporal = benchmark.pedantic(run_all, rounds=3)
    print("\n" + render_table(
        ["vulnerability", "paper claim", "measured"],
        [
            ["spatial (fig1 read 32)",
             "overwrites 16 bytes incl. saved BP + return address",
             f"bp@+16 hit={spatial['saved_bp_overwritten']}, "
             f"ret@+24 hit={spatial['return_overwritten']}"],
            ["arbitrary indexed write",
             "range is essentially the entire address space",
             f"landed {arbitrary['distance_words']:+,} words away: "
             f"{arbitrary['landed']}"],
            ["temporal (dangling stack ptr)",
             "behaviour no longer specified by the source",
             f"printed {temporal['printed']!r} instead of "
             f"{temporal['expected_if_memory_were_safe']!r}"],
        ],
        title="E2: memory-safety vulnerability mechanics",
    ))
    assert spatial["saved_bp_overwritten"] and spatial["return_overwritten"]
    assert arbitrary["landed"]
    assert temporal["printed"] != temporal["expected_if_memory_were_safe"]
    assert temporal["status"] is RunStatus.EXITED
