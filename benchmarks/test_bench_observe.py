"""Observability overhead benchmarks.

The repro.observe contract is *zero-cost when detached*: an
unobserved machine pays one ``is None`` check per step and nothing
else.  ``test_bench_detached_overhead`` measures exactly that
configuration (it should track ``test_bench_interpreter_throughput``
within noise); the attached benchmarks document what full metrics and
full event tracing cost, so the overhead of observing is a recorded
number rather than folklore.
"""

from repro.link import load
from repro.minic import CompileOptions, compile_source
from repro.observe import EventTrace, MetricsCollector

_HOT_LOOP = """
void main() {
    int acc = 0;
    int i;
    for (i = 0; i < 20000; i++) {
        acc += i;
    }
    print_int(acc);
}
"""


def _build():
    obj = compile_source(_HOT_LOOP, "hot", CompileOptions(optimize=True))
    return load([obj])


def _throughput(benchmark, attach=None):
    def run_once():
        program = _build()
        if attach is not None:
            program.machine.attach_observer(attach())
        result = program.run(10_000_000)
        assert result.exit_code == 0
        return result.instructions

    instructions = benchmark(run_once)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        rate = instructions / benchmark.stats.stats.mean
        benchmark.extra_info["instructions_per_run"] = instructions
        benchmark.extra_info["instructions_per_second"] = rate
    assert instructions > 100_000


def test_bench_detached_overhead(benchmark):
    """The unobserved path: must match the plain interpreter numbers."""
    _throughput(benchmark)


def test_bench_metrics_attached(benchmark):
    """Full metrics (including memory events) attached."""
    _throughput(benchmark, MetricsCollector)


def test_bench_event_trace_attached(benchmark):
    """Full event trace, memory events included."""
    _throughput(benchmark, EventTrace)
