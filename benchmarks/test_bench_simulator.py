"""Simulator throughput benchmarks (the substrate's own performance).

Not a paper artefact: these wall-clock numbers characterise the
simulator so experiment runtimes are interpretable, and guard against
performance regressions in the fetch/decode/execute pipeline.

Three throughput legs: ``interpreter`` pins ``block_cache=False`` so
its history stays comparable with runs recorded before the basic-block
translation cache existed; ``block`` pins superblock dispatch with the
trace tier off, preserving that leg's pre-trace history; ``trace``
measures the full default pipeline (superblocks + the tier-2 trace
JIT, tests/test_differential_trace.py proves it observationally
identical).  The --check gate requires the trace leg to beat the block
leg by MIN_TRACE_SPEEDUP in run_benchmarks.py.  A fourth ``monitored``
leg prices always-on invariant monitoring over superblock dispatch
(gated at MAX_MONITOR_OVERHEAD x the detached block leg).

The ``snapshot`` pair prices repeated-trial campaigns: one warm
copy-on-write restore per trial versus a full compile+link+load
rebuild per trial, on the same return-to-libc guess workload
(tests/test_snapshot.py proves the restored trials byte-identical).

The ``fuzz`` section prices the greybox fuzzer's inner loop: one
coverage-instrumented execution through the warm snapshot fork-server
(restore + feed + observed run + bitmap read-out) on the staged
Figure 1 victim, reported in executions/second.  The
``fuzz_parsing`` / ``fuzz_stepped`` pair runs the parse-heavy
``fig1_parsing`` victim (guest execution dominates, the way it does
in real fuzz targets) behind the transparent observer and behind a
non-dispatch-transparent subclass (per-instruction stepping, the
pre-transparency coverage path); --check requires the transparent
leg to beat the stepped one by MIN_FUZZ_DISPATCH_SPEEDUP, a
hardware-independent reading of what transparency buys.  The
``fuzz_campaign`` / ``fuzz_parallel`` pair prices whole greybox
campaigns sequentially and fanned out over CampaignRunner workers;
the scaling gate only binds on machines with >= 4 cores (the
recorded ``cores`` travels with the number).
"""

from repro.link import load
from repro.minic import CompileOptions, compile_source

_HOT_LOOP = """
void main() {
    int acc = 0;
    int i;
    for (i = 0; i < 20000; i++) {
        acc += i;
    }
    print_int(acc);
}
"""


def _build():
    obj = compile_source(_HOT_LOOP, "hot", CompileOptions(optimize=True))
    return load([obj])


def _bench_throughput(benchmark, label, block_cache, trace_jit=False):
    def run_once():
        program = _build()
        config = program.machine.config
        config.block_cache = block_cache
        config.trace_jit = trace_jit
        result = program.run(10_000_000)
        assert result.exit_code == 0
        return result.instructions

    instructions = benchmark(run_once)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        rate = instructions / benchmark.stats.stats.mean
        benchmark.extra_info["instructions_per_run"] = instructions
        benchmark.extra_info["instructions_per_second"] = rate
        # Record the dispatch configuration alongside the number so a
        # history entry is interpretable on its own.
        probe = _build().machine.config
        benchmark.extra_info["config"] = {
            "block_cache": block_cache,
            "trace_jit": trace_jit,
            "max_block_insns": probe.max_block_insns,
            "trace_hot_threshold": probe.trace_hot_threshold,
            "trace_max_insns": probe.trace_max_insns,
        }
        print(f"\n{label} throughput: ~{rate:,.0f} instructions/second "
              f"({instructions} instructions per run)")
    assert instructions > 100_000


def test_bench_interpreter_throughput(benchmark):
    _bench_throughput(benchmark, "interpreter", block_cache=False)


def test_bench_block_throughput(benchmark):
    # trace_jit pinned off: this leg's history predates the trace tier
    # and must keep measuring superblock dispatch alone.
    _bench_throughput(benchmark, "block-translation", block_cache=True)


def test_bench_trace_throughput(benchmark):
    _bench_throughput(benchmark, "trace-jit", block_cache=True,
                      trace_jit=True)


def test_bench_monitored_throughput(benchmark):
    """Superblock dispatch with the invariant monitor riding along.

    The monitor is dispatch-transparent, so blocks stay on and the
    cost is the baked-in control-transfer events plus the checked
    memory accessors.  The --check gate in run_benchmarks.py bounds
    this leg at MAX_MONITOR_OVERHEAD x the detached block leg --
    the price of always-on monitoring must stay small enough to
    actually leave it always on.
    """
    from repro.observe import InvariantMonitor

    def run_once():
        program = _build()
        config = program.machine.config
        config.block_cache = True
        config.trace_jit = False
        monitor = InvariantMonitor()
        program.machine.attach_observer(monitor)
        monitor.bind_program(program)
        result = program.run(10_000_000)
        assert result.exit_code == 0
        assert monitor.total_breaches() == 0
        return result.instructions

    instructions = benchmark(run_once)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        rate = instructions / benchmark.stats.stats.mean
        benchmark.extra_info["instructions_per_run"] = instructions
        benchmark.extra_info["instructions_per_second"] = rate
        print(f"\nmonitored throughput: ~{rate:,.0f} instructions/second "
              f"({instructions} instructions per run)")
    assert instructions > 100_000


def test_bench_compile_pipeline(benchmark):
    """Compile+assemble+link+load latency for a small program."""
    program = benchmark(_build)
    assert program.image.entry


# -- snapshot campaigns ------------------------------------------------------

#: Warm trials per benchmark round (amortises timer overhead; the
#: per-trial rate is reported either way).
_TRIALS_PER_ROUND = 25


def _campaign_pieces():
    """The return-to-libc ASLR-guess campaign the experiments run."""
    from repro.attacks.study import locate_overflow
    from repro.experiments.campaign_exp import Fig1Factory, Ret2LibcGuessTrial
    from repro.mitigations.config import MitigationConfig
    from repro.programs.builders import build_fig1

    config = MitigationConfig(aslr_bits=4)
    local = build_fig1(config.with_(aslr_bits=0), wide_open=True)
    site = locate_overflow(local, frames_up=1)
    trial = Ret2LibcGuessTrial(
        site.offset_to_return,
        local.symbol("libc_spawn_shell"),
        local.symbol("libc_exit"),
        bits=4,
        base_seed=1,
    )
    return Fig1Factory(config, 1), trial


def _bench_trials(benchmark, label, run_round, trials_per_round):
    count = benchmark(run_round)
    assert count == trials_per_round
    if benchmark.stats is not None:  # absent under --benchmark-disable
        rate = trials_per_round / benchmark.stats.stats.mean
        benchmark.extra_info["trials_per_run"] = trials_per_round
        benchmark.extra_info["trials_per_second"] = rate
        print(f"\n{label}: ~{rate:,.0f} trials/second")


def test_bench_snapshot_restore_trials(benchmark):
    """Steady-state campaign trials: restore the warm snapshot, run."""
    from repro.campaign import CampaignSession

    factory, trial = _campaign_pieces()
    session = CampaignSession(factory, trial)
    session.run_trial(0)  # translate the victim's blocks once

    def run_round():
        return len(session.run_batch(range(_TRIALS_PER_ROUND)))

    _bench_trials(benchmark, "snapshot-restore trials", run_round,
                  _TRIALS_PER_ROUND)


def test_bench_cold_rebuild_trials(benchmark):
    """The pre-campaign cost model: rebuild the victim every trial."""
    factory, trial = _campaign_pieces()

    def run_round():
        trial(factory(), 0)
        return 1

    _bench_trials(benchmark, "cold-rebuild trials", run_round, 1)


# -- greybox fuzzing ---------------------------------------------------------

#: Fuzz executions per benchmark round (same amortisation story as the
#: campaign trials above).
_EXECS_PER_ROUND = 50


def test_bench_greybox_execs(benchmark):
    """Instrumented fork-server executions: the greybox inner loop.

    Uses a fixed mutation batch (pre-generated from the fuzzer's RNG)
    so every round executes the same inputs -- the number prices
    restore + coverage-observed execution + bitmap read-out, not
    mutation luck.
    """
    from repro.analysis.greybox import (
        GreyboxFuzzer,
        SnapshotExecutor,
        VictimFactory,
        outcome_of,
    )
    from repro.mitigations.config import TESTING
    from repro.observe.coverage import CoverageObserver

    factory = VictimFactory("fig1_staged", TESTING)
    observer = CoverageObserver()
    executor = SnapshotExecutor(factory, observer=observer)
    fuzzer = GreyboxFuzzer(factory, seed=1)
    inputs = [fuzzer._havoc_one(b"GET " + bytes(12))
              for _ in range(_EXECS_PER_ROUND)]
    executor.run(inputs[0])     # warm the caches once

    def run_round():
        count = 0
        for data in inputs:
            outcome_of(observer, executor.run(data))
            count += 1
        return count

    count = benchmark(run_round)
    assert count == _EXECS_PER_ROUND
    if benchmark.stats is not None:  # absent under --benchmark-disable
        rate = _EXECS_PER_ROUND / benchmark.stats.stats.mean
        benchmark.extra_info["execs_per_run"] = _EXECS_PER_ROUND
        benchmark.extra_info["execs_per_second"] = rate
        print(f"\ngreybox fork-server: ~{rate:,.0f} execs/second")


def _bench_parsing_execs(benchmark, label, observer_cls):
    """Fork-server executions of the parse-heavy ``fig1_parsing``
    victim behind ``observer_cls`` -- shared by the transparent /
    stepped pair so the speedup ratio compares identical workloads."""
    from repro.analysis.greybox import (
        GreyboxFuzzer,
        SnapshotExecutor,
        VictimFactory,
        outcome_of,
    )
    from repro.mitigations.config import TESTING

    factory = VictimFactory("fig1_parsing", TESTING)
    observer = observer_cls()
    executor = SnapshotExecutor(factory, observer=observer)
    fuzzer = GreyboxFuzzer(factory, seed=1)
    inputs = [fuzzer._havoc_one(b"GET " + bytes(12))
              for _ in range(_EXECS_PER_ROUND)]
    executor.run(inputs[0])

    def run_round():
        count = 0
        for data in inputs:
            outcome_of(observer, executor.run(data))
            count += 1
        return count

    count = benchmark(run_round)
    assert count == _EXECS_PER_ROUND
    if benchmark.stats is not None:  # absent under --benchmark-disable
        rate = _EXECS_PER_ROUND / benchmark.stats.stats.mean
        benchmark.extra_info["execs_per_run"] = _EXECS_PER_ROUND
        benchmark.extra_info["execs_per_second"] = rate
        print(f"\n{label}: ~{rate:,.0f} execs/second")


def test_bench_greybox_parsing(benchmark):
    """Observed executions where guest parsing dominates the input.

    The staged victim above prices the fork-server's fixed costs (its
    requests run ~100 instructions); this leg prices coverage-observed
    *execution*, which is what dispatch transparency accelerates.
    """
    from repro.observe.coverage import CoverageObserver

    _bench_parsing_execs(benchmark, "greybox parsing victim",
                         CoverageObserver)


def test_bench_greybox_execs_stepped(benchmark):
    """The parsing workload behind a *stepped* coverage observer.

    A ``dispatch_transparent = False`` subclass forces the machine
    down per-instruction dispatch -- exactly what every observed run
    paid before coverage rode the superblock cache.  The --check gate
    requires the transparent leg above to beat this one by
    MIN_FUZZ_DISPATCH_SPEEDUP, so the speedup claim is checked on the
    measuring machine itself rather than against a stale baseline.
    """
    from repro.observe.coverage import CoverageObserver

    class SteppedCoverageObserver(CoverageObserver):
        dispatch_transparent = False

    _bench_parsing_execs(benchmark, "greybox stepped dispatch",
                         SteppedCoverageObserver)


#: Executions per whole-campaign benchmark round (large enough that
#: worker warm-up amortises; tests/test_greybox.py proves the
#: parallel report identical to the sequential one).
_CAMPAIGN_EXECS = 600


def _campaign_round(jobs):
    from repro.analysis.greybox import GreyboxFuzzer, VictimFactory
    from repro.mitigations.config import TESTING

    # The parsing victim again: scaling is only meaningful when the
    # workers spend their time executing the guest, not dispatching.
    fuzzer = GreyboxFuzzer(VictimFactory("fig1_parsing", TESTING),
                           seed=5, jobs=jobs)
    report = fuzzer.run(_CAMPAIGN_EXECS, minimize=False)
    return report.execs


def _bench_campaign(benchmark, label, jobs):
    import os

    execs = benchmark.pedantic(lambda: _campaign_round(jobs),
                               rounds=1, iterations=1)
    assert execs == _CAMPAIGN_EXECS
    if benchmark.stats is not None:  # absent under --benchmark-disable
        rate = execs / benchmark.stats.stats.mean
        benchmark.extra_info["execs_per_run"] = execs
        benchmark.extra_info["execs_per_second"] = rate
        benchmark.extra_info["jobs"] = jobs or 1
        benchmark.extra_info["cores"] = os.cpu_count() or 1
        print(f"\n{label}: ~{rate:,.0f} execs/second "
              f"(jobs={jobs or 1}, cores={os.cpu_count()})")


def test_bench_fuzz_campaign(benchmark):
    """A whole sequential greybox campaign, mutation to report."""
    _bench_campaign(benchmark, "greybox campaign (sequential)", None)


def test_bench_fuzz_parallel(benchmark):
    """The same campaign fanned out over CampaignRunner workers.

    Pipelined batches + the shared virgin map; jobs=4 (capped at the
    core count so a small container still produces an honest number).
    The --check scaling gate only binds when cores >= 4.
    """
    import os

    _bench_campaign(benchmark, "greybox campaign (parallel)",
                    min(4, os.cpu_count() or 1))


def test_bench_fuzz_service(benchmark, tmp_path):
    """The identical campaign driven through the durable service.

    Same victim, seed, budget and jobs as ``test_bench_fuzz_parallel``
    -- the delta is pure coordinator overhead: the asyncio drain loop,
    per-batch checkpoint pickling, corpus/triage persistence, and the
    JSONL progress stream.  The --check gate requires >= 80% of the
    direct CampaignRunner throughput; the ratio compares like against
    like on any core count, so it binds unconditionally.
    """
    import os

    from repro.campaign.service import CampaignCoordinator, CampaignSpec

    jobs = min(4, os.cpu_count() or 1)

    def service_round():
        import shutil

        root = tmp_path / "svc"
        shutil.rmtree(root, ignore_errors=True)
        coordinator = CampaignCoordinator(root, concurrency=1)
        coordinator.submit(CampaignSpec(
            job_id="bench", victim="fig1_parsing", config="testing",
            seed=5, max_execs=_CAMPAIGN_EXECS, jobs=jobs,
            invariants=False, minimize=False,
        ))
        return coordinator.serve()["bench"]["execs"]

    execs = benchmark.pedantic(service_round, rounds=1, iterations=1)
    assert execs == _CAMPAIGN_EXECS
    if benchmark.stats is not None:
        rate = execs / benchmark.stats.stats.mean
        benchmark.extra_info["execs_per_run"] = execs
        benchmark.extra_info["execs_per_second"] = rate
        benchmark.extra_info["jobs"] = jobs
        benchmark.extra_info["cores"] = os.cpu_count() or 1
        print(f"\ngreybox campaign (service): ~{rate:,.0f} execs/second "
              f"(jobs={jobs}, cores={os.cpu_count()})")
