"""Simulator throughput benchmarks (the substrate's own performance).

Not a paper artefact: these wall-clock numbers characterise the
simulator so experiment runtimes are interpretable, and guard against
performance regressions in the fetch/decode/execute pipeline.

Two throughput legs: ``interpreter`` pins ``block_cache=False`` so its
history stays comparable with runs recorded before the basic-block
translation cache existed; ``block`` measures the default dispatch
path (superblock closures, tests/test_differential_blocks.py proves it
observationally identical).
"""

from repro.link import load
from repro.minic import CompileOptions, compile_source

_HOT_LOOP = """
void main() {
    int acc = 0;
    int i;
    for (i = 0; i < 20000; i++) {
        acc += i;
    }
    print_int(acc);
}
"""


def _build():
    obj = compile_source(_HOT_LOOP, "hot", CompileOptions(optimize=True))
    return load([obj])


def _bench_throughput(benchmark, label, block_cache):
    def run_once():
        program = _build()
        program.machine.config.block_cache = block_cache
        result = program.run(10_000_000)
        assert result.exit_code == 0
        return result.instructions

    instructions = benchmark(run_once)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        rate = instructions / benchmark.stats.stats.mean
        benchmark.extra_info["instructions_per_run"] = instructions
        benchmark.extra_info["instructions_per_second"] = rate
        print(f"\n{label} throughput: ~{rate:,.0f} instructions/second "
              f"({instructions} instructions per run)")
    assert instructions > 100_000


def test_bench_interpreter_throughput(benchmark):
    _bench_throughput(benchmark, "interpreter", block_cache=False)


def test_bench_block_throughput(benchmark):
    _bench_throughput(benchmark, "block-translation", block_cache=True)


def test_bench_compile_pipeline(benchmark):
    """Compile+assemble+link+load latency for a small program."""
    program = benchmark(_build)
    assert program.image.entry
