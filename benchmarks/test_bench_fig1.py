"""E1 -- regenerate Figure 1 (source / machine code / run-time state)."""

from repro.experiments.fig1 import generate_fig1


def test_bench_fig1(benchmark):
    artifacts = benchmark.pedantic(generate_fig1, rounds=3, iterations=1)
    rendered = artifacts.render()
    print("\n" + rendered)

    # Part (b): the compiled process() manages its activation record
    # exactly as the figure shows.
    assert "push bp" in artifacts.process_listing
    assert "mov bp, sp" in artifacts.process_listing
    assert "sub sp, 0x10" in artifacts.process_listing      # buf[16]
    assert "call" in artifacts.process_listing

    # Part (c): both activation records visible, management data above
    # the buffer, machine code in the low text segment (0x08048000 as
    # in the paper), stack at the top of user memory.
    snapshot = artifacts.stack_snapshot
    assert "get_request() record" in snapshot
    assert "process() record" in snapshot
    assert snapshot.index("buf[0..3]") < snapshot.index("process() record")
    assert artifacts.registers["ip"] < 0x09000000
    assert artifacts.registers["sp"] > 0xB0000000
