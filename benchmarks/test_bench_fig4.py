"""E10 -- Figure 4: the function-pointer attack vs secure compilation."""

from repro.experiments import fig4_exp


def test_bench_fig4_scenarios(benchmark):
    rows = benchmark.pedantic(fig4_exp.scenario_table, rounds=1, iterations=1)
    print("\n" + fig4_exp.render_scenarios(rows))
    outcomes = {row["scenario"]: row["outcome"] for row in rows}
    assert outcomes["honest client, secure compile"] == "works"
    assert outcomes["fig4 attacker, insecure compile"].startswith("success")
    assert outcomes["fig4 attacker, secure compile"].startswith("detected")
    assert outcomes["attacker calls mid-module address directly"].startswith(
        "detected")


def test_bench_fig4_brute_force(benchmark):
    from repro.attacks.pma_exploit import brute_force_report

    reports = benchmark.pedantic(
        lambda: (brute_force_report(secure=False), brute_force_report(secure=True)),
        rounds=1, iterations=1,
    )
    print("\n" + fig4_exp.render_brute_force())
    insecure, secure = reports
    # The paper's end state: insecure compilation lets the attacker
    # defeat the three-strikes lockout; secure compilation holds it.
    assert insecure["lockout_bypassed"]
    assert not secure["lockout_bypassed"]
    assert not secure["secret_obtained"]
