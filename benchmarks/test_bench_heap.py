"""Extension bench -- heap attacks vs defences."""

from repro.experiments import heap_exp


def test_bench_heap_attacks(benchmark):
    rows = benchmark.pedantic(heap_exp.heap_table, rounds=1, iterations=1)
    print("\n" + heap_exp.render_heap(rows))
    by_attack = {row["attack"]: row for row in rows}
    uaf = by_attack["use-after-free (dangling fn ptr)"]
    overflow = by_attack["heap overflow (adjacent chunk)"]
    dfree = by_attack["double free"]
    # Plain allocator: everything works.
    assert uaf["plain"] == overflow["plain"] == dfree["plain"] == "success"
    # Typed CFI catches the hijack, not the data-only overflow.
    assert uaf["typed cfi"] == "detected"
    assert overflow["typed cfi"] == "success"
    # The checked allocator (red zones + quarantine) catches all three.
    assert uaf["checked allocator"] == "detected"
    assert overflow["checked allocator"] == "detected"
    assert dfree["checked allocator"] == "detected"
