#!/usr/bin/env python
"""Quickstart: the toolchain in five minutes.

Compile a MinC program, inspect the generated machine code, load it
into a simulated VN32 machine, and run it -- the pipeline every
experiment in this repository is built on.

Run:  python examples/quickstart.py
"""

from repro.asm import disassemble_text
from repro.link import load
from repro.minic import compile_source, compile_to_asm

SOURCE = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

void main() {
    char banner[6];
    banner[0] = 'f'; banner[1] = 'i'; banner[2] = 'b';
    banner[3] = '1'; banner[4] = '0'; banner[5] = 10;
    write(1, banner, 6);
    print_int(fib(10));
}
"""


def main() -> None:
    print("=== MinC source ===")
    print(SOURCE)

    print("=== generated assembly (excerpt) ===")
    assembly = compile_to_asm(SOURCE, "quickstart")
    print("\n".join(assembly.splitlines()[:18]))
    print("    ...")

    obj = compile_source(SOURCE, "quickstart")
    print("\n=== machine code for the module's .text (excerpt) ===")
    print("\n".join(disassemble_text(bytes(obj.text.data)).splitlines()[:10]))
    print("    ...")

    program = load([obj])
    print("\n=== memory map ===")
    for segment in program.image.segments:
        print(f"  {segment.name:<10} 0x{segment.addr:08x} - 0x{segment.end:08x}")

    result = program.run()
    print("\n=== execution ===")
    print(f"status: {result.status.value}, exit code: {result.exit_code}, "
          f"instructions: {result.instructions}")
    print(f"output: {result.output!r}")
    assert result.output.endswith(b"55\n")


if __name__ == "__main__":
    main()
