#!/usr/bin/env python
"""Software Fault Isolation, end to end (Section IV-A).

A host application wants to run an untrusted third-party module in its
own address space.  Loaded raw, a hostile module owns the host.  After
SFI rewriting -- every memory access masked into a 1 MiB sandbox,
control transfers confined, syscalls banned -- the same module is
harmless, while a benign module still computes correctly.

The example also shows the two properties the paper judges SFI by:
the guard overhead (compare with the PMA's free hardware checks) and
the fundamental asymmetry (the host can read the sandbox at will).

Run:  python examples/sandboxing_untrusted_code.py
"""

from repro.asm import assemble, disassemble_text
from repro.experiments.sfi_exp import (
    BENIGN_SANDBOX,
    HOSTILE_READ,
    build_sfi_program,
)
from repro.minic import CompileOptions, compile_source
from repro.sfi import sfi_rewrite


def main() -> None:
    print("=== what the rewriter does to one load instruction ===")
    tiny = assemble(".text\nf: load r0, [r1+8]\nret\n", "sandbox")
    print("before:")
    print(disassemble_text(bytes(tiny.text.data)))
    rewritten = sfi_rewrite(assemble(".text\nf: load r0, [r1+8]\nret\n",
                                     "sandbox"))
    print("after (address masked and rebased; ret exits via the stub):")
    print(disassemble_text(bytes(rewritten.text.data)))

    print("\n=== a benign module, sandboxed: still works ===")
    for rewrite in (False, True):
        benign = compile_source(BENIGN_SANDBOX, "sandbox", CompileOptions())
        program = build_sfi_program(benign, rewrite=rewrite)
        result = program.run()
        label = "sandboxed" if rewrite else "raw      "
        print(f"  {label} result={result.output.split()[0].decode()} "
              f"({result.instructions} instructions)")

    print("\n=== a hostile module: reads the host's secret ===")
    study = build_sfi_program(
        assemble(HOSTILE_READ.format(secret=0), "sandbox"), rewrite=False)
    secret_addr = study.image.symbol("host:host_secret")
    for rewrite in (False, True):
        hostile = assemble(HOSTILE_READ.format(secret=secret_addr), "sandbox")
        program = build_sfi_program(hostile, rewrite=rewrite)
        result = program.run()
        stolen = result.output.split()[0].decode() if result.output else "?"
        label = "sandboxed" if rewrite else "raw      "
        verdict = "SECRET STOLEN" if stolen == "99119911" else "contained"
        print(f"  {label} module returned {stolen}: {verdict}")

    print("\n=== the asymmetry the paper warns about ===")
    benign = compile_source(BENIGN_SANDBOX, "sandbox", CompileOptions())
    program = build_sfi_program(benign, rewrite=True)
    program.run()
    table = program.image.symbol("sandbox:table")
    value = program.machine.read_word(table)
    print(f"  host reads sandbox memory freely: table[0] = {value}")
    print("  (SFI protects the host from the module -- never the module")
    print("   from the host; that is the protected module architecture's")
    print("   job: see examples/protected_module.py)")


if __name__ == "__main__":
    main()
