#!/usr/bin/env python
"""Figure 1 hands-on: coverage-guided fuzzing finds what blindness can't.

The staged Figure 1 server hides the classic 16-byte-buffer overflow
behind a byte-at-a-time method check::

    read(0, method, 4);
    if (method[0] == 'G')
      if (method[1] == 'E')
        if (method[2] == 'T')
          handle_request(0);      // read(fd, buf, 64) into char buf[16]

A blind random fuzzer only reaches ``handle_request`` when three
random bytes spell "GET" -- about one input in 16 million.  A
coverage-guided fuzzer watches which branch edges each input lights
up: 'G' alone is a new edge, so the input is kept and mutated; 'GE'
is another; the gate falls one comparison at a time, and then the
length-extension stage walks the payload into buf's red zone.

1. Blind random fuzzing burns its whole budget and finds nothing.
2. The greybox loop (same fork-server, same budget) finds the
   overflow, dedups the crash, and minimizes the reproducer.
3. The coverage curve shows the gate falling edge by edge.

Run:  PYTHONPATH=src python examples/greybox_fig1.py
"""

from repro.analysis.fuzzer import fuzz_campaign
from repro.analysis.greybox import (
    GreyboxFuzzer,
    SnapshotExecutor,
    VictimFactory,
)
from repro.experiments.fuzz_exp import render_curve
from repro.mitigations.config import TESTING

BUDGET = 3000
SEED = 7


def main() -> None:
    factory = VictimFactory("fig1_staged", TESTING)

    print(f"=== blind random fuzzing: {BUDGET} executions ===")
    blind = fuzz_campaign("fig1_staged", TESTING, runs=BUDGET, seed=SEED,
                          executor=SnapshotExecutor(factory))
    first = blind.first_detected_exec
    print(f"  first detection   : {first if first else 'never'}")
    print(f"  faults seen       : {blind.faults or '{}'}")
    print(f"  wall clock        : {blind.duration_seconds:.1f}s")

    print("\n=== greybox, same fork-server, same budget ===")
    fuzzer = GreyboxFuzzer(factory, seed=SEED, program="fig1_staged",
                           config="TESTING")
    report = fuzzer.run(BUDGET, stop_on_first_crash=True)
    print(f"  first detection   : exec {report.first_detected_exec} "
          f"({report.first_detected_seconds:.1f}s)")
    print(f"  edges discovered  : {report.edges}")
    print(f"  corpus size       : {report.corpus_size}")
    print(f"  throughput        : {report.execs_per_second:,.0f} execs/s "
          f"(warm snapshot restores, "
          f"{report.restored_pages} pages rewound total)")
    for crash in report.crashes:
        print(f"  crash bucket      : {crash.site.fault} at "
              f"0x{crash.site.ip:x} (stack hash "
              f"0x{crash.site.call_hash:08x})")
        print(f"  reproducer        : {crash.reproducer!r} "
              f"(minimized from {len(crash.input)} bytes)")

    print()
    print(render_curve(report))
    print("\nEvery kept prefix is a solved comparison: coverage feedback"
          "\nturns a 2^-24 lottery into a short greedy search -- which is"
          "\nwhy run-time checks (the red zone that makes this overflow"
          "\n*visible*) pay off most when paired with strong testing.")


if __name__ == "__main__":
    main()
