#!/usr/bin/env python
"""Figures 2-4: the machine-code attacker and the protected module.

1. The bug-free secret module locks the I/O attacker out after three
   wrong PINs -- but scraping malware (even kernel malware) reads the
   PIN straight from memory (Figure 2).
2. Loaded into a protected module, the hardware denies the scraper
   while the legitimate entry point keeps working (Figure 3).
3. The function-pointer variant shows why compilation must be secure:
   the insecurely compiled module leaks the secret to a crafted
   callback pointer; the secure compilation scheme aborts it (Fig. 4).

Run:  python examples/protected_module.py
"""

import struct

from repro.attacks.machinecode import attack_memory_scraper
from repro.attacks.pma_exploit import attack_fig4_function_pointer
from repro.programs import build_secret_program


def pins(*values: int) -> bytes:
    return struct.pack(f"<{len(values) + 1}I", len(values), *values)


def main() -> None:
    print("=== Figure 2: the I/O attacker is locked out ===")
    program = build_secret_program()
    program.feed(pins(1111, 2222, 3333, 1234))  # 3 wrong, then the real PIN
    result = program.run()
    print(f"module answers: {result.output.split()} "
          "(locked out before the correct guess)")

    print("\n=== Figure 2: ...but malware just reads the memory ===")
    for kernel in (False, True):
        attack = attack_memory_scraper(protected=False, kernel=kernel)
        who = "kernel malware" if kernel else "malicious module"
        print(f"  {who:<18} {attack.outcome.value}: {attack.detail}")

    print("\n=== Figure 3: the protected module stops both ===")
    for kernel in (False, True):
        attack = attack_memory_scraper(protected=True, kernel=kernel)
        who = "kernel malware" if kernel else "malicious module"
        print(f"  {who:<18} {attack.outcome.value}: {attack.detail}")

    print("\n=== Figure 3: honest clients still served through the entry point ===")
    program = build_secret_program(protected=True, secure=True)
    program.feed(pins(9999, 1234))
    result = program.run()
    print(f"module answers: {result.output.split()}")

    print("\n=== Figure 4: why compilation must be secure ===")
    for secure in (False, True):
        attack = attack_fig4_function_pointer(secure=secure)
        label = "secure compile  " if secure else "insecure compile"
        print(f"  {label} {attack.outcome.value}: {attack.detail[:70]}")


if __name__ == "__main__":
    main()
