#!/usr/bin/env python
"""Figure 1 end to end: the server, the bug, the smash, the defences.

Walks through the paper's Section III storyline on a live machine:

1. the server answers an honest request;
2. the classic stack smash with direct code injection pops a shell;
3. each deployed countermeasure changes the outcome (canary detects,
   DEP blocks the injected code but falls to return-to-libc, ASLR
   derails the payload);
4. the data-only attack that none of them stop.

Run:  python examples/vulnerable_server.py
"""

from repro.attacks import io_attacks
from repro.experiments.fig1 import generate_fig1
from repro.mitigations import ASLR, CANARY, DEP, DEPLOYED, NONE
from repro.programs import build_fig1, build_victim


def main() -> None:
    print("=== the Figure 1 moment: run-time state entering get_request ===")
    artifacts = generate_fig1()
    print(artifacts.stack_snapshot)

    print("\n=== honest request ===")
    server = build_fig1()
    server.feed(b"GET /index.html\x00")
    result = server.run()
    print(f"served: {result.output[:16]!r} (exit {result.exit_code})")

    print("\n=== the attack under each deployment posture ===")
    postures = [("none", NONE), ("canary", CANARY), ("dep", DEP),
                ("aslr", ASLR), ("deployed", DEPLOYED)]
    for name, config in postures:
        smash = io_attacks.attack_stack_smash_injection(config, seed=4)
        reuse = io_attacks.attack_ret2libc(config, seed=4)
        print(f"  {name:<10} smash+inject: {smash.outcome.value:<10} "
              f"ret2libc: {reuse.outcome.value}")

    print("\n=== what survives everything: the data-only attack ===")
    for name, config in postures:
        result = io_attacks.attack_data_only(config, seed=4)
        print(f"  {name:<10} {result.outcome.value}: {result.detail}")

    print("\n=== and the pure leak (Heartbleed pattern) ===")
    leak = io_attacks.attack_heartbleed(DEPLOYED)
    print(f"  deployed   {leak.outcome.value}: {leak.detail}")
    print(f"  leaked bytes: {leak.evidence['leak'][16:32]!r}")


if __name__ == "__main__":
    main()
