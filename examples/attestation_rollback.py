#!/usr/bin/env python
"""Section IV-C hands-on: attestation, sealing, rollback, liveness.

1. A genuine protected module attests; one byte of load-time tampering
   by the OS and every report fails verification.
2. The module seals its lockout counter to disk (which the attacker
   controls); replaying a stale blob defeats the lockout.
3. The monotonic-counter module refuses the replay -- but a strict
   freshness scheme can brick itself on an unlucky crash, which the
   Ice-style write-then-increment scheme avoids.

Run:  python examples/attestation_rollback.py
"""

from repro.attacks.rollback import attack_rollback, liveness_report
from repro.experiments.attestation_exp import attestation_report, sealing_report
from repro.pma.continuity import IceStyleScheme, MemoirStyleScheme, crash_matrix


def main() -> None:
    print("=== remote attestation ===")
    for key, value in attestation_report().items():
        print(f"  {key:<28} {value}")

    print("\n=== sealed storage ===")
    for key, value in sealing_report().items():
        print(f"  {key:<28} {value}")

    print("\n=== the rollback attack ===")
    for monotonic in (False, True):
        label = "monotonic-counter module" if monotonic else "plain sealing"
        result = attack_rollback(monotonic=monotonic)
        print(f"  {label:<26} {result.outcome.value}: {result.detail}")

    print("\n=== the price of strict freshness: liveness ===")
    for monotonic in (False, True):
        report = liveness_report(monotonic=monotonic)
        print(f"  {report['scheme']:<16} crash recovery: "
              f"{'recovers' if report['liveness_preserved'] else 'BRICKED'}")

    print("\n=== crash-injection matrix for the two continuity schemes ===")
    for scheme in (MemoirStyleScheme, IceStyleScheme):
        for row in crash_matrix(scheme):
            status = "alive" if row["liveness"] else "DEADLOCK"
            print(f"  {row['scheme']:<18} {row['scenario']:<22} {status}")


if __name__ == "__main__":
    main()
