#!/usr/bin/env python
"""Figure 2 hands-on: brute-forcing the PIN by rolling back state.

The secret module's ``tries_left = 3`` counter stops an I/O attacker
cold: three wrong guesses and every later answer is 0.  But an
attacker who controls the *platform* can snapshot the machine before
guessing and restore it after every failure -- the counter is rewound
along with everything else, and the whole PIN space falls at
copy-on-write restore speed.  This is exactly the rollback attack
Section IV-C's hardware monotonic counters exist to stop (see
examples/attestation_rollback.py for that defence).

1. The in-run attacker sends 100 guesses down one session: locked out.
2. The rollback attacker wraps one warm machine in a CampaignSession,
   restoring the pristine snapshot between guesses: PIN recovered.
3. The same campaign through CampaignRunner, timed warm vs cold.

Run:  PYTHONPATH=src python examples/pin_bruteforce_campaign.py
"""

from repro.campaign import CampaignRunner, CampaignSession
from repro.experiments.campaign_exp import PinGuessTrial, SecretFactory
from repro.experiments.modules_exp import io_attacker_lockout


def main() -> None:
    print("=== the honest interface: one session, many guesses ===")
    lockout = io_attacker_lockout(guess_budget=100)
    print(f"  guesses sent      : {lockout['guesses_sent']}")
    print(f"  non-zero answers  : {lockout['nonzero_answers']}")
    print(f"  locked out        : {lockout['locked_out']}")

    print("\n=== the rollback attacker: restore between guesses ===")
    session = CampaignSession(SecretFactory(), PinGuessTrial(first_pin=1000))
    found = None
    for index in range(500):                  # PINs 1000..1499
        pin = session.run_trial(index)
        if pin is not None:
            found = pin
            break
    print(f"  guesses tried     : {index + 1}")
    print(f"  PIN recovered     : {found}")
    print(f"  pages rewound     : {session.restored_pages} "
          f"(~{session.restored_pages / (index + 1):.1f} per restore)")

    print("\n=== the same campaign, timed warm vs cold ===")
    runner = CampaignRunner(SecretFactory(), trial=PinGuessTrial(1200))
    warm = runner.run(64)
    cold = runner.run_cold(64)
    speedup = warm.trials_per_second / cold.trials_per_second
    print(f"  snapshot restore  : {warm.trials_per_second:,.0f} trials/s")
    print(f"  cold rebuild      : {cold.trials_per_second:,.0f} trials/s")
    print(f"  speedup           : {speedup:.0f}x")
    print("\nThe counter the module trusts lives in resettable state;"
          "\nonly a counter *outside* the snapshot (hardware monotonic"
          "\ncounters, Section IV-C) survives this attacker.")


if __name__ == "__main__":
    main()
