"""Dispatch-transparency differential suite for the coverage probe.

PR 7 taught the superblock translator to bake observer event emission
into compiled blocks when every attached observer is
*dispatch-transparent*; this suite pins down that the
:class:`CoverageObserver` rides that path (observed fuzzing runs at
block speed) **without changing anything observable**: run results are
byte-identical and the coverage bitmap, edge list and crash signature
are identical across

* per-instruction stepping (a non-transparent observer subclass),
* the plain interpreter leg (``block_cache=False``),
* transparent superblock dispatch (the new default), and
* transparent dispatch with the trace JIT enabled (traces stand down
  under a hub; blocks still serve hot code).
"""

from __future__ import annotations

import pytest

from repro.analysis.greybox import SnapshotExecutor, VictimFactory, outcome_of
from repro.mitigations.config import TESTING
from repro.observe.coverage import CoverageObserver
from tests.test_differential_cache import summarize

GET_SMASH = b"GET " + b"A" * 32
INPUTS = [b"", b"GET", b"GET \x01\x02", GET_SMASH, b"B" * 64]


class SteppedCoverageObserver(CoverageObserver):
    """The pre-transparency observer: same hooks, same bitmap, but the
    machine must demote to per-instruction dispatch for it."""

    dispatch_transparent = False


def executor_with(observer, *, block_cache: bool = True,
                  trace_jit: bool = False):
    executor = SnapshotExecutor(VictimFactory("fig1_staged", TESTING),
                                observer=observer)
    executor.machine.config.block_cache = block_cache
    executor.machine.config.trace_jit = trace_jit
    return executor


def leg(observer_cls, **config):
    """Run every probe input down one dispatch leg; return everything
    observable about it."""
    observer = observer_cls()
    executor = executor_with(observer, **config)
    digest = []
    for data in INPUTS:
        result = executor.run(data)
        digest.append((
            summarize(result),
            observer.snapshot_counts(),
            observer.edge_items(),
            outcome_of(observer, result).crash_site,
        ))
    return executor, digest


class TestTransparency:
    def test_coverage_observer_opts_in(self):
        assert CoverageObserver.dispatch_transparent is True

    def test_transparent_hub_keeps_block_dispatch(self):
        executor, _ = leg(CoverageObserver, block_cache=True)
        machine = executor.machine
        assert machine._blocks_hub is machine._observers is not None
        assert machine.block_cache_stats()["blocks"] > 0

    def test_stepped_observer_demotes_dispatch(self):
        executor, _ = leg(SteppedCoverageObserver, block_cache=True)
        machine = executor.machine
        assert machine._blocks_hub is None
        assert machine.block_cache_stats()["blocks"] == 0

    def test_traces_stand_down_under_hub(self):
        executor, _ = leg(CoverageObserver, block_cache=True, trace_jit=True)
        assert executor.machine.trace_cache_stats()["traces"] == 0


class TestDifferential:
    """Byte- and bitmap-identical across every dispatch leg."""

    @pytest.fixture(scope="class")
    def stepped(self):
        return leg(SteppedCoverageObserver, block_cache=True)[1]

    def test_block_leg_matches_stepped(self, stepped):
        assert leg(CoverageObserver, block_cache=True)[1] == stepped

    def test_interpreter_leg_matches_stepped(self, stepped):
        assert leg(CoverageObserver, block_cache=False)[1] == stepped

    def test_traced_leg_matches_stepped(self, stepped):
        assert leg(CoverageObserver, block_cache=True,
                   trace_jit=True)[1] == stepped

    def test_restores_keep_legs_identical(self, stepped):
        """Interleaved restores (the fuzzing access pattern) must not
        desynchronize the transparent leg from the stepped one."""
        observer = CoverageObserver()
        executor = executor_with(observer)
        for _ in range(2):
            digest = []
            for data in INPUTS:
                result = executor.run(data)
                digest.append((
                    summarize(result),
                    observer.snapshot_counts(),
                    observer.edge_items(),
                    outcome_of(observer, result).crash_site,
                ))
            assert digest == stepped
