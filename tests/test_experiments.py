"""Integration tests: each experiment regenerates its paper artefact
with the claimed shape (small parameterisations of the benchmarks)."""

import pytest

from repro.experiments import (
    analysis_exp,
    aslr,
    attestation_exp,
    fig1,
    fig4_exp,
    fuzz_exp,
    matrix,
    modules_exp,
    overhead,
    securecomp_exp,
)


class TestE1Fig1:
    @pytest.fixture(scope="class")
    def artifacts(self):
        return fig1.generate_fig1()

    def test_all_three_parts_present(self, artifacts):
        rendered = artifacts.render()
        assert "(a) Program source code" in rendered
        assert "(b) Machine code" in rendered
        assert "(c) Run-time machine state" in rendered

    def test_listing_shows_frame_management(self, artifacts):
        assert "push bp" in artifacts.process_listing
        assert "mov bp, sp" in artifacts.process_listing
        assert "sub sp, 0x10" in artifacts.process_listing

    def test_snapshot_shows_activation_records(self, artifacts):
        snapshot = artifacts.stack_snapshot
        assert "get_request() record" in snapshot
        assert "process() record" in snapshot
        assert "saved return address" in snapshot
        assert "buf[0..3]" in snapshot

    def test_text_base_matches_paper(self, artifacts):
        assert "0x08048" in artifacts.process_listing


class TestE4Matrix:
    @pytest.fixture(scope="class")
    def cells(self):
        presets = [p for p in matrix.MATRIX_PRESETS
                   if p[0] in ("none", "canary", "dep", "deployed", "hardened")]
        return matrix.run_matrix(tuple(presets))

    def test_summary_claims_hold(self, cells):
        summary = matrix.matrix_summary(cells)
        for claim, holds in summary.items():
            if "aslr" in claim:
                continue
            assert holds, claim

    def test_everything_exploited_unmitigated(self, cells):
        for cell in cells:
            if cell.preset == "none":
                assert cell.result.succeeded, cell.attack

    def test_render_shape(self, cells):
        rendered = matrix.render_matrix(cells)
        assert "EXPLOITED" in rendered
        assert "detected" in rendered


class TestE5Overhead:
    def test_ordering(self):
        rows = {row.posture: row for row in overhead.overhead_table()}
        assert rows["none"].overhead_pct == 0.0
        assert 0 < rows["canaries"].overhead_pct
        assert (rows["canaries"].overhead_pct
                < rows["safe-language (bounds checks)"].overhead_pct)

    def test_scaling_shape(self):
        rows = overhead.scaling_table(access_counts=(64, 512))
        assert rows[0]["canary_extra"] == rows[1]["canary_extra"]  # flat
        assert rows[1]["bounds_extra"] == 8 * rows[0]["bounds_extra"]  # linear
        assert rows[0]["bounds_extra"] == 64  # exactly one chk per access

    def test_boundary_crossing_ordering(self):
        rows = overhead.boundary_crossing_table()
        plain, insecure, secure = (r["instructions_per_call"] for r in rows)
        assert plain <= insecure < secure


class TestE6ASLR:
    def test_sweep_shape(self):
        points = aslr.sweep(bits_list=(0, 2, 4), trials=12)
        assert points[0].blind_rate == 1.0
        assert points[-1].blind_rate < points[0].blind_rate
        for point in points:
            assert point.leak_rate == 1.0  # [5]: leaks derandomise


class TestE7Analysis:
    def test_safe_language_closes_all_vehicles(self):
        rows = analysis_exp.safe_language_report()
        for row in rows:
            assert ("rejected" in row["safe_mode"]
                    or "bounds" in row["safe_mode"].lower()
                    or "BoundsFault" in row["safe_mode"]), row


class TestFuzzExperiment:
    @pytest.fixture(scope="class")
    def cells(self):
        return fuzz_exp.fuzz_comparison(
            max_execs=250, seed=7,
            victims=("data_only",), corpus=("overflow_read",),
        )

    def test_cell_grid(self, cells):
        assert len(cells) == 4      # 2 targets x {NONE, TESTING}
        labels = {(c.program, c.config_name) for c in cells}
        assert ("data_only", "TESTING") in labels
        assert ("corpus:overflow_read", "NONE") in labels

    def test_shallow_bugs_detected_by_both(self, cells):
        for cell in cells:
            if cell.config_name == "TESTING":
                assert cell.blind.first_detected_exec is not None
                assert cell.grey.first_detected_exec is not None
                assert cell.grey.unique_crashes >= 1

    def test_render_shape(self, cells):
        table = fuzz_exp.render_comparison(cells)
        assert "first detect" in table
        assert "data_only" in table
        curve = fuzz_exp.render_curve(cells[0].grey)
        assert "coverage curve" in curve


class TestE8E9Modules:
    def test_lockout(self):
        report = modules_exp.io_attacker_lockout(guess_budget=10)
        assert report["locked_out"]

    def test_scraper_table_shape(self):
        rows = modules_exp.scraper_table()
        outcomes = {row["scenario"]: row["outcome"] for row in rows}
        assert outcomes["plain program, module malware"] == "success"
        assert outcomes["plain program, kernel malware"] == "success"
        assert outcomes["protected module, kernel malware"] == "detected"
        assert outcomes["secure-compiled module, kernel malware"] == "detected"

    def test_functionality_preserved(self):
        report = modules_exp.functionality_preserved()
        assert report["correct_pin_served"] and report["wrong_pins_refused"]

    def test_census_denies_only_module_pages(self):
        rows = modules_exp.sweep_census()
        plain = [r for r in rows if r["program"] == "plain"]
        protected = [r for r in rows if r["program"] == "protected"]
        assert all(r["secrets_found"] != "-" for r in plain)
        assert all(r["secrets_found"] == "-" for r in protected)
        assert all(r["denied_kib"] > 0 for r in protected)


class TestE10Fig4:
    def test_scenarios(self):
        rows = {r["scenario"]: r["outcome"] for r in fig4_exp.scenario_table()}
        assert rows["honest client, secure compile"] == "works"
        assert "ProtectionFault" in rows["honest client, insecure compile"]
        assert rows["fig4 attacker, insecure compile"].startswith("success")
        assert rows["fig4 attacker, secure compile"].startswith("detected")


class TestE11Attestation:
    def test_attestation_claims(self):
        report = attestation_exp.attestation_report()
        assert report["genuine_module_verifies"]
        assert not report["tampered_module_verifies"]
        assert not report["nonce_replay_accepted"]

    def test_sealing_claims(self):
        report = attestation_exp.sealing_report()
        assert all(report.values())

    def test_rollback_table(self):
        rows = {r["module"]: r for r in attestation_exp.rollback_table()}
        assert rows["plain sealing"]["rollback"] == "success"
        assert rows["monotonic counter"]["rollback"] == "detected"
        assert rows["plain sealing"]["crash_liveness"] == "recovers"
        assert "BRICKED" in rows["monotonic counter"]["crash_liveness"]


class TestE12Ablation:
    @pytest.fixture(scope="class")
    def rows(self):
        return {row["build"]: row for row in securecomp_exp.ablation_table()}

    def test_full_scheme_stops_everything(self, rows):
        full = rows["full secure compilation"]
        assert full["fig4_attack"].startswith("detected")
        assert full["stack_residue"] == "clean"
        assert full["register_residue"] == "clean"
        assert full["reentrancy"] == "detected"

    def test_each_component_maps_to_its_attack(self, rows):
        assert rows["without pointer checks"]["fig4_attack"].startswith("EXPLOITED")
        assert rows["without private stack"]["stack_residue"] == "LEAKED"
        assert rows["without register scrubbing"]["register_residue"] == "LEAKED"
        assert rows["without reentrancy guard"]["reentrancy"] != "detected"

    def test_removed_component_does_not_regress_others(self, rows):
        assert rows["without pointer checks"]["stack_residue"] == "clean"
        assert rows["without private stack"]["fig4_attack"].startswith("detected")
        assert rows["without register scrubbing"]["fig4_attack"].startswith("detected")
