"""Differential testing: block translation vs the per-instruction interpreter.

The superblock translator (repro.machine.blocks) is a pure performance
layer; it must be observationally invisible.  Every scenario here runs
twice -- once dispatching block-at-a-time and once down the
per-instruction path -- and asserts the runs are byte-identical:
status, exit code, fault type *and message*, instruction counts,
output, the full register file, IP, flags, and raw memory contents.

Alongside a hypothesis fuzzer over random straight-line+branch+memory
programs, the directed cases are the paper's adversarial workloads,
where a translation cache could plausibly diverge: a block whose store
overwrites its *own* not-yet-executed tail, the Fig. 1 stack-smash
code-injection exploit, a ROP chain, a ``ret`` landing in the middle
of a previously translated block, and instruction-budget exhaustion
mid-block.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.isa import Mem, R0, R1, R2, R3, build, encode_many
from repro.isa.instructions import Instruction
from repro.machine import Machine, MachineConfig, RunResult
from repro.machine import machine as machine_module
from repro.machine.memory import PERM_RW, PERM_RWX
from repro.mitigations import DEP, NONE

CODE = 0x1000
DATA = 0x00100000
STACK_BASE = 0x00200000
STACK_TOP = 0x0020F000

#: Initial register file: plausible pointers (code, data, mid-data,
#: stack) and small scalars, so random loads/stores hit mapped and
#: unmapped memory in interesting proportions.
SEED_REGS = (0, 1, 7, DATA, DATA + 0x800, CODE, 0xDEADBEEF, 2,
             STACK_TOP, STACK_TOP)


@pytest.fixture
def unblocked_default():
    """Flip the module-wide default so pipelines that build their own
    machines (the attack suites) run without block translation."""
    machine_module.BLOCK_CACHE_DEFAULT = False
    try:
        yield
    finally:
        machine_module.BLOCK_CACHE_DEFAULT = True


def summarize(result: RunResult) -> tuple:
    return (
        result.status,
        result.exit_code,
        type(result.fault).__name__ if result.fault else None,
        str(result.fault) if result.fault else None,
        result.instructions,
        result.output,
        result.shell_spawned,
    )


def run_one(program: bytes, block: bool, max_instructions: int = 3_000) -> tuple:
    """Run ``program`` on a fresh machine; return its complete state."""
    machine = Machine(MachineConfig(block_cache=block))
    machine.memory.map_region(CODE, 0x1000, PERM_RWX)
    machine.memory.map_region(DATA, 0x1000, PERM_RW)
    machine.memory.map_region(STACK_BASE, 0x10000, PERM_RW)
    machine.memory.write_bytes(CODE, program)
    machine.cpu.ip = CODE
    machine.cpu.regs[:] = SEED_REGS
    result = machine.run(max_instructions=max_instructions)
    return (
        summarize(result),
        tuple(machine.cpu.regs),
        machine.cpu.ip,
        (machine.cpu.zf, machine.cpu.lt, machine.cpu.ult),
        machine.current_ip,
        machine.instructions_executed,
        machine.memory.read_bytes(CODE, 0x1000),
        machine.memory.read_bytes(DATA, 0x1000),
        machine.memory.read_bytes(STACK_TOP - 0x400, 0x400),
    )


def assert_identical(program: bytes, max_instructions: int = 3_000) -> tuple:
    blocked = run_one(program, True, max_instructions)
    stepped = run_one(program, False, max_instructions)
    assert blocked == stepped
    return blocked


# -- hypothesis fuzz ---------------------------------------------------------

_REG = st.integers(0, 9)
_IMM = st.one_of(
    st.integers(0, 0xFFFFFFFF),
    st.sampled_from([0, 1, 2, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF,
                     DATA, DATA + 0x800, CODE, STACK_TOP]),
)
_DISP = st.sampled_from([0, 1, 4, 8, -4, 0x7FC, 0xFFC])
_MEM = st.builds(Mem, _REG, _DISP)

#: Straight-line instructions (no control transfers).
_STRAIGHT = st.one_of(
    st.builds(build.nop),
    st.builds(build.mov_rr, _REG, _REG),
    st.builds(build.mov_ri, _REG, _IMM),
    st.builds(build.load, _REG, _MEM),
    st.builds(build.store, _REG, _MEM),
    st.builds(build.loadb, _REG, _MEM),
    st.builds(build.storeb, _REG, _MEM),
    st.builds(build.push, _REG),
    st.builds(build.pop, _REG),
    st.builds(build.add_rr, _REG, _REG),
    st.builds(build.add_ri, _REG, _IMM),
    st.builds(build.sub_rr, _REG, _REG),
    st.builds(build.sub_ri, _REG, _IMM),
    st.builds(build.mul_rr, _REG, _REG),
    st.builds(build.div_rr, _REG, _REG),
    st.builds(build.mod_rr, _REG, _REG),
    st.builds(build.and_rr, _REG, _REG),
    st.builds(build.or_rr, _REG, _REG),
    st.builds(build.xor_rr, _REG, _REG),
    st.builds(build.not_r, _REG),
    st.builds(build.shl, _REG, st.integers(0, 255)),
    st.builds(build.shr, _REG, st.integers(0, 255)),
    st.builds(build.cmp_rr, _REG, _REG),
    st.builds(build.cmp_ri, _REG, _IMM),
    st.builds(build.lea, _REG, _MEM),
    st.builds(build.chk, _REG, _IMM),
)

_BRANCH_BUILDERS = (build.jz, build.jnz, build.jl, build.jg, build.jle,
                    build.jge, build.jb, build.jae, build.jmp_abs,
                    build.call_abs)

#: One program slot: a straight-line instruction, a forward branch
#: placeholder (builder + a fraction picking how far forward), or one
#: of the wilder transfers whose targets come from the register file.
_SLOT = st.one_of(
    _STRAIGHT.map(lambda insn: ("insn", insn)),
    st.tuples(st.sampled_from(_BRANCH_BUILDERS),
              st.floats(0.0, 1.0)).map(lambda t: ("fwd", *t)),
    st.builds(build.jmp_reg, _REG).map(lambda insn: ("insn", insn)),
    st.builds(build.call_reg, _REG).map(lambda insn: ("insn", insn)),
    st.builds(build.ret).map(lambda insn: ("insn", insn)),
    st.sampled_from([0, 1, 2, 3, 9]).map(
        lambda number: ("insn", build.sys(number))),
)


def _assemble(slots: list[tuple]) -> bytes:
    """Lay the slots out at CODE, resolving forward-branch targets.

    Branch placeholders pick a target among the *later* instruction
    addresses (or the final exit), so generated control flow always
    makes progress; loops and hijacks still arise through jmp_reg /
    call_reg / ret, whose targets come from the register file, and the
    run is budget-capped either way.
    """
    addresses: list[int] = []
    addr = CODE
    for slot in slots:
        addresses.append(addr)
        addr += 5 if slot[0] == "fwd" else len(
            encode_many([slot[1]]))
    exit_addr = addr
    insns: list[Instruction] = []
    for index, slot in enumerate(slots):
        if slot[0] == "fwd":
            _, builder, fraction = slot
            later = addresses[index + 1:] + [exit_addr]
            target = later[min(int(fraction * len(later)), len(later) - 1)]
            insns.append(builder(target))
        else:
            insns.append(slot[1])
    insns.append(build.mov_ri(R0, 0))
    insns.append(build.sys(3))  # exit(r0)
    return encode_many(insns)


class TestFuzzedPrograms:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(_SLOT, min_size=1, max_size=40))
    def test_random_program_identical(self, slots):
        assert_identical(_assemble(slots))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_SLOT, min_size=1, max_size=40),
           st.integers(1, 200))
    def test_random_program_identical_under_budget(self, slots, budget):
        # Tight budgets make ExecutionLimitExceeded land mid-block,
        # where the dispatcher must demote to single-stepping to fault
        # at the interpreter's exact instruction count and IP.
        assert_identical(_assemble(slots), max_instructions=budget)


# -- directed adversarial cases ----------------------------------------------

class TestSelfModifyingBlocks:
    def test_store_overwrites_own_block_tail(self):
        # One straight-line run: the store at 0x100C patches the
        # instruction at 0x1012 *in the same basic block*, before it
        # has executed.  The interpreter decodes it fresh and sees the
        # patch; a stale translated tail would still load 1.
        tail = 0x1012
        patched = encode_many([build.mov_ri(R0, 2)])
        patch_word = int.from_bytes(patched[0:4], "little")
        program = encode_many([
            build.mov_ri(R1, tail),         # 0x1000
            build.mov_ri(R3, patch_word),   # 0x1006
            build.store(R3, Mem(R1, 0)),    # 0x100C
            build.mov_ri(R0, 1),            # 0x1012  <- patched above
            build.sys(3),                   # 0x1018
        ])
        state = assert_identical(program)
        assert state[0][1] == 2  # both executed the patched bytes

    def test_store_patches_next_iteration(self):
        # The test_decode_cache self-modifying loop, now exercising
        # block re-translation across iterations as well.
        loop, exit_at = 0x100C, 0x103A
        program = encode_many([
            build.mov_ri(R0, 0),
            build.mov_ri(R2, 0),
            build.add_ri(R0, 1),            # patched to `add r0, 2`
            build.add_ri(R2, 1),
            build.cmp_ri(R2, 2),
            build.jz(exit_at),
            build.mov_ri(R1, loop),
            build.mov_ri(R3, 0x0002000B),
            build.store(R3, Mem(R1, 0)),
            build.jmp_abs(loop),
            build.sys(3),
        ])
        state = assert_identical(program)
        assert state[0][1] == 3  # 1 (original pass) + 2 (patched pass)


class TestMidBlockEntry:
    def test_ret_lands_mid_block(self):
        # First pass translates the block at 0x1000; the driver then
        # forges a return address into its middle (0x1006) -- the ROP
        # shape -- and the machine must execute from there, not from
        # any block-aligned boundary.
        mid = 0x1006
        driver = 0x1100
        head = encode_many([
            build.mov_ri(R0, 5),            # 0x1000
            build.add_ri(R0, 7),            # 0x1006  <- re-entry target
            build.cmp_ri(R0, 12),           # 0x100C
            build.jz(driver),               # 0x1012
            build.sys(3),                   # 0x1017
        ])
        forged = encode_many([
            build.mov_ri(R0, 100),          # 0x1100
            build.mov_ri(R1, mid),
            build.push(R1),
            build.ret(),                    # -> 0x1006 with r0 = 100
        ])
        program = head + b"\x00" * (0x100 - len(head)) + forged
        state = assert_identical(program)
        assert state[0][1] == 107  # 100 + 7, then exit(r0)


class TestBudgetExhaustion:
    def test_limit_mid_block_matches_interpreter(self):
        # A 3-instruction loop against budgets that are not multiples
        # of 3: the limit must fire at the same count and IP as the
        # interpreter, never "rounding up" to a block boundary.
        program = encode_many([
            build.add_ri(R0, 1),            # 0x1000
            build.cmp_ri(R0, 0),            # 0x1006
            build.jmp_abs(0x1000),          # 0x100C
        ])
        for budget in (1, 2, 3, 4, 5, 499, 500, 501):
            blocked = run_one(program, True, max_instructions=budget)
            stepped = run_one(program, False, max_instructions=budget)
            assert blocked == stepped
            assert blocked[0][2] == "ExecutionLimitExceeded"
            assert blocked[5] == budget  # instructions_executed is exact


def _attack_summary(result):
    return (
        result.outcome,
        result.detail,
        summarize(result.run) if result.run is not None else None,
    )


class TestAttackPipelines:
    """Whole attack pipelines (which build machines internally) agree."""

    def test_fig1_injection_exploit_identical(self, unblocked_default):
        from repro.attacks import attack_stack_smash_injection

        stepped = _attack_summary(attack_stack_smash_injection(NONE))
        machine_module.BLOCK_CACHE_DEFAULT = True
        blocked = _attack_summary(attack_stack_smash_injection(NONE))
        assert blocked == stepped
        assert blocked[2][6]  # the exploit spawns its shell either way

    def test_rop_chain_identical(self, unblocked_default):
        from repro.attacks import attack_rop_shell

        stepped = _attack_summary(attack_rop_shell(DEP))
        machine_module.BLOCK_CACHE_DEFAULT = True
        blocked = _attack_summary(attack_rop_shell(DEP))
        assert blocked == stepped

    def test_dep_blocks_injection_identically(self, unblocked_default):
        from repro.attacks import attack_stack_smash_injection

        stepped = _attack_summary(attack_stack_smash_injection(DEP))
        machine_module.BLOCK_CACHE_DEFAULT = True
        blocked = _attack_summary(attack_stack_smash_injection(DEP))
        assert blocked == stepped


class TestMatrixParity:
    def test_parallel_matrix_identical_to_sequential(self):
        from repro.experiments import matrix
        from repro.mitigations.config import MATRIX_PRESETS

        presets = MATRIX_PRESETS[:2]
        sequential = matrix.run_matrix(presets=presets, jobs=1)
        parallel = matrix.run_matrix(presets=presets, jobs=2)
        assert matrix.render_matrix(sequential) == \
            matrix.render_matrix(parallel)
        for a, b in zip(sequential, parallel):
            assert (a.attack, a.preset) == (b.attack, b.preset)
            assert _attack_summary(a.result) == _attack_summary(b.result)
